#!/usr/bin/env python3
"""Livermore Kernel 23 scaling — a miniature of the paper's Fig. 4.

Runs the 2-D stencil at several core counts on both simulated testbeds,
comparing native ORWL, ORWL with the affinity module, and the OpenMP
reference. Also demonstrates the data-execution mode: at a small size the
ORWL wavefront reproduces the sequential kernel bit-for-bit.

Run:  python examples/stencil_scaling.py
"""

import numpy as np

from repro.apps.lk23 import (
    Lk23Config,
    lk23_reference,
    make_lk23_arrays,
    run_openmp_lk23,
    run_orwl_lk23,
)
from repro.topology import fig2_machine, smp12e5, smp20e7


def correctness_demo() -> None:
    print("=== correctness: ORWL wavefront vs sequential kernel ===")
    n, iters = 24, 3
    arrays = make_lk23_arrays(n, seed=7)
    reference = lk23_reference(**arrays, iterations=iters)
    cfg = Lk23Config(n=n, iterations=iters, n_threads=16, execute_data=True)
    work = {k: v.copy() for k, v in arrays.items()}
    run_orwl_lk23(fig2_machine(), cfg, affinity=True, arrays=work)
    exact = np.array_equal(work["za"], reference)
    print(f"16-thread blocked wavefront == sequential sweep: {exact}\n")


def scaling_demo() -> None:
    print("=== scaling (4096^2 doubles, 10 iterations) ===")
    for topo_fn, cores in ((smp12e5, [8, 32, 96]), (smp20e7, [8, 32, 128])):
        name = topo_fn().name
        print(f"\n{name}:")
        print(f"{'cores':>6} {'ORWL':>9} {'ORWL(aff)':>10} {'OpenMP':>9} "
              f"{'gain':>6}")
        for nc in cores:
            cfg = Lk23Config(n=4096, iterations=10, n_threads=nc)
            nat = run_orwl_lk23(topo_fn(), cfg, affinity=False, seed=1)
            aff = run_orwl_lk23(topo_fn(), cfg, affinity=True, seed=1)
            omp = run_openmp_lk23(topo_fn(), cfg, binding=None, seed=1)
            print(f"{nc:>6} {nat.seconds:>8.3f}s {aff.seconds:>9.3f}s "
                  f"{omp.seconds:>8.3f}s {nat.seconds / aff.seconds:>5.1f}x")


if __name__ == "__main__":
    correctness_demo()
    scaling_demo()
