#!/usr/bin/env python3
"""Advanced mode: re-mapping threads while the application runs.

Sec. IV-B of the paper: beyond the automatic startup placement, the
affinity API "handles dynamic situations where ... the affinity between
tasks changes at run time".

This example runs a ring of tasks whose heavy-traffic *pairing* shifts
halfway through: first partners (0,1), (2,3), ... exchange the bulk of
the data, then the pairing rotates to (1,2), (3,4), ..., (11,0). Unlike
the original hand-rolled version (where task 0 re-ran the three-call
affinity API from inside its body), the detection and the remap are now
fully automatic: an :class:`~repro.affinity.AdaptiveController` watches
the live communication matrix between execution windows, notices the
drift, re-runs TreeMatch warm-started from the current placement — the
rotation is a small perturbation, so refining the live groups matches a
cold start and wins the tie — and rebinds only the threads that moved.

Run:  python examples/dynamic_remapping.py
"""

from repro.affinity import AdaptiveController, ControllerConfig
from repro.orwl import Runtime
from repro.sim.process import Compute
from repro.topology import smp20e7

N = 12
ITERS = 24
HEAVY = float(1 << 22)
LIGHT = 64.0


def main() -> None:
    rt = Runtime(smp20e7(), affinity=True, seed=1)
    tasks = [rt.task(f"ring{i}") for i in range(N)]
    locs = [t.location("slot", 1 << 20) for t in tasks]
    fwd, bwd = {}, {}

    for i, t in enumerate(tasks):
        t.write_handle(locs[i], iterative=True)
        fwd[i] = t.read_handle(locs[(i + 1) % N], iterative=True)
        bwd[i] = t.read_handle(locs[(i - 1) % N], iterative=True)
        # Declared traffic describes the *initial* pairing; the shifted
        # second half is exactly what the declaration cannot know.
        paired = i % 2 == 0
        fwd[i].traffic = HEAVY if paired else LIGHT
        bwd[i].traffic = LIGHT if paired else HEAVY

    for i, t in enumerate(tasks):

        def body(op, i=i):
            hw = op.handles[0]
            for it in range(ITERS):
                offset = 0 if it < ITERS // 2 else 1
                paired = (i - offset) % 2 == 0
                yield from hw.acquire()
                yield hw.touch()
                yield Compute(2e6)
                hw.release()
                for h, heavy in ((fwd[i], paired), (bwd[i], not paired)):
                    yield from h.acquire()
                    yield h.touch(HEAVY if heavy else LIGHT)
                    h.release()

        t.set_body(body)

    rt.schedule()
    controller = AdaptiveController.for_orwl(
        rt,
        config=ControllerConfig(
            window_cycles=2e6, calibrate_windows=2, gather_windows=2
        ),
    )
    before = dict(controller.placement.thread_to_pu)

    result = controller.run()

    print(f"completed in {result.seconds * 1e3:.2f} ms over "
          f"{controller.windows_run} windows "
          f"(migrations {result.counters.cpu_migrations})")
    for dec in controller.decisions:
        kind = "warm-started" if dec.warm else "cold"
        print(f"remap @ window {dec.window}: drift={dec.drift:.3f}, "
              f"{kind} TreeMatch moved {dec.moved} thread(s)")
    after = dict(controller.placement.thread_to_pu)
    moved = [i for i in range(N) if before[i] != after[i]]
    print(f"threads re-placed by the controller: {moved}")
    print("before:", {i: before[i] for i in range(N)})
    print("after: ", {i: after[i] for i in range(N)})


if __name__ == "__main__":
    main()
