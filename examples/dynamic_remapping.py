#!/usr/bin/env python3
"""Advanced mode: re-mapping threads while the application runs.

Sec. IV-B of the paper: beyond the automatic startup placement, the
affinity API (orwl_dependency_get / orwl_affinity_compute /
orwl_affinity_set) "handles dynamic situations where ... the affinity
between tasks changes at run time".

This example runs a ring of tasks whose heavy-traffic *pairing* shifts
halfway through: first partners (0,1), (2,3), … exchange the bulk of the
data, then the pairing rotates to (1,2), (3,4), …, (11,0). Task 0
detects the shift, updates the declared traffic, and re-runs the
three-call API from inside its body; the runtime rebinds every thread on
the fly and the run completes with the new placement.

Run:  python examples/dynamic_remapping.py
"""

from repro.orwl import Runtime
from repro.sim.process import Compute
from repro.topology import smp20e7

N = 12
ITERS = 12
HEAVY = float(1 << 22)
LIGHT = 64.0


def main() -> None:
    rt = Runtime(smp20e7(), affinity=True, seed=1)
    tasks = [rt.task(f"ring{i}") for i in range(N)]
    locs = [t.location("slot", 1 << 20) for t in tasks]
    fwd, bwd = {}, {}

    def apply_pairing(offset: int) -> None:
        """Heavy traffic between (2k+offset, 2k+1+offset) pairs."""
        for j in range(N):
            paired = (j - offset) % 2 == 0  # j starts a pair with j+1
            fwd[j].traffic = HEAVY if paired else LIGHT
            bwd[j].traffic = LIGHT if paired else HEAVY

    for i, t in enumerate(tasks):
        t.write_handle(locs[i], iterative=True)
        fwd[i] = t.read_handle(locs[(i + 1) % N], iterative=True)
        bwd[i] = t.read_handle(locs[(i - 1) % N], iterative=True)
    apply_pairing(0)

    snapshots = {}

    for i, t in enumerate(tasks):

        def body(op, i=i):
            hw = op.handles[0]
            for it in range(ITERS):
                if i == 0 and it == ITERS // 2:
                    print(f"iteration {it}: pairing rotates — "
                          "recomputing the mapping in-flight")
                    apply_pairing(1)
                    rt.dependency_get()        # orwl_dependency_get
                    rt.affinity_compute()      # orwl_affinity_compute
                    rt.affinity_set()          # orwl_affinity_set
                    snapshots["after"] = dict(
                        rt.affinity.placement.thread_to_pu
                    )
                yield from hw.acquire()
                yield hw.touch()
                yield Compute(2e6)
                hw.release()
                for h in (fwd[i], bwd[i]):
                    yield from h.acquire()
                    yield h.touch(h.traffic)
                    h.release()

        t.set_body(body)

    rt.schedule()
    rt.dependency_get()
    startup = rt.affinity_compute()
    snapshots["before"] = dict(startup.thread_to_pu)

    result = rt.run()
    print(f"\ncompleted in {result.seconds * 1e3:.2f} ms "
          f"(migrations {result.counters.cpu_migrations} — rebinding moves "
          "threads once, then they are pinned again)")
    moved = [
        i for i in range(N)
        if snapshots["before"][i] != snapshots["after"][i]
    ]
    print(f"threads re-placed by the in-flight recomputation: {moved}")
    print("before:", snapshots["before"])
    print("after: ", snapshots["after"])


if __name__ == "__main__":
    main()
