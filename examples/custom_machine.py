#!/usr/bin/env python3
"""Portability: the same unmodified program on a custom machine.

The paper's "portable" claim: no per-machine configuration. This example
defines a machine that exists nowhere (3 NUMA nodes x 2 sockets x 4
cores with hyperthreads), prints its topology, and runs the block-cyclic
matmul on it — the affinity module adapts by itself. It also shows the
TreeMatch placement for a hand-written communication matrix.

Run:  python examples/custom_machine.py
"""

import numpy as np

from repro.apps.matmul import MatmulConfig, run_orwl_matmul
from repro.topology import TopologySpec, build_topology, render_ascii, render_mapping
from repro.treematch import CommunicationMatrix, treematch_map


def make_machine():
    return build_topology(
        TopologySpec(
            name="custom-3x2x4",
            numa_per_group=3,
            sockets_per_numa=2,
            cores_per_socket=4,
            pus_per_core=2,
            l3="8M",
            l2="512K",
            l1="32K",
            clock_hz=3.0e9,
            interconnect_gbps=10.0,
            os_policy="consolidate",
        )
    )


def topology_demo(topo) -> None:
    print("=== the custom machine (hwloc-style) ===")
    print(render_ascii(topo, max_depth=4))
    print(f"\n{topo.n_cores} cores / {topo.n_pus} PUs, "
          f"arities {topo.level_arities()}\n")


def placement_demo(topo) -> None:
    print("=== TreeMatch on a hand-written communication matrix ===")
    # Four heavily-communicating pairs plus a broadcast task.
    n = 9
    m = np.zeros((n, n))
    for i in range(0, 8, 2):
        m[i, i + 1] = m[i + 1, i] = 500.0
    m[8, :8] = 10.0
    comm = CommunicationMatrix(m, labels=[f"t{i}" for i in range(8)] + ["bcast"])
    placement = treematch_map(topo, comm, n_control=4)
    print(render_mapping(
        topo,
        placement.thread_to_pu,
        {i: lab for i, lab in enumerate(comm.labels)},
        reserved={pu: "ctl" for pu in placement.control_to_pu.values()},
    ))
    print(f"\ncommunication cost: {placement.cost(topo, comm):,.0f} "
          f"(granularity: {placement.granularity})\n")


def matmul_demo(topo_factory) -> None:
    print("=== unmodified matmul on the custom machine ===")
    cfg = MatmulConfig(n=2048, n_tasks=24)
    nat = run_orwl_matmul(topo_factory(), cfg, affinity=False, seed=1)
    aff = run_orwl_matmul(topo_factory(), cfg, affinity=True, seed=1)
    print(f"native   {nat.gflops:7.1f} GF/s")
    print(f"affinity {aff.gflops:7.1f} GF/s  "
          f"({aff.gflops / nat.gflops:.2f}x, migrations "
          f"{aff.counters.cpu_migrations} vs {nat.counters.cpu_migrations})")


if __name__ == "__main__":
    topo = make_machine()
    topology_demo(topo)
    placement_demo(topo)
    matmul_demo(make_machine)
