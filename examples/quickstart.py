#!/usr/bin/env python3
"""Quickstart: the Listing-1 pipeline with automatic thread placement.

Builds a chain of ORWL tasks (each writes its own location and reads its
predecessor's), runs it natively and with the affinity module enabled,
and shows what the module decided — all without changing a line of the
task code, which is the paper's point.

Run:  python examples/quickstart.py
"""

from repro.orwl import Runtime
from repro.sim.process import Compute
from repro.topology import smp12e5

N_TASKS = 16
ITERATIONS = 20
LOCATION_BYTES = 1 << 20  # 1 MB exchanged per hop per iteration


def build_pipeline(runtime: Runtime) -> None:
    """Declare the task/location graph (compare Listing 1 of the paper)."""
    tasks = [runtime.task(f"stage{i}") for i in range(N_TASKS)]
    locations = [t.location("main_loc", LOCATION_BYTES) for t in tasks]
    for i, task in enumerate(tasks):
        here = task.write_handle(locations[i], iterative=True)
        there = (
            task.read_handle(locations[i - 1], iterative=True) if i else None
        )

        def body(op, here=here, there=there):
            for _ in range(ITERATIONS):
                yield from here.acquire()          # ORWL_SECTION(&here)
                yield here.touch()                  # write our payload
                yield Compute(5e6)                  # some work on it
                if there is not None:
                    yield from there.acquire()      # ORWL_SECTION(&there)
                    yield there.touch()             # read the predecessor
                    there.release()
                here.release()

        task.set_body(body)


def main() -> None:
    print(f"Pipeline of {N_TASKS} tasks x {ITERATIONS} iterations "
          f"on a simulated SMP12E5 (12 NUMA nodes, 96 cores, HT)\n")

    native = Runtime(smp12e5(), affinity=False, seed=1)
    build_pipeline(native)
    res_native = native.run()

    # The only change: affinity=True (or ORWL_AFFINITY=1 in the env).
    tuned = Runtime(smp12e5(), affinity=True, seed=1)
    build_pipeline(tuned)
    res_tuned = tuned.run()

    print(f"native ORWL:     {res_native.seconds * 1e3:8.2f} ms  "
          f"(migrations {res_native.counters.cpu_migrations}, "
          f"L3 misses {res_native.counters.l3_misses:,.0f})")
    print(f"ORWL + affinity: {res_tuned.seconds * 1e3:8.2f} ms  "
          f"(migrations {res_tuned.counters.cpu_migrations}, "
          f"L3 misses {res_tuned.counters.l3_misses:,.0f})")
    print(f"speedup: {res_native.seconds / res_tuned.seconds:.2f}x\n")

    placement = res_tuned.placement
    print(f"placement granularity: {placement.granularity} "
          f"(control threads on {placement.control_mode})")
    print("compute thread -> PU:",
          {t: p for t, p in sorted(placement.thread_to_pu.items())})
    print("control thread -> PU:",
          {t: p for t, p in sorted(placement.control_to_pu.items())})


if __name__ == "__main__":
    main()
