#!/usr/bin/env python3
"""The video-tracking pipeline: real tracking + Fig. 6-style FPS.

Part 1 runs the full 30-task DFG in data-execution mode at a small
resolution: synthetic moving objects are detected (GMM background
subtraction → morphology → connected components) and tracked across
frames; the pipeline's output is identical to running the algorithms
sequentially.

Part 2 measures FPS at HD on the 4-socket machine slices, comparing
sequential, OpenMP fork-join, native ORWL and ORWL with the affinity
module.

Run:  python examples/video_tracking.py
"""

from repro.apps.video import (
    VideoConfig,
    run_openmp_video,
    run_orwl_video,
    run_sequential_video,
)
from repro.apps.video.frames import FRAME_FORMATS, FrameSpec
from repro.apps.video.pipeline import run_sequential_reference
from repro.topology import smp12e5_4s, smp20e7_4s


def tracking_demo() -> None:
    print("=== tracking objects through the ORWL pipeline ===")
    FRAME_FORMATS.setdefault("demo", FrameSpec(96, 72))
    cfg = VideoConfig(
        resolution="demo",
        frames=12,
        gmm_split=4,
        ccl_split=2,
        n_dilate=2,
        n_objects=2,
        execute_data=True,
        seed=11,
    )
    result, out = run_orwl_video(smp20e7_4s(), cfg, affinity=True)
    reference = run_sequential_reference(cfg)
    print(f"pipeline output == sequential reference: "
          f"{out['tracks'] == reference}")
    for frame_idx in (3, 7, 11):
        tracks = out["tracks"][frame_idx]
        desc = ", ".join(
            f"#{tid} at ({cy:.0f},{cx:.0f}) age {age}"
            for tid, (cy, cx), age in tracks
        )
        print(f"frame {frame_idx:2d}: {len(tracks)} tracks  [{desc}]")
    print()


def fps_demo() -> None:
    print("=== Fig. 6-style FPS at HD (30 tasks, 4 sockets) ===")
    frames = 30
    cfg = VideoConfig(resolution="HD", frames=frames)
    for topo_fn in (smp12e5_4s, smp20e7_4s):
        topo = topo_fn()
        seq = run_sequential_video(topo_fn(), cfg, seed=1)
        omp = run_openmp_video(topo_fn(), cfg, 30, binding="close", seed=1)
        nat, _ = run_orwl_video(topo_fn(), cfg, affinity=False, seed=1)
        aff, _ = run_orwl_video(topo_fn(), cfg, affinity=True, seed=1)
        print(f"\n{topo.name} (hyperthreading: {topo.has_hyperthreading})")
        for label, seconds in (
            ("sequential", seq.seconds),
            ("OpenMP (affinity)", omp.seconds),
            ("ORWL", nat.seconds),
            ("ORWL (affinity)", aff.seconds),
        ):
            print(f"  {label:<18} {frames / seconds:8.1f} fps")


if __name__ == "__main__":
    tracking_demo()
    fps_demo()
