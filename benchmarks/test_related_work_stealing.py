"""Related-work comparison (paper §II): dynamic work stealing vs ORWL.

The paper argues dynamic task runtimes "are not adapted for applications
with a limited number of tasks and a coarse granularity". We execute the
same LK23 wavefront as a dependency task graph under the work-stealing
runtime (with the locality-aware victim heuristic) and compare against
the static ORWL placement.
"""

from repro.apps.lk23 import (
    FLOPS_PER_CELL,
    ARRAYS_TOUCHED,
    Lk23Config,
    choose_grid,
    run_orwl_lk23,
)
from repro.experiments import current_scale
from repro.topology import smp12e5
from repro.worksteal import TaskGraph, WorkStealingRuntime


def lk23_task_graph(ws: WorkStealingRuntime, cfg: Lk23Config) -> TaskGraph:
    """The same blocked wavefront as a coarse dependency DAG."""
    gh, gw = choose_grid(cfg.n_blocks)
    rows = cfg.n // gh
    cols = cfg.n // gw
    block_bytes = rows * cols * 8
    bufs = {
        (bi, bj): ws.machine.allocate(
            ARRAYS_TOUCHED * block_bytes, f"blk{bi}_{bj}"
        )
        for bi in range(gh)
        for bj in range(gw)
    }
    g = TaskGraph()
    prev_iter: dict[tuple[int, int], int] = {}
    for _ in range(cfg.iterations):
        this_iter: dict[tuple[int, int], int] = {}
        for bi in range(gh):
            for bj in range(gw):
                deps = []
                if (bi, bj) in prev_iter:
                    deps.append(prev_iter[bi, bj])
                if bi > 0:
                    deps.append(this_iter[bi - 1, bj])
                if bj > 0:
                    deps.append(this_iter[bi, bj - 1])
                this_iter[bi, bj] = g.add_task(
                    FLOPS_PER_CELL * rows * cols,
                    touches=[(bufs[bi, bj], ARRAYS_TOUCHED * block_bytes, True)],
                    deps=deps,
                )
        prev_iter = this_iter
    return g


def test_static_placement_beats_work_stealing(regen):
    scale = current_scale()
    cfg = Lk23Config(
        n=scale.lk23_n, iterations=scale.lk23_iterations, n_threads=64
    )

    def run():
        ws_near = WorkStealingRuntime(smp12e5(), n_workers=64,
                                      locality="near", seed=1)
        near = ws_near.run(lk23_task_graph(ws_near, cfg))
        ws_rand = WorkStealingRuntime(smp12e5(), n_workers=64,
                                      locality="random", seed=1)
        rand = ws_rand.run(lk23_task_graph(ws_rand, cfg))
        orwl = run_orwl_lk23(smp12e5(), cfg, affinity=True, seed=1)
        return near, rand, orwl

    near, rand, orwl = regen(run)
    print(
        f"\nLK23/64: ORWL(affinity) {orwl.seconds:.3f}s vs work stealing "
        f"near {near.seconds:.3f}s (steals {near.steals}) / "
        f"random {rand.seconds:.3f}s (steals {rand.steals})"
    )
    # The paper's claim: static topology-aware placement wins on this
    # coarse-grained, static-structure workload.
    assert orwl.seconds < near.seconds
    assert orwl.seconds < rand.seconds
    # The locality heuristic must not lose to blind stealing.
    assert near.seconds <= rand.seconds * 1.1
    # And stealing did actually occur (it is a real dynamic execution).
    assert near.steals > 0 and rand.steals > 0
