"""Cost-model sensitivity: the reproduced shapes must not hinge on the
calibrated constants.

EXPERIMENTS.md claims the *shapes* (ORWL-affinity wins at scale, natives
flatten, migrations drop to 0) are robust to the cost model. This bench
perturbs the two calibrated constants and the three most influential
generic ones by ±50% and re-checks the Fig. 4 ordering at 64 cores.
"""

import dataclasses

from repro.apps.lk23 import Lk23Config, run_openmp_lk23, run_orwl_lk23
from repro.experiments import current_scale
from repro.sim.params import CostModel
from repro.topology import smp12e5

PERTURBED = [
    ("node_bandwidth_cyc_per_byte", 0.5),
    ("node_bandwidth_cyc_per_byte", 1.5),
    ("mem_cycles_local", 0.5),
    ("mem_cycles_local", 1.5),
    ("ht_contention", 1.0 / 1.8),  # down to no contention-ish (1.0 floor)
    ("ht_contention", 1.5),
    ("control_cycles", 0.5),
    ("control_cycles", 1.5),
    ("wakeup_migrate_prob", 0.5),
    ("wakeup_migrate_prob", 1.5),
]


def perturbed_model(field: str, factor: float) -> CostModel:
    base = CostModel()
    value = getattr(base, field) * factor
    if field == "ht_contention":
        value = max(1.0, value)
    if field.endswith("prob"):
        value = min(1.0, value)
    return dataclasses.replace(base, **{field: value})


def test_fig4_ordering_robust_to_cost_model(regen):
    scale = current_scale()
    cfg = Lk23Config(
        n=scale.lk23_n, iterations=scale.lk23_iterations, n_threads=64
    )

    def run():
        outcomes = []
        for field, factor in PERTURBED:
            model = perturbed_model(field, factor)
            aff = run_orwl_lk23(smp12e5(), cfg, affinity=True,
                                model=model, seed=1)
            nat = run_orwl_lk23(smp12e5(), cfg, affinity=False,
                                model=model, seed=1)
            omp = run_openmp_lk23(smp12e5(), cfg, binding=None,
                                  model=model, seed=1)
            outcomes.append((field, factor, aff, nat, omp))
        return outcomes

    outcomes = regen(run)
    print()
    for field, factor, aff, nat, omp in outcomes:
        print(f"{field:<28} x{factor:<4}  aff {aff.seconds:7.3f}s  "
              f"native {nat.seconds:7.3f}s  OpenMP {omp.seconds:7.3f}s")
        # The headline orderings must survive every perturbation:
        assert aff.seconds <= nat.seconds, (field, factor)
        assert aff.seconds < omp.seconds, (field, factor)
        assert aff.counters.cpu_migrations == 0, (field, factor)
        assert nat.counters.cpu_migrations > 0, (field, factor)
