"""Ablations: oversubscription handling and the OS scheduler policies.

* The virtual-level oversubscription of Algorithm 1 must beat a naive
  modulo assignment in communication cost.
* Swapping the OS policies between the two machines reproduces why the
  native curves differ: consolidate packs hyperthread siblings (bad for
  compute), spread scatters communicating threads over all NUMA nodes.
"""

import numpy as np

from repro.apps.lk23 import Lk23Config, run_orwl_lk23
from repro.experiments import current_scale
from repro.topology import fig2_machine, smp12e5
from repro.treematch import CommunicationMatrix, Placement, treematch_map


def ring(n, w=100.0):
    m = np.zeros((n, n))
    for i in range(n):
        m[i, (i + 1) % n] = w
    return CommunicationMatrix(m)


def test_ablation_virtual_level_vs_modulo(regen):
    def run():
        topo = fig2_machine()  # 32 PUs
        comm = ring(48)  # 1.5x oversubscribed
        smart = treematch_map(topo, comm)
        naive = Placement(
            thread_to_pu={i: topo.pus[i % topo.n_pus].os_index for i in range(48)},
            topology_name=topo.name,
        )
        return topo, comm, smart, naive

    topo, comm, smart, naive = regen(run)
    smart_cost = smart.cost(topo, comm)
    naive_cost = naive.cost(topo, comm)
    print(f"\noversubscribed ring: TreeMatch cost {smart_cost:.0f} vs "
          f"modulo {naive_cost:.0f}")
    assert smart.oversub_factor == 2
    assert smart_cost < naive_cost


def test_ablation_os_policy_swap(regen):
    """Running the 12E5 workload under the other kernel's policy changes
    the native behaviour — neither policy rescues the unbound runs."""
    scale = current_scale()
    cfg = Lk23Config(
        n=scale.lk23_n, iterations=scale.lk23_iterations, n_threads=64
    )

    def run():
        consolidate = run_orwl_lk23(
            smp12e5(), cfg, affinity=False, seed=1
        )
        from repro.orwl import Runtime
        from repro.apps.lk23 import build_orwl_lk23

        rt = Runtime(smp12e5(), affinity=False, os_policy="spread", seed=1)
        build_orwl_lk23(rt, cfg)
        spread = rt.run()
        affinity = run_orwl_lk23(smp12e5(), cfg, affinity=True, seed=1)
        return consolidate, spread, affinity

    consolidate, spread, affinity = regen(run)
    print(
        f"\nnative consolidate {consolidate.seconds:.3f}s, native spread "
        f"{spread.seconds:.3f}s, affinity {affinity.seconds:.3f}s"
    )
    # The affinity module beats the native run under either OS policy.
    assert affinity.seconds < consolidate.seconds
    assert affinity.seconds < spread.seconds
