"""Fig. 1 — communication matrix of the video-tracking application."""

import numpy as np

from repro.experiments import fig1_comm_matrix
from repro.experiments.figures import comm_matrix_ascii


def test_fig1_comm_matrix(regen):
    comm, fig = regen(fig1_comm_matrix)
    print()
    print(fig.title)
    print(comm_matrix_ascii(comm, width=2))

    assert comm.order == 30  # the 30 tasks of Figs. 1-2
    aff = comm.affinity()

    # The dominant visual features of Fig. 1:
    # gmm (task 1) exchanges with all 16 split sub-tasks (rows/cols 10-25)
    for i in range(10, 26):
        assert aff[1, i] > 0
    # ccl (task 7) with its 4 splits (26-29)
    for i in range(26, 30):
        assert aff[7, i] > 0
    # the pipeline chain: producer→gmm→erode→dilate…→ccl→tracking→consumer
    chain = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9]
    for a, b in zip(chain, chain[1:]):
        assert aff[a, b] > 0, (a, b)
    # splits do not talk to each other
    assert aff[10:26, 10:26].sum() == 0
    # matrix is symmetric and non-negative
    assert np.allclose(aff, aff.T)
    assert (aff >= 0).all()
