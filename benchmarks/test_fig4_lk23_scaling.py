"""Fig. 4 — LK23 processing times vs core count on both machines.

Shape criteria from the paper:

* all variants comparable within one socket (≤ 8 cores);
* native ORWL and OpenMP stop scaling past ~16 cores (their curves
  flatten: the NUMA hotspot / migration regime);
* ORWL (affinity) keeps scaling to the full machine and ends several
  times faster than every other variant;
* the affinity gain is larger on the hyperthreaded machine.
"""

import pytest

from repro.experiments import fig4_lk23, format_figure


@pytest.mark.parametrize("machine", ["SMP12E5", "SMP20E7"])
def test_fig4_lk23_scaling(regen, machine):
    fig = regen(fig4_lk23, machine)
    print()
    print(format_figure(fig))

    max_cores = fig.series[0].x[-1]
    orwl = fig.series_by_label("ORWL")
    orwl_aff = fig.series_by_label("ORWL (affinity)")
    omp = fig.series_by_label("OpenMP")
    omp_aff = fig.series_by_label("OpenMP (affinity)")

    # ORWL(affinity) wins at full machine width, by a clear factor.
    best_other = min(
        s.value_at(max_cores) for s in (orwl, omp, omp_aff)
    )
    assert orwl_aff.value_at(max_cores) < best_other
    assert orwl.value_at(max_cores) / orwl_aff.value_at(max_cores) > 1.5

    # ORWL(affinity) scales: full machine clearly faster than 16 cores.
    assert orwl_aff.value_at(max_cores) < orwl_aff.value_at(16) / 2

    # OpenMP flattens: going from 32 cores to the full machine buys
    # almost nothing (the single-node bandwidth plateau).
    assert omp.value_at(max_cores) > 0.6 * omp.value_at(32)

    # Within a socket everyone is in the same ballpark (≤ 3x spread).
    at8 = [s.value_at(8) for s in fig.series]
    assert max(at8) / min(at8) < 3.5


def test_fig4_affinity_gain_larger_with_hyperthreading(regen):
    def both():
        return fig4_lk23("SMP12E5", cores=[64]), fig4_lk23("SMP20E7", cores=[64])

    fig_ht, fig_noht = regen(both)

    def gain(fig):
        return (
            fig.series_by_label("ORWL").value_at(64)
            / fig.series_by_label("ORWL (affinity)").value_at(64)
        )

    g_ht, g_noht = gain(fig_ht), gain(fig_noht)
    print(f"\naffinity gain at 64 cores: SMP12E5 (HT) {g_ht:.2f}x, "
          f"SMP20E7 {g_noht:.2f}x")
    assert g_ht > 1.0 and g_noht > 1.0
