"""Ablation: GroupProcesses engine — optimal vs greedy (+refinement).

The paper's engine "goes from an optimal but exponential algorithm to a
greedy one that is linear" by problem size. We verify that on problem
sizes where the optimal engine is feasible, the greedy engine (with the
local-search refinement) stays close in grouping quality, and that the
greedy engine is drastically faster on larger orders.
"""

import time

import numpy as np

from repro.treematch.grouping import (
    group_greedy,
    group_optimal,
    group_processes,
    intra_group_weight,
    refine_groups,
)


def structured_matrix(p, rng, *, cluster=4):
    """Strong intra-cluster affinity + weak noise (stencil-like)."""
    m = rng.random((p, p)) * 1.0
    for base in range(0, p, cluster):
        m[base : base + cluster, base : base + cluster] += 50.0
    m = m + m.T
    np.fill_diagonal(m, 0)
    return m


def test_greedy_quality_close_to_optimal(regen):
    def run():
        rng = np.random.default_rng(42)
        ratios = []
        for trial in range(12):
            m = structured_matrix(8, rng)
            opt = intra_group_weight(m, group_optimal(m, 2))
            greedy = intra_group_weight(
                m, refine_groups(m, group_greedy(m, 2))
            )
            ratios.append(greedy / opt)
        return ratios

    ratios = regen(run)
    print(f"\ngreedy/optimal intra-group weight: min {min(ratios):.3f}, "
          f"mean {sum(ratios)/len(ratios):.3f}")
    assert min(ratios) > 0.9
    assert sum(ratios) / len(ratios) > 0.97


def test_greedy_is_much_faster_at_scale(regen):
    def run():
        rng = np.random.default_rng(0)
        m = structured_matrix(192, rng, cluster=8)
        t0 = time.perf_counter()
        group_processes(m, 8, force="greedy")
        greedy_t = time.perf_counter() - t0
        # optimal on this order would need ~1e180 partitions; check the
        # automatic selector picks greedy and stays fast.
        t0 = time.perf_counter()
        group_processes(m, 8)
        auto_t = time.perf_counter() - t0
        return greedy_t, auto_t

    greedy_t, auto_t = regen(run)
    print(f"\ngreedy {greedy_t*1e3:.1f} ms, auto {auto_t*1e3:.1f} ms at order 192")
    assert auto_t < 5.0  # "runtime overhead is kept negligible"


def test_selector_uses_optimal_when_cheap(regen):
    def run():
        rng = np.random.default_rng(1)
        m = structured_matrix(8, rng)
        auto = group_processes(m, 4)
        opt = group_processes(m, 4, force="optimal")
        return intra_group_weight(m, auto), intra_group_weight(m, opt)

    auto_w, opt_w = regen(run)
    assert auto_w == opt_w
