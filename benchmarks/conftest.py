"""Shared fixtures for the figure/table regeneration benchmarks.

Every benchmark runs at the ``quick`` scale by default (seconds per
figure); set ``REPRO_SCALE=paper`` for the paper's problem sizes. The
benchmark bodies print the regenerated rows/series so a run doubles as a
report; assertions check the *shapes* the paper claims (who wins, where
curves flatten, which counters drop).
"""

import pytest


@pytest.fixture
def regen(benchmark):
    """Run a regeneration function exactly once under the benchmark timer."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run
