"""Infrastructure benchmark: placement-engine latency at scale.

Not a paper experiment — a regression guard for the TreeMatch engines
after the delta-gain/branch-and-bound rewrite. Before it, the full
Algorithm 1 pipeline took ~107 s for 2048 threads on SMP20E7; the
scalable engines bring that to about a second, and these benchmarks are
the figure to watch when touching grouping/aggregate/maporder internals.
`scripts/bench_repro.py` records the bigger sweep (p up to 4096) into
``BENCH_sim.json``; this file is the fast pytest-visible smoke subset.
"""

import numpy as np

from repro.topology import smp20e7
from repro.treematch.commmatrix import CommunicationMatrix
from repro.treematch.grouping import group_greedy, intra_group_weight, refine_groups
from repro.treematch.mapping import multilevel_map, treematch_map


def test_group_greedy_2048(benchmark):
    aff = CommunicationMatrix.stencil2d(2048).affinity()

    groups = benchmark.pedantic(
        lambda: group_greedy(aff, 8), rounds=3, iterations=1
    )
    assert len(groups) == 256


def test_refine_2048(benchmark):
    aff = CommunicationMatrix.stencil2d(2048).affinity()
    base = group_greedy(aff, 8)
    w_base = intra_group_weight(aff, base)

    refined = benchmark.pedantic(
        lambda: refine_groups(aff, base), rounds=3, iterations=1
    )
    w_ref = intra_group_weight(aff, refined)
    print(f"\nintra-group weight {w_base:.0f} -> {w_ref:.0f}")
    assert w_ref >= w_base - 1e-9


def test_full_map_1024(benchmark):
    topo = smp20e7()
    comm = CommunicationMatrix.stencil2d(1024)

    pl = benchmark.pedantic(
        lambda: treematch_map(topo, comm), rounds=3, iterations=1
    )
    assert sorted(pl.thread_to_pu) == list(range(1024))
    counts = np.bincount(list(pl.thread_to_pu.values()))
    assert counts.max() <= pl.oversub_factor


def test_mapping_scale_100k(benchmark):
    # The ISSUE 7 headline: a 10^5-task sparse stencil through the
    # multilevel engine in single-digit seconds (vs ~quadratic blowup on
    # the dense greedy pipeline, and an 80 GB affinity if densified).
    topo = smp20e7()
    comm = CommunicationMatrix.stencil2d(100_000, sparse=True)

    pl = benchmark.pedantic(
        lambda: multilevel_map(topo, comm), rounds=3, iterations=1
    )
    assert sorted(pl.thread_to_pu) == list(range(100_000))
    counts = np.bincount(list(pl.thread_to_pu.values()))
    assert counts.max() <= pl.oversub_factor
    assert benchmark.stats.stats.min < 10.0
