"""Fig. 6 — video-tracking FPS on both 4-socket machine slices.

Shape criteria: every parallel variant beats sequential; ORWL (affinity)
is the fastest variant at every resolution; the ORWL affinity gain
exceeds the OpenMP affinity gain; FPS decreases with resolution.
"""

import pytest

from repro.experiments import fig6_video, format_figure


@pytest.mark.parametrize("machine", ["SMP12E5-4S", "SMP20E7-4S"])
def test_fig6_video_fps(regen, machine):
    fig = regen(fig6_video, machine)
    print()
    print(format_figure(fig))

    seq = fig.series_by_label("Sequential")
    orwl = fig.series_by_label("ORWL")
    orwl_aff = fig.series_by_label("ORWL (Affinity)")
    omp = fig.series_by_label("OpenMP")
    omp_aff = fig.series_by_label("OpenMP (Affinity)")

    for res in fig.series[0].x:
        # parallel variants beat sequential
        for s in (orwl, orwl_aff, omp, omp_aff):
            assert s.value_at(res) > seq.value_at(res), (s.label, res)
        # ORWL(affinity) is the overall winner (paper Fig. 6)
        others = (orwl, omp, omp_aff)
        assert orwl_aff.value_at(res) >= max(o.value_at(res) for o in others), res

    # FPS drops with growing resolution for every variant.
    for s in fig.series:
        assert s.value_at("HD") > s.value_at("FullHD") > s.value_at("4K"), s.label

    # The ORWL affinity gain exceeds the OpenMP affinity gain (HD).
    orwl_gain = orwl_aff.value_at("HD") / orwl.value_at("HD")
    omp_gain = omp_aff.value_at("HD") / omp.value_at("HD")
    print(f"HD affinity gains on {machine}: ORWL {orwl_gain:.2f}x, "
          f"OpenMP {omp_gain:.2f}x")
    assert orwl_gain > omp_gain
