"""Table I — the two testbed descriptions."""

from repro.experiments import format_table, table1_machines


def test_table1_machines(regen):
    rows = regen(table1_machines)
    keys = list(rows[0].keys())
    print()
    print(format_table(keys, [[r[k] for k in keys] for r in rows],
                       title="Table I: the multi-core architectures"))

    by_name = {r["Name"]: r for r in rows}
    assert by_name["SMP12E5"]["NUMA nodes"] == 12
    assert by_name["SMP12E5"]["Hyper-Threading"] == "Yes"
    assert by_name["SMP12E5"]["L3 cache"] == "20M"
    assert by_name["SMP20E7"]["NUMA nodes"] == 20
    assert by_name["SMP20E7"]["Hyper-Threading"] == "No"
    assert by_name["SMP20E7"]["L3 cache"] == "24M"
    assert "NUMAlink" in by_name["SMP12E5"]["Interconnect"]
