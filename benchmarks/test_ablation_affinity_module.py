"""Ablations of the affinity module's design choices (DESIGN.md §5).

Each ablation disables one adaptation of Algorithm 1 and measures the
LK23 benchmark; the full module must never lose to its ablated forms.
"""

from repro.apps.lk23 import Lk23Config, build_orwl_lk23
from repro.experiments import current_scale
from repro.orwl import Runtime
from repro.topology import smp12e5


def run_lk23_with_options(options, *, cores=64, seed=1):
    scale = current_scale()
    cfg = Lk23Config(
        n=scale.lk23_n, iterations=scale.lk23_iterations, n_threads=cores
    )
    rt = Runtime(smp12e5(), affinity=True, seed=seed)
    rt.affinity.options.update(options)
    build_orwl_lk23(rt, cfg)
    return rt.run()


def test_ablation_hyperthread_sibling_reservation(regen):
    """Without core-granularity mapping (compute threads bound to raw
    PUs, siblings not reserved for control), the HT machine loses most
    of its extra affinity gain."""

    def run():
        full = run_lk23_with_options({})
        ablated = run_lk23_with_options({"hyperthread_aware": False})
        return full, ablated

    full, ablated = regen(run)
    print(
        f"\nHT-aware {full.seconds:.3f}s vs PU-granularity "
        f"{ablated.seconds:.3f}s  ({ablated.seconds / full.seconds:.2f}x)"
    )
    assert full.placement.granularity == "core"
    assert ablated.placement.granularity == "pu"
    assert full.seconds <= ablated.seconds * 1.05


def test_ablation_control_thread_extension(regen):
    """Dropping line 1 of Algorithm 1 (control threads left to the OS)
    must not beat the full module, and loses the zero-migration
    property for control threads."""

    def run():
        full = run_lk23_with_options({})
        ablated = run_lk23_with_options({"use_control_threads": False})
        return full, ablated

    full, ablated = regen(run)
    print(
        f"\nwith control mapping {full.seconds:.3f}s vs without "
        f"{ablated.seconds:.3f}s"
    )
    assert full.placement.control_mode == "ht-sibling"
    assert ablated.placement.control_mode == "os"
    assert full.seconds <= ablated.seconds * 1.05
    # Unmanaged control threads wander.
    assert ablated.counters.cpu_migrations > 0
    assert full.counters.cpu_migrations == 0
