"""Table IV — video-tracking counters on SMP12E5 4-socket slice (HD).

Paper signatures: affinity significantly decreases ORWL's L3 misses and
stall cycles while the OpenMP affinity interfaces do not move theirs
much; migrations are zero when bound; ORWL context-switches exceed
OpenMP's.
"""

from repro.experiments import table4_video_counters
from repro.experiments.report import format_counter_rows


def test_table4_video_counters(regen):
    rows = regen(table4_video_counters)
    print()
    print(format_counter_rows(
        "Table IV: video tracking counters on SMP12E5-4S (30 tasks, HD)", rows))
    by = {r.variant: r for r in rows}

    # Affinity cuts ORWL's misses and stalls.
    assert by["ORWL (Affinity)"].l3_misses < by["ORWL"].l3_misses
    assert by["ORWL (Affinity)"].stalled_cycles < by["ORWL"].stalled_cycles

    # OpenMP's affinity interface does not cut its misses much (< 40%).
    assert (
        by["OpenMP (Affinity)"].l3_misses > 0.6 * by["OpenMP"].l3_misses
    )

    # Migrations: 0 when bound, > 0 native.
    assert by["ORWL (Affinity)"].cpu_migrations == 0
    assert by["OpenMP (Affinity)"].cpu_migrations == 0
    assert by["ORWL"].cpu_migrations > 0

    # ORWL context-switch volume exceeds OpenMP's (control threads).
    assert by["ORWL"].context_switches > by["OpenMP"].context_switches
