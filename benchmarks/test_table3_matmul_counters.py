"""Table III — matmul counters on SMP12E5 (64 cores).

Paper signatures: ORWL(affinity) has by far the fewest L3 misses and
stalls; MKL's binding variants do not reduce misses much; migrations are
0 for every bound variant; ORWL context-switches dwarf MKL's.
"""

from repro.experiments import table3_matmul_counters
from repro.experiments.report import format_counter_rows


def test_table3_matmul_counters(regen):
    rows = regen(table3_matmul_counters)
    print()
    print(format_counter_rows(
        "Table III: matmul counters on SMP12E5 (64 cores)", rows))
    by = {r.variant: r for r in rows}

    # ORWL(affinity) minimizes misses and stalls across the whole table.
    aff = by["ORWL (Affinity)"]
    assert aff.l3_misses == min(r.l3_misses for r in rows)
    assert aff.stalled_cycles == min(r.stalled_cycles for r in rows)
    assert aff.l3_misses < 0.7 * by["ORWL"].l3_misses

    # MKL binding barely moves its miss count (it cannot fix the data).
    for lbl in ("MKL (Affinity scatter)", "MKL (Affinity compact)"):
        assert by[lbl].l3_misses > 0.5 * by["MKL"].l3_misses

    # Migrations: zero when bound, nonzero otherwise.
    assert aff.cpu_migrations == 0
    assert by["MKL (Affinity scatter)"].cpu_migrations == 0
    assert by["MKL (Affinity compact)"].cpu_migrations == 0
    assert by["ORWL"].cpu_migrations > 0

    # ORWL context switches exceed MKL's.
    assert by["ORWL"].context_switches > by["MKL"].context_switches
