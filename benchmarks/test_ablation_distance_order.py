"""Ablation: distance-aware MapGroups ordering (maporder.py).

On a NUMAlink-style interconnect the root's children are not
equidistant; ordering the final groups by distance must never lose and
should win on workloads whose heavy traffic crosses group boundaries.
"""

import numpy as np

from repro.topology import smp20e7
from repro.treematch import CommunicationMatrix, treematch_map


def cross_block_matrix(n_blocks=10, per_block=8, w=50.0, seed=3):
    """Adjacent 8-task blocks exchange heavy traffic (a block pipeline).

    Task ids are shuffled so that the canonical (smallest-member) group
    order does not accidentally coincide with the pipeline order — the
    situation where index-order assignment goes wrong.
    """
    n = n_blocks * per_block
    perm = np.random.default_rng(seed).permutation(n)
    m = np.zeros((n, n))
    for b in range(n_blocks - 1):
        for i in range(per_block):
            src = perm[b * per_block + i]
            dst = perm[(b + 1) * per_block + i]
            m[src, dst] = w
    return CommunicationMatrix(m)


def test_ablation_distance_aware_order(regen):
    def run():
        comm = cross_block_matrix()
        smart = treematch_map(smp20e7(), comm, distance_aware=True)
        naive = treematch_map(smp20e7(), comm, distance_aware=False)
        topo = smp20e7()
        return (
            smart.slit_cost(topo, comm),
            naive.slit_cost(topo, comm),
            smart.cost(topo, comm),
            naive.cost(topo, comm),
        )

    smart_slit, naive_slit, smart_tree, naive_tree = regen(run)
    print(f"\nSLIT-weighted cost: distance-aware {smart_slit:,.0f} vs "
          f"index-order {naive_slit:,.0f} "
          f"({naive_slit / max(smart_slit, 1e-9):.2f}x)")
    print(f"tree-depth cost unchanged: {smart_tree:,.0f} vs {naive_tree:,.0f}")
    # Same tree-level quality, strictly better interconnect locality.
    assert smart_tree <= naive_tree + 1e-9
    assert smart_slit < naive_slit
