"""Fig. 5 — matmul GFLOP/s on both machines (log-log in the paper).

Shape criteria:

* all implementations scale inside one socket, MKL slightly ahead;
* beyond one socket the MKL variants stagnate or degrade regardless of
  compact/scatter binding;
* ORWL (affinity) keeps scaling to the whole machine and ends far above
  every MKL variant — the ~1 TFLOP/s (12E5) vs ~0.5 TFLOP/s (20E7)
  split of the paper shows as a clear machine-to-machine ratio;
* on the hyperthreaded machine, compact is worse than scatter at one
  socket (two compute threads per physical core).
"""

import pytest

from repro.experiments import fig5_matmul, format_figure


@pytest.mark.parametrize("machine", ["SMP12E5", "SMP20E7"])
def test_fig5_matmul_scaling(regen, machine):
    fig = regen(fig5_matmul, machine)
    print()
    print(format_figure(fig))

    max_cores = fig.series[0].x[-1]
    orwl_aff = fig.series_by_label("ORWL (Affinity)")
    mkl_best_at_max = max(
        fig.series_by_label(lbl).value_at(max_cores)
        for lbl in ("MKL", "MKL (scatter)", "MKL (compact)")
    )

    # ORWL(affinity) beats every MKL variant at full width, by > 2x.
    assert orwl_aff.value_at(max_cores) > 2 * mkl_best_at_max

    # MKL does not scale past a couple of sockets: its best full-width
    # rate is below 2x its 16-core rate.
    for lbl in ("MKL", "MKL (scatter)", "MKL (compact)"):
        s = fig.series_by_label(lbl)
        assert s.value_at(max_cores) < 2 * s.value_at(16), lbl

    # ORWL(affinity) keeps scaling: full width > 2x its 16-core rate.
    assert orwl_aff.value_at(max_cores) > 2 * orwl_aff.value_at(16)

    # Inside one socket everyone is comparable (within 3x).
    at8 = [s.value_at(8) for s in fig.series]
    assert max(at8) / min(at8) < 3.0


def test_fig5_compact_hurts_on_hyperthreads(regen):
    fig = regen(fig5_matmul, "SMP12E5", cores=[8])
    compact = fig.series_by_label("MKL (compact)").value_at(8)
    scatter = fig.series_by_label("MKL (scatter)").value_at(8)
    print(f"\n8 cores on SMP12E5: compact {compact:.1f} vs scatter {scatter:.1f} GF/s")
    assert compact < scatter


def test_fig5_machine_ratio(regen):
    """Paper: ~1 TF/s on SMP12E5 (96 cores) vs ~0.5 TF/s on SMP20E7 —
    oddly the smaller machine wins; its higher per-socket count and
    clock do not compensate the weaker NUMAlink5-era scaling. We check
    the robust part: both machines land within a factor ~3 of each
    other, with full-width ORWL(affinity) above 300 GF/s-equivalent."""
    a = regen(
        lambda: (
            fig5_matmul("SMP12E5", cores=[96]),
            fig5_matmul("SMP20E7", cores=[160]),
        )
    )
    g12 = a[0].series_by_label("ORWL (Affinity)").value_at(96)
    g20 = a[1].series_by_label("ORWL (Affinity)").value_at(160)
    print(f"\nORWL(affinity) full width: SMP12E5 {g12:.0f} GF/s, SMP20E7 {g20:.0f} GF/s")
    assert g12 > 300 and g20 > 300
    assert 1 / 3 < g12 / g20 < 3
