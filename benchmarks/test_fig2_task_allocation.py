"""Fig. 2 — task allocation of the video app on the 4-socket machine."""

from collections import Counter

from repro.experiments import fig2_allocation
from repro.topology import fig2_machine


def test_fig2_task_allocation(regen):
    text, info = regen(fig2_allocation)
    print()
    print(text)

    placement = info["placement"]
    topo = fig2_machine()

    # All 30 tasks placed on distinct cores of the 32-core machine.
    assert len(placement.thread_to_pu) == 30
    assert len(set(placement.thread_to_pu.values())) == 30

    # Control threads land on the two spare cores (22-23 in the paper;
    # exact ids depend on grouping, but they must be spare and exactly 2).
    reserved = info["reserved_pus"]
    assert len(reserved) == 2
    assert set(reserved).isdisjoint(set(placement.thread_to_pu.values()))
    assert placement.control_mode == "spare-core"

    # The heavy pipeline stages share sockets with their neighbours:
    # count how many consecutive pipeline pairs are co-socketed.
    def socket_of(tid):
        return topo.socket_of_pu(placement.thread_to_pu[tid]).logical_index

    chain = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9]
    same = sum(
        1 for a, b in zip(chain, chain[1:]) if socket_of(a) == socket_of(b)
    )
    assert same >= 5  # most of the pipeline is grouped (cf. Fig. 2)

    # gmm's 16 split tasks spread over the remaining cores but each sits
    # on exactly one PU.
    counts = Counter(placement.thread_to_pu.values())
    assert max(counts.values()) == 1
