"""Table II — LK23 hardware/software counters on SMP12E5 (64 cores).

Paper signatures: the affinity run cuts L3 misses and stalled cycles by
a substantial factor; CPU migrations drop to exactly 0 under binding;
ORWL context-switches far exceed OpenMP's (control threads), without
hurting its performance.
"""

from repro.experiments import table2_lk23_counters
from repro.experiments.report import format_counter_rows


def test_table2_lk23_counters(regen):
    rows = regen(table2_lk23_counters)
    print()
    print(format_counter_rows(
        "Table II: LK23 counters on SMP12E5 (64 cores)", rows))
    by = {r.variant: r for r in rows}

    # Affinity cuts misses and stalls for ORWL.
    assert by["ORWL (Affinity)"].l3_misses < by["ORWL"].l3_misses
    assert by["ORWL (Affinity)"].stalled_cycles < 0.7 * by["ORWL"].stalled_cycles

    # Strict binding ⇒ zero migrations (both runtimes).
    assert by["ORWL (Affinity)"].cpu_migrations == 0
    assert by["OpenMP (Affinity)"].cpu_migrations == 0
    # Native runs migrate.
    assert by["ORWL"].cpu_migrations > 0
    assert by["OpenMP"].cpu_migrations > 0

    # ORWL's decentralized control threads context-switch far more than
    # OpenMP's fork-join team...
    assert by["ORWL"].context_switches > 2 * by["OpenMP (Affinity)"].context_switches
    # ...yet ORWL (Affinity) is the fastest variant of the table.
    assert by["ORWL (Affinity)"].seconds == min(r.seconds for r in rows)
