"""Infrastructure benchmark: simulator event throughput.

Not a paper experiment — a regression guard for the substrate itself:
the discrete-event engine must sustain enough events/second that the
paper-scale regenerations stay in minutes. This is the figure to watch
when touching sim/machine internals. The ring runs on the batched core
by default (no taps installed); ``test_simcore_smoke`` pins that both
cores still run the same workload to the same answer without the
benchmark fixture, so it is cheap enough for any pytest invocation.
"""

import pytest

from repro.sim import Compute, SimMachine, Touch, Wait
from repro.topology import smp12e5
from repro.util.bitmap import Bitmap


def run_ring(core: str = "auto") -> tuple[int, float, dict]:
    machine = SimMachine(smp12e5(), core=core)
    bufs = [machine.allocate(1 << 16, f"b{i}") for i in range(32)]
    events = [machine.event(f"e{i}") for i in range(32)]

    def stage(i):
        nxt = events[(i + 1) % 32]
        for _ in range(50):
            yield Compute(1e4)
            yield Touch(bufs[i], 4096, write=True)
            nxt.signal()
            yield Wait(events[i])

    for i in range(32):
        machine.add_thread(f"s{i}", stage(i), cpuset=Bitmap.single(2 * i))
    # Prime the ring so it can spin.
    events[0].signal()
    machine.run()
    return (
        machine.engine.events_processed,
        machine.elapsed_cycles,
        machine.total_counters().snapshot(),
    )


def test_engine_event_throughput(benchmark):
    events = benchmark.pedantic(lambda: run_ring()[0], rounds=3, iterations=1)
    print(f"\nprocessed {events} engine events per run")
    assert events > 2_000


@pytest.mark.simcore
def test_simcore_smoke():
    """Both cores drain the ring to identical counters/clock/event count."""
    batched = run_ring("batched")
    obj = run_ring("object")
    assert batched == obj
    assert batched[0] > 2_000


def test_lock_handoff_throughput(benchmark):
    """ORWL lock handoffs per second — control-thread path included."""
    from repro.orwl import Runtime
    from repro.topology import smp20e7_4s

    def run():
        rt = Runtime(smp20e7_4s(), affinity=True, seed=1)
        tasks = [rt.task(f"t{i}") for i in range(16)]
        locs = [t.location("l", 4096) for t in tasks]
        iters = 40
        for i, t in enumerate(tasks):
            hw = t.write_handle(locs[i], iterative=True)
            hr = t.read_handle(locs[i - 1], iterative=True)

            def body(op, hw=hw, hr=hr):
                for _ in range(iters):
                    yield from hw.acquire()
                    hw.release()
                    yield from hr.acquire()
                    hr.release()

            t.set_body(body)
        res = rt.run()
        return res.machine.engine.events_processed

    events = benchmark.pedantic(run, rounds=3, iterations=1)
    print(f"\n{events} events for 16 tasks x 40 iterations x 2 locks")
    assert events > 2_000
