"""Integration tests for the simulated machine: time, caches, NUMA, OS."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import Compute, SimMachine, Touch, Wait, YieldCPU
from repro.sim.params import CostModel
from repro.topology import TopologySpec, build_topology, fig2_machine, smp12e5, smp20e7
from repro.util.bitmap import Bitmap


def small_machine(**kw):
    return SimMachine(fig2_machine(), **kw)


class TestBasics:
    def test_compute_takes_expected_time(self):
        m = small_machine()
        m.add_thread("t", iter([Compute(2.6e9)]), cpuset=Bitmap.single(0))
        secs = m.run()
        # 2.6e9 flops * 0.5 cyc/flop at 2.6 GHz = 0.5 s (+ tiny overheads)
        assert secs == pytest.approx(0.5, rel=0.01)

    def test_parallel_threads_overlap(self):
        m = small_machine()
        for i in range(4):
            m.add_thread(f"t{i}", iter([Compute(2.6e9)]), cpuset=Bitmap.single(i))
        secs = m.run()
        assert secs == pytest.approx(0.5, rel=0.01)  # all in parallel

    def test_two_threads_one_pu_serialize(self):
        m = small_machine()
        for i in range(2):
            m.add_thread(f"t{i}", iter([Compute(2.6e9)]), cpuset=Bitmap.single(0))
        secs = m.run()
        assert secs == pytest.approx(1.0, rel=0.02)

    def test_efficiency_scales_compute(self):
        m = small_machine()
        m.add_thread("t", iter([Compute(2.6e9, efficiency=2.0)]),
                     cpuset=Bitmap.single(0))
        assert m.run() == pytest.approx(0.25, rel=0.01)

    def test_run_only_once(self):
        m = small_machine()
        m.add_thread("t", iter([Compute(1.0)]), cpuset=Bitmap.single(0))
        m.run()
        with pytest.raises(SimulationError):
            m.run()

    def test_flops_counted(self):
        m = small_machine()
        m.add_thread("t", iter([Compute(123.0)]), cpuset=Bitmap.single(0))
        m.run()
        assert m.total_counters().flops == pytest.approx(123.0)


class TestHyperthreadContention:
    def test_sibling_compute_slows_down(self):
        topo = smp12e5()
        # Two compute threads on sibling PUs 0 and 1 (same core).
        m = SimMachine(topo)
        m.add_thread("a", iter([Compute(2.6e9)]), cpuset=Bitmap.single(0))
        m.add_thread("b", iter([Compute(2.6e9)]), cpuset=Bitmap.single(1))
        contended = m.run()

        m2 = SimMachine(topo)
        m2.add_thread("a", iter([Compute(2.6e9)]), cpuset=Bitmap.single(0))
        m2.add_thread("b", iter([Compute(2.6e9)]), cpuset=Bitmap.single(2))
        separate = m2.run()
        assert contended > separate * 1.5

    def test_control_sibling_does_not_slow_compute(self):
        topo = smp12e5()
        m = SimMachine(topo)
        m.add_thread("a", iter([Compute(2.6e9)]), cpuset=Bitmap.single(0))
        m.add_thread(
            "ctl", iter([Compute(2.6e9)]), kind="control", cpuset=Bitmap.single(1)
        )
        secs = m.run()
        assert secs == pytest.approx(0.5, rel=0.02)


class TestCacheAndNuma:
    def test_repeat_touch_hits_cache(self):
        m = small_machine()
        buf = m.allocate(1 << 20, "b")

        def gen():
            yield Touch(buf)
            yield Touch(buf)

        m.add_thread("t", gen(), cpuset=Bitmap.single(0))
        m.run()
        c = m.total_counters()
        assert c.l3_misses == pytest.approx((1 << 20) / 64)
        assert c.l3_hits == pytest.approx((1 << 20) / 64)

    def test_buffer_larger_than_l3_always_misses(self):
        m = small_machine()
        big = m.allocate(64 << 20, "big")  # 64 MB > 20 MB L3

        def gen():
            yield Touch(big)
            yield Touch(big)

        m.add_thread("t", gen(), cpuset=Bitmap.single(0))
        m.run()
        c = m.total_counters()
        assert c.l3_hits == 0.0

    def test_first_touch_homes_buffer(self):
        m = small_machine()
        buf = m.allocate(4096, "b")

        def gen():
            yield Touch(buf)

        m.add_thread("t", gen(), cpuset=Bitmap.single(17))  # NUMA node 2
        m.run()
        assert buf.home_numa == m.memory.numa_of_pu(17)

    def test_remote_access_slower_and_counted(self):
        def run(reader_pu):
            m = small_machine()
            buf = m.allocate(8 << 20, "b", home_numa=0)

            def gen():
                yield Touch(buf)

            m.add_thread("t", gen(), cpuset=Bitmap.single(reader_pu))
            secs = m.run()
            return secs, m.total_counters()

        t_local, c_local = run(0)
        t_remote, c_remote = run(31)
        assert t_remote > t_local * 1.5
        assert c_remote.remote_bytes > 0
        assert c_local.remote_bytes == 0

    def test_shared_l3_producer_consumer(self):
        topo = fig2_machine()

        def run(consumer_pu):
            m = SimMachine(topo)
            buf = m.allocate(1 << 20, "b", home_numa=0)
            ready = m.event("ready")

            def prod():
                yield Touch(buf, write=True)
                ready.signal()

            def cons():
                yield Wait(ready)
                yield Touch(buf)

            m.add_thread("p", prod(), cpuset=Bitmap.single(0))
            m.add_thread("c", cons(), cpuset=Bitmap.single(consumer_pu))
            m.run()
            return m.total_counters()

        same_l3 = run(1)
        cross_l3 = run(8)
        assert same_l3.l3_misses < cross_l3.l3_misses

    def test_write_invalidates_other_l3(self):
        topo = fig2_machine()
        m = SimMachine(topo)
        buf = m.allocate(1 << 20, "b", home_numa=0)
        e1, e2 = m.event("e1"), m.event("e2")

        def reader():
            yield Touch(buf)  # warm far L3
            e1.signal()
            yield Wait(e2)
            yield Touch(buf)  # must miss again after remote write

        def writer():
            yield Wait(e1)
            yield Touch(buf, write=True)
            e2.signal()

        m.add_thread("r", reader(), cpuset=Bitmap.single(8))
        m.add_thread("w", writer(), cpuset=Bitmap.single(0))
        m.run()
        reader_counters = m.threads[0].counters
        # Both reader touches miss: cold, then invalidated.
        assert reader_counters.l3_misses == pytest.approx(2 * (1 << 20) / 64)

    def test_bad_alloc_rejected(self):
        m = small_machine()
        with pytest.raises(SimulationError):
            m.allocate(0)
        with pytest.raises(SimulationError):
            m.allocate(10, home_numa=99)


class TestSchedulerBehaviour:
    def test_bound_threads_never_migrate(self):
        m = SimMachine(smp20e7())
        for i in range(4):
            gen = iter([Compute(5e9)])
            m.add_thread(f"t{i}", gen, cpuset=Bitmap.single(i * 8))
        m.run()
        assert m.total_counters().cpu_migrations == 0

    def test_unbound_threads_migrate_eventually(self):
        m = SimMachine(smp20e7(), seed=2)
        for i in range(4):
            m.add_thread(f"t{i}", iter([Compute(2e10)]))
        m.run()
        assert m.total_counters().cpu_migrations > 0

    def test_spread_policy_uses_many_nodes(self):
        m = SimMachine(smp20e7(), os_policy="spread",
                       model=CostModel(migrate_prob=0.0))
        threads = [m.add_thread(f"t{i}", iter([Compute(1e8)])) for i in range(8)]
        m.run()
        nodes = {m.memory.numa_of_pu(t.last_pu) for t in threads}
        assert len(nodes) == 8

    def test_consolidate_policy_packs(self):
        m = SimMachine(smp12e5(), os_policy="consolidate",
                       model=CostModel(migrate_prob=0.0))
        threads = [m.add_thread(f"t{i}", iter([Compute(1e8)])) for i in range(8)]
        m.run()
        nodes = {m.memory.numa_of_pu(t.last_pu) for t in threads}
        assert len(nodes) == 1

    def test_unknown_policy_rejected(self):
        with pytest.raises(SimulationError):
            SimMachine(fig2_machine(), os_policy="weird")

    def test_more_threads_than_pus_timeshare(self):
        spec = TopologySpec(name="one", cores_per_socket=1)
        topo = build_topology(spec)
        m = SimMachine(topo)
        for i in range(3):
            m.add_thread(f"t{i}", iter([Compute(2.6e9)]))
        secs = m.run()
        assert secs == pytest.approx(3 * 0.5, rel=0.05)
        assert m.total_counters().context_switches >= 3


class TestBlockingAndDeadlock:
    def test_wait_signal_roundtrip(self):
        m = small_machine(trace=True)
        ev = m.event("go")
        order = []

        def waiter():
            yield Wait(ev)
            order.append("woke")
            yield Compute(1.0)

        def signaler():
            yield Compute(1e6)
            order.append("signal")
            ev.signal()

        m.add_thread("w", waiter(), cpuset=Bitmap.single(0))
        m.add_thread("s", signaler(), cpuset=Bitmap.single(1))
        m.run()
        assert order == ["signal", "woke"]

    def test_pre_signalled_event_does_not_block(self):
        m = small_machine()
        ev = m.event("go", count=1)

        def gen():
            yield Wait(ev)
            yield Compute(1.0)

        m.add_thread("t", gen(), cpuset=Bitmap.single(0))
        m.run()  # must not deadlock

    def test_deadlock_detected(self):
        m = small_machine()
        ev = m.event("never")

        def gen():
            yield Wait(ev)

        m.add_thread("t", gen(), cpuset=Bitmap.single(0))
        with pytest.raises(DeadlockError):
            m.run()

    def test_yieldcpu_rotates(self):
        m = small_machine()
        log = []

        def gen(tag):
            for _ in range(3):
                log.append(tag)
                yield Compute(1e6)
                yield YieldCPU()

        m.add_thread("a", gen("a"), cpuset=Bitmap.single(0))
        m.add_thread("b", gen("b"), cpuset=Bitmap.single(0))
        m.run()
        assert log == ["a", "b", "a", "b", "a", "b"]

    def test_crash_in_thread_propagates(self):
        m = small_machine()

        def gen():
            yield Compute(1.0)
            raise RuntimeError("app bug")

        m.add_thread("t", gen(), cpuset=Bitmap.single(0))
        with pytest.raises(RuntimeError, match="app bug"):
            m.run()

    def test_unknown_op_rejected(self):
        m = small_machine()
        m.add_thread("t", iter(["junk"]), cpuset=Bitmap.single(0))
        with pytest.raises(SimulationError):
            m.run()


class TestCountersAndTrace:
    def test_counters_aggregate_by_kind(self):
        m = small_machine()
        m.add_thread("c", iter([Compute(100.0)]), cpuset=Bitmap.single(0))
        m.add_thread(
            "ctl", iter([Compute(50.0)]), kind="control", cpuset=Bitmap.single(1)
        )
        m.run()
        assert m.counters_by_kind("compute").flops == pytest.approx(100.0)
        assert m.counters_by_kind("control").flops == pytest.approx(50.0)

    def test_trace_records_lifecycle(self):
        m = small_machine(trace=True)
        m.add_thread("t", iter([Compute(1e6)]), cpuset=Bitmap.single(0))
        m.run()
        tags = [r.tag for r in m.trace.for_thread(0)]
        assert tags[0] == "ready"
        assert "run" in tags
        assert tags[-1] == "done"

    def test_invalid_kind_rejected(self):
        m = small_machine()
        with pytest.raises(SimulationError):
            m.add_thread("t", iter([]), kind="demon")
