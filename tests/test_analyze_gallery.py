"""The bad-program gallery: each analyzer flags exactly its bug.

Companion check: the three paper applications come back clean (see
test_analyze_apps.py). Together these pin down both the detection power
and the false-positive behaviour of repro.analyze.
"""

import pytest

from tests.badprograms import cyclic, double_bind, oversub, race, writerless
from repro.analyze import analyze
from repro.analyze.placement import check_placement


def codes(report, severity=None):
    return {
        f.code
        for f in report.findings
        if severity is None or f.severity == severity
    }


class TestCyclicWait:
    def test_static_detects_cycle(self):
        a = analyze(cyclic.build, name="cyclic")
        assert "deadlock-cycle" in codes(a.static, "error")
        assert a.exit_code() == 3

    def test_witness_names_both_operations(self):
        a = analyze(cyclic.build, name="cyclic")
        msg = next(
            f.message for f in a.static.findings if f.code == "deadlock-cycle"
        )
        assert "A" in msg and "B" in msg

    def test_dynamic_confirms(self):
        a = analyze(cyclic.build, name="cyclic", dynamic=True)
        assert "deadlock-confirmed" in codes(a.dynamic)

    def test_no_race_reported(self):
        a = analyze(cyclic.build, name="cyclic")
        assert "data-race" not in codes(a.static)


class TestDoubleBind:
    def test_static_detects_self_deadlock(self):
        a = analyze(double_bind.build, name="double-bind")
        assert "deadlock-cycle" in codes(a.static, "error")

    def test_dynamic_confirms(self):
        a = analyze(double_bind.build, name="double-bind", dynamic=True)
        assert "deadlock-confirmed" in codes(a.dynamic)


class TestWriterless:
    def test_lint_flags_writerless_location(self):
        a = analyze(writerless.build, name="writerless")
        assert "writerless-location" in codes(a.static, "warning")

    def test_no_deadlock_or_race(self):
        a = analyze(writerless.build, name="writerless")
        assert "deadlock-cycle" not in codes(a.static)
        assert "data-race" not in codes(a.static)


class TestRace:
    def test_static_detects_write_write_race(self):
        a = analyze(race.build, name="race")
        assert "data-race" in codes(a.static, "error")
        finding = next(
            f for f in a.static.findings if f.code == "data-race"
        )
        assert "write/write" in finding.message
        assert finding.subject == "shared"

    def test_dynamic_confirms(self):
        a = analyze(race.build, name="race", dynamic=True)
        assert "race-confirmed" in codes(a.dynamic)

    def test_no_deadlock_reported(self):
        a = analyze(race.build, name="race")
        assert "deadlock-cycle" not in codes(a.static)


class TestOversubscribedPlacement:
    @pytest.fixture()
    def findings(self):
        topology, placement = oversub.build()
        return check_placement(
            topology, placement, n_threads=oversub.N_THREADS, n_control=0
        )

    def test_expected_codes(self, findings):
        got = {f.code for f in findings}
        assert got == {
            "oversubscribed-core",
            "pu-out-of-range",
            "unbound-thread",
        }

    def test_all_errors(self, findings):
        assert all(f.severity == "error" for f in findings)
