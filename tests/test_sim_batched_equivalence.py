"""Golden-trace equivalence: object vs batched vs SoA cores, bit for bit.

The batched core (:meth:`SimMachine._run_batched`) and the SoA core
(:func:`repro.sim.soa.run_soa`) are from-scratch rewrites of the
simulator hot path; their contract is that a fixed-seed run is
*bit-identical* to the object path — same counter floats, same final
clock, same number of events processed, same per-kind split. These tests
pin that contract three ways on the three paper applications plus
targeted machine micro-scenarios (quantum batching, unbound-thread rng
parity, oversubscribed preemption, event budgets). Any drift — a
reordered float add, a different (when, seq) event order, an extra rng
draw — shows up here as an exact-compare failure, not a tolerance miss.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.simcore

from repro.apps.lk23 import Lk23Config, run_openmp_lk23, run_orwl_lk23
from repro.apps.matmul import MatmulConfig, run_orwl_matmul
from repro.apps.video.pipeline import VideoConfig, run_orwl_video
from repro.errors import SimulationError
from repro.sim import Compute, SimMachine, Touch, Wait
from repro.sim.machine import SimLimits
from repro.topology import smp12e5, smp20e7
from repro.util.bitmap import Bitmap


def machine_fingerprint(machine: SimMachine) -> dict:
    """Everything the equivalence contract covers, exact floats included."""
    return {
        "counters": machine.total_counters().snapshot(),
        "compute": machine.counters_by_kind("compute").snapshot(),
        "control": machine.counters_by_kind("control").snapshot(),
        "elapsed_cycles": machine.elapsed_cycles,
        "events_processed": machine.engine.events_processed,
        "thread_states": [t.state for t in machine.threads],
    }


def assert_identical(fp_object: dict, *fp_others: dict) -> None:
    # Compare field by field for a readable diff on failure.
    for fp in fp_others:
        for key in fp_object:
            assert fp[key] == fp_object[key], key


# -- the three paper applications ------------------------------------------------


class TestAppGoldenTraces:
    @pytest.mark.parametrize("affinity", [False, True])
    def test_orwl_lk23(self, affinity):
        cfg = Lk23Config(n=24, iterations=3, n_threads=16)
        runs = [
            run_orwl_lk23(smp12e5(), cfg, affinity=affinity, seed=11,
                          core=core)
            for core in ("object", "batched", "soa")
        ]
        assert_identical(*[machine_fingerprint(r.machine) for r in runs])

    @pytest.mark.parametrize("binding", [None, "close"])
    def test_openmp_lk23(self, binding):
        cfg = Lk23Config(n=24, iterations=3, n_threads=12)
        runs = [
            run_openmp_lk23(smp12e5(), cfg, binding=binding, seed=7,
                            core=core)
            for core in ("object", "batched", "soa")
        ]
        assert_identical(*[machine_fingerprint(r.machine) for r in runs])

    @pytest.mark.parametrize("affinity", [False, True])
    def test_orwl_matmul(self, affinity):
        cfg = MatmulConfig(n=48, n_tasks=8)
        runs = [
            run_orwl_matmul(smp20e7(), cfg, affinity=affinity, seed=3,
                            core=core)
            for core in ("object", "batched", "soa")
        ]
        assert_identical(*[machine_fingerprint(r.machine) for r in runs])

    @pytest.mark.parametrize("affinity", [False, True])
    def test_orwl_video(self, affinity):
        cfg = VideoConfig(resolution="HD", frames=2)
        runs = [
            run_orwl_video(smp12e5(), cfg, affinity=affinity, seed=5,
                           core=core)[0]
            for core in ("object", "batched", "soa")
        ]
        assert_identical(*[machine_fingerprint(r.machine) for r in runs])


# -- machine-level micro-scenarios ----------------------------------------------


def ring_machine(core: str, *, bound: bool, topo=smp12e5, seed: int = 0):
    machine = SimMachine(topo(), seed=seed, core=core)
    stages = 24
    bufs = [machine.allocate(1 << 16, f"b{i}") for i in range(stages)]
    events = [machine.event(f"e{i}") for i in range(stages)]

    def stage(i):
        nxt = events[(i + 1) % stages]
        for _ in range(20):
            yield Compute(1e4)
            yield Touch(bufs[i], 4096, write=True)
            nxt.signal()
            yield Wait(events[i])

    for i in range(stages):
        cpuset = Bitmap.single(2 * i) if bound else None
        machine.add_thread(f"s{i}", stage(i), cpuset=cpuset)
    events[0].signal()
    return machine


def serial_chain_machine(core: str, *, shape: str = "ring",
                         bound: bool = True, seed: int = 0, limits=None):
    """A genuinely serial dependency chain: every stage waits FIRST.

    ``ring`` passes one token around 8 stages (exactly one runnable
    thread at any instant); ``line`` has stage 0 produce tokens down a
    relay; ``stages`` adds writes to buffers shared by adjacent relay
    stages so chain hand-offs interleave with cache traffic.
    """
    machine = SimMachine(smp12e5(), seed=seed, core=core, limits=limits)
    n = 8
    loops = 30
    events = [machine.event(f"e{i}") for i in range(n)]
    bufs = [machine.allocate(1 << 15, f"b{i}") for i in range(n + 1)]

    def ring_stage(i):
        nxt = events[(i + 1) % n]
        for _ in range(loops):
            yield Wait(events[i])
            yield Compute(1e4)
            nxt.signal()

    def head():
        for _ in range(loops):
            yield Compute(1e4)
            yield Touch(bufs[0], 2048, write=True)
            events[1].signal()

    def relay(i):
        for _ in range(loops):
            yield Wait(events[i])
            if shape == "stages":
                yield Touch(bufs[i], 2048, write=False)
            yield Compute(1e4)
            yield Touch(bufs[i + 1], 2048, write=True)
            if i < n - 1:
                events[i + 1].signal()

    for i in range(n):
        gen = ring_stage(i) if shape == "ring" else (
            head() if i == 0 else relay(i)
        )
        cpuset = Bitmap.single(2 * i) if bound else None
        machine.add_thread(f"c{i}", gen, cpuset=cpuset)
    if shape == "ring":
        events[0].signal()
    return machine


class TestMachineGoldenTraces:
    @pytest.mark.parametrize("bound", [True, False])
    def test_ring(self, bound):
        machines = []
        for core in ("object", "batched", "soa"):
            m = ring_machine(core, bound=bound)
            m.run()
            machines.append(m)
        assert_identical(*[machine_fingerprint(m) for m in machines])

    @pytest.mark.parametrize("bound", [True, False])
    @pytest.mark.parametrize("shape", ["ring", "line", "stages"])
    def test_serial_chain(self, shape, bound):
        """Chain-heavy programs: the serial-dependency shapes the chain
        chase targets (unlike the classic ring above, whose stages all
        compute before their first Wait and stay 24-wide). The SoA core
        runs each shape three more ways — chase disabled, and with the
        run-ahead kernel forced on (its interpreted twin when numba is
        absent) — and every fingerprint must match the object core."""
        fps = []
        for core, limits in (
            ("object", None),
            ("batched", None),
            ("soa", None),
            ("soa", SimLimits(chase=False)),
            ("soa", SimLimits(jit="on")),
        ):
            m = serial_chain_machine(core, shape=shape, bound=bound,
                                     limits=limits)
            m.run()
            fps.append(machine_fingerprint(m))
        assert_identical(*fps)

    def test_unbound_rng_parity_on_spread_policy(self):
        # smp20e7 defaults to the "spread" policy and unbound threads draw
        # from the rng (os jitter, wakeup migration) — exercises that both
        # cores consume the stream in the same order.
        machines = []
        for core in ("object", "batched", "soa"):
            m = ring_machine(core, bound=False, topo=smp20e7, seed=17)
            m.run()
            machines.append(m)
        assert_identical(*[machine_fingerprint(m) for m in machines])

    def test_quantum_batch_path(self):
        # Many bound threads with multi-quantum computes: same-instant
        # busy-completion buckets larger than batch_min, driving the
        # vectorized dispatch. Lower batch_min to make the test cheap.
        def build(core):
            m = SimMachine(smp12e5(), seed=0, core=core,
                           limits=SimLimits(batch_min=8))
            evs = [m.event(f"e{i}") for i in range(64)]

            def worker(i):
                for _ in range(10):
                    yield Compute(5e6)
                    evs[i].signal()
                    if i:
                        yield Wait(evs[i - 1])

            for i in range(64):
                m.add_thread(f"c{i}", worker(i), cpuset=Bitmap.single(i))
            m.run()
            return m

        assert_identical(
            machine_fingerprint(build("object")),
            machine_fingerprint(build("batched")),
            machine_fingerprint(build("soa")),
        )

    def test_oversubscribed_preemption_parity(self):
        # More runnable threads than PUs in their cpuset: quantum expiry
        # preempts mid-Compute, so threads re-enter via start_on and the
        # EV_STEP event fires with pending busy work — a path the
        # uncontended rings above never reach.
        def build(core):
            m = SimMachine(smp12e5(), seed=0, core=core)
            pus = Bitmap.range(0, 4)

            def worker(i):
                for _ in range(2):
                    # 5e7 cycles: spans multiple 2e7-cycle quanta, so the
                    # boundary preempts with busy work still pending.
                    yield Compute(1e8)

            for i in range(12):
                m.add_thread(f"w{i}", worker(i), cpuset=pus)
            m.run()
            return m

        assert_identical(
            machine_fingerprint(build("object")),
            machine_fingerprint(build("batched")),
            machine_fingerprint(build("soa")),
        )

    def test_event_budget_parity(self):
        # Both cores must stop at exactly the same processed-event count
        # and leave the same partial clock behind.
        results = []
        for core in ("object", "batched", "soa"):
            m = ring_machine(core, bound=True)
            with pytest.raises(SimulationError, match="event budget"):
                m.run(max_events=500)
            results.append(
                (m.engine.events_processed, m.elapsed_cycles,
                 m.total_counters().snapshot())
            )
        assert results[0] == results[1] == results[2]

    def test_max_cycles_parity(self):
        results = []
        for core in ("object", "batched", "soa"):
            m = ring_machine(core, bound=True)
            m.run(max_cycles=2e5, allow_incomplete=True)
            results.append(
                (m.engine.events_processed, m.elapsed_cycles,
                 m.total_counters().snapshot())
            )
        assert results[0] == results[1] == results[2]


# -- core selection rules --------------------------------------------------------


class TestCoreSelection:
    def test_unknown_core_rejected(self):
        with pytest.raises(SimulationError, match="unknown core"):
            SimMachine(smp12e5(), core="vectorized")

    @pytest.mark.parametrize("core", ["batched", "soa"])
    def test_flat_cores_refuse_watchers(self, core):
        # Only engine.watchers (a per-event callback with no flat-core
        # equivalent) still forces the object path; the error names it.
        m = ring_machine(core, bound=True)
        m.engine.watchers.append(lambda now: None)
        with pytest.raises(SimulationError, match="engine.watchers"):
            m.run()

    def test_auto_falls_back_to_object_path_with_watchers(self):
        m = ring_machine("auto", bound=True)
        seen = []
        m.engine.watchers.append(lambda now: seen.append(now))
        m.run()
        assert seen  # the watcher actually fired — object path ran
        assert m.core_used == "object"

    def test_monitors_and_trace_run_natively_on_batched(self):
        class Monitor:
            touches = blocks = finishes = 0

            def on_touch(self, thread, buffer, nbytes, write):
                self.touches += 1

            def on_block(self, thread, event):
                self.blocks += 1

            def on_finish(self, thread):
                self.finishes += 1

        records = {}
        monitors = {}
        placements = {}
        for core in ("object", "batched", "soa"):
            from repro.sim.trace import Trace

            m = ring_machine(core, bound=True)
            m.trace = Trace()
            mon = Monitor()
            m.monitors.append(mon)
            placed = []
            m.scheduler.on_place.append(
                lambda pu, thread, acc=placed: acc.append((pu, thread.tid))
            )
            m.run()
            assert m.core_used == core
            records[core] = [
                (r.time, r.tid, r.tag, r.detail) for r in m.trace.records
            ]
            monitors[core] = (mon.touches, mon.blocks, mon.finishes)
            placements[core] = placed
        for core in ("batched", "soa"):
            assert records[core] == records["object"], core
            assert monitors[core] == monitors["object"], core
            assert placements[core] == placements["object"], core
        assert records["batched"]  # the taps actually observed something
        assert monitors["batched"][0] > 0

    def test_run_is_single_shot(self):
        m = ring_machine("auto", bound=True)
        m.run()
        with pytest.raises(SimulationError, match="only be called once"):
            m.run()
