"""Hot-loop purity lint: the tree is clean and each rule catches its bug."""

import textwrap

from repro.analyze.hotlint import lint_source, run_hotlint


def lint(source, **kwargs):
    return lint_source(textwrap.dedent(source), **kwargs)


def codes(findings):
    return [f.code for f in findings]


class TestTreeIsClean:
    def test_hot_targets_lint_clean(self):
        report = run_hotlint()
        assert [f for f in report.findings if f.severity == "error"] == []

    def test_all_configured_targets_found(self):
        # A rename in the simulator must update the lint config too.
        report = run_hotlint()
        assert "hot-target-missing" not in {f.code for f in report.findings}
        assert "hot-missing-slots" not in {f.code for f in report.findings}


class TestAllocRule:
    def test_dict_display_in_while_flagged(self):
        findings = lint("""
            def drain(q):
                while q:
                    state = {"head": q[0]}
                    q.pop()
        """)
        assert codes(findings) == ["hot-loop-alloc"]
        assert findings[0].line == 4

    def test_comprehension_flagged(self):
        findings = lint("""
            def drain(q):
                while q:
                    live = [t for t in q if t.ready]
                    q.pop()
        """)
        assert codes(findings) == ["hot-loop-alloc"]

    def test_builtin_ctor_flagged(self):
        findings = lint("""
            def drain(q):
                while q:
                    order = sorted(q)
                    q.pop()
        """)
        assert codes(findings) == ["hot-loop-alloc"]

    def test_list_display_allowed(self):
        # Fixed-size list displays compile to BUILD_LIST — cheap, common.
        findings = lint("""
            def drain(q):
                while q:
                    pair = [q[0], q[-1]]
                    q.pop()
        """)
        assert findings == []

    def test_raise_path_exempt(self):
        findings = lint("""
            def drain(q):
                while q:
                    if q[0] is None:
                        raise ValueError(f"bad head in {sorted(q)}")
                    q.pop()
        """)
        assert findings == []

    def test_outside_while_allowed(self):
        findings = lint("""
            def drain(q):
                seen = {q[0]: True}
                while q:
                    q.pop()
        """)
        assert findings == []

    def test_suppression_comment(self):
        findings = lint("""
            def drain(q):
                while q:
                    order = sorted(q)  # hotlint: ok(alloc)
                    q.pop()
        """)
        assert findings == []

    def test_nested_def_in_while_flagged_once(self):
        findings = lint("""
            def drain(q):
                while q:
                    fn = lambda: 1
                    q.pop()
        """)
        assert codes(findings) == ["hot-loop-alloc"]


class TestTapRule:
    def test_unguarded_tap_flagged(self):
        findings = lint("""
            def run(self):
                while self.pending:
                    self.step()
                    notify_monitors(self)
        """, rules=("tap",))
        assert codes(findings) == ["hot-tap-unguarded"]

    def test_guarded_tap_allowed(self):
        findings = lint("""
            def run(self):
                while self.pending:
                    self.step()
                    if self.monitors:
                        notify_monitors(self)
        """, rules=("tap",))
        assert findings == []


class TestSelfAttrRule:
    def test_self_attr_in_while_body_flagged(self):
        findings = lint("""
            def run(self):
                while True:
                    x = self.pending
        """, rules=("self-attr",))
        assert codes(findings) == ["hot-self-attr"]

    def test_while_condition_itself_allowed(self):
        # The loop must re-check its own condition; only body traffic
        # is expected to be hoisted.
        findings = lint("""
            def run(self):
                while self.pending:
                    pass
        """, rules=("self-attr",))
        assert findings == []

    def test_hoisted_local_allowed(self):
        findings = lint("""
            def run(self):
                pending = self.pending
                while pending:
                    pending.pop()
        """, rules=("self-attr",))
        assert findings == []


class TestSlotsRule:
    def test_missing_slots_flagged(self):
        findings = lint("""
            class Event:
                def __init__(self):
                    self.when = 0.0
        """, rules=(), slots_classes=("Event",))
        assert codes(findings) == ["hot-missing-slots"]

    def test_present_slots_clean(self):
        findings = lint("""
            class Event:
                __slots__ = ("when",)

                def __init__(self):
                    self.when = 0.0
        """, rules=(), slots_classes=("Event",))
        assert findings == []


class TestTargetResolution:
    def test_missing_qualname_warns(self):
        findings = lint("def f():\n    pass\n", qualname="Engine.run")
        assert codes(findings) == ["hot-target-missing"]
        assert findings[0].severity == "warning"

    def test_qualname_scopes_the_scan(self):
        src = """
            class Engine:
                def run(self):
                    while self.q:
                        x = sorted(self.q)

            def cold():
                while True:
                    y = sorted([])
        """
        findings = lint(src, qualname="Engine.run", rules=("alloc",))
        assert len(findings) == 1
        assert "Engine.run" in findings[0].message or findings[0].line == 5
