"""Unit tests for ORWL locations, FIFOs, handles and sections."""

import pytest

from repro.errors import HandleStateError, ORWLError, ScheduleError
from repro.orwl import Runtime, section
from repro.orwl.location import Location, LocationFIFO, Request
from repro.sim.process import Compute, SimEvent
from repro.topology import fig2_machine


class _FakeHandle:
    """Minimal stand-in so FIFO mechanics can be tested in isolation."""

    def __init__(self, name="h"):
        self.op = type("Op", (), {"name": name})()


def make_request(mode, name="h"):
    return Request(_FakeHandle(name), mode, SimEvent(name))


class TestLocationFIFO:
    def test_writer_is_exclusive(self):
        fifo = LocationFIFO("l")
        w1, w2 = make_request("w"), make_request("w")
        fifo.insert(w1)
        fifo.insert(w2)
        activated = fifo.advance()
        assert activated == [w1]
        assert w1.active and not w2.active
        assert w1.event.count == 1

    def test_adjacent_readers_coalesce(self):
        fifo = LocationFIFO("l")
        rs = [make_request("r", f"r{i}") for i in range(3)]
        w = make_request("w")
        for r in rs:
            fifo.insert(r)
        fifo.insert(w)
        activated = fifo.advance()
        assert activated == rs
        assert all(r.active for r in rs)
        assert not w.active

    def test_reader_group_blocks_writer_until_all_release(self):
        fifo = LocationFIFO("l")
        r1, r2, w = make_request("r"), make_request("r"), make_request("w")
        for req in (r1, r2, w):
            fifo.insert(req)
        fifo.advance()
        fifo.release(r1)
        assert fifo.advance() == []  # r2 still active
        fifo.release(r2)
        assert fifo.advance() == [w]

    def test_release_requires_active(self):
        fifo = LocationFIFO("l")
        r = make_request("r")
        fifo.insert(r)
        with pytest.raises(HandleStateError):
            fifo.release(r)

    def test_advance_noop_when_active(self):
        fifo = LocationFIFO("l")
        w1, w2 = make_request("w"), make_request("w")
        fifo.insert(w1)
        fifo.insert(w2)
        fifo.advance()
        assert fifo.advance() == []

    def test_writer_then_readers_alternation(self):
        fifo = LocationFIFO("l")
        w = make_request("w")
        r = make_request("r")
        fifo.insert(w)
        fifo.insert(r)
        assert fifo.advance() == [w]
        fifo.release(w)
        # handle2 semantics: next-iteration write inserted before advance
        w2 = make_request("w")
        fifo.insert(w2)
        assert fifo.advance() == [r]
        fifo.release(r)
        assert fifo.advance() == [w2]


class TestLocation:
    def test_scale_sets_size_once(self):
        loc = Location(0, "l", owner=None)
        loc.scale(1024)
        assert loc.size == 1024
        with pytest.raises(ORWLError):
            loc.scale(0)

    def test_scale_after_materialize_rejected(self):
        loc = Location(0, "l", owner=None, size=8)
        loc.buffer = object()
        with pytest.raises(ORWLError):
            loc.scale(16)


class TestRuntimeDeclaration:
    def test_task_and_location_creation(self):
        rt = Runtime(fig2_machine(), affinity=False)
        t = rt.task("a")
        loc = t.location("out", 64)
        assert loc.size == 64
        assert loc.owner is t.main_op
        assert rt.locations == [loc]

    def test_duplicate_body_rejected(self):
        rt = Runtime(fig2_machine(), affinity=False)
        t = rt.task("a")
        t.set_body(lambda op: None)
        with pytest.raises(ORWLError):
            t.set_body(lambda op: None)

    def test_schedule_requires_bodies(self):
        rt = Runtime(fig2_machine(), affinity=False)
        t = rt.task("a")
        t.location("out", 64)  # creates main op without body
        with pytest.raises(ScheduleError):
            rt.schedule()

    def test_schedule_requires_sizes(self):
        rt = Runtime(fig2_machine(), affinity=False)
        t = rt.task("a")
        loc = t.main_op.location("out")  # unscaled
        t.set_body(lambda op: None)
        assert loc.size == 0
        with pytest.raises(ScheduleError):
            rt.schedule()

    def test_no_declarations_after_schedule(self):
        rt = Runtime(fig2_machine(), affinity=False)
        t = rt.task("a")
        loc = t.location("out", 8)
        t.write_handle(loc)
        t.set_body(lambda op: None)
        rt.schedule()
        with pytest.raises(ScheduleError):
            rt.task("b")
        with pytest.raises(ScheduleError):
            t.read_handle(loc)

    def test_schedule_twice_rejected(self):
        rt = Runtime(fig2_machine(), affinity=False)
        t = rt.task("a")
        t.set_body(lambda op: None)
        rt.schedule()
        with pytest.raises(ScheduleError):
            rt.schedule()

    def test_empty_program_rejected(self):
        rt = Runtime(fig2_machine(), affinity=False)
        with pytest.raises(ScheduleError):
            rt.schedule()


class TestHandleProtocol:
    def test_acquire_before_schedule_fails(self):
        rt = Runtime(fig2_machine(), affinity=False)
        t = rt.task("a")
        loc = t.location("out", 8)
        h = t.write_handle(loc)
        gen = h.acquire()
        with pytest.raises(HandleStateError):
            next(gen)

    def test_release_without_acquire_fails(self):
        rt = Runtime(fig2_machine(), affinity=False)
        t = rt.task("a")
        loc = t.location("out", 8)
        h = t.write_handle(loc)
        with pytest.raises(HandleStateError):
            h.release()

    def test_touch_requires_held(self):
        rt = Runtime(fig2_machine(), affinity=False)
        t = rt.task("a")
        loc = t.location("out", 8)
        h = t.write_handle(loc)
        with pytest.raises(HandleStateError):
            h.touch()

    def test_store_requires_write_mode(self):
        rt = Runtime(fig2_machine(), affinity=False)
        t = rt.task("a")
        loc = t.location("out", 8)
        hr = t.read_handle(loc)
        hr.held = True
        with pytest.raises(HandleStateError):
            hr.store(42)

    def test_bad_mode_rejected(self):
        from repro.orwl.handle import Handle

        rt = Runtime(fig2_machine(), affinity=False)
        t = rt.task("a")
        loc = t.location("out", 8)
        with pytest.raises(HandleStateError):
            Handle(t.main_op, loc, "x")

    def test_non_iterative_handle_single_use(self):
        rt = Runtime(fig2_machine(), affinity=False)
        t = rt.task("a")
        loc = t.location("out", 8)
        h = t.write_handle(loc)  # not iterative
        seen = []

        def body(op):
            yield from h.acquire()
            h.release()
            seen.append(h.current_request)

        t.set_body(body)
        rt.run()
        assert seen == [None]


class TestSectionHelper:
    def test_section_acquires_and_releases(self):
        rt = Runtime(fig2_machine(), affinity=False)
        t = rt.task("a")
        loc = t.location("out", 64)
        h = t.write_handle(loc, iterative=True)
        states = []

        def inner():
            states.append(h.held)
            yield Compute(10.0)

        def body(op):
            yield from section(h, inner())
            states.append(h.held)

        t.set_body(body)
        rt.run()
        assert states == [True, False]

    def test_section_nested_handles_release_in_reverse(self):
        rt = Runtime(fig2_machine(), affinity=False)
        t = rt.task("a")
        l1, l2 = t.location("x", 8), t.location("y", 8)
        h1 = t.write_handle(l1, iterative=True)
        h2 = t.write_handle(l2, iterative=True)

        def body(op):
            yield from section([h1, h2], iter([Compute(1.0)]))
            assert not h1.held and not h2.held

        t.set_body(body)
        rt.run()
