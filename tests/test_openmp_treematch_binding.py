"""The generality extension: TreeMatch binding inside the OpenMP model.

The paper's conclusion: "the proposed approach is generic and can be
integrated in other runtime systems as soon as the programming model
provides the necessary abstraction: expressing the data shared by
threads." Here the OpenMP team supplies a communication matrix and gets
the paper's placement instead of close/spread.
"""

import numpy as np
import pytest

from repro.errors import OpenMPError
from repro.openmp import OpenMPRuntime
from repro.sim.process import Compute, Touch, Wait
from repro.topology import smp20e7
from repro.treematch import CommunicationMatrix


def pair_matrix(n, w=1 << 22):
    """Thread 2k exchanges heavily with thread 2k+1."""
    m = np.zeros((n, n))
    for k in range(0, n, 2):
        m[k, k + 1] = m[k + 1, k] = w
    return CommunicationMatrix(m)


class TestValidation:
    def test_comm_required(self):
        with pytest.raises(OpenMPError):
            OpenMPRuntime(smp20e7(), 4, binding="treematch")

    def test_order_must_match(self):
        with pytest.raises(OpenMPError):
            OpenMPRuntime(smp20e7(), 4, binding="treematch",
                          comm=pair_matrix(6))

    def test_placement_exposed(self):
        omp = OpenMPRuntime(smp20e7(), 8, binding="treematch",
                            comm=pair_matrix(8))
        assert omp.placement is not None
        assert len(omp.placement.thread_to_pu) == 8


class TestPlacementQuality:
    def test_pairs_share_socket(self):
        topo = smp20e7()
        omp = OpenMPRuntime(topo, 16, binding="treematch",
                            comm=pair_matrix(16))
        for k in range(0, 16, 2):
            sa = topo.socket_of_pu(omp.placement.thread_to_pu[k])
            sb = topo.socket_of_pu(omp.placement.thread_to_pu[k + 1])
            assert sa is sb, k

    def test_treematch_binding_beats_spread_on_pair_workload(self):
        """Neighbour-exchanging threads with cache-resident payloads: the
        communication-aware binding keeps each exchange inside a shared
        L3, where spread pays a remote miss per iteration."""
        n = 16

        def run(binding, comm=None):
            omp = OpenMPRuntime(smp20e7(), n, binding=binding, comm=comm,
                                seed=1)
            bufs = [omp.allocate(512 << 10, f"b{k}") for k in range(n)]
            events = [omp.machine.event(f"e{k}") for k in range(n)]

            def master(rt):
                def chunk(tid):
                    partner = tid + 1 if tid % 2 == 0 else tid - 1
                    for _ in range(6):
                        yield Touch(bufs[tid], write=True)
                        events[tid].signal()
                        yield Wait(events[partner])
                        yield Touch(bufs[partner])
                        yield Compute(1e6)

                yield from rt.parallel_for(n, chunk)

            return omp.run(master)

        spread = run("spread")
        tm = run("treematch", pair_matrix(n))
        assert tm.seconds < spread.seconds
        assert tm.counters.l3_misses < spread.counters.l3_misses
