"""Differential-testing harness: object vs batched vs SoA, bit for bit.

Generates seeded random ORWL programs over the three paper application
skeletons (lk23 wavefront, matmul ring, video pipeline) at miniature
problem sizes, runs each one on all three simulator cores, and asserts
the full fingerprint — counters, final clock, event count, thread
states, and (when taps are attached) every observation stream — is
*identical*, not merely close.

Each generated spec carries a tap mode:

``off``
    no observer, no legacy trace — the plain hot path;
``on``
    a :class:`~repro.sim.observe.SimObserver` with full metrics, an
    unsampled ring trace, the legacy ``trace=True`` tap, a counting
    monitor and an ``on_place`` hook all attached at once;
``sampled``
    the same observer with a small ring and 1-in-4 busy sampling —
    exercising countdown sampling and ring wraparound under load.

The module is import-light so tooling can use it outside pytest:
:func:`run_smoke` is the preflight hook ``scripts/regenerate_all.py``
calls before spending hours on experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from repro.apps.lk23 import Lk23Config, build_orwl_lk23
from repro.apps.matmul import MatmulConfig, build_orwl_matmul
from repro.apps.video import VideoConfig
from repro.apps.video.pipeline import build_orwl_video
from repro.orwl.runtime import Runtime
from repro.sim.observe import RingTrace, SimObserver
from repro.topology import smp12e5, smp12e5_4s, smp20e7

__all__ = [
    "APPS",
    "TAP_MODES",
    "ProgramSpec",
    "generate_programs",
    "generate_chain_programs",
    "run_one",
    "check_program",
    "run_smoke",
    "run_chain_smoke",
]

APPS = ("lk23", "matmul", "video", "chain")
TAP_MODES = ("off", "on", "sampled")
TOPOLOGIES = {
    "smp12e5": smp12e5,
    "smp20e7": smp20e7,
    "smp12e5_4s": smp12e5_4s,
}

#: Snapshot keys excluded from cross-core comparison: the per-kind event
#: split only exists where events are kind-coded (the flat cores).
_CORE_ONLY_PREFIX = "sim_events_by_kind_total"


@dataclass(frozen=True)
class ProgramSpec:
    """One generated differential test case."""

    index: int
    app: str
    config: tuple  # sorted (key, value) pairs — hashable, reproducible
    topology: str
    affinity: bool
    seed: int
    tap_mode: str

    def describe(self) -> str:
        cfg = ", ".join(f"{k}={v}" for k, v in self.config)
        return (
            f"#{self.index} {self.app}({cfg}) on {self.topology} "
            f"affinity={self.affinity} seed={self.seed} taps={self.tap_mode}"
        )


def _draw_config(app: str, rng: Random) -> dict:
    if app == "chain":
        return {
            "shape": rng.choice(("ring", "line", "stages")),
            "n_threads": rng.choice((3, 5, 8)),
            "loops": rng.choice((20, 40, 60)),
            "flops": rng.choice((5e3, 1e4, 4e4)),
            "nbytes": rng.choice((0, 2048, 8192)),
        }
    if app == "lk23":
        return {
            "n": rng.choice((8, 12, 16, 24)),
            "iterations": rng.choice((1, 2, 3)),
            "n_threads": rng.choice((4, 8, 12, 16)),
        }
    if app == "matmul":
        return {
            "n": rng.choice((16, 24, 32, 48)),
            "n_tasks": rng.choice((2, 4, 6, 8)),
        }
    return {
        "resolution": "HD",
        "frames": rng.choice((1, 2)),
        "gmm_split": rng.choice((1, 2, 4)),
        "ccl_split": rng.choice((1, 2)),
        "n_dilate": rng.choice((1, 2, 3)),
    }


def generate_programs(n: int, seed: int = 0) -> list[ProgramSpec]:
    """*n* seeded specs; apps and tap modes cycle on coprime-phase
    indices so every (app, tap_mode) pair appears within 9 specs."""
    rng = Random(seed)
    specs = []
    for i in range(n):
        app = APPS[i % len(APPS)]
        mode = TAP_MODES[(i // len(APPS)) % len(TAP_MODES)]
        specs.append(ProgramSpec(
            index=i,
            app=app,
            config=tuple(sorted(_draw_config(app, rng).items())),
            topology=rng.choice(tuple(TOPOLOGIES)),
            affinity=rng.choice((False, True)),
            seed=rng.randrange(10_000),
            tap_mode=mode,
        ))
    return specs


class CountingMonitor:
    """Every machine tap, reduced to comparable totals."""

    def __init__(self) -> None:
        self.touches = 0
        self.touch_bytes = 0.0
        self.blocks = 0
        self.finished = 0
        self.placements: list[tuple[int, int]] = []

    def on_touch(self, thread, buffer, nbytes, write) -> None:
        self.touches += 1
        self.touch_bytes += nbytes

    def on_block(self, thread, event) -> None:
        self.blocks += 1

    def on_finish(self, thread) -> None:
        self.finished += 1

    def on_place(self, pu: int, thread) -> None:
        self.placements.append((pu, thread.tid))


@dataclass
class Taps:
    """What got attached for one run (empty for mode "off")."""

    observer: SimObserver | None = None
    monitor: CountingMonitor | None = None
    legacy_trace: bool = False


def _make_taps(mode: str) -> Taps:
    if mode == "off":
        return Taps()
    if mode == "on":
        ring = RingTrace(capacity=1 << 16)  # no sampling, no wraparound
    else:  # sampled: tiny ring + 1-in-4 busy — wraparound under load
        ring = RingTrace(capacity=256, sample={"busy": 4})
    return Taps(
        observer=SimObserver(trace=ring),
        monitor=CountingMonitor(),
        legacy_trace=(mode == "on"),
    )


def build_chain_machine(spec: ProgramSpec, core: str, taps: Taps):
    """A dependency-chain program straight on a :class:`SimMachine`.

    The "chain" family exists because the three ORWL apps are all
    pipeline-parallel: many threads are runnable at once, so the SoA
    core's serial-chain fast paths (the chain chase and, with
    ``SimLimits(jit="on")``, the run-ahead kernel's interpreted twin)
    barely fire under difftest. These shapes pin them down:

    ``ring``
        a single token passed around *n_threads* stages — exactly one
        runnable thread at any instant, the pure chase workload;
    ``line``
        thread 0 produces *loops* tokens through a relay of stages — a
        filling pipeline that repeatedly narrows back to a chain;
    ``stages``
        the relay with writes to buffers shared by adjacent stages —
        chain hand-offs interleaved with cache/invalidation traffic.
    """
    from repro.sim import Compute, SimMachine, Touch, Wait
    from repro.util.bitmap import Bitmap

    cfg = dict(spec.config)
    shape = cfg["shape"]
    n = cfg["n_threads"]
    loops = cfg["loops"]
    flops = cfg["flops"]
    nbytes = cfg["nbytes"]
    machine = SimMachine(
        TOPOLOGIES[spec.topology](), seed=spec.seed,
        trace=taps.legacy_trace, core=core, observer=taps.observer,
    )
    events = [machine.event(f"tok{i}") for i in range(n)]
    bufs = None
    if nbytes:
        bufs = [machine.allocate(1 << 15, f"cb{i}") for i in range(n + 1)]
    pus = machine.topology.pus

    def ring_stage(i):
        nxt = events[(i + 1) % n]
        for _ in range(loops):
            yield Wait(events[i])
            yield Compute(flops)
            if bufs is not None:
                yield Touch(bufs[i], nbytes, write=True)
            nxt.signal()

    def head():
        for _ in range(loops):
            yield Compute(flops)
            if bufs is not None:
                yield Touch(bufs[0], nbytes, write=True)
            events[1].signal()

    def relay(i):
        last = i == n - 1
        for _ in range(loops):
            yield Wait(events[i])
            if shape == "stages" and bufs is not None:
                yield Touch(bufs[i], nbytes, write=False)
            yield Compute(flops)
            if bufs is not None:
                yield Touch(bufs[i + 1], nbytes, write=True)
            if not last:
                events[i + 1].signal()

    for i in range(n):
        gen = ring_stage(i) if shape == "ring" else (
            head() if i == 0 else relay(i)
        )
        cpuset = None
        if spec.affinity:
            cpuset = Bitmap.single(pus[(i * 2) % len(pus)].os_index)
        machine.add_thread(f"c{i}", gen, cpuset=cpuset)
    if shape == "ring":
        events[0].signal()
    if taps.monitor is not None:
        machine.monitors.append(taps.monitor)
        machine.scheduler.on_place.append(taps.monitor.on_place)
    return machine


def build_runtime(spec: ProgramSpec, core: str, taps: Taps) -> Runtime:
    rt = Runtime(
        TOPOLOGIES[spec.topology](),
        affinity=spec.affinity,
        seed=spec.seed,
        trace=taps.legacy_trace,
        core=core,
        observer=taps.observer,
    )
    cfg = dict(spec.config)
    if spec.app == "lk23":
        build_orwl_lk23(rt, Lk23Config(**cfg))
    elif spec.app == "matmul":
        build_orwl_matmul(rt, MatmulConfig(**cfg))
    else:
        build_orwl_video(rt, VideoConfig(**cfg))
    if taps.monitor is not None:
        rt.machine.monitors.append(taps.monitor)
        rt.machine.scheduler.on_place.append(taps.monitor.on_place)
    return rt


def _filtered_snapshot(observer: SimObserver) -> dict:
    return {
        k: v for k, v in observer.snapshot().items()
        if not k.startswith(_CORE_ONLY_PREFIX)
    }


def run_one(spec: ProgramSpec, core: str) -> dict:
    """Execute *spec* on *core*; return the full comparable fingerprint."""
    taps = _make_taps(spec.tap_mode)
    if spec.app == "chain":
        machine = build_chain_machine(spec, core, taps)
        machine.run()
    else:
        rt = build_runtime(spec, core, taps)
        rt.run()
        machine = rt.machine
    fp = {
        "core_used": machine.core_used,
        "counters": machine.total_counters().snapshot(),
        "compute": machine.counters_by_kind("compute").snapshot(),
        "control": machine.counters_by_kind("control").snapshot(),
        "elapsed_cycles": machine.elapsed_cycles,
        "events_processed": machine.engine.events_processed,
        "thread_states": [t.state for t in machine.threads],
    }
    if taps.observer is not None:
        obs = taps.observer
        fp["metrics"] = _filtered_snapshot(obs)
        fp["ring"] = tuple(obs.ring.records())
        fp["ring_totals"] = (obs.ring.recorded, obs.ring.dropped)
        mon = taps.monitor
        fp["monitor"] = {
            "touches": mon.touches,
            "touch_bytes": mon.touch_bytes,
            "blocks": mon.blocks,
            "finished": mon.finished,
            "placements": tuple(mon.placements),
        }
    if taps.legacy_trace:
        fp["trace"] = tuple(machine.trace.records)
    return fp


def check_program(spec: ProgramSpec) -> dict:
    """Run *spec* on all three cores, assert bit-identical fingerprints.

    Returns the batched fingerprint (handy for further assertions).
    Comparison is field by field so a failure names the drifting field,
    the drifting core and the spec, not just "dicts differ".
    """
    fp_object = run_one(spec, "object")
    fps = {core: run_one(spec, core) for core in ("batched", "soa")}
    assert fp_object["core_used"] == "object", spec.describe()
    for core, fp in fps.items():
        assert fp["core_used"] == core, spec.describe()
        for key in fp_object:
            if key == "core_used":
                continue
            assert fp[key] == fp_object[key], (
                f"{key} differs on {core} core for {spec.describe()}"
            )
    return fps["batched"]


def run_smoke(n: int = 6, seed: int = 0) -> int:
    """Preflight subset for tooling (regenerate_all): check the first *n*
    generated programs; returns how many passed (raises on mismatch)."""
    specs = generate_programs(n, seed=seed)
    for spec in specs:
        check_program(spec)
    return len(specs)


def generate_chain_programs(n: int, seed: int = 0) -> list[ProgramSpec]:
    """*n* seeded chain-family specs, tap modes cycling — the serial
    dependency programs that drive the SoA core's chase/run-ahead
    paths, for focused smoke checks and threshold tests."""
    rng = Random(seed)
    return [
        ProgramSpec(
            index=i,
            app="chain",
            config=tuple(sorted(_draw_config("chain", rng).items())),
            topology=rng.choice(tuple(TOPOLOGIES)),
            affinity=rng.choice((False, True)),
            seed=rng.randrange(10_000),
            tap_mode=TAP_MODES[i % len(TAP_MODES)],
        )
        for i in range(n)
    ]


def run_chain_smoke(n: int = 6, seed: int = 0) -> int:
    """Chain-heavy preflight: bit-identity of the serial-chain fast
    paths across cores, taps off/on/sampled. The lint preflight runs
    this next to :func:`run_smoke` so a chase regression can't hide
    behind the pipeline-parallel app programs."""
    specs = generate_chain_programs(n, seed=seed)
    for spec in specs:
        check_program(spec)
    return len(specs)


if __name__ == "__main__":  # pragma: no cover - manual smoke entry point
    import sys

    count = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    print(f"difftest smoke: {run_smoke(count)} program(s) bit-identical")
