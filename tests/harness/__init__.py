"""Test harnesses shared between the pytest suite and tooling preflights."""
