"""Shared builders for the adaptive-controller test family.

Everything runs the phase-shift experiment's program generator
(:mod:`repro.experiments.adaptive`) at miniature iteration counts, so
controller tests, the zero-remap differential family and the live
rebind tests all agree on what "the workload" is. Import-light: pytest
modules and tooling can both use it.
"""

from __future__ import annotations

from repro.affinity import AdaptiveController, ControllerConfig
from repro.experiments.adaptive import AdaptSetup, build_runtime

__all__ = [
    "CORES",
    "stable_setup",
    "shift_setup",
    "small_config",
    "run_uncontrolled",
    "run_controlled",
    "machine_fingerprint",
]

#: Every simulator core the controller must behave identically on.
CORES = ("object", "batched", "soa")


def stable_setup(iters_per_phase: int = 4) -> AdaptSetup:
    """Phase-stable control program: the traffic pattern never changes,
    so a correct controller performs exactly zero remaps on it."""
    return AdaptSetup(iters_per_phase=iters_per_phase, shift=False)


def shift_setup(iters_per_phase: int = 8) -> AdaptSetup:
    """Miniature phase-shifting program (stencil -> transpose -> reduce)."""
    return AdaptSetup(iters_per_phase=iters_per_phase)


def small_config(**overrides) -> ControllerConfig:
    """The experiment's controller config (test-sized windows)."""
    kwargs = dict(window_cycles=2e6, calibrate_windows=2, gather_windows=2)
    kwargs.update(overrides)
    return ControllerConfig(**kwargs)


def run_uncontrolled(setup: AdaptSetup, *, declared: str = "stencil",
                     core: str = "auto", observer=None,
                     config: ControllerConfig | None = None):
    """Windowed run with no controller: the differential baseline.

    Mirrors the controller's loop shape — same window spacing, same
    sanitizer handling (attach before the first window, verify after
    the last) — minus the telemetry tap and the drift scoring. Returns
    the drained machine.
    """
    config = config or small_config()
    rt = build_runtime(declared, setup)
    machine = rt.machine
    machine.core = core
    if observer is not None:
        machine.attach_observer(observer)
    rt.prepare_run()
    if machine.sanitize:
        machine.attach_sanitizer()
    threads = machine.threads
    horizon = machine.engine.now + config.window_cycles
    for _ in range(config.max_windows):
        machine.run_window(horizon)
        if all(t.state in ("done", "unstarted") for t in threads):
            break
        horizon += config.window_cycles
    if machine.observer is not None:
        machine.observer.fold(machine)
    if machine.sanitizer is not None:
        machine.sanitizer.verify(machine)
    return machine


def run_controlled(setup: AdaptSetup, *, declared: str = "stencil",
                   core: str = "auto", observer=None,
                   config: ControllerConfig | None = None, registry=None):
    """Same program under the adaptive controller.

    Returns ``(controller, result, machine)``.
    """
    rt = build_runtime(declared, setup)
    rt.machine.core = core
    if observer is not None:
        rt.machine.attach_observer(observer)
    controller = AdaptiveController.for_orwl(
        rt, config=config or small_config(), registry=registry
    )
    result = controller.run()
    return controller, result, rt.machine


def machine_fingerprint(machine) -> tuple:
    """Everything a controller with zero remaps must leave untouched."""
    return (
        machine.engine.now,
        machine.engine.events_processed,
        machine.window_drained_at,
        machine.total_counters().snapshot(),
        [t.state for t in machine.threads],
        [t.slices_run for t in machine.threads],
    )
