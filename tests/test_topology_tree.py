"""Tests for topology objects, tree construction and hwloc-like queries."""

import pytest

from repro.errors import TopologyError
from repro.topology import (
    ObjType,
    Topology,
    TopologySpec,
    build_topology,
    fig2_machine,
    smp12e5,
    smp20e7,
)
from repro.topology.objects import CacheAttrs, TopoObject


def tiny_spec(**kw):
    defaults = dict(
        name="tiny",
        numa_per_group=2,
        cores_per_socket=2,
        pus_per_core=2,
    )
    defaults.update(kw)
    return TopologySpec(**defaults)


class TestSpecValidation:
    def test_counts_must_be_positive(self):
        with pytest.raises(TopologyError):
            TopologySpec(name="bad", cores_per_socket=0)

    def test_clock_positive(self):
        with pytest.raises(TopologyError):
            TopologySpec(name="bad", clock_hz=0)

    def test_policy_known(self):
        with pytest.raises(TopologyError):
            TopologySpec(name="bad", os_policy="mystery")

    def test_derived_counts(self):
        spec = tiny_spec()
        assert spec.n_numa == 2
        assert spec.n_cores == 4
        assert spec.n_pus == 8


class TestBuild:
    def test_tiny_shape(self):
        topo = build_topology(tiny_spec())
        assert topo.n_pus == 8
        assert topo.n_cores == 4
        assert len(topo.numa_nodes) == 2
        assert topo.has_hyperthreading

    def test_cpusets_nest(self):
        topo = build_topology(tiny_spec())
        for obj in topo.iter_objects():
            for child in obj.children:
                assert child.cpuset.issubset(obj.cpuset)

    def test_root_cpuset_covers_all(self):
        topo = build_topology(tiny_spec())
        assert len(topo.root.cpuset) == topo.n_pus

    def test_pu_os_indices_sequential(self):
        topo = build_topology(tiny_spec())
        assert [p.os_index for p in topo.pus] == list(range(8))

    def test_arities_product_is_leaf_count(self):
        for factory in (smp12e5, smp20e7, fig2_machine):
            topo = factory()
            prod = 1
            for a in topo.level_arities():
                prod *= a
            assert prod == topo.n_pus

    def test_cache_sizes_from_spec(self):
        topo = build_topology(tiny_spec(l3="4M"))
        l3 = topo.objects_by_type(ObjType.L3)[0]
        assert l3.cache.size == 4 * 1024**2


class TestQueries:
    def test_core_of_pu_and_siblings(self):
        topo = build_topology(tiny_spec())
        core = topo.core_of_pu(3)
        assert 3 in core.cpuset
        sibs = topo.siblings_of_pu(2)
        assert [s.os_index for s in sibs] == [3]

    def test_numa_and_socket_of_pu(self):
        topo = build_topology(tiny_spec())
        assert topo.numa_of_pu(0).logical_index == 0
        assert topo.numa_of_pu(7).logical_index == 1
        assert topo.socket_of_pu(5) is not None

    def test_unknown_pu_raises(self):
        topo = build_topology(tiny_spec())
        with pytest.raises(TopologyError):
            topo.pu(99)

    def test_common_ancestor_depth(self):
        topo = build_topology(tiny_spec())
        same_core = topo.common_ancestor_depth(0, 1)
        same_numa = topo.common_ancestor_depth(0, 2)
        cross_numa = topo.common_ancestor_depth(0, 4)
        assert same_core > same_numa > cross_numa
        assert cross_numa == 0

    def test_objects_at_depth_bounds(self):
        topo = build_topology(tiny_spec())
        with pytest.raises(TopologyError):
            topo.objects_at_depth(99)
        assert topo.objects_at_depth(0) == [topo.root]


class TestValidation:
    def test_root_must_be_machine(self):
        with pytest.raises(TopologyError):
            Topology(TopoObject(ObjType.PACKAGE))

    def test_unbalanced_rejected(self):
        root = TopoObject(ObjType.MACHINE)
        numa = root.add_child(TopoObject(ObjType.NUMANODE))
        core_a = numa.add_child(TopoObject(ObjType.CORE))
        core_a.add_child(TopoObject(ObjType.PU, os_index=0))
        # Second branch terminates at Core depth (no PU) -> unbalanced leaf type
        numa.add_child(TopoObject(ObjType.CORE))
        with pytest.raises(TopologyError):
            Topology(root)

    def test_bad_nesting_rejected(self):
        pu = TopoObject(ObjType.PU)
        with pytest.raises(TopologyError):
            pu.add_child(TopoObject(ObjType.CORE))

    def test_cache_attrs_validate(self):
        with pytest.raises(TopologyError):
            CacheAttrs(size=0)


class TestPresets:
    def test_table1_smp12e5(self):
        topo = smp12e5()
        assert len(topo.numa_nodes) == 12
        assert topo.n_cores == 96
        assert topo.n_pus == 192
        assert topo.has_hyperthreading
        l3 = topo.objects_by_type(ObjType.L3)[0]
        assert l3.cache.size == 20480 * 1024
        assert topo.root.attrs["clock_hz"] == pytest.approx(2.6e9)
        assert topo.root.attrs["os_policy"] == "consolidate"

    def test_table1_smp20e7(self):
        topo = smp20e7()
        assert len(topo.numa_nodes) == 20
        assert topo.n_cores == 160
        assert topo.n_pus == 160
        assert not topo.has_hyperthreading
        l3 = topo.objects_by_type(ObjType.L3)[0]
        assert l3.cache.size == 24576 * 1024
        assert topo.root.attrs["os_policy"] == "spread"

    def test_fig2_machine(self):
        topo = fig2_machine()
        assert topo.n_cores == 32
        assert len(topo.sockets) == 4
        assert len(topo.objects_by_type(ObjType.GROUP)) == 2

    def test_machine_registry(self):
        from repro.topology import list_machines, machine_by_name

        assert "SMP12E5" in list_machines()
        assert machine_by_name("smp20e7").name == "SMP20E7"
        with pytest.raises(TopologyError):
            machine_by_name("nope")
