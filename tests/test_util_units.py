"""Tests for byte-size parsing/formatting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.units import format_size, parse_size


class TestParse:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("32K", 32 * 1024),
            ("256K", 256 * 1024),
            ("20480K", 20480 * 1024),
            ("24576K", 24576 * 1024),
            ("1M", 1024**2),
            ("2G", 2 * 1024**3),
            ("1T", 1024**4),
            ("64", 64),
            ("6.5G", int(6.5 * 1024**3)),
            ("32KB", 32 * 1024),
            ("32KiB", 32 * 1024),
            ("32k", 32 * 1024),
        ],
    )
    def test_known_values(self, text, expected):
        assert parse_size(text) == expected

    def test_numbers_pass_through(self):
        assert parse_size(4096) == 4096
        assert parse_size(10.7) == 10

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_size("twelve")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            parse_size(-1)
        with pytest.raises(ValueError):
            parse_size("-5K")


class TestFormat:
    def test_exact_suffixes(self):
        assert format_size(20480 * 1024) == "20M"
        assert format_size(1024) == "1K"
        assert format_size(3 * 1024**3) == "3G"

    def test_small_values_stay_bytes(self):
        assert format_size(63) == "63"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_size(-1)

    @given(st.integers(min_value=0, max_value=2**50))
    def test_roundtrip_within_rounding(self, n):
        # format→parse must stay within 5% (inexact suffixes round).
        out = parse_size(format_size(n))
        assert abs(out - n) <= max(64, int(0.05 * n))
