"""The three paper applications must lint clean.

This is the false-positive firewall for repro.analyze: matmul's ring
releases its own slot before acquiring its predecessor's, lk23's
wavefront nests whole handle pyramids, and video's split descriptors
publish zero-copy buffer references — all legitimate idioms that naive
declaration-order or lockset analyses would flag.
"""

import pytest

from repro.analyze import analyze_app
from repro.analyze.apps import app_names

APPS = app_names()


def non_note(report):
    return [f for f in report.findings if f.severity != "note"]


class TestPaperAppsClean:
    @pytest.mark.parametrize("app", APPS)
    def test_no_errors_or_warnings(self, app):
        a = analyze_app(app)
        assert non_note(a.static) == []
        assert a.exit_code() == 0

    @pytest.mark.parametrize("app", APPS)
    def test_migrations_provably_zero(self, app):
        a = analyze_app(app)
        assert a.migrations_proved is True

    def test_matmul_and_video_fully_clean(self):
        # lk23 keeps note-level unread-location findings (the za corner
        # blocks are sinks by design); the other two have nothing at all.
        assert analyze_app("matmul").static.findings == []
        assert analyze_app("video").static.findings == []

    def test_lk23_only_unread_location_notes(self):
        a = analyze_app("lk23")
        assert {f.code for f in a.static.findings} == {"unread-location"}


class TestPaperAppsDynamic:
    @pytest.mark.parametrize("app", APPS)
    def test_cross_check_confirms_zero_migrations(self, app):
        a = analyze_app(app, dynamic=True)
        codes = {f.code for f in a.dynamic.findings}
        assert "migrations-zero-confirmed" in codes
        assert non_note(a.dynamic) == []

    def test_json_round_trip_carries_migration_proof(self):
        import json

        from repro.analyze import json_text

        a = analyze_app("matmul")
        d = json.loads(json_text(a.to_dict()))
        assert d["migrations_provably_zero"] is True
        assert d["version"] == "repro-analyze/1"
