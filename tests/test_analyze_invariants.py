"""SimSanitizer: checked-mode invariants, zero cost off, cross-core.

The sanitizer rides the native monitor taps, so both simulator cores
are covered by the same checks; the difftest family under
``REPRO_SANITIZE=1`` plus :func:`repro.analyze.invariants.fingerprint`
pin down that the checked runs agree bit-for-bit across cores.
"""

import pytest

from repro.analyze.invariants import SimSanitizer, fingerprint
from repro.errors import InvariantViolation
from repro.sim import Compute, SimMachine, Touch
from repro.topology import smp12e5
from repro.util.bitmap import Bitmap


def tiny_run(core: str = "auto", **kwargs) -> SimMachine:
    machine = SimMachine(smp12e5(), core=core, **kwargs)
    buf = machine.allocate(1 << 16, "b")

    def body():
        for _ in range(20):
            yield Compute(1e4)
            yield Touch(buf, 4096, write=True)

    for i in range(4):
        machine.add_thread(f"t{i}", body(), cpuset=Bitmap.single(2 * i))
    machine.run()
    return machine


class TestCheckedMode:
    def test_off_by_default_no_sanitizer(self):
        machine = tiny_run()
        assert machine.sanitize is False
        assert machine.sanitizer is None

    def test_on_runs_checks_and_holds(self):
        machine = tiny_run(sanitize=True)
        assert machine.sanitizer is not None
        assert machine.sanitizer.checks > 0
        assert machine.sanitizer.violations == []

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        machine = tiny_run()
        assert machine.sanitize is True
        assert machine.sanitizer is not None
        assert machine.sanitizer.checks > 0

    def test_explicit_kwarg_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        machine = tiny_run(sanitize=False)
        assert machine.sanitizer is None

    def test_checked_run_does_not_change_results(self):
        plain = tiny_run()
        checked = tiny_run(sanitize=True)
        assert plain.elapsed_cycles == checked.elapsed_cycles
        assert (plain.engine.events_processed
                == checked.engine.events_processed)
        assert (plain.total_counters().snapshot()
                == checked.total_counters().snapshot())


class TestCrossCoreAgreement:
    def test_fingerprints_match_between_cores(self):
        fps = []
        for core in ("batched", "object"):
            machine = tiny_run(core, sanitize=True)
            fp = fingerprint(machine)
            fp.pop("core_used")
            fps.append(fp)
        assert fps[0] == fps[1]

    def test_fingerprint_reports_check_count(self):
        machine = tiny_run(sanitize=True)
        assert fingerprint(machine)["sanitizer_checks"] > 0


class TestRemapEpochBoundary:
    """Occupancy/clock invariants must hold straight through a live
    rebind between ``run_window`` epochs — the adaptive controller's
    remap path."""

    @staticmethod
    def _windowed_remap(core: str) -> SimMachine:
        from repro.sim import YieldCPU

        machine = SimMachine(smp12e5(), core=core, sanitize=True)
        buf = machine.allocate(1 << 16, "b")

        def body():
            for _ in range(20):
                yield Compute(1e5)
                yield Touch(buf, 4096, write=True)
                yield YieldCPU()

        for i in range(4):
            machine.add_thread(f"t{i}", body(), cpuset=Bitmap.single(2 * i))
        machine.attach_sanitizer()
        machine.run_window(3e5)
        # The remap epoch boundary: migrate two threads while the
        # sanitizer's occupancy tap is live.
        machine.bind_thread(machine.threads[0], Bitmap.single(1))
        machine.bind_thread(machine.threads[1], Bitmap.single(3))
        horizon = 6e5
        for _ in range(30):
            machine.run_window(horizon)
            if all(t.state == "done" for t in machine.threads):
                break
            horizon += 3e5
        machine.sanitizer.verify(machine)
        return machine

    @pytest.mark.parametrize("core", ["object", "batched", "soa"])
    def test_occupancy_holds_across_rebind(self, core):
        machine = self._windowed_remap(core)
        assert all(t.state == "done" for t in machine.threads)
        assert machine.sanitizer.checks > 0
        assert machine.sanitizer.violations == []

    def test_checked_remap_matches_between_cores(self):
        fps = []
        for core in ("batched", "object", "soa"):
            fp = fingerprint(self._windowed_remap(core))
            fp.pop("core_used")
            fp.pop("elapsed_cycles")  # windowed clock sits on the horizon
            fps.append(fp)
        assert fps[0] == fps[1] == fps[2]


class TestViolationDetection:
    def test_negative_touch_bytes_fires(self):
        machine = tiny_run(sanitize=True)
        san = machine.sanitizer
        thread = machine.threads[0]
        with pytest.raises(InvariantViolation, match="touch-bytes"):
            san.on_touch(thread, None, -1, True)
        assert any("touch-bytes" in v for v in san.violations)

    def test_clock_regression_fires(self):
        machine = tiny_run(sanitize=True)
        san = machine.sanitizer
        san._last_now = machine.engine.now + 1e9
        with pytest.raises(InvariantViolation, match="clock-monotonic"):
            san._check_clock()

    def test_corrupted_counters_fail_verify(self):
        machine = tiny_run(sanitize=True)
        counters = machine.threads[0].counters
        counters.busy_cycles = -1.0
        with pytest.raises(InvariantViolation):
            machine.sanitizer.verify(machine)

    def test_violation_is_simulation_error(self):
        from repro.errors import SimulationError

        assert issubclass(InvariantViolation, SimulationError)
