"""Smoke tests: every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "stencil_scaling", "video_tracking",
            "custom_machine", "dynamic_remapping"} <= names


def test_dynamic_remapping_exercises_warm_start():
    script = Path(__file__).parent.parent / "examples" / "dynamic_remapping.py"
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    # The example must actually travel the warm-started TreeMatch path,
    # not just run the controller on a drift-free program.
    assert "warm-started" in proc.stdout
    assert "remap @ window" in proc.stdout
