"""Tests for the OpenMP-like fork-join runtime and its affinity knobs."""

import pytest

from repro.errors import OpenMPError
from repro.openmp import OpenMPRuntime, omp_binding, threaded_dgemm
from repro.openmp.runtime import _static_chunks
from repro.sim.process import Compute, Touch
from repro.topology import fig2_machine, smp12e5


class TestStaticChunks:
    def test_even_split(self):
        assert _static_chunks(8, 4) == [range(0, 2), range(2, 4), range(4, 6), range(6, 8)]

    def test_remainder_to_first(self):
        shares = _static_chunks(7, 3)
        assert [len(s) for s in shares] == [3, 2, 2]
        assert shares[0] == range(0, 3)

    def test_more_threads_than_items(self):
        shares = _static_chunks(2, 4)
        assert [len(s) for s in shares] == [1, 1, 0, 0]

    def test_zero_items(self):
        assert all(len(s) == 0 for s in _static_chunks(0, 3))


class TestBindingMap:
    def test_none_is_unbound(self):
        assert omp_binding(fig2_machine(), 8, None) is None

    def test_close_uses_one_pu_per_core(self):
        topo = smp12e5()
        b = omp_binding(topo, 4, "close")
        assert list(b.values()) == [0, 2, 4, 6]

    def test_compact_packs_siblings(self):
        topo = smp12e5()
        b = omp_binding(topo, 4, "compact")
        assert list(b.values()) == [0, 1, 2, 3]

    def test_spread_and_scatter_cross_sockets(self):
        topo = fig2_machine()
        for strategy in ("spread", "scatter"):
            b = omp_binding(topo, 4, strategy)
            sockets = {topo.socket_of_pu(pu).logical_index for pu in b.values()}
            assert len(sockets) == 4, strategy

    def test_unknown_strategy_rejected(self):
        with pytest.raises(OpenMPError):
            omp_binding(fig2_machine(), 4, "bogus")


class TestForkJoin:
    def test_all_items_execute_once(self):
        omp = OpenMPRuntime(fig2_machine(), 4, binding="close")
        seen = []

        def master(rt):
            def chunk(i):
                seen.append(i)
                yield Compute(1e4)

            yield from rt.parallel_for(10, chunk)

        omp.run(master)
        assert sorted(seen) == list(range(10))

    def test_barrier_separates_regions(self):
        omp = OpenMPRuntime(fig2_machine(), 4, binding="close")
        phases = []

        def master(rt):
            def phase_a(i):
                phases.append(("a", i))
                yield Compute(1e5)

            def phase_b(i):
                phases.append(("b", i))
                yield Compute(1e4)

            yield from rt.parallel_for(8, phase_a)
            yield from rt.parallel_for(8, phase_b)

        omp.run(master)
        last_a = max(k for k, p in enumerate(phases) if p[0] == "a")
        first_b = min(k for k, p in enumerate(phases) if p[0] == "b")
        assert last_a < first_b

    def test_parallel_speeds_up(self):
        def master(rt):
            def chunk(i):
                yield Compute(2.6e8)

            yield from rt.parallel_for(8, chunk)

        t1 = OpenMPRuntime(fig2_machine(), 1, binding="close").run(master).seconds

        def master2(rt):
            def chunk(i):
                yield Compute(2.6e8)

            yield from rt.parallel_for(8, chunk)

        t8 = OpenMPRuntime(fig2_machine(), 8, binding="close").run(master2).seconds
        assert t8 < t1 / 4

    def test_master_first_touch_homes_on_node0(self):
        omp = OpenMPRuntime(fig2_machine(), 4, binding="close")
        bufs = {}

        def master(rt):
            bufs["a"] = rt.allocate(1 << 16, "a")
            yield Touch(bufs["a"], write=True)

        omp.run(master)
        assert bufs["a"].home_numa == 0

    def test_dynamic_schedule_unsupported(self):
        omp = OpenMPRuntime(fig2_machine(), 2, binding="close")

        def master(rt):
            yield from rt.parallel_for(4, lambda i: iter([]), schedule="dynamic")

        with pytest.raises(OpenMPError):
            omp.run(master)

    def test_run_once(self):
        omp = OpenMPRuntime(fig2_machine(), 2)

        def master(rt):
            yield Compute(1.0)

        omp.run(master)
        with pytest.raises(OpenMPError):
            omp.run(master)

    def test_bad_thread_count(self):
        with pytest.raises(OpenMPError):
            OpenMPRuntime(fig2_machine(), 0)

    def test_result_fields(self):
        omp = OpenMPRuntime(fig2_machine(), 2, binding="scatter")

        def master(rt):
            yield Compute(100.0)

        res = omp.run(master)
        assert res.n_threads == 2
        assert res.binding == "scatter"
        assert res.seconds > 0


class TestThreadedDgemm:
    def test_flops_accounted_exactly(self):
        n = 512
        res = threaded_dgemm(fig2_machine(), n, 4, binding="close")
        assert res.counters.flops == pytest.approx(2.0 * n**3)

    def test_single_thread_rate_matches_mkl_core(self):
        # ~12 GF/s per core as in the paper's 8-core ≈ 95 GF/s runs.
        res = threaded_dgemm(smp12e5(), 2048, 1, binding="close")
        assert 8.0 < res.gflops < 16.0

    def test_scaling_plateaus_past_sockets(self):
        """The Fig. 5 signature: MKL stops scaling beyond a couple of
        sockets regardless of binding."""
        g16 = threaded_dgemm(smp12e5(), 4096, 16, binding="scatter").gflops
        g96 = threaded_dgemm(smp12e5(), 4096, 96, binding="scatter").gflops
        assert g96 < 2 * g16

    def test_bad_order_rejected(self):
        with pytest.raises(OpenMPError):
            threaded_dgemm(fig2_machine(), 0, 4)

    def test_compact_suffers_on_ht_machine(self):
        """KMP compact puts two compute threads on HT siblings (Sec.
        VI-B.2): worse than scatter inside one socket's worth of threads."""
        compact = threaded_dgemm(smp12e5(), 2048, 8, binding="compact").gflops
        scatter = threaded_dgemm(smp12e5(), 2048, 8, binding="scatter").gflops
        assert compact < scatter
