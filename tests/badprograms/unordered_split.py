"""A broken zero-copy split: the descriptor is published too late.

The dispatcher copies the video pipeline's ``orwl_split`` idiom but
releases its read handle on ``frame`` *before* writing the work
descriptor. Without ``r(frame)`` held at publication time there is no
delegated release: the frame FIFO moves on immediately, so the
producer's next-round write is HB-concurrent with the worker's raw
strip read. Expected: ``data-race`` (read/write) with verdict
``CONFIRMED`` — the lockset candidate is real here, unlike in
:mod:`tests.badprograms.split_ok`.
"""

from repro.orwl import Runtime
from repro.sim.process import Touch
from repro.topology import fig2_machine

ROUNDS = 2
DESC = 256


def build():
    rt = Runtime(fig2_machine(), affinity=False)
    producer = rt.task("producer")
    dispatcher = rt.task("dispatcher")
    worker = rt.task("worker")

    loc_frame = producer.location("frame", 65536)
    loc_work = dispatcher.location("work", 4096)

    h_prod = producer.write_handle(loc_frame, iterative=True)
    h_disp_frame = dispatcher.read_handle(loc_frame, iterative=True)
    h_disp_work = dispatcher.write_handle(loc_work, iterative=True)
    h_work = worker.read_handle(loc_work, iterative=True)

    def producer_body(op):
        for _ in range(ROUNDS):
            yield from h_prod.acquire()
            yield h_prod.touch()
            h_prod.release()

    def dispatcher_body(op):
        for _ in range(ROUNDS):
            yield from h_disp_frame.acquire()
            yield from h_disp_work.acquire()
            yield h_disp_frame.touch(DESC)
            # The bug: frame is let go before the descriptor write, so
            # the worker's view of the frame is never protected.
            h_disp_frame.release()
            yield h_disp_work.touch(DESC)
            h_disp_work.release()

    def worker_body(op):
        for _ in range(ROUNDS):
            yield from h_work.acquire()
            # Zero-copy read straight from the producer's frame buffer.
            yield Touch(loc_frame.buffer, 4096)
            h_work.release()

    producer.set_body(producer_body)
    dispatcher.set_body(dispatcher_body)
    worker.set_body(worker_body)
    return rt
