"""Delegated release, pending-attach flavour — also a false positive.

Like :mod:`tests.badprograms.split_ok`, but the dispatcher releases
``frame`` *before* ``work``: at that instant the worker group is not
active yet (the dispatcher's own ``w(work)`` still blocks it), so the
delegation parks on the work FIFO and attaches when the workers'
read group activates on the next epoch. Either release order is safe —
the frame stays locked until the delegates drain. Expected:
``race-ordered`` note with verdict ``ORDERED``, no ``data-race`` error.
"""

from repro.orwl import Runtime
from repro.sim.process import Touch
from repro.topology import fig2_machine

ROUNDS = 2
DESC = 256


def build():
    rt = Runtime(fig2_machine(), affinity=False)
    producer = rt.task("producer")
    dispatcher = rt.task("dispatcher")
    worker = rt.task("worker")

    loc_frame = producer.location("frame", 65536)
    loc_work = dispatcher.location("work", 4096)

    h_prod = producer.write_handle(loc_frame, iterative=True)
    h_disp_frame = dispatcher.read_handle(loc_frame, iterative=True)
    h_disp_work = dispatcher.write_handle(loc_work, iterative=True)
    h_work = worker.read_handle(loc_work, iterative=True)

    def producer_body(op):
        for _ in range(ROUNDS):
            yield from h_prod.acquire()
            yield h_prod.touch()
            h_prod.release()

    def dispatcher_body(op):
        for _ in range(ROUNDS):
            yield from h_disp_frame.acquire()
            yield from h_disp_work.acquire()
            yield h_disp_frame.touch(DESC)
            yield h_disp_work.touch(DESC)  # published under r(frame)
            h_disp_frame.release()  # defers while w(work) is still held
            h_disp_work.release()  # now the delegates activate

    def worker_body(op):
        for _ in range(ROUNDS):
            yield from h_work.acquire()
            yield Touch(loc_frame.buffer, 4096)
            h_work.release()

    producer.set_body(producer_body)
    dispatcher.set_body(dispatcher_body)
    worker.set_body(worker_body)
    return rt
