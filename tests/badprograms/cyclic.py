"""Two-task cyclic wait: A holds L1 wanting L2, B holds L2 wanting L1.

``init_rank = -1`` on B's L2 handle puts B ahead of A in L2's initial
FIFO, so each task is granted its first lock and blocks forever on the
second — the textbook zero-lag cycle. Expected: ``deadlock-cycle``
statically, ``deadlock-confirmed`` from the dynamic cross-check.
"""

from repro.orwl import Runtime
from repro.topology import fig2_machine


def build():
    rt = Runtime(fig2_machine(), affinity=False)
    a = rt.task("A")
    b = rt.task("B")
    l1 = a.location("L1", 1024)
    l2 = b.location("L2", 1024)

    a1 = a.write_handle(l1)
    a2 = a.write_handle(l2)
    b2 = b.write_handle(l2)
    b1 = b.write_handle(l1)
    b2.init_rank = -1  # B is granted L2 first: the cycle closes

    def body_a(op):
        yield from a1.acquire()
        yield from a2.acquire()
        yield a2.touch()
        a2.release()
        a1.release()

    def body_b(op):
        yield from b2.acquire()
        yield from b1.acquire()
        yield b1.touch()
        b1.release()
        b2.release()

    a.set_body(body_a)
    b.set_body(body_b)
    return rt
