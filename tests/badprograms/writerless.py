"""A location that is only ever read: no writer can feed the readers.

Expected: ``writerless-location`` (warning) from the graph lint.
"""

from repro.orwl import Runtime
from repro.sim.process import Compute
from repro.topology import fig2_machine


def build():
    rt = Runtime(fig2_machine(), affinity=False)
    owner = rt.task("owner")
    reader = rt.task("reader")
    loc = owner.location("orphan_data", 1024)
    r = reader.read_handle(loc)

    def owner_body(op):
        yield Compute(1e3)

    def reader_body(op):
        yield from r.acquire()
        yield r.touch()
        r.release()

    owner.set_body(owner_body)
    reader.set_body(reader_body)
    return rt
