"""Use-after-release: a task keeps touching its buffer past release.

Task ``owner`` writes its location under a proper iterative write
handle, releases — and then pokes the buffer again with a raw ``Touch``
outside any critical section. The reader's grant clock covers the
owner's work only *up to* the release, so the stale write is
HB-concurrent with the reader's access. Expected: ``data-race``
(read/write) with verdict ``CONFIRMED``.
"""

from repro.orwl import Runtime
from repro.sim.process import Touch
from repro.topology import fig2_machine

ROUNDS = 2


def build():
    rt = Runtime(fig2_machine(), affinity=False)
    owner = rt.task("owner")
    reader = rt.task("reader")
    loc = owner.location("cell", 4096)
    hw = owner.write_handle(loc, iterative=True)
    hr = reader.read_handle(loc, iterative=True)

    def owner_body(op):
        for _ in range(ROUNDS):
            yield from hw.acquire()
            yield hw.touch()
            hw.release()
            # The bug: the buffer is mutated again after the handle is
            # gone — nothing orders this against the reader's round.
            yield Touch(loc.buffer, 64, write=True)

    def reader_body(op):
        for _ in range(ROUNDS):
            yield from hr.acquire()
            yield hr.touch()
            hr.release()

    owner.set_body(owner_body)
    reader.set_body(reader_body)
    return rt
