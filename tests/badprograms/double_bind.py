"""Self-deadlock: one task acquires two write handles on one location.

The second handle's request sits behind the first in the location FIFO;
holding the first while waiting on the second can never be granted.
Expected: ``deadlock-cycle`` statically (the FIFO edge from the second
acquire to the first release closes a zero-lag cycle through the body's
own event chain), ``deadlock-confirmed`` dynamically.
"""

from repro.orwl import Runtime
from repro.topology import fig2_machine


def build():
    rt = Runtime(fig2_machine(), affinity=False)
    t = rt.task("greedy")
    loc = t.location("twice_locked", 1024)
    h1 = t.write_handle(loc)
    h2 = t.write_handle(loc)

    def body(op):
        yield from h1.acquire()
        yield from h2.acquire()  # FIFO: behind h1, which is still held
        yield h2.touch()
        h2.release()
        h1.release()

    t.set_body(body)
    return rt
