"""Unguarded buffer access: one task touches another's buffer directly.

Task ``locked`` accesses its location under a proper write handle; task
``rogue`` yields a raw ``Touch`` on the same buffer while holding
nothing, so the common lockset is empty. Expected: ``data-race``
(write/write) statically, ``race-confirmed`` from the dynamic
cross-check.
"""

from repro.orwl import Runtime
from repro.sim.process import Touch
from repro.topology import fig2_machine


def build():
    rt = Runtime(fig2_machine(), affinity=False)
    locked = rt.task("locked")
    rogue = rt.task("rogue")
    loc = locked.location("shared", 1024)
    h = locked.write_handle(loc)

    def locked_body(op):
        yield from h.acquire()
        yield h.touch()
        h.release()

    def rogue_body(op):
        # Bypasses the lock protocol entirely: no handle is held.
        yield Touch(loc.buffer, 512, write=True)

    locked.set_body(locked_body)
    rogue.set_body(rogue_body)
    return rt
