"""A hand-made broken placement: oversubscription, bad PU, unbound thread.

Expected from ``check_placement`` (n_threads=4): ``oversubscribed-core``
(threads 0 and 1 share PU 0 with oversub_factor 1), ``pu-out-of-range``
(thread 2 on a PU the topology does not have) and ``unbound-thread``
(thread 3 missing from the mapping).
"""

from repro.treematch.mapping import Placement
from repro.topology import fig2_machine

N_THREADS = 4


def build():
    topology = fig2_machine()
    placement = Placement(
        thread_to_pu={0: 0, 1: 0, 2: topology.n_pus + 7},
        control_mode="os",
        granularity="pu",
        oversub_factor=1,
        topology_name=topology.name,
    )
    return topology, placement
