"""Gallery of deliberately broken ORWL programs for the analyzers.

Each module exposes ``build()`` returning a fresh, unscheduled runtime
(or, for :mod:`oversub`, a ``(topology, placement)`` pair) exhibiting
exactly one class of bug. The analyzer tests assert that each program
is flagged with its expected finding codes — and nothing stronger.
"""
