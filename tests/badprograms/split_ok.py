"""The correct zero-copy split — a lockset false positive, not a race.

Same shape as :mod:`tests.badprograms.unordered_split`, but the
dispatcher writes the work descriptor *while still holding*
``r(frame)`` and releases ``work`` before ``frame``. The publication
delegates the frame release to the worker group (which is already
active when ``frame`` is released — the live-watch path), so the
producer's next write happens-after the worker's raw read. The empty
common lockset is a false alarm. Expected: ``race-ordered`` note with
verdict ``ORDERED``, no ``data-race`` error.
"""

from repro.orwl import Runtime
from repro.sim.process import Touch
from repro.topology import fig2_machine

ROUNDS = 2
DESC = 256


def build():
    rt = Runtime(fig2_machine(), affinity=False)
    producer = rt.task("producer")
    dispatcher = rt.task("dispatcher")
    worker = rt.task("worker")

    loc_frame = producer.location("frame", 65536)
    loc_work = dispatcher.location("work", 4096)

    h_prod = producer.write_handle(loc_frame, iterative=True)
    h_disp_frame = dispatcher.read_handle(loc_frame, iterative=True)
    h_disp_work = dispatcher.write_handle(loc_work, iterative=True)
    h_work = worker.read_handle(loc_work, iterative=True)

    def producer_body(op):
        for _ in range(ROUNDS):
            yield from h_prod.acquire()
            yield h_prod.touch()
            h_prod.release()

    def dispatcher_body(op):
        for _ in range(ROUNDS):
            yield from h_disp_frame.acquire()
            yield from h_disp_work.acquire()
            yield h_disp_frame.touch(DESC)
            yield h_disp_work.touch(DESC)  # published under r(frame)
            h_disp_work.release()  # workers activate first ...
            h_disp_frame.release()  # ... then frame defers to them

    def worker_body(op):
        for _ in range(ROUNDS):
            yield from h_work.acquire()
            yield Touch(loc_frame.buffer, 4096)
            h_work.release()

    producer.set_body(producer_body)
    dispatcher.set_body(dispatcher_body)
    worker.set_body(worker_body)
    return rt
