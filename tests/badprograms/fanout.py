"""Fan-out publication: one frame scattered to two worker queues.

The dispatcher holds ``r(frame)`` and publishes descriptors into *two*
work locations; each worker pulls its strip straight from the frame
buffer. The frame's deferred release must wait for **both** worker
groups — a detector that tracks a single delegation target forgets the
first one and flags worker A. Expected: two ``race-ordered`` notes with
verdict ``ORDERED``, no ``data-race`` error.
"""

from repro.orwl import Runtime
from repro.sim.process import Touch
from repro.topology import fig2_machine

ROUNDS = 2
DESC = 256


def build():
    rt = Runtime(fig2_machine(), affinity=False)
    producer = rt.task("producer")
    dispatcher = rt.task("dispatcher")
    worker_a = rt.task("worker_a")
    worker_b = rt.task("worker_b")

    loc_frame = producer.location("frame", 65536)
    loc_work_a = dispatcher.location("work_a", 4096)
    loc_work_b = dispatcher.location("work_b", 4096)

    h_prod = producer.write_handle(loc_frame, iterative=True)
    h_disp_frame = dispatcher.read_handle(loc_frame, iterative=True)
    h_disp_a = dispatcher.write_handle(loc_work_a, iterative=True)
    h_disp_b = dispatcher.write_handle(loc_work_b, iterative=True)
    h_wa = worker_a.read_handle(loc_work_a, iterative=True)
    h_wb = worker_b.read_handle(loc_work_b, iterative=True)

    def producer_body(op):
        for _ in range(ROUNDS):
            yield from h_prod.acquire()
            yield h_prod.touch()
            h_prod.release()

    def dispatcher_body(op):
        for _ in range(ROUNDS):
            yield from h_disp_frame.acquire()
            yield from h_disp_a.acquire()
            yield from h_disp_b.acquire()
            yield h_disp_frame.touch(DESC)
            yield h_disp_a.touch(DESC)  # first publication target
            yield h_disp_b.touch(DESC)  # second — must not displace it
            h_disp_a.release()
            h_disp_b.release()
            h_disp_frame.release()  # waits for both worker groups

    def worker_body(handle):
        def gen(op):
            for _ in range(ROUNDS):
                yield from handle.acquire()
                yield Touch(loc_frame.buffer, 4096)
                handle.release()

        return gen

    producer.set_body(producer_body)
    dispatcher.set_body(dispatcher_body)
    worker_a.set_body(worker_body(h_wa))
    worker_b.set_body(worker_body(h_wb))
    return rt
