"""Tests for the block-cyclic matmul application."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.matmul import MatmulConfig, matmul_flops, run_orwl_matmul
from repro.errors import ReproError
from repro.topology import fig2_machine, smp12e5, smp20e7


def run_data(n, p, seed=0, topology=None, affinity=False):
    rng = np.random.default_rng(seed)
    data = {
        "A": rng.random((n, n)),
        "B": rng.random((n, n)),
        "C": np.zeros((n, n)),
    }
    cfg = MatmulConfig(n=n, n_tasks=p, execute_data=True)
    run_orwl_matmul(topology or fig2_machine(), cfg, affinity=affinity, data=data)
    return data


class TestConfig:
    def test_bounds_tile_rows(self):
        cfg = MatmulConfig(n=37, n_tasks=5)
        b = cfg.bounds()
        assert b[0][0] == 0 and b[-1][1] == 37
        for (a0, a1), (b0, _) in zip(b, b[1:]):
            assert a1 == b0
            assert a1 > a0

    def test_validation(self):
        with pytest.raises(ReproError):
            MatmulConfig(n=0)
        with pytest.raises(ReproError):
            MatmulConfig(n=4, n_tasks=8)

    def test_matmul_flops(self):
        assert matmul_flops(10) == 2000.0


class TestDataCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_divisible(self, p):
        data = run_data(32, p)
        assert np.allclose(data["C"], data["A"] @ data["B"])

    @pytest.mark.parametrize("n,p", [(37, 5), (19, 3), (40, 7)])
    def test_uneven(self, n, p):
        data = run_data(n, p)
        assert np.allclose(data["C"], data["A"] @ data["B"])

    def test_with_affinity(self):
        data = run_data(24, 4, topology=smp12e5(), affinity=True)
        assert np.allclose(data["C"], data["A"] @ data["B"])

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_inputs(self, seed):
        data = run_data(16, 4, seed=seed)
        assert np.allclose(data["C"], data["A"] @ data["B"])

    def test_execute_data_requires_arrays(self):
        cfg = MatmulConfig(n=16, n_tasks=4, execute_data=True)
        with pytest.raises(ReproError):
            run_orwl_matmul(fig2_machine(), cfg, affinity=False)


class TestPerformanceShape:
    def test_flops_counted_exactly(self):
        n = 512
        cfg = MatmulConfig(n=n, n_tasks=8)
        res = run_orwl_matmul(fig2_machine(), cfg, affinity=True)
        assert res.compute_counters.flops == pytest.approx(matmul_flops(n))

    def test_single_task_rate_near_mkl_core(self):
        res = run_orwl_matmul(smp12e5(), MatmulConfig(n=2048, n_tasks=1),
                              affinity=True)
        assert 8.0 < res.gflops < 16.0

    def test_affinity_scales_past_sockets(self):
        """The Fig. 5 headline: ORWL(affinity) keeps scaling where MKL
        stops; 64 tasks must deliver > 4x the 8-task rate."""
        g8 = run_orwl_matmul(smp12e5(), MatmulConfig(n=4096, n_tasks=8),
                             affinity=True, seed=1).gflops
        g64 = run_orwl_matmul(smp12e5(), MatmulConfig(n=4096, n_tasks=64),
                              affinity=True, seed=1).gflops
        assert g64 > 4 * g8

    def test_affinity_beats_native(self):
        cfg = MatmulConfig(n=4096, n_tasks=64)
        nat = run_orwl_matmul(smp20e7(), cfg, affinity=False, seed=1)
        aff = run_orwl_matmul(smp20e7(), cfg, affinity=True, seed=1)
        assert aff.gflops > nat.gflops

    def test_affinity_zero_migrations(self):
        cfg = MatmulConfig(n=1024, n_tasks=16)
        res = run_orwl_matmul(smp20e7(), cfg, affinity=True, seed=1)
        assert res.counters.cpu_migrations == 0
