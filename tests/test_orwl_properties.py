"""Property-based tests on the ORWL runtime.

Random DAG-structured programs must always complete (deadlock-freeness
for per-iteration-acyclic graphs), with every operation performing all of
its iterations, regardless of placement, machine or seed.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeadlockError
from repro.orwl import Runtime
from repro.sim.process import Compute
from repro.topology import TopologySpec, build_topology, fig2_machine, smp12e5_4s


def dag_program(rt, n_tasks, edges, iters, completions):
    """Tasks 0..n-1; edge (a, b) with a < b: b reads a's location."""
    tasks = [rt.task(f"t{i}") for i in range(n_tasks)]
    locs = [t.location("out", 4096) for t in tasks]
    writers = {i: tasks[i].write_handle(locs[i], iterative=True)
               for i in range(n_tasks)}
    readers: dict[int, list] = {i: [] for i in range(n_tasks)}
    for a, b in edges:
        readers[b].append(tasks[b].read_handle(locs[a], iterative=True))

    for i, t in enumerate(tasks):

        def body(op, i=i):
            for _ in range(iters):
                yield from writers[i].acquire()
                yield Compute(1e4)
                writers[i].release()
                for h in readers[i]:
                    yield from h.acquire()
                    yield h.touch(64)
                    h.release()
            completions.append(i)

        t.set_body(body)


edge_lists = st.builds(
    lambda n, pairs: (n, sorted({(min(a, b % n), max(a, b % n))
                                 for a, b in pairs
                                 if min(a, b % n) != max(a, b % n)
                                 and min(a, b % n) < n and max(a, b % n) < n})),
    st.integers(min_value=2, max_value=10),
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=9),
                  st.integers(min_value=0, max_value=97)),
        max_size=16,
    ),
)


class TestDeadlockFreedom:
    @settings(max_examples=30, deadline=None)
    @given(edge_lists, st.integers(min_value=1, max_value=4),
           st.booleans(), st.integers(min_value=0, max_value=3))
    def test_random_dags_complete(self, spec, iters, affinity, seed):
        n, edges = spec
        rt = Runtime(fig2_machine(), affinity=affinity, seed=seed)
        completions = []
        dag_program(rt, n, edges, iters, completions)
        rt.run()
        assert sorted(completions) == list(range(n))

    @settings(max_examples=10, deadline=None)
    @given(edge_lists)
    def test_dags_complete_on_ht_machine(self, spec):
        n, edges = spec
        rt = Runtime(smp12e5_4s(), affinity=True, seed=1)
        completions = []
        dag_program(rt, n, edges, 2, completions)
        rt.run()
        assert len(completions) == n

    def test_oversubscribed_program_completes(self):
        """More operations than PUs: OS time-shares, still completes."""
        topo = build_topology(
            TopologySpec(name="mini", numa_per_group=1, cores_per_socket=2)
        )
        rt = Runtime(topo, affinity=False, seed=0)
        completions = []
        dag_program(rt, 8, [(i, i + 1) for i in range(7)], 3, completions)
        rt.run()
        assert len(completions) == 8

    def test_oversubscribed_with_affinity_completes(self):
        topo = build_topology(
            TopologySpec(name="mini", numa_per_group=1, cores_per_socket=2)
        )
        rt = Runtime(topo, affinity=True, seed=0)
        completions = []
        dag_program(rt, 6, [(0, 1), (1, 2), (0, 3)], 2, completions)
        rt.run()
        assert len(completions) == 6


class TestFailureInjection:
    def test_missing_release_deadlocks_cleanly(self):
        """A task that forgets to release blocks its reader; the engine
        reports a DeadlockError naming the stuck thread."""
        rt = Runtime(fig2_machine(), affinity=False)
        a, b = rt.task("a"), rt.task("b")
        loc = a.location("out", 64)
        hw = a.write_handle(loc, iterative=True)
        hr = b.read_handle(loc, iterative=True)

        def writer(op):
            yield from hw.acquire()
            # forgot hw.release()

        def reader(op):
            yield from hr.acquire()
            hr.release()

        a.set_body(writer)
        b.set_body(reader)
        with pytest.raises(DeadlockError, match="b"):
            rt.run()

    def test_crashing_body_propagates_with_context(self):
        rt = Runtime(fig2_machine(), affinity=False)
        t = rt.task("boom")
        loc = t.location("out", 64)
        hw = t.write_handle(loc, iterative=True)

        def body(op):
            yield from hw.acquire()
            raise ValueError("injected fault")

        t.set_body(body)
        with pytest.raises(ValueError, match="injected fault"):
            rt.run()

    def test_double_acquire_rejected(self):
        from repro.errors import HandleStateError

        rt = Runtime(fig2_machine(), affinity=False)
        t = rt.task("a")
        loc = t.location("out", 64)
        hw = t.write_handle(loc, iterative=True)

        def body(op):
            yield from hw.acquire()
            yield from hw.acquire()  # misuse

        t.set_body(body)
        with pytest.raises(HandleStateError):
            rt.run()

    def test_cross_iteration_cycle_detected_as_deadlock(self):
        """Two tasks each read the other *before* writing: a true cycle
        the FIFO cannot resolve — must be reported, not hang."""
        rt = Runtime(fig2_machine(), affinity=False)
        a, b = rt.task("a"), rt.task("b")
        la, lb = a.location("la", 64), b.location("lb", 64)
        wa = a.write_handle(la, iterative=True)
        ra = a.read_handle(lb, iterative=True)
        ra.init_rank = -1  # force the read to precede b's write
        wb = b.write_handle(lb, iterative=True)
        rb = b.read_handle(la, iterative=True)
        rb.init_rank = -1

        def body_a(op):
            # reads b's data, holds it, then writes own: cycle with b.
            yield from ra.acquire()
            yield from wa.acquire()
            wa.release()
            ra.release()

        def body_b(op):
            yield from rb.acquire()
            yield from wb.acquire()
            wb.release()
            rb.release()

        a.set_body(body_a)
        b.set_body(body_b)
        # Reads precede writes at iteration 0, so this specific pattern
        # resolves; flip ranks to force the deadlock.
        ra.init_rank = 2
        rb.init_rank = 2
        with pytest.raises(DeadlockError):
            rt.run()
