"""Tests for the distance-aware MapGroups refinement."""

import numpy as np
import pytest

from repro.errors import MappingError
from repro.topology import fig2_machine, smp12e5, smp20e7
from repro.treematch import CommunicationMatrix, treematch_map
from repro.treematch.maporder import (
    child_distance_matrix,
    order_top_groups,
    placement_cost,
)


class TestChildDistance:
    def test_numa_root_children_equal_slit(self):
        topo = smp12e5()
        d = child_distance_matrix(topo)
        assert d.shape == (12, 12)
        assert d[0, 1] < d[0, 2] < d[0, 8]

    def test_blade_machine_uses_representatives(self):
        topo = fig2_machine()  # 2 blades at the root
        d = child_distance_matrix(topo)
        assert d.shape == (2, 2)
        assert d[0, 0] == d[1, 1]
        assert d[0, 1] > d[0, 0]


class TestOrderTopGroups:
    def test_shape_validation(self):
        with pytest.raises(MappingError):
            order_top_groups([[0], [1]], np.zeros((3, 3)), np.zeros((2, 2)))

    def test_two_groups_passthrough(self):
        groups = [[0, 1], [2, 3]]
        out = order_top_groups(groups, np.zeros((2, 2)), np.zeros((2, 2)))
        assert out == groups

    def test_heavy_pair_placed_adjacent(self):
        # 4 children on a line-like distance; groups 0 and 3 communicate.
        k = 4
        dist = np.abs(np.subtract.outer(range(k), range(k))).astype(float) + 1
        np.fill_diagonal(dist, 0)
        m = np.zeros((k, k))
        m[0, 3] = m[3, 0] = 100.0
        out = order_top_groups([[i] for i in range(k)], m, dist)
        slot = {g[0]: c for c, g in enumerate(out)}
        assert abs(slot[0] - slot[3]) == 1

    def test_never_worse_than_identity(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            k = 6
            m = rng.random((k, k)) * 10
            m = m + m.T
            np.fill_diagonal(m, 0)
            dist = rng.random((k, k)) * 5 + 1
            dist = dist + dist.T
            np.fill_diagonal(dist, 0)
            out = order_top_groups([[i] for i in range(k)], m, dist)
            slots = [0] * k
            for c, g in enumerate(out):
                slots[g[0]] = c
            assert placement_cost(m, slots, dist) <= placement_cost(
                m, list(range(k)), dist
            ) + 1e-9

    def test_partition_preserved(self):
        rng = np.random.default_rng(1)
        k = 8
        m = rng.random((k, k))
        m = m + m.T
        dist = np.ones((k, k)) - np.eye(k)
        groups = [[i, i + k] for i in range(k)]
        out = order_top_groups(groups, m, dist)
        assert sorted(x for g in out for x in g) == sorted(
            x for g in groups for x in g
        )


class TestIntegrationWithTreematch:
    def ring(self, n, w=100.0):
        m = np.zeros((n, n))
        for i in range(n):
            m[i, (i + 1) % n] = w
        return CommunicationMatrix(m)

    def test_distance_aware_not_worse(self):
        topo_a, topo_b = smp20e7(), smp20e7()
        comm = self.ring(40)  # 5 NUMA nodes' worth of tasks
        smart = treematch_map(topo_a, comm, distance_aware=True)
        naive = treematch_map(topo_b, comm, distance_aware=False)
        assert smart.cost(topo_a, comm) <= naive.cost(topo_b, comm) + 1e-9

    def test_distance_aware_helps_cross_node_pairs(self):
        """Two clusters of tasks that talk across the cluster boundary:
        distance-aware ordering must put them on adjacent NUMA nodes."""
        topo = smp12e5()
        n = 32  # 4 nodes worth of core-granular tasks
        m = np.zeros((n, n))
        for i in range(8):
            m[i, 8 + i] = 50.0  # block A talks to block B
            m[16 + i, 24 + i] = 50.0  # block C talks to block D
        comm = CommunicationMatrix(m)
        smart = treematch_map(topo, comm, distance_aware=True)
        naive = treematch_map(topo, comm, distance_aware=False)
        assert smart.cost(topo, comm) <= naive.cost(topo, comm)
        assert smart.slit_cost(topo, comm) <= naive.slit_cost(topo, comm)

    def test_deterministic(self):
        topo = smp20e7()
        comm = self.ring(24)
        a = treematch_map(topo, comm)
        b = treematch_map(topo, comm)
        assert a.thread_to_pu == b.thread_to_pu
