"""Tests for the experiment harness: scales, series, report rendering."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.experiments import (
    PAPER,
    QUICK,
    Scale,
    current_scale,
    fig1_comm_matrix,
    fig2_allocation,
    fig4_lk23,
    fig5_matmul,
    fig6_video,
    format_figure,
    format_table,
    table1_machines,
)
from repro.experiments.figures import comm_matrix_ascii
from repro.experiments.report import format_counter_rows
from repro.experiments.runner import FigureResult, Series
from repro.experiments.tables import CounterRow

TINY = Scale("tiny", lk23_n=256, lk23_iterations=2, matmul_n=512,
             video_frames=3, video_frames_4k=2)


class TestScales:
    def test_defaults(self):
        assert QUICK.name == "quick"
        assert PAPER.lk23_n == 16384
        assert PAPER.lk23_iterations == 100

    def test_env_selection(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale() is QUICK
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert current_scale() is PAPER
        monkeypatch.setenv("REPRO_SCALE", "enormous")
        with pytest.raises(ReproError):
            current_scale()

    def test_scale_validation(self):
        with pytest.raises(ReproError):
            Scale("bad", 0, 1, 1, 1, 1)


class TestSeries:
    def test_value_at(self):
        s = Series("a", [1, 2, 3], [10.0, 20.0, 30.0])
        assert s.value_at(2) == 20.0
        with pytest.raises(ReproError):
            s.value_at(99)

    def test_length_mismatch(self):
        with pytest.raises(ReproError):
            Series("a", [1], [1.0, 2.0])

    def test_figure_lookup(self):
        fig = FigureResult("f", "t", "x", "y", [Series("a", [1], [1.0])])
        assert fig.series_by_label("a").y == [1.0]
        with pytest.raises(ReproError):
            fig.series_by_label("missing")


class TestFigureGeneration:
    def test_fig4_series_structure(self):
        fig = fig4_lk23("SMP12E5", scale=TINY, cores=[4, 8])
        assert {s.label for s in fig.series} == {
            "ORWL", "ORWL (affinity)", "OpenMP", "OpenMP (affinity)",
        }
        for s in fig.series:
            assert s.x == [4, 8]
            assert all(v > 0 for v in s.y)

    def test_fig4_unknown_machine(self):
        with pytest.raises(ReproError):
            fig4_lk23("VAX-11", scale=TINY)

    def test_fig5_series_structure(self):
        fig = fig5_matmul("SMP20E7", scale=TINY, cores=[2, 8])
        assert len(fig.series) == 5
        assert all(len(s.y) == 2 for s in fig.series)

    def test_fig6_requires_4s_machine(self):
        with pytest.raises(ReproError):
            fig6_video("SMP12E5", scale=TINY)

    def test_fig6_series(self):
        fig = fig6_video("SMP20E7-4S", scale=TINY, resolutions=["HD"])
        assert {s.label for s in fig.series} == {
            "Sequential", "OpenMP", "OpenMP (Affinity)", "ORWL",
            "ORWL (Affinity)",
        }

    def test_fig1_reproducible(self):
        a, _ = fig1_comm_matrix()
        b, _ = fig1_comm_matrix()
        assert np.array_equal(a.raw, b.raw)

    def test_fig2_renders_labels(self):
        text, info = fig2_allocation()
        assert "producer" in text
        assert "gmm" in text
        assert "<control>" in text


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.000001]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("bb")

    def test_format_figure(self):
        fig = FigureResult(
            "figX", "demo", "cores", "s",
            [Series("one", [1, 2], [0.5, 0.25])],
        )
        out = format_figure(fig)
        assert "figX: demo [s]" in out
        assert "one" in out

    def test_format_counter_rows(self):
        rows = [CounterRow("V", 1e9, 2e9, 100, 0, 1.5)]
        out = format_counter_rows("T", rows)
        assert "CPU migrations" in out
        assert "V" in out

    def test_comm_matrix_ascii_shapes(self):
        comm, _ = fig1_comm_matrix()
        art = comm_matrix_ascii(comm, width=1)
        lines = art.splitlines()
        assert len(lines) == comm.order
        assert all(len(line) == comm.order for line in lines)

    def test_table1_contents(self):
        rows = table1_machines()
        assert [r["Name"] for r in rows] == ["SMP12E5", "SMP20E7"]
        assert rows[0]["Clock rate"] == "2600MHz"
