"""Tests for the program linter and the trace Gantt rendering."""


from repro.orwl import Runtime
from repro.sim.process import Compute
from repro.topology import fig2_machine


def issue_codes(rt):
    return sorted(i.code for i in rt.validate())


class TestLint:
    def test_clean_pipeline_has_no_warnings(self):
        rt = Runtime(fig2_machine(), affinity=False)
        a, b = rt.task("a"), rt.task("b")
        loc = a.location("chan", 64)
        a.write_handle(loc, iterative=True)
        b.read_handle(loc, iterative=True)
        issues = rt.validate()
        assert [i for i in issues if i.level == "warning"] == []

    def test_unread_location_noted(self):
        rt = Runtime(fig2_machine(), affinity=False)
        a = rt.task("a")
        loc = a.location("out", 64)
        a.write_handle(loc, iterative=True)
        assert "unread-location" in issue_codes(rt)

    def test_writerless_location_warned(self):
        rt = Runtime(fig2_machine(), affinity=False)
        a, b = rt.task("a"), rt.task("b")
        loc = a.location("src", 64)
        b.read_handle(loc, iterative=True)
        codes = issue_codes(rt)
        assert "writerless-location" in codes
        assert "absent-owner" in codes

    def test_orphan_location_warned(self):
        rt = Runtime(fig2_machine(), affinity=False)
        a = rt.task("a")
        a.location("dead", 64)
        assert "orphan-location" in issue_codes(rt)

    def test_handleless_operation_noted(self):
        rt = Runtime(fig2_machine(), affinity=False)
        a, b = rt.task("a"), rt.task("b")
        loc = a.location("x", 64)
        a.write_handle(loc, iterative=True)
        b.main_op  # op with no handles
        assert "handleless-operation" in issue_codes(rt)

    def test_mixed_iteration_noted(self):
        rt = Runtime(fig2_machine(), affinity=False)
        a, b = rt.task("a"), rt.task("b")
        loc = a.location("x", 64)
        a.write_handle(loc, iterative=True)
        b.read_handle(loc, iterative=False)
        assert "mixed-iteration" in issue_codes(rt)

    def test_issue_levels(self):
        rt = Runtime(fig2_machine(), affinity=False)
        a = rt.task("a")
        a.location("dead", 64)
        levels = {i.level for i in rt.validate()}
        assert levels <= {"warning", "note"}


class TestGantt:
    def run_traced(self):
        rt = Runtime(fig2_machine(), affinity=True, trace=True)
        a, b = rt.task("a"), rt.task("b")
        loc = a.location("chan", 4096)
        hw = a.write_handle(loc, iterative=True)
        hr = b.read_handle(loc, iterative=True)

        def wbody(op):
            for _ in range(3):
                yield from hw.acquire()
                yield Compute(1e6)
                hw.release()

        def rbody(op):
            for _ in range(3):
                yield from hr.acquire()
                yield Compute(1e6)
                hr.release()

        a.set_body(wbody)
        b.set_body(rbody)
        res = rt.run()
        return res

    def test_gantt_renders_rows(self):
        res = self.run_traced()
        chart = res.machine.trace.gantt(
            names={t.tid: t.name for t in res.machine.threads}, width=40
        )
        lines = chart.splitlines()
        assert len(lines) == len(res.machine.threads)
        assert any("#" in ln for ln in lines)
        assert any("a/op0" in ln for ln in lines)

    def test_gantt_width_respected(self):
        res = self.run_traced()
        chart = res.machine.trace.gantt(width=25)
        for line in chart.splitlines():
            bar = line.split("|")[1]
            assert len(bar) == 25

    def test_empty_trace(self):
        from repro.sim.trace import Trace

        assert Trace().gantt() == "(empty trace)"

    def test_max_threads_cap(self):
        res = self.run_traced()
        chart = res.machine.trace.gantt(max_threads=1)
        assert len(chart.splitlines()) == 1


class TestDeterminism:
    def test_same_seed_same_result(self):
        def run(seed):
            rt = Runtime(fig2_machine(), affinity=False, seed=seed)
            tasks = [rt.task(f"t{i}") for i in range(6)]
            locs = [t.location("l", 8192) for t in tasks]
            for i, t in enumerate(tasks):
                hw = t.write_handle(locs[i], iterative=True)
                hr = t.read_handle(locs[i - 1], iterative=True)

                def body(op, hw=hw, hr=hr):
                    for _ in range(5):
                        yield from hw.acquire()
                        yield Compute(2e6)
                        hw.release()
                        yield from hr.acquire()
                        yield hr.touch()
                        hr.release()

                t.set_body(body)
            res = rt.run()
            return (res.seconds, res.counters.cpu_migrations,
                    res.counters.context_switches, res.counters.l3_misses)

        assert run(7) == run(7)

    def test_different_seed_may_differ_but_completes(self):
        def run(seed):
            rt = Runtime(fig2_machine(), affinity=False, seed=seed)
            t = rt.task("t")
            loc = t.location("l", 64)
            h = t.write_handle(loc, iterative=True)

            def body(op):
                for _ in range(50):
                    yield from h.acquire()
                    yield Compute(5e7)
                    h.release()

            t.set_body(body)
            return rt.run().seconds

        assert run(1) > 0 and run(2) > 0


class TestFindingFormatting:
    """The findings model contract (Issue is an alias of Finding now)."""

    def test_str_format(self):
        from repro.orwl.lint import Issue

        issue = Issue("warning", "writerless-location",
                      "location 'src' has readers but no writer")
        assert str(issue) == (
            "[warning] writerless-location: "
            "location 'src' has readers but no writer"
        )

    def test_issue_is_finding_alias(self):
        from repro.analyze.report import Finding
        from repro.orwl.lint import Issue

        assert Issue is Finding

    def test_level_aliases_severity(self):
        from repro.orwl.lint import Issue

        issue = Issue("note", "x", "m")
        assert issue.level == issue.severity == "note"

    def test_stable_finding_order(self):
        from repro.analyze.report import Finding, sort_findings

        notes_first = [
            Finding("note", "b-code", "m"),
            Finding("warning", "z-code", "m", subject="s2"),
            Finding("warning", "z-code", "m", subject="s1"),
            Finding("error", "a-code", "m"),
        ]
        ordered = sort_findings(notes_first)
        assert [f.severity for f in ordered] == [
            "error", "warning", "warning", "note"
        ]
        # ties broken by code then subject, deterministically
        assert [f.subject for f in ordered[1:3]] == ["s1", "s2"]
        assert sort_findings(list(reversed(notes_first))) == ordered

    def test_validate_returns_canonical_order(self):
        rt = Runtime(fig2_machine(), affinity=False)
        a = rt.task("a")
        a.location("dead_b", 64)
        a.location("dead_a", 64)
        issues = rt.validate()
        from repro.analyze.report import sort_findings

        assert issues == sort_findings(issues)


class TestLintSplitPrograms:
    """Regression: handles attached via orwl_split / orwl_fifo extensions
    count as attachments — split programs are not orphan-location."""

    def test_split_readers_not_orphan(self):
        from repro.orwl.split import split_readers

        rt = Runtime(fig2_machine(), affinity=False)
        writer = rt.task("w")
        readers = [rt.task(f"r{i}") for i in range(3)]
        loc = writer.location("frame", 4096)
        writer.write_handle(loc, iterative=True)
        split_readers(loc, [t.main_op for t in readers])
        codes = issue_codes(rt)
        assert "orphan-location" not in codes
        assert "unread-location" not in codes

    def test_split_only_location_not_orphan(self):
        # Even a location reached *exclusively* through ext handles is
        # attached: this was the spurious-orphan bug.
        from repro.orwl.split import split_readers

        rt = Runtime(fig2_machine(), affinity=False)
        owner = rt.task("owner")
        reader = rt.task("r")
        loc = owner.location("shared", 1024)
        split_readers(loc, [reader.main_op])
        assert "orphan-location" not in issue_codes(rt)

    def test_fifo_channel_slots_not_orphan(self):
        from repro.orwl.split import fifo_channel

        rt = Runtime(fig2_machine(), affinity=False)
        prod, cons = rt.task("prod"), rt.task("cons")
        chan = fifo_channel(prod.main_op, "pipe", 256, depth=3)
        chan.writer(prod.main_op)
        chan.reader(cons.main_op)
        codes = issue_codes(rt)
        assert "orphan-location" not in codes
        assert "writerless-location" not in codes
