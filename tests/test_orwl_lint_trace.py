"""Tests for the program linter and the trace Gantt rendering."""

import pytest

from repro.orwl import Runtime
from repro.sim.process import Compute
from repro.topology import fig2_machine


def issue_codes(rt):
    return sorted(i.code for i in rt.validate())


class TestLint:
    def test_clean_pipeline_has_no_warnings(self):
        rt = Runtime(fig2_machine(), affinity=False)
        a, b = rt.task("a"), rt.task("b")
        loc = a.location("chan", 64)
        a.write_handle(loc, iterative=True)
        b.read_handle(loc, iterative=True)
        issues = rt.validate()
        assert [i for i in issues if i.level == "warning"] == []

    def test_unread_location_noted(self):
        rt = Runtime(fig2_machine(), affinity=False)
        a = rt.task("a")
        loc = a.location("out", 64)
        a.write_handle(loc, iterative=True)
        assert "unread-location" in issue_codes(rt)

    def test_writerless_location_warned(self):
        rt = Runtime(fig2_machine(), affinity=False)
        a, b = rt.task("a"), rt.task("b")
        loc = a.location("src", 64)
        b.read_handle(loc, iterative=True)
        codes = issue_codes(rt)
        assert "writerless-location" in codes
        assert "absent-owner" in codes

    def test_orphan_location_warned(self):
        rt = Runtime(fig2_machine(), affinity=False)
        a = rt.task("a")
        a.location("dead", 64)
        assert "orphan-location" in issue_codes(rt)

    def test_handleless_operation_noted(self):
        rt = Runtime(fig2_machine(), affinity=False)
        a, b = rt.task("a"), rt.task("b")
        loc = a.location("x", 64)
        a.write_handle(loc, iterative=True)
        b.main_op  # op with no handles
        assert "handleless-operation" in issue_codes(rt)

    def test_mixed_iteration_noted(self):
        rt = Runtime(fig2_machine(), affinity=False)
        a, b = rt.task("a"), rt.task("b")
        loc = a.location("x", 64)
        a.write_handle(loc, iterative=True)
        b.read_handle(loc, iterative=False)
        assert "mixed-iteration" in issue_codes(rt)

    def test_issue_levels(self):
        rt = Runtime(fig2_machine(), affinity=False)
        a = rt.task("a")
        a.location("dead", 64)
        levels = {i.level for i in rt.validate()}
        assert levels <= {"warning", "note"}


class TestGantt:
    def run_traced(self):
        rt = Runtime(fig2_machine(), affinity=True, trace=True)
        a, b = rt.task("a"), rt.task("b")
        loc = a.location("chan", 4096)
        hw = a.write_handle(loc, iterative=True)
        hr = b.read_handle(loc, iterative=True)

        def wbody(op):
            for _ in range(3):
                yield from hw.acquire()
                yield Compute(1e6)
                hw.release()

        def rbody(op):
            for _ in range(3):
                yield from hr.acquire()
                yield Compute(1e6)
                hr.release()

        a.set_body(wbody)
        b.set_body(rbody)
        res = rt.run()
        return res

    def test_gantt_renders_rows(self):
        res = self.run_traced()
        chart = res.machine.trace.gantt(
            names={t.tid: t.name for t in res.machine.threads}, width=40
        )
        lines = chart.splitlines()
        assert len(lines) == len(res.machine.threads)
        assert any("#" in ln for ln in lines)
        assert any("a/op0" in ln for ln in lines)

    def test_gantt_width_respected(self):
        res = self.run_traced()
        chart = res.machine.trace.gantt(width=25)
        for line in chart.splitlines():
            bar = line.split("|")[1]
            assert len(bar) == 25

    def test_empty_trace(self):
        from repro.sim.trace import Trace

        assert Trace().gantt() == "(empty trace)"

    def test_max_threads_cap(self):
        res = self.run_traced()
        chart = res.machine.trace.gantt(max_threads=1)
        assert len(chart.splitlines()) == 1


class TestDeterminism:
    def test_same_seed_same_result(self):
        def run(seed):
            rt = Runtime(fig2_machine(), affinity=False, seed=seed)
            tasks = [rt.task(f"t{i}") for i in range(6)]
            locs = [t.location("l", 8192) for t in tasks]
            for i, t in enumerate(tasks):
                hw = t.write_handle(locs[i], iterative=True)
                hr = t.read_handle(locs[i - 1], iterative=True)

                def body(op, hw=hw, hr=hr):
                    for _ in range(5):
                        yield from hw.acquire()
                        yield Compute(2e6)
                        hw.release()
                        yield from hr.acquire()
                        yield hr.touch()
                        hr.release()

                t.set_body(body)
            res = rt.run()
            return (res.seconds, res.counters.cpu_migrations,
                    res.counters.context_switches, res.counters.l3_misses)

        assert run(7) == run(7)

    def test_different_seed_may_differ_but_completes(self):
        def run(seed):
            rt = Runtime(fig2_machine(), affinity=False, seed=seed)
            t = rt.task("t")
            loc = t.location("l", 64)
            h = t.write_handle(loc, iterative=True)

            def body(op):
                for _ in range(50):
                    yield from h.acquire()
                    yield Compute(5e7)
                    h.release()

            t.set_body(body)
            return rt.run().seconds

        assert run(1) > 0 and run(2) > 0
