"""Tiny-scale unit tests for the counter-table generators."""


from repro.experiments import (
    TINY,
    table2_lk23_counters,
    table3_matmul_counters,
    table4_video_counters,
)
from repro.experiments.tables import CounterRow


class TestCounterRow:
    def test_from_counters(self):
        from repro.sim.counters import Counters

        c = Counters()
        c.l3_misses = 7
        c.context_switches = 3
        row = CounterRow.from_counters("X", c, 1.5)
        assert row.variant == "X"
        assert row.l3_misses == 7
        assert row.seconds == 1.5


class TestTableGenerators:
    def test_table2_variants_and_ordering(self):
        rows = table2_lk23_counters(scale=TINY, cores=16)
        assert [r.variant for r in rows] == [
            "ORWL", "ORWL (Affinity)", "OpenMP", "OpenMP (Affinity)",
        ]
        by = {r.variant: r for r in rows}
        assert by["ORWL (Affinity)"].cpu_migrations == 0
        assert by["OpenMP (Affinity)"].cpu_migrations == 0
        assert all(r.seconds > 0 for r in rows)

    def test_table3_variants(self):
        rows = table3_matmul_counters(scale=TINY, cores=16)
        assert [r.variant for r in rows] == [
            "ORWL", "ORWL (Affinity)", "MKL",
            "MKL (Affinity scatter)", "MKL (Affinity compact)",
        ]
        by = {r.variant: r for r in rows}
        assert by["ORWL (Affinity)"].cpu_migrations == 0
        assert by["MKL (Affinity scatter)"].cpu_migrations == 0

    def test_table4_variants(self):
        rows = table4_video_counters(scale=TINY)
        assert [r.variant for r in rows] == [
            "ORWL", "ORWL (Affinity)", "OpenMP", "OpenMP (Affinity)",
        ]
        assert all(r.seconds > 0 for r in rows)

    def test_custom_machine_choice(self):
        rows = table2_lk23_counters(scale=TINY, cores=8,
                                    machine_name="SMP20E7")
        assert len(rows) == 4
