"""Warm-started TreeMatch: the contract the adaptive controller relies on.

The controller re-runs ``treematch_map`` seeded with the *current*
placement whenever drift trips. That is only sound if:

* a warm start seeded with a placement's own groups is a fixed point —
  bit-identical output, never a worse cost (the controller's no-op
  remap cannot degrade a running program);
* a warm start from a *perturbed* placement converges in fewer refine
  rounds than grouping from scratch (counted via ``refine_stats``, not
  timed — determinism over wall clock);
* structurally incompatible seeds are rejected loudly instead of
  producing a silently wrong placement.

Instances come from the multilevel quality gallery
(:data:`tests.test_treematch_multilevel.GALLERY`): 21 deterministic
stencil/clustered/ring matrices mapped onto SMP20E7.
"""

import dataclasses

import pytest

from repro.errors import MappingError
from repro.topology import machine_by_name
from repro.treematch import treematch_map
from tests.test_treematch_multilevel import GALLERY, pattern_matrix

pytestmark = pytest.mark.adaptive


def _perturb(placement):
    """Swap the first members of the first two level-0 groups.

    The smallest structurally valid disturbance: still a partition with
    the right group sizes, but no longer locally optimal.
    """
    level0 = [list(g) for g in placement.groups_per_level[0]]
    level0[0][0], level0[1][0] = level0[1][0], level0[0][0]
    new_levels = (tuple(tuple(g) for g in level0),) + \
        placement.groups_per_level[1:]
    return dataclasses.replace(placement, groups_per_level=new_levels)


class TestFixedPoint:
    @pytest.mark.parametrize("pattern,n,seed", GALLERY)
    def test_own_output_is_bit_identical_and_never_worse(
        self, pattern, n, seed
    ):
        topo = machine_by_name("SMP20E7")
        comm = pattern_matrix(pattern, n, seed)
        cold = treematch_map(topo, comm, engine="greedy")
        warm = treematch_map(topo, comm, engine="greedy", warm_start=cold)
        assert warm == cold  # bit-identical placement, groups included
        assert warm.cost(topo, comm) <= cold.cost(topo, comm)


class TestPerturbedConvergence:
    def test_fewer_refine_rounds_than_cold_on_gallery_aggregate(self):
        # Per-instance sweep counts can tie on easy matrices; the
        # aggregate over all 21 instances must strictly favour the warm
        # start, and no instance may converge to a worse placement.
        topo = machine_by_name("SMP20E7")
        cold_sweeps = warm_sweeps = 0
        for pattern, n, seed in GALLERY:
            comm = pattern_matrix(pattern, n, seed)
            cold_stats: dict = {}
            cold = treematch_map(
                topo, comm, engine="greedy", refine_stats=cold_stats
            )
            warm_stats: dict = {}
            warm = treematch_map(
                topo, comm, engine="greedy",
                warm_start=_perturb(cold), refine_stats=warm_stats,
            )
            cold_sweeps += cold_stats["sweeps"]
            warm_sweeps += warm_stats["sweeps"]
            assert warm.cost(topo, comm) <= cold.cost(topo, comm) * (1 + 1e-9)
        assert warm_sweeps < cold_sweeps


class TestSeedValidation:
    def _cold(self):
        topo = machine_by_name("SMP20E7")
        comm = pattern_matrix("stencil", 640, 0)
        return topo, comm, treematch_map(topo, comm, engine="greedy")

    def test_topology_mismatch_rejected(self):
        topo, comm, cold = self._cold()
        alien = dataclasses.replace(cold, topology_name="SMP24E5")
        with pytest.raises(MappingError, match="was computed for"):
            treematch_map(topo, comm, warm_start=alien)

    def test_groupless_placement_rejected(self):
        # Multilevel placements record no per-level groups and cannot
        # seed the direct pipeline.
        topo, comm, cold = self._cold()
        bare = dataclasses.replace(cold, groups_per_level=())
        with pytest.raises(MappingError, match="records no per-level"):
            treematch_map(topo, comm, warm_start=bare)

    def test_level_count_mismatch_rejected(self):
        topo, comm, cold = self._cold()
        short = dataclasses.replace(
            cold, groups_per_level=cold.groups_per_level[:-1]
        )
        with pytest.raises(MappingError, match="grouping levels"):
            treematch_map(topo, comm, warm_start=short)

    def test_non_partition_level_rejected(self):
        topo, comm, cold = self._cold()
        level0 = [list(g) for g in cold.groups_per_level[0]]
        level0[0][0] = level0[1][0]  # duplicate a member
        broken = dataclasses.replace(
            cold,
            groups_per_level=(tuple(tuple(g) for g in level0),)
            + cold.groups_per_level[1:],
        )
        with pytest.raises(MappingError, match="partition"):
            treematch_map(topo, comm, warm_start=broken)
