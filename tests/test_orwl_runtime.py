"""Integration tests: full ORWL programs on the simulated machine."""

import numpy as np
import pytest

from repro.errors import ORWLError
from repro.orwl import Runtime
from repro.orwl.split import split_readers
from repro.sim.process import Compute
from repro.topology import fig2_machine, smp12e5, smp20e7


def pipeline_runtime(topology, n=6, iters=4, affinity=False, log=None):
    """Listing-1 style pipeline: task i writes own loc, reads loc i-1."""
    rt = Runtime(topology, affinity=affinity)
    tasks = [rt.task(f"t{i}") for i in range(n)]
    locs = [t.location("main_loc", 4096) for t in tasks]
    for i, t in enumerate(tasks):
        here = t.write_handle(locs[i], iterative=True)
        there = t.read_handle(locs[i - 1], iterative=True) if i else None

        def body(op, i=i, here=here, there=there):
            for it in range(iters):
                yield from here.acquire()
                yield here.touch()
                yield Compute(1e5)
                if there is not None:
                    yield from there.acquire()
                    yield there.touch()
                    if log is not None:
                        log.append((i, it))
                    there.release()
                elif log is not None:
                    log.append((i, it))
                here.release()

        t.set_body(body)
    return rt


class TestPipelineExecution:
    def test_completes_without_deadlock(self):
        rt = pipeline_runtime(fig2_machine())
        res = rt.run()
        assert res.seconds > 0

    def test_iteration_order_respects_dependencies(self):
        log = []
        rt = pipeline_runtime(fig2_machine(), n=4, iters=3, log=log)
        rt.run()
        # Task i reading iteration `it` must come after task i-1 logged it.
        pos = {entry: k for k, entry in enumerate(log)}
        for i in range(1, 4):
            for it in range(3):
                assert pos[(i, it)] > pos[(i - 1, it)]

    def test_every_task_runs_all_iterations(self):
        log = []
        rt = pipeline_runtime(fig2_machine(), n=5, iters=4, log=log)
        rt.run()
        assert len(log) == 5 * 4

    def test_run_calls_schedule_implicitly(self):
        rt = pipeline_runtime(fig2_machine())
        assert not rt._scheduled
        rt.run()
        assert rt._scheduled

    def test_run_twice_rejected(self):
        rt = pipeline_runtime(fig2_machine())
        rt.run()
        with pytest.raises(ORWLError):
            rt.run()

    def test_control_threads_spawned_per_location(self):
        rt = pipeline_runtime(fig2_machine(), n=4)
        res = rt.run()
        controls = [t for t in res.machine.threads if t.kind == "control"]
        assert len(controls) == 4

    def test_counters_split_by_kind(self):
        rt = pipeline_runtime(fig2_machine())
        res = rt.run()
        assert res.compute_counters.flops > 0
        assert res.control_counters.flops > 0  # control activations burn cycles
        assert res.counters.flops == pytest.approx(
            res.compute_counters.flops + res.control_counters.flops
        )


class TestAffinityIntegration:
    def test_affinity_env_variable(self, monkeypatch):
        monkeypatch.setenv("ORWL_AFFINITY", "1")
        rt = Runtime(fig2_machine())
        assert rt.affinity_enabled
        monkeypatch.setenv("ORWL_AFFINITY", "0")
        assert not Runtime(fig2_machine()).affinity_enabled

    def test_affinity_binds_all_compute_threads(self):
        rt = pipeline_runtime(smp20e7(), affinity=True)
        res = rt.run()
        compute = [t for t in res.machine.threads if t.kind == "compute"]
        assert all(t.cpuset is not None and len(t.cpuset) == 1 for t in compute)
        assert res.counters.cpu_migrations == 0

    def test_affinity_ht_machine_reserves_siblings(self):
        rt = pipeline_runtime(smp12e5(), affinity=True)
        res = rt.run()
        assert res.placement.control_mode == "ht-sibling"
        compute_pus = set(res.placement.thread_to_pu.values())
        control_pus = set(res.placement.control_to_pu.values())
        assert compute_pus.isdisjoint(control_pus)

    def test_affinity_faster_than_native_at_scale(self):
        n, iters = 24, 6
        nat = pipeline_runtime(smp20e7(), n=n, iters=iters, affinity=False).run()
        aff = pipeline_runtime(smp20e7(), n=n, iters=iters, affinity=True).run()
        assert aff.seconds <= nat.seconds

    def test_manual_affinity_api(self):
        rt = pipeline_runtime(fig2_machine(), affinity=False)
        rt.schedule()
        comm = rt.dependency_get()
        assert comm.order == 6
        placement = rt.affinity_compute()
        assert len(placement.thread_to_pu) == 6
        with pytest.raises(ORWLError):
            # affinity_set before threads exist (run not called)
            rt.affinity_set()

    def test_dependency_matrix_contents(self):
        rt = pipeline_runtime(fig2_machine(), n=4)
        rt.schedule()
        comm = rt.dependency_get()
        raw = comm.raw
        # task i reads loc of i-1: entry [i, i-1] = 4096 bytes
        for i in range(1, 4):
            assert raw[i, i - 1] == 4096.0
        assert raw[0].sum() == 0.0  # task 0 reads nothing


class TestSplitReaders:
    def test_split_traffic_fractions(self):
        rt = Runtime(fig2_machine(), affinity=False)
        owner = rt.task("owner")
        loc = owner.location("big", 1 << 20)
        readers = [rt.task(f"r{i}") for i in range(4)]
        handles = split_readers(loc, [t.main_op for t in readers])
        assert all(h.traffic == (1 << 20) / 4 for h in handles)

    def test_split_rejects_empty(self):
        rt = Runtime(fig2_machine(), affinity=False)
        owner = rt.task("owner")
        loc = owner.location("big", 64)
        with pytest.raises(ORWLError):
            split_readers(loc, [])

    def test_split_readers_coalesce_at_runtime(self):
        """All split readers of one iteration read concurrently."""
        rt = Runtime(fig2_machine(), affinity=False, trace=True)
        owner = rt.task("owner")
        loc = owner.location("big", 1 << 16)
        hw = owner.write_handle(loc, iterative=True)
        iters = 3
        concurrent = []

        def owner_body(op):
            for _ in range(iters):
                yield from hw.acquire()
                yield hw.touch()
                hw.release()

        owner.set_body(owner_body)
        readers = [rt.task(f"r{i}") for i in range(4)]
        active = [0]
        handles = split_readers(loc, [t.main_op for t in readers])
        for t, h in zip(readers, handles):

            def body(op, h=h):
                for _ in range(iters):
                    yield from h.acquire()
                    active[0] += 1
                    concurrent.append(active[0])
                    yield h.touch()
                    active[0] -= 1
                    h.release()

            t.set_body(body)
        rt.run()
        assert max(concurrent) > 1  # readers overlapped


class TestRingAndContention:
    def test_ring_of_writers_and_readers(self):
        """Ring topology (matmul-style) runs to completion."""
        rt = Runtime(smp20e7(), affinity=True)
        n, phases = 8, 8
        tasks = [rt.task(f"r{i}") for i in range(n)]
        locs = [t.location("slot", 8192) for t in tasks]
        for i, t in enumerate(tasks):
            own = t.write_handle(locs[i], iterative=True)
            prev = t.read_handle(locs[(i - 1) % n], iterative=True)

            def body(op, own=own, prev=prev):
                for k in range(phases):
                    yield from own.acquire()
                    yield own.touch()
                    yield Compute(1e5)
                    own.release()
                    if k < phases - 1:
                        yield from prev.acquire()
                        yield prev.touch()
                        prev.release()

            t.set_body(body)
        res = rt.run()
        assert res.seconds > 0

    def test_many_readers_one_writer(self):
        rt = Runtime(fig2_machine(), affinity=False)
        owner = rt.task("w")
        loc = owner.location("shared", 4096)
        hw = owner.write_handle(loc, iterative=True)
        iters = 4

        def wbody(op):
            for _ in range(iters):
                yield from hw.acquire()
                yield hw.touch()
                hw.release()

        owner.set_body(wbody)
        for i in range(6):
            t = rt.task(f"r{i}")
            hr = t.read_handle(loc, iterative=True)

            def rbody(op, hr=hr):
                for _ in range(iters):
                    yield from hr.acquire()
                    yield hr.touch()
                    hr.release()

            t.set_body(rbody)
        res = rt.run()
        assert res.seconds > 0


class TestDataMode:
    def test_data_travels_through_locations(self):
        rt = Runtime(fig2_machine(), affinity=False)
        a, b = rt.task("a"), rt.task("b")
        loc = a.location("chan", 64)
        hw = a.write_handle(loc, iterative=True)
        hr = b.read_handle(loc, iterative=True)
        received = []

        def writer(op):
            for i in range(3):
                yield from hw.acquire()
                hw.store(np.array([i, i * 10]))
                hw.release()

        def reader(op):
            for _ in range(3):
                yield from hr.acquire()
                received.append(hr.map().copy())
                hr.release()

        a.set_body(writer)
        b.set_body(reader)
        rt.run()
        assert [list(r) for r in received] == [[0, 0], [1, 10], [2, 20]]
