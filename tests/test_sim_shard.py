"""Sharded multi-machine simulation: determinism, protocol, validation.

The load-bearing property is worker invariance: the conservative
window protocol totally orders cross-shard messages by simulation
content alone, so the global fingerprint must be bit-identical whether
the shards run inline in one process or spread over forked workers.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.simcore

from repro.errors import DeadlockError, SimulationError
from repro.sim import (
    Channel,
    Scenario,
    ShardSpec,
    Wait,
    halo_ring_scenario,
    run_sharded,
)
from repro.sim.shard import SHARD_PROGRAMS, register_program


def small_ring(n_shards: int = 2, *, seed: int = 0, latency: float = 5e7):
    return halo_ring_scenario(
        n_shards,
        width=4,
        iters=2,
        flops=4e6,
        nbytes=1 << 13,
        latency=latency,
        seed=seed,
    )


class TestWorkerInvariance:
    def test_fingerprint_invariant_under_worker_count(self):
        scenario = halo_ring_scenario(
            4, width=6, iters=3, flops=6e6, nbytes=1 << 13, latency=5e7
        )
        results = [
            run_sharded(scenario, workers=w) for w in (1, 2, 4)
        ]
        fps = {r.fingerprint for r in results}
        assert len(fps) == 1, [r.fingerprint for r in results]
        # And the derived aggregates agree, not just the hash.
        assert len({r.epochs for r in results}) == 1
        assert len({r.messages for r in results}) == 1
        assert len({r.events_processed for r in results}) == 1

    def test_workers_clamped_to_shard_count(self):
        res = run_sharded(small_ring(), workers=16)
        assert res.workers == 2

    def test_single_worker_reports_one(self):
        res = run_sharded(small_ring(), workers=1)
        assert res.workers == 1
        assert res.events_processed > 0
        assert res.messages > 0


class TestDeterminism:
    def test_same_scenario_same_fingerprint(self):
        a = run_sharded(small_ring(), workers=1)
        b = run_sharded(small_ring(), workers=1)
        assert a.fingerprint == b.fingerprint
        assert a.epochs == b.epochs

    def test_seed_changes_fingerprint(self):
        a = run_sharded(small_ring(seed=0), workers=1)
        b = run_sharded(small_ring(seed=99), workers=1)
        assert a.fingerprint != b.fingerprint

    def test_per_shard_results_are_complete(self):
        scenario = small_ring()
        res = run_sharded(scenario, workers=2)
        assert set(res.per_shard) == {s.name for s in scenario.shards}
        for shard in res.per_shard.values():
            assert shard["events_processed"] > 0
            assert all(
                t["state"] == "done" for t in shard["threads"]
            )


class TestProtocol:
    def test_smaller_window_same_content_more_epochs(self):
        # Halving the window below the lookahead is allowed (just more
        # barriers). The raw fingerprint moves — it hashes the final
        # horizon clock and epoch stamps, which scale with the window —
        # but the simulation *content* (every thread's counters and
        # states, per-shard event counts) must not.
        scenario = small_ring(latency=5e7)
        full = run_sharded(scenario, workers=1)
        half = run_sharded(scenario, workers=1, window=2.5e7)
        assert half.epochs > full.epochs
        for name in full.per_shard:
            assert half.per_shard[name]["threads"] == \
                full.per_shard[name]["threads"], name
            assert half.per_shard[name]["events_processed"] == \
                full.per_shard[name]["events_processed"], name

    def test_window_above_lookahead_rejected(self):
        with pytest.raises(SimulationError, match="lookahead"):
            run_sharded(small_ring(latency=5e7), workers=1, window=6e7)

    def test_window_must_be_positive(self):
        with pytest.raises(SimulationError, match="positive"):
            run_sharded(small_ring(), workers=1, window=0)

    def test_max_epochs_guard(self):
        # A tiny window forces many epochs; the guard must trip before
        # the run completes.
        with pytest.raises(SimulationError, match="max_epochs"):
            run_sharded(small_ring(), workers=1, window=1e3, max_epochs=5)

    def test_deadlock_detected(self):
        @register_program("_test_starved")
        def _build(ctx):  # pragma: no cover - body drives the deadlock
            halo_in = ctx.inbox_events("halo")

            def waiter():
                for ev in halo_in:
                    yield Wait(ev)  # nobody ever sends

            ctx.machine.add_thread("waiter", waiter(), kind="control")

        try:
            scenario = Scenario(
                (
                    ShardSpec.make("a", "_test_starved"),
                    ShardSpec.make("b", "_test_starved"),
                ),
                (
                    Channel("a", "b", "halo", 5e7),
                    Channel("b", "a", "halo", 5e7),
                ),
            )
            with pytest.raises(DeadlockError, match="blocked"):
                run_sharded(scenario, workers=1)
        finally:
            del SHARD_PROGRAMS["_test_starved"]


class TestValidation:
    def test_duplicate_shard_names(self):
        with pytest.raises(SimulationError, match="duplicate"):
            Scenario(
                (
                    ShardSpec.make("a", "halo_wide"),
                    ShardSpec.make("a", "halo_wide"),
                )
            )

    def test_unknown_channel_endpoint(self):
        with pytest.raises(SimulationError, match="unknown shard"):
            Scenario(
                (ShardSpec.make("a", "halo_wide"),),
                (Channel("a", "ghost", "halo", 1e6),),
            )

    def test_channel_latency_must_be_positive(self):
        with pytest.raises(SimulationError, match="latency"):
            Channel("a", "b", "halo", 0)

    def test_channel_self_loop_rejected(self):
        with pytest.raises(SimulationError, match="intra-shard"):
            Channel("a", "a", "halo", 1e6)

    def test_empty_scenario_rejected(self):
        with pytest.raises(SimulationError, match="no shards"):
            Scenario(())

    def test_channelless_scenario_has_no_window(self):
        scenario = Scenario((ShardSpec.make("a", "halo_wide"),))
        with pytest.raises(SimulationError, match="no channels"):
            _ = scenario.window

    def test_unknown_program_rejected(self):
        scenario = Scenario(
            (
                ShardSpec.make("a", "no_such_program"),
                ShardSpec.make("b", "halo_wide"),
            ),
            (
                Channel("a", "b", "halo", 5e7),
                Channel("b", "a", "halo", 5e7),
            ),
        )
        with pytest.raises(SimulationError, match="unknown shard program"):
            run_sharded(scenario, workers=1)

    def test_duplicate_program_registration_rejected(self):
        with pytest.raises(SimulationError, match="already registered"):
            register_program("halo_wide")(lambda ctx: None)

    def test_halo_ring_needs_two_shards(self):
        with pytest.raises(SimulationError, match="at least 2"):
            halo_ring_scenario(1)

    def test_send_on_unknown_channel_name(self):
        @register_program("_test_bad_send")
        def _build(ctx):
            def gen():
                ctx.send("nonexistent")
                yield Wait(ctx.machine.event("never"))

            ctx.machine.add_thread("bad", gen(), kind="control")

        try:
            scenario = Scenario(
                (
                    ShardSpec.make("a", "_test_bad_send"),
                    ShardSpec.make("b", "halo_wide", width=1, iters=1),
                ),
                (
                    Channel("a", "b", "halo", 5e7),
                    Channel("b", "a", "halo", 5e7),
                ),
            )
            with pytest.raises(SimulationError, match="no outgoing channel"):
                run_sharded(scenario, workers=1)
        finally:
            del SHARD_PROGRAMS["_test_bad_send"]
