"""Direct tests for the simulator taps and the dynamic monitor."""

from repro.analyze.deadlock import WaitForGraph
from repro.analyze.dynamic import DynamicResult, cross_check, run_dynamic
from repro.analyze.report import Report
from repro.orwl import Runtime
from repro.sim.engine import Engine
from repro.sim.process import Compute
from repro.topology import fig2_machine


def tiny_runtime():
    rt = Runtime(fig2_machine(), affinity=True)
    a, b = rt.task("a"), rt.task("b")
    loc = a.location("chan", 4096)
    hw = a.write_handle(loc, iterative=True)
    hr = b.read_handle(loc, iterative=True)

    def wbody(op):
        for _ in range(2):
            yield from hw.acquire()
            yield hw.touch()
            yield Compute(1e5)
            hw.release()

    def rbody(op):
        for _ in range(2):
            yield from hr.acquire()
            yield hr.touch()
            hr.release()

    a.set_body(wbody)
    b.set_body(rbody)
    return rt


class TestSimTaps:
    def test_engine_watchers_called(self):
        engine = Engine()
        seen = []
        engine.watchers.append(seen.append)
        engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(2.0, lambda: None)
        engine.run()
        assert seen == [1.0, 2.0]

    def test_monitor_sees_touches_and_placements(self):
        result = run_dynamic(tiny_runtime)
        assert result.completed
        mon = result.monitor
        # both compute ops touched the channel buffer
        assert len(mon.accesses) == 1
        (entries,) = mon.accesses.values()
        assert {op.name for op, _, _ in entries} == {"a/op0", "b/op0"}
        # every access was made under the location's lock
        assert all(lockset for _, _, lockset in entries)
        # pinned threads occupy exactly one PU each, ever
        assert mon.placements
        assert all(len(h) == 1 for h in mon.placements.values())
        assert result.migrations == 0

    def test_no_race_between_locked_ops(self):
        result = run_dynamic(tiny_runtime)
        assert result.races == []

    def test_blocks_and_finishes_counted(self):
        result = run_dynamic(tiny_runtime)
        assert result.monitor.finished >= 2
        assert result.monitor.blocks > 0


class TestCrossCheckLogic:
    def test_unconfirmed_race_is_note(self):
        static = Report(program="p")
        static.add("error", "data-race", "m", subject="buf")
        result = DynamicResult(completed=True, deadlocked=False)
        findings = cross_check(static, result)
        assert [f.code for f in findings] == ["race-unconfirmed"]
        assert findings[0].severity == "note"
        assert findings[0].source == "dynamic"

    def test_unpredicted_deadlock_is_warning(self):
        static = Report(program="p")
        result = DynamicResult(
            completed=False, deadlocked=True, blocked=["a on 'x'"]
        )
        findings = cross_check(static, result)
        assert [f.code for f in findings] == ["deadlock-unpredicted"]
        assert findings[0].severity == "warning"

    def test_migration_contradiction_is_error(self):
        static = Report(program="p")
        result = DynamicResult(
            completed=True, deadlocked=False, migrations=5
        )
        findings = cross_check(static, result, migrations_proved=True)
        assert [f.code for f in findings] == ["migration-despite-binding"]
        assert findings[0].severity == "error"


class TestWaitForGraph:
    def test_zero_lag_cycle_found(self):
        g = WaitForGraph()
        g.add_node("a", "A")
        g.add_node("b", "B")
        g.add_edge("a", "b", 0)
        g.add_edge("b", "a", 0)
        sccs = g.zero_lag_sccs()
        assert len(sccs) == 1
        assert set(sccs[0]) == {"a", "b"}

    def test_lagged_cycle_is_fine(self):
        # An iteration wrap-around edge (lag 1) must not be a deadlock.
        g = WaitForGraph()
        g.add_node("a", "A")
        g.add_node("b", "B")
        g.add_edge("a", "b", 0)
        g.add_edge("b", "a", 1)
        assert g.zero_lag_sccs() == []
