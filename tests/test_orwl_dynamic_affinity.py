"""The paper's advanced affinity API: dynamic re-mapping at run time.

Sec. IV-B: "to handle dynamic situations where ... the affinity between
tasks change at run time ... the new affinity is computed by explicitly
calling orwl_dependency_get, then orwl_affinity_compute, and the new
thread mapping is committed with orwl_affinity_set."

Simulated-thread bodies may call these synchronously between yields; new
bindings take effect at each thread's next dispatch.
"""


from repro.orwl import Runtime
from repro.sim.process import Compute
from repro.topology import smp20e7


def test_midrun_remap_changes_bindings_and_completes():
    rt = Runtime(smp20e7(), affinity=True, seed=1)
    n, iters = 8, 8
    tasks = [rt.task(f"t{i}") for i in range(n)]
    locs = [t.location("loc", 1 << 16) for t in tasks]
    handles = {}
    for i, t in enumerate(tasks):
        handles[i, "w"] = t.write_handle(locs[i], iterative=True)
        # Every task reads both neighbours; traffic weights decide the
        # placement and will be mutated mid-run.
        handles[i, "r+"] = t.read_handle(locs[(i + 1) % n], iterative=True)
        handles[i, "r-"] = t.read_handle(locs[(i - 1) % n], iterative=True)
        handles[i, "r+"].traffic = 1.0
        handles[i, "r-"].traffic = 1e6

    bindings_log = []

    for i, t in enumerate(tasks):

        def body(op, i=i):
            hw, hp, hm = handles[i, "w"], handles[i, "r+"], handles[i, "r-"]
            for it in range(iters):
                if i == 0 and it == iters // 2:
                    # The communication pattern flips: heavy traffic now
                    # flows the other way around the ring. Re-map.
                    for j in range(n):
                        handles[j, "r+"].traffic = 1e6
                        handles[j, "r-"].traffic = 1.0
                    rt.dependency_get()
                    rt.affinity_compute()
                    rt.affinity_set()
                    bindings_log.append(
                        {t2.name: t2.cpuset for t2 in rt.machine.threads
                         if t2.kind == "compute"}
                    )
                yield from hw.acquire()
                yield Compute(1e5)
                hw.release()
                for h in (hp, hm):
                    yield from h.acquire()
                    yield h.touch(64)
                    h.release()

        t.set_body(body)

    res = rt.run()
    assert res.seconds > 0
    assert len(bindings_log) == 1
    # Every compute thread is still bound after the re-map.
    assert all(cs is not None for cs in bindings_log[0].values())


def test_remap_is_noop_when_matrix_unchanged():
    rt = Runtime(smp20e7(), affinity=True, seed=1)
    tasks = [rt.task(f"t{i}") for i in range(4)]
    locs = [t.location("loc", 4096) for t in tasks]
    before_after = []

    for i, t in enumerate(tasks):
        hw = t.write_handle(locs[i], iterative=True)
        hr = t.read_handle(locs[i - 1], iterative=True)

        def body(op, i=i, hw=hw, hr=hr):
            for it in range(4):
                if i == 0 and it == 2:
                    before = dict(rt.affinity.placement.thread_to_pu)
                    rt.dependency_get()
                    rt.affinity_compute()
                    rt.affinity_set()
                    before_after.append(
                        (before, dict(rt.affinity.placement.thread_to_pu))
                    )
                yield from hw.acquire()
                hw.release()
                yield from hr.acquire()
                hr.release()

        t.set_body(body)

    rt.run()
    before, after = before_after[0]
    assert before == after  # deterministic: same matrix, same mapping
