"""Tests for matrix helpers and deterministic RNG derivation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.util.matrix import check_square, submatrix, symmetrize, zero_diagonal
from repro.util.rng import derive_rng, make_rng

squareish = arrays(
    np.float64,
    (4, 4),
    elements=st.floats(min_value=0, max_value=1e6, allow_nan=False),
)


class TestMatrixHelpers:
    def test_check_square_accepts_square(self):
        m = check_square([[0, 1], [2, 3]])
        assert m.shape == (2, 2)

    def test_check_square_rejects_rect(self):
        with pytest.raises(ValueError):
            check_square(np.zeros((2, 3)))

    def test_check_square_rejects_nan(self):
        with pytest.raises(ValueError):
            check_square([[0, np.nan], [0, 0]])

    def test_check_square_rejects_negative(self):
        with pytest.raises(ValueError):
            check_square([[0, -1], [0, 0]])

    @given(squareish)
    def test_symmetrize_is_symmetric(self, m):
        s = symmetrize(m)
        assert np.allclose(s, s.T)
        assert np.allclose(s, m + m.T)

    def test_zero_diagonal(self):
        m = zero_diagonal([[5, 1], [2, 7]])
        assert m[0, 0] == 0 and m[1, 1] == 0
        assert m[0, 1] == 1 and m[1, 0] == 2

    def test_submatrix_order(self):
        m = np.arange(9).reshape(3, 3).astype(float)
        sub = submatrix(m, [2, 0])
        assert sub[0, 0] == m[2, 2]
        assert sub[0, 1] == m[2, 0]
        assert sub[1, 0] == m[0, 2]


class TestRng:
    def test_make_rng_deterministic(self):
        assert make_rng(3).integers(0, 100) == make_rng(3).integers(0, 100)

    def test_derive_rng_independent_of_draw_order(self):
        a = derive_rng(make_rng(0), "video", 1)
        b = derive_rng(make_rng(0), "video", 1)
        assert a.integers(0, 1 << 30) == b.integers(0, 1 << 30)

    def test_derive_rng_distinct_keys_differ(self):
        root = make_rng(0)
        a = derive_rng(root, "a")
        root2 = make_rng(0)
        b = derive_rng(root2, "b")
        assert a.integers(0, 1 << 30) != b.integers(0, 1 << 30)
