"""The multilevel mapping engine: coarsening, bisection, and quality.

Three layers of coverage for ISSUE 7:

* structural invariants of the coarsening hierarchy and ``split_k``
  (cover, balance, determinism, dense/CSR backend agreement);
* ``multilevel_map`` end-to-end: valid placements, oversubscription,
  worker-count invariance of the parallel subtree fan-out;
* a curated 21-instance quality gallery asserting the multilevel
  placement lands within 5% of the dense greedy+refine engine.

The gallery instances were pre-scanned (stencil, clustered, and ring
traffic on SMP20E7 at n between 640 and 1600); both engines are
deterministic, so each gap is exact and reproducible.
"""

import numpy as np
import pytest

from repro.errors import MappingError
from repro.topology import machine_by_name
from repro.treematch import (
    MULTILEVEL_CUTOVER,
    CommunicationMatrix,
    coarsen,
    map_with_strategy,
    mapping_strategy,
    multilevel_map,
    split_k,
    treematch_map,
)
from repro.treematch.coarsen import heavy_edge_matching, parts_to_dense
from repro.treematch.commmatrix import HAVE_SPARSE

needs_scipy = pytest.mark.skipif(
    not HAVE_SPARSE, reason="CSR backend requires scipy"
)


def clustered(n, seed, k=None):
    """Block-community traffic: heavy inside a random cluster, light across."""
    rng = np.random.default_rng(seed)
    k = k or max(4, n // 40)
    labels = rng.integers(0, k, size=n)
    m = rng.random((n, n)) * 5
    same = labels[:, None] == labels[None, :]
    m[same] += rng.random((n, n))[same] * 95
    m = (m + m.T) / 2
    np.fill_diagonal(m, 0.0)
    return CommunicationMatrix(m)


def ring(n, seed):
    """Directed nearest-neighbour ring with jittered weights."""
    rng = np.random.default_rng(seed)
    m = np.zeros((n, n))
    i = np.arange(n)
    m[i, (i + 1) % n] = 100.0 + rng.integers(0, 10, size=n)
    return CommunicationMatrix(m)


def pattern_matrix(pattern: str, n: int, seed: int) -> CommunicationMatrix:
    if pattern == "stencil":
        return CommunicationMatrix.stencil2d(n)
    if pattern == "clustered":
        return clustered(n, seed)
    return ring(n, seed)


class TestCoarsen:
    def hierarchy(self, aff, target=32):
        return coarsen(aff, target=target)

    @pytest.mark.parametrize("make", [
        lambda: CommunicationMatrix.stencil2d(500).affinity(),
        lambda: clustered(300, 0).affinity(),
    ])
    def test_invariants(self, make):
        aff = make()
        n = aff.shape[0]
        levels = self.hierarchy(aff)
        assert levels[0].n == n
        assert np.array_equal(levels[0].weights, np.ones(n, dtype=np.int64))
        total = aff.sum()
        for depth, lv in enumerate(levels):
            # Task mass is conserved on every level ...
            assert int(lv.weights.sum()) == n
            # ... while contraction drops intra-pair traffic, so the
            # surviving edge weight can only shrink.
            level_total = lv.data.sum()
            assert level_total <= total + 1e-9
            total = level_total
            dense = parts_to_dense(lv.indptr, lv.indices, lv.data, lv.n)
            # Structurally symmetric; values agree up to summation order
            # of the contracted duplicates.
            assert np.array_equal(dense != 0, dense.T != 0)
            assert np.allclose(dense, dense.T, rtol=1e-12, atol=0.0)
            assert not dense.diagonal().any()
            if depth + 1 < len(levels):
                nxt = levels[depth + 1]
                assert nxt.n < lv.n
                assert lv.coarse_of is not None
                assert lv.coarse_of.shape == (lv.n,)
                assert lv.coarse_of.min() >= 0
                assert lv.coarse_of.max() == nxt.n - 1
        assert levels[-1].coarse_of is None

    def test_reaches_target_on_connected_graph(self):
        aff = CommunicationMatrix.stencil2d(500).affinity()
        levels = self.hierarchy(aff, target=32)
        assert levels[-1].n <= 64  # matching halves at best; ~target reached

    def test_deterministic(self):
        aff = clustered(256, 3).affinity()
        a = coarsen(aff, target=16)
        b = coarsen(aff, target=16)
        assert len(a) == len(b)
        for la, lb in zip(a, b):
            assert np.array_equal(la.indptr, lb.indptr)
            assert np.array_equal(la.indices, lb.indices)
            assert np.array_equal(la.data, lb.data)
            assert np.array_equal(la.coarse_of is None, lb.coarse_of is None)
            if la.coarse_of is not None:
                assert np.array_equal(la.coarse_of, lb.coarse_of)

    def test_edge_free_graph_stalls(self):
        levels = coarsen(np.zeros((40, 40)), target=4)
        assert len(levels) == 1

    def test_matching_pairs_at_most_two(self):
        aff = clustered(200, 1).affinity()
        from repro.treematch.coarsen import csr_parts

        indptr, indices, data, n = csr_parts(aff)
        coarse_of, n_c = heavy_edge_matching(indptr, indices, data, n)
        assert n_c < n
        assert np.bincount(coarse_of, minlength=n_c).max() <= 2

    def test_bad_target_rejected(self):
        with pytest.raises(MappingError):
            coarsen(np.zeros((4, 4)), target=0)


class TestSplitK:
    @pytest.mark.parametrize("n,k", [(64, 4), (640, 20), (1536, 4)])
    def test_cover_and_balance(self, n, k):
        aff = CommunicationMatrix.stencil2d(n).affinity()
        parts = split_k(aff, k)
        assert len(parts) == k
        assert all(len(p) == n // k for p in parts)
        assert sorted(i for p in parts for i in p) == list(range(n))

    def test_deterministic(self):
        aff = clustered(640, 2).affinity()
        assert split_k(aff, 20) == split_k(aff, 20)

    @needs_scipy
    def test_dense_and_sparse_agree(self):
        import scipy.sparse as sp

        comm = CommunicationMatrix.stencil2d(1280)
        dense = comm.affinity()
        parts_d = split_k(dense, 20)
        parts_s = split_k(sp.csr_array(dense), 20)
        assert parts_d == parts_s

    def test_indivisible_rejected(self):
        with pytest.raises(MappingError):
            split_k(np.zeros((10, 10)), 3)

    def test_trivial_splits(self):
        aff = clustered(16, 0).affinity()
        assert split_k(aff, 1) == [list(range(16))]
        assert split_k(aff, 16) == [[i] for i in range(16)]

    def test_groups_clustered_traffic(self):
        # Four perfectly separable communities must come out exactly.
        n, k = 64, 4
        rng = np.random.default_rng(7)
        labels = np.repeat(np.arange(k), n // k)
        m = np.where(labels[:, None] == labels[None, :],
                     50.0 + rng.random((n, n)), 0.0)
        m = (m + m.T) / 2
        np.fill_diagonal(m, 0.0)
        parts = split_k(m, k)
        for part in parts:
            assert len({int(labels[i]) for i in part}) == 1


class TestMultilevelMap:
    def test_valid_oversubscribed_placement(self):
        topo = machine_by_name("SMP20E7")
        comm = CommunicationMatrix.stencil2d(640)
        pl = multilevel_map(topo, comm)
        assert pl.oversub_factor == 4  # 640 tasks on 160 PUs
        assert sorted(pl.thread_to_pu) == list(range(640))
        assert pl.violations(topo, n_threads=640) == []

    def test_valid_on_hyperthreaded_machine(self):
        topo = machine_by_name("SMP12E5")
        comm = CommunicationMatrix.stencil2d(24)
        pl = multilevel_map(topo, comm)
        assert pl.granularity == "core"
        assert pl.violations(topo, n_threads=24) == []

    def test_empty_matrix_rejected(self):
        topo = machine_by_name("SMP20E7")
        with pytest.raises(MappingError):
            multilevel_map(topo, CommunicationMatrix(np.zeros((0, 0))))

    @needs_scipy
    def test_sparse_and_dense_backends_agree(self):
        topo = machine_by_name("SMP20E7")
        raw = CommunicationMatrix.stencil2d(640).raw
        pl_dense = multilevel_map(topo, CommunicationMatrix(raw, sparse=False))
        pl_sparse = multilevel_map(topo, CommunicationMatrix(raw, sparse=True))
        assert pl_dense.thread_to_pu == pl_sparse.thread_to_pu

    @needs_scipy
    def test_parallel_fanout_matches_serial(self, monkeypatch):
        # Shrink the fan-out threshold so a small instance exercises the
        # map-subtree job path with a real worker pool.
        import repro.treematch.mapping as mapping_mod

        monkeypatch.setattr(mapping_mod, "PARALLEL_MIN_TASKS", 1)
        topo = machine_by_name("SMP20E7")
        comm = CommunicationMatrix.stencil2d(640, sparse=True)
        serial = multilevel_map(topo, comm, n_jobs=1)
        fanned = multilevel_map(topo, comm, n_jobs=2, cache=False)
        assert serial.thread_to_pu == fanned.thread_to_pu

    @needs_scipy
    def test_map_subtree_cell_roundtrip(self):
        import scipy.sparse as sp

        from repro.experiments.runner import TINY
        from repro.parallel.executor import run_jobs
        from repro.parallel.jobs import make_job
        from repro.treematch.mapping import _b64, _order_block

        aff = sp.csr_array(CommunicationMatrix.stencil2d(256).affinity())
        arities = (4, 4, 4, 4)
        job = make_job("map-subtree", TINY, {
            "n": 256,
            "arities": arities,
            "indptr": _b64(np.asarray(aff.indptr, dtype=np.int64)),
            "indices": _b64(np.asarray(aff.indices, dtype=np.int64)),
            "data": _b64(np.asarray(aff.data, dtype=np.float64)),
        }, 0)
        (payload,) = run_jobs([job], n_jobs=1, cache=False)
        assert payload["order"] == _order_block(aff, list(arities))


class TestStrategySelection:
    def test_auto_cutover(self):
        assert mapping_strategy("auto", MULTILEVEL_CUTOVER) == "greedy"
        assert mapping_strategy("auto", MULTILEVEL_CUTOVER + 1) == "multilevel"

    def test_explicit_names_pass_through(self):
        assert mapping_strategy("greedy", 10**6) == "greedy"
        assert mapping_strategy("multilevel", 2) == "multilevel"

    def test_unknown_rejected(self):
        with pytest.raises(MappingError, match="unknown mapping strategy"):
            mapping_strategy("anneal", 100)

    def test_dispatch_matches_engines(self):
        topo = machine_by_name("SMP20E7")
        comm = CommunicationMatrix.stencil2d(320)
        via_auto = map_with_strategy(topo, comm)  # 320 <= cutover -> greedy
        direct = treematch_map(topo, comm)
        assert via_auto.thread_to_pu == direct.thread_to_pu
        via_ml = map_with_strategy(topo, comm, strategy="multilevel")
        assert via_ml.thread_to_pu == multilevel_map(topo, comm).thread_to_pu


# Curated instances (pre-scanned): multilevel lands within 5% of the
# dense greedy+refine engine on each — often well below, since recursive
# bisection sees global structure the bottom-up greedy pairing misses.
GALLERY = [
    ("stencil", 640, 0),
    ("stencil", 800, 0),
    ("stencil", 960, 0),
    ("stencil", 1600, 0),
    ("clustered", 640, 0),
    ("clustered", 640, 1),
    ("clustered", 640, 2),
    ("clustered", 800, 0),
    ("clustered", 800, 1),
    ("clustered", 800, 2),
    ("clustered", 960, 0),
    ("clustered", 960, 1),
    ("clustered", 960, 2),
    ("clustered", 1120, 0),
    ("clustered", 1120, 1),
    ("ring", 640, 0),
    ("ring", 640, 1),
    ("ring", 640, 2),
    ("ring", 800, 0),
    ("ring", 800, 1),
    ("ring", 960, 0),
]


class TestQualityGallery:
    @pytest.mark.parametrize("pattern,n,seed", GALLERY)
    def test_within_five_percent_of_greedy(self, pattern, n, seed):
        topo = machine_by_name("SMP20E7")
        comm = pattern_matrix(pattern, n, seed)
        cost_ml = multilevel_map(topo, comm).cost(topo, comm)
        cost_greedy = treematch_map(topo, comm, engine="greedy").cost(
            topo, comm
        )
        assert cost_greedy > 0
        assert cost_ml <= cost_greedy * 1.05
