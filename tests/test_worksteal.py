"""Tests for the work-stealing baseline runtime."""

import pytest

from repro.errors import ReproError
from repro.topology import fig2_machine, smp20e7_4s
from repro.worksteal import TaskGraph, WorkStealingRuntime


def chain_graph(machine, n=10, flops=1e6):
    g = TaskGraph()
    prev = None
    for _ in range(n):
        prev = g.add_task(flops, deps=[prev] if prev is not None else [])
    return g


class TestTaskGraph:
    def test_dependencies_recorded(self):
        g = TaskGraph()
        a = g.add_task(1.0)
        b = g.add_task(1.0, deps=[a])
        assert g.nodes[b].remaining_deps == 1
        assert g.nodes[a].children == [b]

    def test_unknown_dep_rejected(self):
        g = TaskGraph()
        with pytest.raises(ReproError):
            g.add_task(1.0, deps=[5])

    def test_len(self):
        g = TaskGraph()
        g.add_task(1.0)
        g.add_task(1.0)
        assert len(g) == 2


class TestExecution:
    def test_all_tasks_run(self):
        ws = WorkStealingRuntime(fig2_machine(), n_workers=4)
        g = TaskGraph()
        for _ in range(20):
            g.add_task(1e6)
        res = ws.run(g)
        assert res.tasks_run == 20
        assert all(n.done for n in g.nodes)

    def test_chain_respects_dependencies(self):
        ws = WorkStealingRuntime(fig2_machine(), n_workers=4)
        res = ws.run(chain_graph(ws.machine, 12))
        assert res.tasks_run == 12

    def test_empty_graph_rejected(self):
        ws = WorkStealingRuntime(fig2_machine())
        with pytest.raises(ReproError):
            ws.run(TaskGraph())

    def test_cycle_detected_as_no_sources(self):
        g = TaskGraph()
        a = g.add_task(1.0)
        b = g.add_task(1.0, deps=[a])
        # fabricate a cycle
        g.nodes[a].deps = [b]
        g.nodes[a].remaining_deps = 1
        g.nodes[b].children.append(a)
        ws = WorkStealingRuntime(fig2_machine())
        with pytest.raises(ReproError):
            ws.run(g)

    def test_run_once(self):
        ws = WorkStealingRuntime(fig2_machine(), n_workers=2)
        g = TaskGraph()
        g.add_task(1.0)
        ws.run(g)
        with pytest.raises(ReproError):
            ws.run(g)

    def test_parallel_fanout_faster_than_one_worker(self):
        def run(workers):
            ws = WorkStealingRuntime(fig2_machine(), n_workers=workers)
            g = TaskGraph()
            root = g.add_task(1e5)
            for _ in range(16):
                g.add_task(2.6e8, deps=[root])
            return ws.run(g).seconds

        assert run(8) < run(1) / 3

    def test_steals_happen_on_imbalance(self):
        ws = WorkStealingRuntime(fig2_machine(), n_workers=8, locality="random")
        g = TaskGraph()
        root = g.add_task(1e4)
        for _ in range(32):
            g.add_task(1e7, deps=[root])  # all funneled to one deque
        res = ws.run(g)
        assert res.steals > 0
        assert 0 < res.steal_ratio <= 1

    def test_bad_config_rejected(self):
        with pytest.raises(ReproError):
            WorkStealingRuntime(fig2_machine(), locality="psychic")
        with pytest.raises(ReproError):
            WorkStealingRuntime(fig2_machine(), n_workers=0)


class TestLocalityPolicies:
    def build(self, locality):
        ws = WorkStealingRuntime(smp20e7_4s(), n_workers=16, locality=locality,
                                 seed=2)
        g = TaskGraph()
        bufs = [ws.machine.allocate(1 << 20, f"b{i}") for i in range(8)]
        root = g.add_task(1e4)
        prev_layer = [root]
        for layer in range(4):
            layer_tasks = []
            for i in range(8):
                layer_tasks.append(
                    g.add_task(
                        2e6,
                        touches=[(bufs[i], 1 << 20, layer == 0)],
                        deps=prev_layer,
                    )
                )
            prev_layer = layer_tasks
        return ws, g

    def test_near_policy_orders_victims_by_distance(self):
        ws, _ = self.build("near")
        me = ws.machine.memory.numa_of_pu(ws._worker_pu[0])
        order = ws._victim_order[0]
        dists = [
            ws.machine.memory.distance[
                me, ws.machine.memory.numa_of_pu(ws._worker_pu[v])
            ]
            for v in order
        ]
        assert dists == sorted(dists)

    def test_both_policies_complete(self):
        for locality in ("near", "random"):
            ws, g = self.build(locality)
            res = ws.run(g)
            assert res.tasks_run == len(g)
