"""Tests for Algorithm 1: the full treematch_map driver and its adaptations."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MappingError
from repro.topology import fig2_machine, smp12e5, smp20e7
from repro.treematch import (
    CommunicationMatrix,
    compact_placement,
    cores_close_placement,
    cores_spread_placement,
    scatter_placement,
    sequential_placement,
    strategy_by_name,
    treematch_map,
)
from repro.treematch.control import extend_for_control_threads
from repro.treematch.oversub import manage_oversubscription


def ring_matrix(n, weight=100.0):
    m = np.zeros((n, n))
    for i in range(n):
        m[i, (i + 1) % n] = weight
    return CommunicationMatrix(m)


def pipeline_matrix(n, weight=50.0):
    m = np.zeros((n, n))
    for i in range(n - 1):
        m[i + 1, i] = weight
    return CommunicationMatrix(m)


class TestCommunicationMatrix:
    def test_affinity_symmetrized(self):
        comm = pipeline_matrix(4)
        aff = comm.affinity()
        assert np.allclose(aff, aff.T)
        assert aff[0, 1] == 50.0 and aff[1, 0] == 50.0

    def test_from_edges(self):
        comm = CommunicationMatrix.from_edges(3, {(1, 0): 10.0, (2, 1): 5.0})
        assert comm.raw[1, 0] == 10.0
        assert comm.total_traffic() == pytest.approx(15.0)

    def test_from_edges_validates(self):
        with pytest.raises(MappingError):
            CommunicationMatrix.from_edges(2, {(0, 5): 1.0})
        with pytest.raises(MappingError):
            CommunicationMatrix.from_edges(2, {(0, 1): -1.0})

    def test_label_length_checked(self):
        with pytest.raises(MappingError):
            CommunicationMatrix(np.zeros((2, 2)), labels=["only-one"])

    def test_restricted(self):
        comm = pipeline_matrix(4)
        sub = comm.restricted([2, 3])
        assert sub.order == 2
        assert sub.raw[1, 0] == 50.0

    def test_padded(self):
        comm = ring_matrix(3)
        pad = comm.padded(5)
        assert pad.order == 5
        assert pad.raw[:3, :3].sum() == comm.raw.sum()
        with pytest.raises(MappingError):
            comm.padded(2)

    def test_stencil2d_matches_loop_reference(self):
        # 3x4 grid, row-major: the vectorized builder must produce exactly
        # the 5-point halo-exchange edges a nested loop would.
        n, width, weight = 12, 4, 7.0
        ref = np.zeros((n, n))
        for t in range(n):
            r, c = divmod(t, width)
            for nr, nc in ((r, c + 1), (r + 1, c)):
                u = nr * width + nc
                if nc < width and u < n:
                    ref[t, u] = ref[u, t] = weight
        comm = CommunicationMatrix.stencil2d(n, weight=weight, width=width)
        np.testing.assert_allclose(comm.raw, ref)

    def test_stencil2d_default_width_and_ragged_last_row(self):
        # n=10 -> ceil(sqrt(10)) = 4 wide; last row has only 2 cells.
        comm = CommunicationMatrix.stencil2d(10)
        assert comm.order == 10
        assert comm.raw[8, 9] > 0        # horizontal edge in ragged row
        assert comm.raw[3, 7] > 0        # vertical edge in full column
        assert np.allclose(comm.raw, comm.raw.T)
        # Interior cell 5 (row 1, col 1) has all 4 neighbours.
        assert np.count_nonzero(comm.raw[5]) == 4

    def test_stencil2d_degenerate_sizes(self):
        assert CommunicationMatrix.stencil2d(1).total_traffic() == 0.0
        comm = CommunicationMatrix.stencil2d(2)
        assert comm.raw[0, 1] > 0


class TestOversubscription:
    def test_no_extension_when_fits(self):
        plan = manage_oversubscription([2, 4], 8)
        assert plan.factor == 1 and not plan.oversubscribed
        assert plan.arities == (2, 4)

    def test_virtual_level_added(self):
        plan = manage_oversubscription([2, 4], 9)
        assert plan.factor == 2
        assert plan.arities == (2, 4, 2)
        assert plan.virtual_leaves == 16

    def test_invalid_inputs(self):
        with pytest.raises(MappingError):
            manage_oversubscription([2, 4], 0)
        with pytest.raises(MappingError):
            manage_oversubscription([0], 1)


class TestControlExtension:
    def test_ht_mode_keeps_matrix(self):
        m = np.ones((4, 4))
        np.fill_diagonal(m, 0)
        ext, plan = extend_for_control_threads(m, 4, 8, hyperthreading=True)
        assert plan.mode == "ht-sibling"
        assert ext.shape == (4, 4)

    def test_spare_core_mode_extends(self):
        m = np.ones((4, 4))
        np.fill_diagonal(m, 0)
        ext, plan = extend_for_control_threads(m, 4, 8, hyperthreading=False)
        assert plan.mode == "spare-core"
        assert plan.slots == 4
        assert ext.shape == (8, 8)
        # epsilon edges present but tiny
        assert 0 < ext[4, 0] < 1e-3

    def test_os_mode_when_no_room(self):
        m = np.ones((8, 8))
        np.fill_diagonal(m, 0)
        ext, plan = extend_for_control_threads(m, 4, 8, hyperthreading=False)
        assert plan.mode == "os"
        assert ext.shape == (8, 8)

    def test_zero_control_is_os(self):
        m = np.zeros((2, 2))
        _, plan = extend_for_control_threads(m, 0, 8, hyperthreading=False)
        assert plan.mode == "os"


class TestTreematchMap:
    def test_threads_get_distinct_pus(self):
        pl = treematch_map(fig2_machine(), ring_matrix(8))
        assert len(set(pl.thread_to_pu.values())) == 8

    def test_heavy_pairs_share_socket(self):
        # 4 isolated heavy pairs must land pairwise on the same socket.
        topo = fig2_machine()
        m = np.zeros((8, 8))
        for i in range(0, 8, 2):
            m[i, i + 1] = 1000.0
        pl = treematch_map(topo, CommunicationMatrix(m))
        for i in range(0, 8, 2):
            s_a = topo.socket_of_pu(pl.thread_to_pu[i]).logical_index
            s_b = topo.socket_of_pu(pl.thread_to_pu[i + 1]).logical_index
            assert s_a == s_b

    def test_better_or_equal_cost_than_baselines(self):
        topo = fig2_machine()
        comm = ring_matrix(16)
        pl = treematch_map(topo, comm)
        assert pl.cost(topo, comm) <= scatter_placement(topo, 16).cost(topo, comm)

    def test_ht_machine_uses_core_granularity(self):
        topo = smp12e5()
        pl = treematch_map(topo, ring_matrix(8), n_control=8)
        assert pl.granularity == "core"
        assert pl.control_mode == "ht-sibling"
        # compute threads on first PU of a core (even os index), controls on odd
        assert all(pu % 2 == 0 for pu in pl.thread_to_pu.values())
        assert all(pu % 2 == 1 for pu in pl.control_to_pu.values())

    def test_control_sibling_is_same_core(self):
        topo = smp12e5()
        pl = treematch_map(topo, ring_matrix(8), n_control=8)
        for j, cpu in pl.control_to_pu.items():
            owner_pu = pl.thread_to_pu[j % 8]
            assert topo.core_of_pu(cpu) is topo.core_of_pu(owner_pu)

    def test_no_ht_spare_core_control(self):
        topo = fig2_machine()  # 32 cores, no HT
        pl = treematch_map(topo, ring_matrix(30), n_control=30)
        assert pl.control_mode == "spare-core"
        compute_pus = set(pl.thread_to_pu.values())
        control_pus = set(pl.control_to_pu.values())
        assert control_pus.isdisjoint(compute_pus)
        assert len(control_pus) == 2  # the two spare cores (cf. Fig. 2)

    def test_no_room_falls_back_to_os(self):
        topo = fig2_machine()
        pl = treematch_map(topo, ring_matrix(32), n_control=8)
        assert pl.control_mode == "os"
        assert pl.control_to_pu == {}

    def test_oversubscription_goes_up_one_level(self):
        topo = fig2_machine()  # 32 PUs
        pl = treematch_map(topo, ring_matrix(40))
        assert pl.oversub_factor == 2
        counts = Counter(pl.thread_to_pu.values())
        assert max(counts.values()) <= 2
        assert len(pl.thread_to_pu) == 40

    def test_empty_matrix_rejected(self):
        with pytest.raises(MappingError):
            treematch_map(fig2_machine(), CommunicationMatrix(np.zeros((0, 0))))

    def test_control_owner_length_checked(self):
        with pytest.raises(MappingError):
            treematch_map(
                fig2_machine(), ring_matrix(4), n_control=3, control_owners=[0]
            )

    def test_deterministic(self):
        topo = smp20e7()
        comm = pipeline_matrix(24)
        a = treematch_map(topo, comm, n_control=24)
        b = treematch_map(topo, comm, n_control=24)
        assert a.thread_to_pu == b.thread_to_pu
        assert a.control_to_pu == b.control_to_pu

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=24))
    def test_any_size_maps_every_thread(self, n):
        topo = fig2_machine()
        pl = treematch_map(topo, ring_matrix(n))
        assert sorted(pl.thread_to_pu) == list(range(n))
        for pu in pl.thread_to_pu.values():
            topo.pu(pu)  # must exist

    def test_dict_round_trip_preserves_groups_per_level(self):
        from repro.treematch.mapping import Placement

        topo = smp20e7()
        pl = treematch_map(topo, ring_matrix(24), n_control=4)
        assert pl.groups_per_level  # the driver records every level
        data = pl.to_dict()
        assert "groups_per_level" in data
        back = Placement.from_dict(data)
        assert back.groups_per_level == pl.groups_per_level
        assert back == pl

    def test_dict_round_trip_survives_json(self):
        import json

        from repro.treematch.mapping import Placement

        topo = fig2_machine()
        pl = treematch_map(topo, ring_matrix(12))
        back = Placement.from_dict(json.loads(json.dumps(pl.to_dict())))
        assert back == pl
        assert back.groups_per_level == pl.groups_per_level


class TestScale:
    """The tentpole: thousands of threads must map in interactive time."""

    def test_stencil_1040_oversubscribed(self):
        topo = smp20e7()  # 160 PUs, no HT
        comm = CommunicationMatrix.stencil2d(1040)
        pl = treematch_map(topo, comm)
        assert pl.oversub_factor == 7  # ceil(1040 / 160)
        assert sorted(pl.thread_to_pu) == list(range(1040))
        counts = Counter(pl.thread_to_pu.values())
        assert max(counts.values()) <= 7
        # A topology-aware stencil placement must beat the affinity-blind
        # scatter baseline on the distance objective.
        blind = scatter_placement(topo, 1040, oversubscribe=True)
        assert pl.cost(topo, comm) < blind.cost(topo, comm)

    def test_stencil_2048_latency_smoke(self):
        # Regression guard for the scalable engines: p=2048 took ~107 s
        # before the delta-gain rewrite; it now runs in about a second.
        # The generous bound only catches order-of-magnitude regressions.
        import time

        topo = smp20e7()
        comm = CommunicationMatrix.stencil2d(2048)
        t0 = time.perf_counter()
        pl = treematch_map(topo, comm)
        elapsed = time.perf_counter() - t0
        assert sorted(pl.thread_to_pu) == list(range(2048))
        assert elapsed < 30.0


class TestBaselineStrategies:
    def test_compact_uses_siblings_first(self):
        topo = smp12e5()
        pl = compact_placement(topo, 4)
        assert [pl.thread_to_pu[i] for i in range(4)] == [0, 1, 2, 3]

    def test_scatter_spreads_over_sockets(self):
        topo = fig2_machine()
        pl = scatter_placement(topo, 4)
        sockets = {
            topo.socket_of_pu(pu).logical_index for pu in pl.thread_to_pu.values()
        }
        assert len(sockets) == 4

    def test_cores_close_skips_siblings(self):
        topo = smp12e5()
        pl = cores_close_placement(topo, 4)
        assert [pl.thread_to_pu[i] for i in range(4)] == [0, 2, 4, 6]

    def test_cores_spread_round_robins(self):
        topo = fig2_machine()
        pl = cores_spread_placement(topo, 8)
        per_socket = Counter(
            topo.socket_of_pu(pu).logical_index for pu in pl.thread_to_pu.values()
        )
        assert all(v == 2 for v in per_socket.values())

    def test_sequential_stacks_on_pu0(self):
        topo = fig2_machine()
        pl = sequential_placement(topo, 3)
        assert set(pl.thread_to_pu.values()) == {0}

    def test_capacity_checked(self):
        topo = fig2_machine()
        with pytest.raises(MappingError):
            compact_placement(topo, 33)
        with pytest.raises(MappingError):
            compact_placement(topo, 0)

    def test_oversubscribe_wraps_leaf_order(self):
        topo = fig2_machine()  # 32 PUs
        pl = compact_placement(topo, 40, oversubscribe=True)
        assert pl.oversub_factor == 2
        assert len(pl.thread_to_pu) == 40
        # Thread 32 wraps back onto the same PU as thread 0.
        assert pl.thread_to_pu[32] == pl.thread_to_pu[0]
        counts = Counter(pl.thread_to_pu.values())
        assert max(counts.values()) <= 2

    def test_oversubscribe_all_baselines(self):
        topo = fig2_machine()
        for strat in (compact_placement, scatter_placement,
                      cores_close_placement, cores_spread_placement):
            pl = strat(topo, 80, oversubscribe=True)
            assert len(pl.thread_to_pu) == 80
            assert pl.oversub_factor >= 2
            with pytest.raises(MappingError):
                strat(topo, 80)

    def test_registry(self):
        assert strategy_by_name("compact") is compact_placement
        with pytest.raises(MappingError):
            strategy_by_name("nope")
