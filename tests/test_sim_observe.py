"""Unit and schema tests for repro.sim.observe.

Covers the metrics registry (get-or-create, label keys, kind conflicts),
the ring trace (overflow accounting, per-kind countdown sampling,
oldest-first ordering), the golden Chrome ``trace_event`` schema
(stable field sets, monotonic timestamps, pid/tid = PU/thread), and the
observer lifecycle on a real machine run — including cross-core
snapshot parity.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.simcore

from repro.errors import SimulationError
from repro.sim import Compute, SimMachine, Touch, Wait
from repro.sim.observe import (
    KIND_BY_NAME,
    TR_BUSY,
    TR_READY,
    TR_RUN,
    TRACE_KINDS,
    MetricsRegistry,
    RingTrace,
    SimObserver,
)
from repro.sim.trace import TAGS
from repro.topology import smp12e5
from repro.util.bitmap import Bitmap


# -- registry -----------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_get_or_create_and_snapshot_key(self):
        reg = MetricsRegistry()
        c = reg.counter("hits", pu=3)
        c.inc()
        reg.counter("hits", pu=3).inc(2.5)
        assert c.value == 3.5
        assert reg.snapshot() == {"hits{pu=3}": 3.5}

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        reg.counter("x", a=1, b=2).inc()
        reg.counter("x", b=2, a=1).inc()
        assert reg.snapshot() == {"x{a=1,b=2}": 2.0}

    def test_counter_cannot_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(SimulationError, match="cannot decrease"):
            reg.counter("c").inc(-1)

    def test_kind_conflict_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("n")
        with pytest.raises(SimulationError, match="already registered"):
            reg.gauge("n")

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("depth", bounds=(1, 4))
        h.observe(0)
        h.observe(4, n=3)
        h.observe(100)
        d = h.to_dict()
        assert d["count"] == 5
        assert d["sum"] == 112.0
        assert d["buckets"] == {"le_1": 1, "le_4": 3, "le_inf": 1}

    def test_snapshot_is_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z")
        reg.counter("a")
        assert list(reg.snapshot()) == ["a", "z"]


# -- ring ---------------------------------------------------------------------


class TestRingTrace:
    def test_overflow_keeps_newest_and_counts_dropped(self):
        ring = RingTrace(capacity=4)
        for i in range(10):
            assert ring.add(TR_READY, float(i), i, None)
        assert len(ring) == 4
        assert ring.recorded == 10
        assert ring.dropped == 6
        # Oldest-first; pu None normalized to -1.
        assert ring.records() == [
            (TR_READY, float(i), i, -1) for i in range(6, 10)
        ]

    def test_sampling_keeps_first_then_every_nth(self):
        ring = RingTrace(capacity=64, sample={"busy": 4})
        kept = [ring.add(TR_BUSY, float(i), 0, 0) for i in range(10)]
        assert kept == [i % 4 == 0 for i in range(10)]
        assert [r[1] for r in ring.records()] == [0.0, 4.0, 8.0]

    def test_sampling_is_per_kind(self):
        ring = RingTrace(capacity=64, sample={"busy": 2})
        for i in range(4):
            ring.add(TR_BUSY, float(i), 0, 0)
            ring.add(TR_RUN, float(i), 0, 0)
        kinds = [r[0] for r in ring.records()]
        assert kinds.count(TR_RUN) == 4
        assert kinds.count(TR_BUSY) == 2

    def test_period_zero_disables_a_kind(self):
        ring = RingTrace(capacity=8, sample={"busy": 0})
        assert not ring.add(TR_BUSY, 0.0, 0, 0)
        assert ring.recorded == 0

    def test_kind_vocabulary_is_the_trace_tags_plus_busy(self):
        assert TRACE_KINDS == TAGS + ("busy",)
        assert KIND_BY_NAME["busy"] == TR_BUSY

    def test_bad_arguments_rejected(self):
        with pytest.raises(SimulationError, match="capacity"):
            RingTrace(capacity=0)
        with pytest.raises(SimulationError, match="unknown trace kind"):
            RingTrace(sample={"bogus": 1})
        with pytest.raises(SimulationError, match="period"):
            RingTrace(sample={"busy": -1})


# -- a tiny observed run ------------------------------------------------------


def observed_run(core: str, *, trace=True):
    machine = SimMachine(smp12e5(), core=core)
    obs = SimObserver(trace=RingTrace(capacity=4096) if trace else False)
    machine.attach_observer(obs)
    bufs = [machine.allocate(1 << 14, f"b{i}") for i in range(4)]
    events = [machine.event(f"e{i}") for i in range(4)]

    def stage(i):
        nxt = events[(i + 1) % 4]
        for _ in range(6):
            yield Compute(5e3)
            yield Touch(bufs[i], 2048, write=True)
            nxt.signal()
            yield Wait(events[i])

    for i in range(4):
        machine.add_thread(f"s{i}", stage(i), cpuset=Bitmap.single(2 * i))
    events[0].signal()
    machine.run()
    return machine, obs


class TestObserverLifecycle:
    def test_attach_after_run_raises(self):
        machine, _ = observed_run("batched")
        with pytest.raises(SimulationError, match="after run"):
            machine.attach_observer(SimObserver())

    def test_second_observer_raises(self):
        machine = SimMachine(smp12e5())
        machine.attach_observer(SimObserver())
        with pytest.raises(SimulationError):
            machine.attach_observer(SimObserver())

    def test_observer_is_single_use(self):
        _, obs = observed_run("batched")
        with pytest.raises(SimulationError, match="single-use"):
            obs.begin(SimMachine(smp12e5()))

    def test_chrome_trace_requires_a_ring(self):
        _, obs = observed_run("batched", trace=False)
        with pytest.raises(SimulationError, match="no ring trace"):
            obs.chrome_trace()

    def test_fold_fills_meta_and_registry(self):
        machine, obs = observed_run("batched")
        assert obs.meta["core"] == "batched"
        assert obs.meta["threads"] == 4
        snap = obs.snapshot()
        assert snap["sim_events_processed_total"] == \
            machine.engine.events_processed
        assert snap["sim_elapsed_cycles"] == machine.engine.now
        busy = sum(
            v for k, v in snap.items()
            if k.startswith("sim_pu_busy_cycles_total")
        )
        assert busy == pytest.approx(
            sum(t.counters.busy_cycles for t in machine.threads)
        )
        assert snap["sim_sched_queue_depth"]["count"] > 0
        assert snap["sim_trace_records_total"] == obs.ring.recorded

    def test_snapshot_parity_across_cores(self):
        snaps = {}
        for core in ("object", "batched", "soa"):
            _, obs = observed_run(core)
            snaps[core] = {
                k: v for k, v in obs.snapshot().items()
                if not k.startswith("sim_events_by_kind_total")
            }
        assert snaps["object"] == snaps["batched"]
        assert snaps["object"] == snaps["soa"]

    def test_event_kind_split_only_on_flat_cores(self):
        # Both flat cores tally per-kind event counts in their drain
        # loops; the object path does not.
        for core, expect in (("object", 0), ("batched", 1), ("soa", 1)):
            _, obs = observed_run(core)
            keys = [
                k for k in obs.snapshot()
                if k.startswith("sim_events_by_kind_total")
            ]
            assert (len(keys) > 0) == bool(expect), core


# -- Chrome trace_event schema ------------------------------------------------


INSTANT_FIELDS = {"name", "ph", "ts", "pid", "tid", "s", "args"}
META_FIELDS = {"name", "ph", "ts", "pid", "tid", "args"}


class TestChromeSchema:
    @pytest.fixture(scope="class")
    def trace(self):
        machine, obs = observed_run("batched")
        return machine, obs.chrome_trace()

    def test_top_level_shape(self, trace):
        _, doc = trace
        assert set(doc) == {"traceEvents", "displayTimeUnit", "metadata"}
        assert doc["displayTimeUnit"] == "ms"
        assert set(doc["metadata"]) == {"recorded", "dropped", "capacity"}

    def test_stable_field_sets(self, trace):
        _, doc = trace
        phs = set()
        for ev in doc["traceEvents"]:
            phs.add(ev["ph"])
            if ev["ph"] == "i":
                assert set(ev) == INSTANT_FIELDS
                assert ev["s"] == "t"
                assert ev["name"] in TRACE_KINDS
                assert set(ev["args"]) == {"cycles"}
            else:
                assert ev["ph"] == "M"
                assert set(ev) == META_FIELDS
                assert ev["name"] in ("process_name", "thread_name")
        assert phs == {"i", "M"}

    def test_instants_monotonic_nonnegative_ts(self, trace):
        _, doc = trace
        ts = [e["ts"] for e in doc["traceEvents"] if e["ph"] == "i"]
        assert ts and ts[0] >= 0.0
        assert all(a <= b for a, b in zip(ts, ts[1:]))

    def test_pid_tid_map_to_pu_and_thread(self, trace):
        machine, doc = trace
        valid_pus = {p.os_index for p in machine.topology.pus} | {-1}
        valid_tids = {t.tid for t in machine.threads}
        names = {t.tid: t.name for t in machine.threads}
        thread_meta = {}
        for ev in doc["traceEvents"]:
            if ev["ph"] == "i":
                assert ev["pid"] in valid_pus
                assert ev["tid"] in valid_tids
            elif ev["name"] == "thread_name":
                thread_meta[ev["tid"]] = ev["args"]["name"]
        for tid, label in thread_meta.items():
            if tid in names:
                assert label == names[tid]

    def test_ts_is_microseconds_of_virtual_time(self, trace):
        machine, doc = trace
        scale = 1e6 / machine.clock_hz
        for ev in doc["traceEvents"]:
            if ev["ph"] == "i":
                assert ev["ts"] == pytest.approx(
                    ev["args"]["cycles"] * scale
                )

    def test_identical_across_cores(self):
        docs = [
            observed_run(core)[1].chrome_trace()
            for core in ("object", "batched", "soa")
        ]
        assert docs[0] == docs[1] == docs[2]
