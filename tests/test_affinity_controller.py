"""The adaptive remapping controller (``repro.affinity``).

Three layers of assurance:

* property tests over the drift detector's control-loop guards
  (EWMA bounds, hysteresis, cooldown spacing) with seeded ``random``
  sequences — the contracts hold for *any* score stream, not just the
  tuned experiment;
* determinism of full controller runs on fixed seeds;
* the zero-remap differential family: on a phase-stable program the
  controller must be a pure observer — zero remaps and a fingerprint
  identical to the uncontrolled windowed run — on every simulator core,
  with and without extra taps, under ``REPRO_SANITIZE=1``.
"""

import random
from types import SimpleNamespace

import numpy as np
import pytest

from repro.affinity import (
    AdaptiveController,
    ControllerConfig,
    DriftConfig,
    DriftDetector,
    WindowTelemetry,
    drift_score,
)
from repro.errors import AffinityError
from repro.experiments.adaptive import run_adaptive
from repro.sim.observe import SimObserver
from tests.harness.adaptive import (
    CORES,
    machine_fingerprint,
    run_controlled,
    run_uncontrolled,
    shift_setup,
    small_config,
    stable_setup,
)

pytestmark = pytest.mark.adaptive


class TestDriftScore:
    def test_zero_for_identical_shapes_any_scale(self):
        m = np.array([[0.0, 3.0], [1.0, 0.0]])
        assert drift_score(m, m * 1e6) == 0.0

    def test_disjoint_supports_score_one(self):
        a = np.array([[0.0, 1.0], [0.0, 0.0]])
        b = np.array([[0.0, 0.0], [1.0, 0.0]])
        assert drift_score(a, b) == pytest.approx(1.0)

    def test_empty_side_scores_zero(self):
        z = np.zeros((2, 2))
        m = np.ones((2, 2))
        assert drift_score(z, m) == 0.0
        assert drift_score(m, z) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(AffinityError, match="shapes differ"):
            drift_score(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_bounded_on_random_matrices(self):
        rng = random.Random(7)
        for _ in range(50):
            n = rng.randint(1, 6)
            a = np.array([[rng.random() for _ in range(n)] for _ in range(n)])
            b = np.array([[rng.random() for _ in range(n)] for _ in range(n)])
            s = drift_score(a, b)
            assert 0.0 <= s <= 1.0 + 1e-12


class TestDriftDetectorProperties:
    def test_ewma_bounded_by_input_extremes(self):
        # The EWMA is a convex combination of everything seen so far,
        # so it can never escape [min(scores), max(scores)].
        rng = random.Random(11)
        for alpha in (0.1, 0.5, 0.9, 1.0):
            det = DriftDetector(DriftConfig(alpha=alpha))
            lo, hi = 1.0, 0.0
            for _ in range(300):
                s = rng.random()
                lo, hi = min(lo, s), max(hi, s)
                det.update(s)
                assert lo - 1e-12 <= det.ewma <= hi + 1e-12

    def test_never_retriggers_inside_the_band(self):
        # Fire once, then feed scores strictly inside (low, high): every
        # input exceeds `low`, so the EWMA (a convex combination) never
        # dips to the re-arm threshold and the detector can never fire
        # again no matter how long the oscillation lasts.
        rng = random.Random(13)
        for trial in range(20):
            cfg = DriftConfig(alpha=0.5, high=0.25, low=0.10, cooldown=2)
            det = DriftDetector(cfg)
            while not det.update(1.0):
                pass
            assert det.triggers == 1
            for _ in range(200):
                fired = det.update(rng.uniform(cfg.low + 1e-6,
                                               cfg.high - 1e-6))
                assert not fired
                assert det.ewma > cfg.low
            assert det.triggers == 1

    def test_no_retrigger_without_dip_below_low(self):
        # Hysteresis, upper half: a score pinned above `high` keeps the
        # detector disarmed forever once it fired — cooldown expiring
        # is not sufficient to re-fire.
        det = DriftDetector(DriftConfig(cooldown=1))
        assert any(det.update(1.0) for _ in range(3))
        for _ in range(100):
            assert not det.update(1.0)
        assert det.triggers == 1

    def test_cooldown_spacing_on_any_sequence(self):
        # For ANY score sequence, two triggers are separated by at
        # least max(1, cooldown) updates.
        rng = random.Random(17)
        for trial in range(30):
            cooldown = rng.randint(0, 5)
            cfg = DriftConfig(
                alpha=rng.choice((0.3, 0.5, 1.0)),
                high=0.2, low=0.2, cooldown=cooldown,
            )
            det = DriftDetector(cfg)
            fired_at = []
            for i in range(400):
                # Extreme scores maximize trigger pressure.
                if det.update(rng.choice((0.0, 1.0))):
                    fired_at.append(i)
            for a, b in zip(fired_at, fired_at[1:]):
                assert b - a >= max(1, cooldown)

    def test_reset_clears_smoothing_keeps_counts(self):
        det = DriftDetector(DriftConfig(cooldown=3))
        assert any(det.update(1.0) for _ in range(3))
        assert det.triggers == 1 and not det.armed
        updates = det.updates
        cd = det.cooldown_left
        det.reset()
        assert det.ewma is None and det.armed
        assert det.triggers == 1 and det.updates == updates
        assert det.cooldown_left == cd  # cooldown guards real time

    def test_score_out_of_range_rejected(self):
        det = DriftDetector()
        with pytest.raises(AffinityError, match="out of range"):
            det.update(1.5)
        with pytest.raises(AffinityError, match="out of range"):
            det.update(-0.1)

    def test_config_validation(self):
        with pytest.raises(AffinityError):
            DriftConfig(alpha=0.0)
        with pytest.raises(AffinityError):
            DriftConfig(low=0.3, high=0.2)
        with pytest.raises(AffinityError):
            DriftConfig(cooldown=-1)


def _thread(tid):
    return SimpleNamespace(tid=tid)


class TestWindowTelemetry:
    def test_first_touch_ownership_attribution(self):
        tel = WindowTelemetry(3, decay=0.5)
        buf = object()
        tel.on_touch(_thread(0), buf, 100, True)   # 0 becomes owner
        tel.on_touch(_thread(1), buf, 40, False)   # 1 received from 0
        tel.on_touch(_thread(0), buf, 100, True)   # owner's own touch: free
        assert tel.fold_window() == 40.0
        assert tel.estimate[1, 0] == 40.0
        assert tel.estimate.sum() == 40.0

    def test_decay_folds_old_windows_down(self):
        tel = WindowTelemetry(2, decay=0.5)
        buf = object()
        tel.on_touch(_thread(0), buf, 8, True)
        tel.on_touch(_thread(1), buf, 8, False)
        tel.fold_window()
        tel.fold_window()  # empty window: estimate halves
        assert tel.estimate[1, 0] == 4.0
        assert tel.windows == 2

    def test_reset_to_last_window_drops_history(self):
        tel = WindowTelemetry(2, decay=1.0)
        buf = object()
        tel.on_touch(_thread(0), buf, 8, True)
        tel.on_touch(_thread(1), buf, 8, False)
        tel.fold_window()
        tel.on_touch(_thread(1), buf, 2, False)
        tel.fold_window()
        assert tel.estimate[1, 0] == 10.0  # decay=1: running sum
        tel.reset_to_last_window()
        assert tel.estimate[1, 0] == 2.0

    def test_out_of_range_tid_ignored(self):
        tel = WindowTelemetry(1)
        buf = object()
        tel.on_touch(_thread(5), buf, 8, True)
        assert tel.fold_window() == 0.0

    def test_validation(self):
        with pytest.raises(AffinityError):
            WindowTelemetry(0)
        with pytest.raises(AffinityError):
            WindowTelemetry(2, decay=1.5)
        with pytest.raises(AffinityError):
            ControllerConfig(gather_windows=0)


class TestControllerDeterminism:
    def test_fixed_seed_bitwise_repeatable(self):
        a = run_adaptive(shift_setup(8))
        b = run_adaptive(shift_setup(8))
        assert a["seconds"] == b["seconds"]
        assert a["windows"] == b["windows"]
        assert a["remaps"] == b["remaps"]
        assert a["phase_cycles"] == b["phase_cycles"]

    def test_phase_shift_actually_remaps(self):
        rep = run_adaptive(shift_setup(8))
        assert len(rep["remaps"]) >= 1
        for dec in rep["remaps"]:
            assert set(dec) == {"window", "drift", "moved", "warm"}
            assert dec["moved"] > 0

    def test_run_is_single_shot(self):
        controller, _, _ = run_controlled(stable_setup(2))
        with pytest.raises(AffinityError, match="only be called once"):
            controller.run()


class TestZeroRemapFamily:
    """Phase-stable program: the controller must be a pure observer."""

    @pytest.mark.parametrize("core", CORES)
    @pytest.mark.parametrize("taps", ["off", "on"])
    def test_untouched_vs_uncontrolled(self, core, taps, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        setup = stable_setup(4)
        base = run_uncontrolled(
            setup, core=core,
            observer=SimObserver() if taps == "on" else None,
        )
        controller, result, machine = run_controlled(
            setup, core=core,
            observer=SimObserver() if taps == "on" else None,
        )
        assert controller.decisions == []
        assert controller.telemetry.windows == controller.windows_run - 1 or \
            controller.telemetry.windows == controller.windows_run
        assert machine_fingerprint(machine) == machine_fingerprint(base)
        # REPRO_SANITIZE=1 reached both machines and actually checked.
        for m in (base, machine):
            assert m.sanitize and m.sanitizer is not None
            assert m.sanitizer.checks > 0
            assert m.sanitizer.violations == []
        assert result.seconds == machine.window_drained_at / machine.clock_hz

    def test_fingerprints_identical_across_cores(self):
        prints = []
        for core in CORES:
            controller, _, machine = run_controlled(stable_setup(4), core=core)
            assert controller.decisions == []
            prints.append(machine_fingerprint(machine))
        assert prints[0] == prints[1] == prints[2]


class TestOpenMPAdapter:
    def _master(self, omp, bufs):
        def body(item):
            yield from ()
            # Each worker reads the master-owned buffer: cross-thread
            # traffic the telemetry can attribute.

        def chunk(item):
            from repro.sim.process import Compute, Touch
            yield Compute(5e4)
            yield Touch(bufs[item % len(bufs)], 4096, write=False)

        def master_body():
            from repro.sim.process import Touch
            for b in bufs:
                yield Touch(b, 4096, write=True)  # first touch: master owns
            for _ in range(4):
                yield from omp.parallel_for(8, chunk)
        return master_body()

    def test_for_openmp_phase_stable_zero_remaps(self):
        from repro.openmp import OpenMPRuntime
        from repro.topology import smp12e5

        def build():
            omp = OpenMPRuntime(smp12e5(), 4, binding="close", seed=3)
            bufs = [omp.machine.allocate(1 << 15, f"b{i}") for i in range(4)]
            return omp, bufs

        omp_base, bufs_base = build()
        base = omp_base.run(lambda rt: self._master(rt, bufs_base))

        omp_ctl, bufs_ctl = build()
        controller = AdaptiveController.for_openmp(
            omp_ctl, lambda rt: self._master(rt, bufs_ctl),
            config=small_config(window_cycles=2e5),
        )
        result = controller.run()
        assert controller.decisions == []
        assert controller.windows_run >= 2
        assert result.seconds == base.seconds
        assert result.counters.snapshot() == base.counters.snapshot()
