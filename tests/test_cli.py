"""Tests for the repro-paper command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig", "3"])  # no Fig. 3 in the paper

    def test_table_choices(self):
        args = build_parser().parse_args(["table", "2"])
        assert args.number == 2


class TestCommands:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "SMP12E5" in out and "SMP20E7" in out

    def test_topology(self, capsys):
        assert main(["topology", "SMP20E7-4S", "--depth", "2"]) == 0
        out = capsys.readouterr().out
        assert "NUMANode" in out
        assert "PU" not in out  # depth-limited

    def test_topology_unknown_machine(self, capsys):
        assert main(["topology", "CRAY-1"]) == 2
        assert "error" in capsys.readouterr().err

    def test_comm_matrix(self, capsys):
        assert main(["comm-matrix"]) == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) > 30

    def test_allocation(self, capsys):
        assert main(["allocation"]) == 0
        out = capsys.readouterr().out
        assert "reserved for control" in out

    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        assert "NUMAlink" in capsys.readouterr().out

    def test_dfg_emits_dot(self, capsys):
        assert main(["dfg"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "tracking" in out

    def test_fig4_tiny_scale(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert main(["fig", "4", "--machine", "SMP20E7"]) == 0
        out = capsys.readouterr().out
        assert "ORWL (affinity)" in out
        assert "128" in out  # the machine's largest core count

    def test_table2_tiny_scale(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert main(["table", "2"]) == 0
        assert "CPU migrations" in capsys.readouterr().out
