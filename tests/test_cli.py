"""Tests for the repro-paper command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig", "3"])  # no Fig. 3 in the paper

    def test_table_choices(self):
        args = build_parser().parse_args(["table", "2"])
        assert args.number == 2


class TestCommands:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "SMP12E5" in out and "SMP20E7" in out

    def test_topology(self, capsys):
        assert main(["topology", "SMP20E7-4S", "--depth", "2"]) == 0
        out = capsys.readouterr().out
        assert "NUMANode" in out
        assert "PU" not in out  # depth-limited

    def test_topology_unknown_machine(self, capsys):
        assert main(["topology", "CRAY-1"]) == 2
        assert "error" in capsys.readouterr().err

    def test_comm_matrix(self, capsys):
        assert main(["comm-matrix"]) == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) > 30

    def test_allocation(self, capsys):
        assert main(["allocation"]) == 0
        out = capsys.readouterr().out
        assert "reserved for control" in out

    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        assert "NUMAlink" in capsys.readouterr().out

    def test_dfg_emits_dot(self, capsys):
        assert main(["dfg"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "tracking" in out

    def test_fig4_tiny_scale(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert main(["fig", "4", "--machine", "SMP20E7"]) == 0
        out = capsys.readouterr().out
        assert "ORWL (affinity)" in out
        assert "128" in out  # the machine's largest core count

    def test_table2_tiny_scale(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert main(["table", "2"]) == 0
        assert "CPU migrations" in capsys.readouterr().out


class TestJsonOutput:
    def test_machines_json(self, capsys):
        import json

        assert main(["machines", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        by_name = {r["name"]: r for r in rows}
        assert by_name["SMP12E5"]["pus"] == 192
        assert by_name["SMP12E5"]["hyperthreading"] is True

    def test_table1_json(self, capsys):
        import json

        assert main(["table", "1", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert isinstance(rows, list) and rows
        assert all(isinstance(r, dict) for r in rows)

    def test_table2_json_tiny_scale(self, capsys, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert main(["table", "2", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {"variant", "cpu_migrations"} <= set(rows[0])


class TestMapCommand:
    def test_map_small_prints_binding_table(self, capsys):
        assert main(["map", "--machine", "SMP12E5", "--threads", "16"]) == 0
        out = capsys.readouterr().out
        assert "16 stencil threads on SMP12E5" in out
        assert "PU " in out  # full binding table for small runs

    def test_map_ring_greedy_no_refine(self, capsys):
        assert main(["map", "--threads", "128", "--pattern", "ring",
                     "--engine", "greedy", "--no-refine"]) == 0
        out = capsys.readouterr().out
        assert "engine=greedy refine=False" in out
        assert "per-PU table suppressed" in out

    def test_map_oversubscribed(self, capsys):
        # 200 threads on SMP20E7's 160 PUs -> factor 2 via a virtual level.
        assert main(["map", "--threads", "200"]) == 0
        assert "oversubscription=2x" in capsys.readouterr().out

    def test_map_json_round_trips_placement(self, capsys):
        import json

        from repro.treematch.mapping import Placement

        assert main(["map", "--threads", "12", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["threads"] == 12 and doc["pattern"] == "stencil"
        assert doc["cost"] >= 0 and doc["seconds"] >= 0
        pl = Placement.from_dict(doc["placement"])
        assert sorted(pl.thread_to_pu) == list(range(12))
        assert pl.groups_per_level

    def test_map_unknown_machine(self, capsys):
        assert main(["map", "--machine", "CRAY-1"]) == 2
        assert "error" in capsys.readouterr().err


class TestLintCommand:
    def test_lint_needs_app_or_all(self, capsys):
        assert main(["lint"]) == 2
        assert ("lint needs an app name, --all or --hotlint"
                in capsys.readouterr().err)

    def test_lint_unknown_app(self, capsys):
        assert main(["lint", "nosuch"]) == 2
        assert "unknown app" in capsys.readouterr().err

    def test_lint_matmul_clean_exit_zero(self, capsys):
        assert main(["lint", "matmul"]) == 0
        out = capsys.readouterr().out
        assert "clean (no findings)" in out
        assert "migrations provably zero: yes" in out

    def test_lint_all_exit_zero(self, capsys):
        assert main(["lint", "--all"]) == 0
        out = capsys.readouterr().out
        for app in ("lk23", "matmul", "video"):
            assert f"analysis of {app}" in out

    def test_lint_json(self, capsys):
        import json

        assert main(["lint", "lk23", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "repro-analyze/1"
        assert doc["program"] == "lk23"
        assert doc["summary"]["errors"] == 0
        assert doc["migrations_provably_zero"] is True

    def test_lint_error_findings_exit_three(self, capsys, monkeypatch):
        # Register a broken program and check the CI exit-code contract.
        from repro.analyze import apps as apps_mod
        from tests.badprograms import cyclic

        monkeypatch.setitem(apps_mod.APP_BUILDERS, "cyclic", cyclic.build)
        assert main(["lint", "cyclic"]) == 3
        assert "deadlock-cycle" in capsys.readouterr().out

    def test_lint_hb_summary_line(self, capsys):
        assert main(["lint", "matmul", "--hb"]) == 0
        assert "happens-before replay:" in capsys.readouterr().out

    def test_lint_hotlint_clean(self, capsys):
        assert main(["lint", "--hotlint"]) == 0
        assert "analysis of hotlint" in capsys.readouterr().out

    def test_lint_sanitize_reports_clean_checks(self, capsys):
        assert main(["lint", "matmul", "--sanitize"]) == 0
        out = capsys.readouterr().out
        assert "sanitizer-clean" in out
        assert "invariant check(s) held" in out

    def test_lint_sarif_document(self, capsys):
        import json

        assert main(["lint", "matmul", "--hotlint", "--sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert len(doc["runs"]) == 1
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-analyze"

    def test_lint_openmp_app_dynamic(self, capsys):
        assert main(["lint", "omp-dgemm", "--dynamic"]) == 0
        out = capsys.readouterr().out
        assert "omp-regions-balanced" in out
        assert "migrations-zero-confirmed" in out
