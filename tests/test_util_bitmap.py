"""Unit and property tests for the hwloc-style Bitmap."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitmap import Bitmap

index_sets = st.sets(st.integers(min_value=0, max_value=300), max_size=40)


class TestConstruction:
    def test_empty(self):
        bm = Bitmap()
        assert len(bm) == 0
        assert not bm
        assert bm.first() == -1
        assert bm.last() == -1

    def test_from_iterable(self):
        bm = Bitmap([3, 1, 2])
        assert list(bm) == [1, 2, 3]

    def test_duplicate_indices_collapse(self):
        assert Bitmap([1, 1, 1]) == Bitmap([1])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Bitmap([-1])

    def test_single(self):
        assert list(Bitmap.single(7)) == [7]
        with pytest.raises(ValueError):
            Bitmap.single(-2)

    def test_range_half_open(self):
        assert list(Bitmap.range(2, 5)) == [2, 3, 4]
        assert not Bitmap.range(5, 5)
        assert not Bitmap.range(6, 2)


class TestListSyntax:
    def test_parse_simple(self):
        assert list(Bitmap.from_list("0-2,5")) == [0, 1, 2, 5]

    def test_parse_empty(self):
        assert not Bitmap.from_list("")
        assert not Bitmap.from_list("   ")

    def test_parse_single_values(self):
        assert list(Bitmap.from_list("7")) == [7]

    def test_parse_spaces(self):
        assert list(Bitmap.from_list(" 1 , 3-4 ")) == [1, 3, 4]

    def test_descending_range_rejected(self):
        with pytest.raises(ValueError):
            Bitmap.from_list("5-2")

    def test_render_runs(self):
        assert Bitmap([0, 1, 2, 5, 7, 8]).to_list() == "0-2,5,7-8"

    @given(index_sets)
    def test_roundtrip(self, idx):
        bm = Bitmap(idx)
        assert Bitmap.from_list(bm.to_list()) == bm


class TestAlgebra:
    def test_union_intersection_difference(self):
        a, b = Bitmap([0, 1, 2]), Bitmap([2, 3])
        assert list(a | b) == [0, 1, 2, 3]
        assert list(a & b) == [2]
        assert list(a - b) == [0, 1]
        assert list(a ^ b) == [0, 1, 3]

    def test_subset_disjoint(self):
        a, b = Bitmap([1, 2]), Bitmap([0, 1, 2, 3])
        assert a.issubset(b)
        assert not b.issubset(a)
        assert a.isdisjoint(Bitmap([5]))
        assert a.intersects(Bitmap([2, 9]))

    def test_contains(self):
        bm = Bitmap([4])
        assert 4 in bm
        assert 5 not in bm
        assert -1 not in bm

    def test_hashable(self):
        assert len({Bitmap([1]), Bitmap([1]), Bitmap([2])}) == 2

    @given(index_sets, index_sets)
    def test_matches_set_semantics(self, xs, ys):
        bx, by = Bitmap(xs), Bitmap(ys)
        assert set(bx | by) == xs | ys
        assert set(bx & by) == xs & ys
        assert set(bx - by) == xs - ys
        assert set(bx ^ by) == xs ^ ys
        assert bx.issubset(by) == xs.issubset(ys)
        assert bx.isdisjoint(by) == xs.isdisjoint(ys)

    @given(index_sets)
    def test_first_last_len(self, xs):
        bm = Bitmap(xs)
        assert len(bm) == len(xs)
        assert bm.first() == (min(xs) if xs else -1)
        assert bm.last() == (max(xs) if xs else -1)
