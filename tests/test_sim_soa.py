"""SoA-core specifics: selection, preallocation limits, windowed runs.

The cross-core bit-identity contract itself is pinned by
``test_sim_batched_equivalence.py`` and ``test_sim_difftest.py``; this
module covers what is *unique* to the struct-of-arrays core — core
selection defaults, the fixed-capacity column arrays, bound-flag
coherence, and :meth:`SimMachine.run_window` (the shard-protocol epoch
primitive) agreeing with a one-shot run on every core.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.simcore

from repro.errors import SimulationError
from repro.sim import Compute, SimMachine, Spawn, Touch, Wait, YieldCPU
from repro.sim.machine import SimLimits
from repro.topology import smp12e5
from repro.util.bitmap import Bitmap


def mixed_machine(core: str, *, seed: int = 3, threads: int = 16):
    """Bound + unbound threads with waits, yields and multi-quantum
    computes — crosses the vectorized drain, the scalar pump, and the
    wakeup paths in one workload."""
    m = SimMachine(smp12e5(), seed=seed, core=core)
    bufs = [m.allocate(1 << 15, f"b{i}") for i in range(threads)]
    evs = [m.event(f"e{i}") for i in range(threads)]

    def worker(i):
        for r in range(4):
            yield Compute(3e7)
            yield Touch(bufs[i], 8192, write=(i % 2 == 0))
            if i % 3 == 0:
                yield YieldCPU()
            evs[i].signal()
            if i:
                yield Wait(evs[i - 1])

    for i in range(threads):
        cpuset = Bitmap.single(2 * i) if i % 2 == 0 else None
        m.add_thread(f"w{i}", worker(i), cpuset=cpuset)
    return m


def fingerprint(m: SimMachine) -> tuple:
    return (
        m.elapsed_cycles,
        m.engine.events_processed,
        m.total_counters().snapshot(),
        [t.state for t in m.threads],
        [t.slices_run for t in m.threads],
        [t.slice_used for t in m.threads],
    )


class TestCoreSelection:
    def test_auto_resolves_to_soa(self):
        from repro.sim.jit import HAVE_NUMBA

        m = mixed_machine("auto")
        m.run()
        # With the repro[jit] extra installed, auto additionally picks
        # up the compiled run-ahead kernel and records it.
        assert m.core_used == ("soa+jit" if HAVE_NUMBA else "soa")

    def test_explicit_cores_honoured(self):
        for core in ("soa", "batched", "object"):
            m = mixed_machine(core)
            m.run()
            assert m.core_used == core


class TestPreallocatedColumns:
    def test_mid_run_thread_registration_rejected(self):
        # The SoA core sizes its columns at entry; a thread registered
        # from generator code lands beyond them and must fail loudly
        # with a pointer at the batched core, not corrupt state.
        m = SimMachine(smp12e5(), core="soa")

        def parent():
            yield Compute(1e4)
            late = m.add_thread("late", child(), start=False)
            yield Spawn(late)

        def child():
            yield Compute(1e4)

        m.add_thread("parent", parent(), cpuset=Bitmap.single(0))
        with pytest.raises(SimulationError, match="after run\\(\\) started"):
            m.run()

    def test_batched_core_allows_mid_run_registration(self):
        m = SimMachine(smp12e5(), core="batched")

        def parent():
            yield Compute(1e4)
            late = m.add_thread("late", child(), start=False)
            yield Spawn(late)

        def child():
            yield Compute(1e4)

        m.add_thread("parent", parent(), cpuset=Bitmap.single(0))
        m.run()
        assert [t.state for t in m.threads] == ["done", "done"]

    def test_bound_column_follows_rebind(self):
        # bind_thread during an SoA run must update the live bound
        # column (the vectorized eligibility masks read it), exercised
        # here via a thread that re-binds a peer mid-run.
        m = SimMachine(smp12e5(), core="soa")
        target = None

        def rebinder():
            yield Compute(3e7)
            m.bind_thread(target, None)  # unbind mid-run
            yield Compute(3e7)

        def victim():
            for _ in range(6):
                yield Compute(3e7)

        t0 = m.add_thread("rebinder", rebinder(), cpuset=Bitmap.single(0))
        target = m.add_thread("victim", victim(), cpuset=Bitmap.single(2))
        m.run()
        assert {t.state for t in m.threads} == {"done"}
        assert target.cpuset is None
        assert m._soa_bound is None  # column detached after the run


class TestRunWindow:
    @pytest.mark.parametrize("core", ["object", "batched", "soa"])
    def test_windowed_equals_one_shot(self, core):
        one = mixed_machine(core)
        one.run()

        win = mixed_machine(core)
        horizon = 0.0
        # Small windows slice straight through in-flight busy chunks and
        # vectorized EV_VBUSY groups, forcing the leftover-event shim
        # conversion at every boundary.
        for _ in range(40):
            horizon += 3e8
            win.run_window(horizon)
        win.run_window(1e13)

        # The windowed clock lands on the final horizon (by design: a
        # window's end time is the epoch boundary), so compare
        # everything *but* the clock bit-for-bit.
        assert fingerprint(win)[1:] == fingerprint(one)[1:]
        assert win.elapsed_cycles == 1e13

    def test_window_cannot_go_backwards(self):
        m = mixed_machine("soa")
        m.run_window(1e9)
        with pytest.raises(SimulationError, match="before now"):
            m.run_window(1e8)

    def test_window_advances_clock_to_horizon(self):
        # Even a drained machine reports the horizon: the shard protocol
        # equates machine time with the epoch boundary so messages
        # stamped inside (T_{k-1}, T_k] are always schedulable.
        m = mixed_machine("soa")
        m.run_window(1e13)  # everything completes well before this
        assert m.engine.now == 1e13

    def test_window_respects_event_budget(self):
        m = mixed_machine("soa")
        with pytest.raises(SimulationError, match="event budget"):
            for _ in range(1000):
                m.run_window(m.engine.now + 3e8, max_events=10)

    def test_observer_folds_once_after_last_window(self):
        from repro.sim.observe import SimObserver

        one = mixed_machine("soa")
        obs_one = SimObserver()
        one.attach_observer(obs_one)
        one.run()

        win = mixed_machine("soa")
        obs_win = SimObserver()
        win.attach_observer(obs_win)
        horizon = 0.0
        for _ in range(20):
            horizon += 6e8
            win.run_window(horizon)
        win.run_window(1e13)
        obs_win.fold(win)

        def strip_windowing(snap):
            # Clock-derived gauges (elapsed, per-PU idle = horizon -
            # busy) legitimately track the final window horizon, and the
            # queue-depth histogram gets one extra sample per window
            # re-dispatch; everything else must fold identically.
            return {
                k: v for k, v in snap.items()
                if k != "sim_elapsed_cycles"
                and k != "sim_sched_queue_depth"
                and not k.startswith("sim_pu_idle_cycles")
            }

        assert strip_windowing(obs_win.snapshot()) == \
            strip_windowing(obs_one.snapshot())


class TestBetweenWindowRebind:
    """The adaptive controller's live-rebind path: ``bind_thread``
    between ``run_window`` epochs, with no generator involvement."""

    @staticmethod
    def _long_machine(core: str) -> SimMachine:
        m = SimMachine(smp12e5(), core=core)

        def worker(i):
            # The yield forces a real redispatch per chunk: the serial
            # run-ahead paths would otherwise commit a thread's whole
            # future at window 0, leaving a later rebind nothing to move.
            for _ in range(24):
                yield Compute(3e7)
                yield YieldCPU()

        for i in range(4):
            m.add_thread(f"w{i}", worker(i), cpuset=Bitmap.single(2 * i))
        return m

    @staticmethod
    def _drain(m: SimMachine, rebind_to: Bitmap | None) -> SimMachine:
        m.run_window(1.5e8)
        if rebind_to is not None:
            # The SoA bound column only lives inside run_soa — between
            # epochs the rebind goes through thread.cpuset and must be
            # picked up when the next window rebuilds its columns.
            assert m._soa_bound is None
            m.bind_thread(m.threads[1], rebind_to)
            assert m.threads[1].cpuset == rebind_to
        horizon = 3e8
        for _ in range(10):
            m.run_window(horizon)
            horizon += 1.5e8
        m.run_window(1e13)
        assert {t.state for t in m.threads} == {"done"}
        return m

    def test_rebind_onto_occupied_pu_contends(self):
        # Moving w1 (PU 2) onto w2's PU 4 forces the two to timeshare:
        # the drain point must move out vs the undisturbed run — proof
        # the new binding is enforced, not just recorded.
        free = self._drain(self._long_machine("soa"), None)
        packed = self._drain(self._long_machine("soa"), Bitmap.single(4))
        assert packed.window_drained_at > free.window_drained_at
        assert packed.threads[1].cpuset == Bitmap.single(4)

    def test_rebind_agrees_across_cores(self):
        prints = []
        for core in ("object", "batched", "soa"):
            m = self._drain(self._long_machine(core), Bitmap.single(4))
            prints.append(fingerprint(m)[1:])  # clock sits on the horizon
        assert prints[0] == prints[1] == prints[2]

    def test_unbind_between_windows_frees_thread(self):
        bound = self._drain(self._long_machine("soa"), None)

        def loose_run(core):
            loose = self._long_machine(core)
            loose.run_window(1.5e8)
            loose.bind_thread(loose.threads[1], None)
            assert loose.threads[1].cpuset is None
            horizon = 3e8
            for _ in range(10):
                loose.run_window(horizon)
                horizon += 1.5e8
            loose.run_window(1e13)
            assert {t.state for t in loose.threads} == {"done"}
            return loose

        # The freed thread falls back to the seeded OS-scheduler policy
        # (migration costs included), so its schedule — and hence the
        # drain point — must diverge from the pinned run: unbinding is
        # enforced, not just recorded. And it stays deterministic and
        # core-independent.
        prints = [fingerprint(loose_run(c))[1:]
                  for c in ("object", "batched", "soa")]
        assert prints[0] == prints[1] == prints[2]
        assert prints[-1] != fingerprint(bound)[1:]


class TestLimitsValidation:
    def test_vec_min_validated(self):
        with pytest.raises(SimulationError):
            SimLimits(vec_min=1)
        assert SimLimits(vec_min=2).vec_min == 2

    def test_jit_knob_validated(self):
        with pytest.raises(SimulationError):
            SimLimits(jit="maybe")
        for mode in ("auto", "on", "off"):
            assert SimLimits(jit=mode).jit == mode


def token_ring(core: str, *, limits=None, stages: int = 8,
               loops: int = 40):
    """Wait-first single-token ring: exactly one runnable thread at any
    virtual instant — the chain chase's target workload."""
    m = SimMachine(smp12e5(), core=core, limits=limits)
    evs = [m.event(f"e{i}") for i in range(stages)]

    def stage(i):
        nxt = evs[(i + 1) % stages]
        for _ in range(loops):
            yield Wait(evs[i])
            yield Compute(1e4)
            nxt.signal()

    for i in range(stages):
        m.add_thread(f"s{i}", stage(i), cpuset=Bitmap.single(2 * i))
    evs[0].signal()
    return m


def lockstep_gang(core: str, *, limits=None, threads: int = 16):
    """All threads bound, identical multi-quantum computes: uniform
    VBUSY gangs — the run-ahead kernel's target workload."""
    m = SimMachine(smp12e5(), core=core, limits=limits)

    def worker():
        for _ in range(4):
            yield Compute(2e8)

    for i in range(threads):
        m.add_thread(f"w{i}", worker(), cpuset=Bitmap.single(2 * i))
    return m


class TestChainChase:
    def test_chase_engages_on_serial_chain(self):
        m = token_ring("soa")
        m.run()
        assert m.core_stats["chase_events"] > 0
        # Most of the ring's BUSY completions are provably-next events;
        # the chase should absorb a substantial share, not a token few.
        assert m.core_stats["chase_events"] * 4 >= m.engine.events_processed

    def test_chase_off_is_untaken_and_bit_identical(self):
        on = token_ring("soa")
        on.run()
        off = token_ring("soa", limits=SimLimits(chase=False))
        off.run()
        assert off.core_stats["chase_events"] == 0
        assert fingerprint(off) == fingerprint(on)

    def test_chase_does_not_fire_on_wide_workload(self):
        # Every PU busy in lockstep: the calendar always holds pending
        # buckets, so the provably-next probe must reject every emit.
        m = lockstep_gang("soa")
        m.run()
        assert m.core_stats["chase_events"] == 0

    def test_chase_honours_run_window(self):
        one = token_ring("soa")
        one.run()
        win = token_ring("soa")
        horizon = 0.0
        for _ in range(12):
            horizon += one.elapsed_cycles / 10
            win.run_window(horizon)
        win.run_window(1e15)
        # The windowed clock lands on the final horizon (epoch-boundary
        # semantics); everything else must match the one-shot run.
        assert fingerprint(win)[1:] == fingerprint(one)[1:]
        assert win.core_stats["chase_events"] > 0


class TestJitKernel:
    def test_forced_interpreted_kernel_engages_and_matches(self):
        # jit="on" without numba runs the kernel's pure-python twin —
        # slower, but it must take the same decisions bit for bit.
        off = lockstep_gang("soa", limits=SimLimits(jit="off"))
        off.run()
        on = lockstep_gang("soa", limits=SimLimits(jit="on"))
        on.run()
        assert on.core_used == "soa+jit"
        assert off.core_used == "soa"
        assert on.core_stats["jit_events"] > 0
        assert off.core_stats["jit_events"] == 0
        assert fingerprint(on) == fingerprint(off)

    def test_forced_kernel_matches_on_serial_chain(self):
        # A serial chain never forms a gang, so the kernel must simply
        # stay out of the way (zero absorbed events, identical run).
        plain = token_ring("soa")
        plain.run()
        jit = token_ring("soa", limits=SimLimits(jit="on"))
        jit.run()
        assert jit.core_stats["jit_events"] == 0
        assert fingerprint(jit) == fingerprint(plain)

    def test_auto_matches_numba_availability(self):
        from repro.sim.jit import HAVE_NUMBA

        m = lockstep_gang("auto")
        m.run()
        assert m.core_used == ("soa+jit" if HAVE_NUMBA else "soa")


class TestPopSingle:
    def test_single_event_bucket_pops(self):
        from repro.sim.engine import BatchedQueue, EV_STEP

        q = BatchedQueue()
        q.push(5.0, 1, EV_STEP, "a")
        assert q.pop_single() == (5.0, 1, EV_STEP, "a")
        assert q.pop_single() is None

    def test_multi_event_bucket_refused(self):
        from repro.sim.engine import BatchedQueue, EV_STEP

        q = BatchedQueue()
        q.push(5.0, 1, EV_STEP, "a")
        q.push(5.0, 2, EV_STEP, "b")
        assert q.pop_single() is None
        assert len(q) == 2  # untouched
        when, seqs, _, payloads = q.pop_batch()
        assert (when, seqs, payloads) == (5.0, [1, 2], ["a", "b"])

    def test_later_bucket_does_not_mask_earliest(self):
        from repro.sim.engine import BatchedQueue, EV_STEP

        q = BatchedQueue()
        q.push(7.0, 2, EV_STEP, "later")
        q.push(3.0, 1, EV_STEP, "first")
        assert q.pop_single() == (3.0, 1, EV_STEP, "first")
        assert q.pop_single() == (7.0, 2, EV_STEP, "later")
