"""Integration tests for the 30-task video-tracking pipeline."""

import pytest

from repro.apps.video import (
    VideoConfig,
    run_openmp_video,
    run_orwl_video,
    run_sequential_video,
)
from repro.apps.video.frames import FRAME_FORMATS, FrameSpec
from repro.apps.video.pipeline import build_orwl_video, run_sequential_reference
from repro.errors import ReproError
from repro.orwl import Runtime
from repro.topology import smp12e5_4s, smp20e7_4s


@pytest.fixture(autouse=True)
def tiny_format():
    FRAME_FORMATS["tiny"] = FrameSpec(64, 48)
    yield
    FRAME_FORMATS.pop("tiny", None)


def tiny_cfg(**kw):
    defaults = dict(
        resolution="tiny",
        frames=6,
        gmm_split=4,
        ccl_split=2,
        n_dilate=2,
        execute_data=True,
        seed=3,
    )
    defaults.update(kw)
    return VideoConfig(**defaults)


class TestConfig:
    def test_default_has_30_tasks(self):
        assert VideoConfig().n_tasks == 30

    def test_validation(self):
        with pytest.raises(ReproError):
            VideoConfig(resolution="8K")
        with pytest.raises(ReproError):
            VideoConfig(frames=0)
        with pytest.raises(ReproError):
            VideoConfig(gmm_split=0)


class TestGraphStructure:
    def test_task_ids_match_fig2(self):
        rt = Runtime(smp20e7_4s(), affinity=False)
        build_orwl_video(rt, VideoConfig(resolution="HD", frames=1))
        names = [op.name for op in rt.operations]
        assert names[0].startswith("producer")
        assert names[1].startswith("gmm/")
        assert names[2].startswith("erode")
        assert all(n.startswith("dilate") for n in names[3:7])
        assert names[7].startswith("ccl/")
        assert names[8].startswith("tracking")
        assert names[9].startswith("consumer")
        assert all(n.startswith("gmm split") for n in names[10:26])
        assert all(n.startswith("ccl split") for n in names[26:30])

    def test_comm_matrix_structure(self):
        """Fig. 1's structure: gmm row/col blocks, pipeline chain."""
        rt = Runtime(smp20e7_4s(), affinity=False)
        build_orwl_video(rt, VideoConfig(resolution="HD", frames=1))
        rt.schedule()
        raw = rt.dependency_get().raw
        assert raw[1, 0] > 0  # gmm reads producer's frame
        assert raw[2, 1] > 0  # erode reads fg_mask
        for i in range(10, 26):  # gmm splits read gmm's work
            assert raw[i, 1] > 0
            assert raw[1, i] > 0  # gmm gathers their pieces
        assert raw[8, 7] > 0  # tracking reads ccl labels
        assert raw[9, 8] > 0  # consumer reads tracks

    def test_split_traffic_is_fraction(self):
        rt = Runtime(smp20e7_4s(), affinity=False)
        cfg = VideoConfig(resolution="HD", frames=1)
        build_orwl_video(rt, cfg)
        rt.schedule()
        raw = rt.dependency_get().raw
        full_frame = raw[1, 0]
        split_read = raw[10, 1]
        assert split_read == pytest.approx(full_frame / cfg.gmm_split)


class TestDataCorrectness:
    def test_pipeline_equals_sequential_reference(self):
        cfg = tiny_cfg()
        ref = run_sequential_reference(cfg)
        _, out = run_orwl_video(smp20e7_4s(), cfg, affinity=False)
        assert out["tracks"] == ref

    def test_pipeline_equals_reference_with_affinity(self):
        cfg = tiny_cfg(frames=5)
        ref = run_sequential_reference(cfg)
        _, out = run_orwl_video(smp12e5_4s(), cfg, affinity=True)
        assert out["tracks"] == ref

    def test_tracker_actually_tracks_objects(self):
        cfg = tiny_cfg(frames=10, n_objects=2)
        ref = run_sequential_reference(cfg)
        # After warmup frames some track must persist with growing age.
        last = ref[-1]
        assert len(last) >= 1
        assert max(age for _, _, age in last) >= 3

    def test_different_splits_same_output(self):
        a = run_sequential_reference(tiny_cfg())
        cfg2 = tiny_cfg(gmm_split=2, ccl_split=3)
        _, out = run_orwl_video(smp20e7_4s(), cfg2, affinity=False)
        assert out["tracks"] == a


class TestPerformanceShape:
    def test_all_variants_run(self):
        cfg = VideoConfig(resolution="HD", frames=5)
        res, out = run_orwl_video(smp12e5_4s(), cfg, affinity=True, seed=1)
        assert out["frames_done"] == 5
        omp = run_openmp_video(smp12e5_4s(), cfg, 30, binding="close", seed=1)
        seq = run_sequential_video(smp12e5_4s(), cfg, seed=1)
        assert res.seconds > 0 and omp.seconds > 0 and seq.seconds > 0

    def test_pipeline_beats_sequential(self):
        cfg = VideoConfig(resolution="HD", frames=10)
        seq = run_sequential_video(smp20e7_4s(), cfg, seed=1)
        aff, _ = run_orwl_video(smp20e7_4s(), cfg, affinity=True, seed=1)
        assert aff.seconds < seq.seconds / 2

    def test_affinity_zero_migrations(self):
        cfg = VideoConfig(resolution="HD", frames=5)
        res, _ = run_orwl_video(smp12e5_4s(), cfg, affinity=True, seed=1)
        assert res.counters.cpu_migrations == 0

    def test_affinity_not_slower_than_native(self):
        cfg = VideoConfig(resolution="HD", frames=15)
        nat, _ = run_orwl_video(smp12e5_4s(), cfg, affinity=False, seed=1)
        aff, _ = run_orwl_video(smp12e5_4s(), cfg, affinity=True, seed=1)
        assert aff.seconds <= nat.seconds

    def test_higher_resolution_lower_fps(self):
        fps = {}
        for res in ("HD", "FullHD"):
            cfg = VideoConfig(resolution=res, frames=8)
            r, _ = run_orwl_video(smp20e7_4s(), cfg, affinity=True, seed=1)
            fps[res] = 8 / r.seconds
        assert fps["HD"] > fps["FullHD"]
