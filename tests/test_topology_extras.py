"""Tests for distances, binding helpers, rendering and serialization."""

import numpy as np
import pytest

from repro.errors import BindingError, TopologyError
from repro.topology import (
    fig2_machine,
    numa_distance_matrix,
    render_ascii,
    render_mapping,
    smp12e5,
    topology_from_dict,
    topology_to_dict,
)
from repro.topology.binding import full_cpuset, singlify, validate_cpuset
from repro.topology.distance import LOCAL_DISTANCE, router_hops
from repro.util.bitmap import Bitmap


class TestDistance:
    def test_router_hops_basics(self):
        assert router_hops(3, 3) == 0
        assert router_hops(0, 1) == 1
        assert router_hops(0, 2) == 2
        assert router_hops(1, 2) == 2
        assert router_hops(0, 4) == 3
        assert router_hops(0, 16) == 5

    def test_hops_symmetric(self):
        for a in range(8):
            for b in range(8):
                assert router_hops(a, b) == router_hops(b, a)

    def test_distance_matrix_properties(self):
        topo = smp12e5()
        d = numa_distance_matrix(topo)
        assert d.shape == (12, 12)
        assert np.allclose(np.diag(d), LOCAL_DISTANCE)
        assert np.allclose(d, d.T)
        assert (d[~np.eye(12, dtype=bool)] > LOCAL_DISTANCE).all()

    def test_farther_nodes_cost_more(self):
        d = numa_distance_matrix(smp12e5())
        assert d[0, 1] < d[0, 2] < d[0, 4] < d[0, 8]


class TestBinding:
    def test_validate_rejects_empty(self):
        with pytest.raises(BindingError):
            validate_cpuset(fig2_machine(), Bitmap())

    def test_validate_rejects_foreign(self):
        with pytest.raises(BindingError):
            validate_cpuset(fig2_machine(), Bitmap([999]))

    def test_validate_passes_subset(self):
        topo = fig2_machine()
        cs = Bitmap([0, 5])
        assert validate_cpuset(topo, cs) == cs

    def test_singlify(self):
        assert list(singlify(Bitmap([4, 9]))) == [4]
        with pytest.raises(BindingError):
            singlify(Bitmap())

    def test_full_cpuset(self):
        topo = fig2_machine()
        assert len(full_cpuset(topo)) == topo.n_pus


class TestRender:
    def test_ascii_contains_all_levels(self):
        text = render_ascii(fig2_machine())
        for token in ("Machine", "Blade", "NUMANode", "Package", "L3", "Core", "PU P#31"):
            assert token in text

    def test_ascii_depth_limit(self):
        shallow = render_ascii(fig2_machine(), max_depth=1)
        assert "PU" not in shallow

    def test_mapping_render_shows_threads_and_reserved(self):
        topo = fig2_machine()
        text = render_mapping(
            topo,
            {0: 0, 1: 1},
            {0: "producer", 1: "gmm"},
            reserved={22: "control", 23: "control"},
        )
        assert "0:producer" in text
        assert "1:gmm" in text
        assert "<control>" in text


class TestSerialize:
    def test_roundtrip_preserves_shape(self):
        topo = smp12e5()
        clone = topology_from_dict(topology_to_dict(topo))
        assert clone.n_pus == topo.n_pus
        assert clone.n_cores == topo.n_cores
        assert clone.level_arities() == topo.level_arities()
        assert clone.root.attrs["clock_hz"] == topo.root.attrs["clock_hz"]

    def test_roundtrip_preserves_caches(self):
        from repro.topology.objects import ObjType

        topo = fig2_machine()
        clone = topology_from_dict(topology_to_dict(topo))
        l3s = clone.objects_by_type(ObjType.L3)
        assert l3s and l3s[0].cache.size == 20480 * 1024

    def test_bad_format_rejected(self):
        with pytest.raises(TopologyError):
            topology_from_dict({"format": 99})

    def test_missing_root_rejected(self):
        with pytest.raises(TopologyError):
            topology_from_dict({"format": 1})
