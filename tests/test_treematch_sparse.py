"""CSR-vs-dense equivalence of the CommunicationMatrix backends.

The sparse backend (ISSUE 7) must be a drop-in: every operation the
mapping pipeline runs — affinity, aggregation, restriction, padding,
placement-cost evaluation — has to agree with the dense reference
*bit for bit*, not approximately. Two mechanisms make exact agreement
testable: ``placement_cost`` sums stored entries in the same row-major
upper-triangle order on both backends, and the test matrices are
integer-valued, so any summation order yields the same float.

Skipped entirely when scipy is not installed (the dense fallback is
then the only backend).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MappingError
from repro.treematch.aggregate import aggregate_comm_matrix
from repro.treematch.commmatrix import (
    SPARSE_AUTO_ORDER,
    CommunicationMatrix,
)

sp = pytest.importorskip("scipy.sparse")


def int_matrix(n: int, seed: int, density: float = 0.2) -> np.ndarray:
    """Random integer-valued traffic matrix (not necessarily symmetric)."""
    rng = np.random.default_rng(seed)
    m = rng.integers(1, 100, size=(n, n)).astype(np.float64)
    m[rng.random((n, n)) >= density] = 0.0
    np.fill_diagonal(m, 0.0)
    return m


def pair(m: np.ndarray) -> tuple[CommunicationMatrix, CommunicationMatrix]:
    return (
        CommunicationMatrix(m, sparse=False),
        CommunicationMatrix(m, sparse=True),
    )


def random_partition(n: int, k: int, seed: int) -> list[list[int]]:
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    bounds = sorted(rng.choice(np.arange(1, n), size=k - 1, replace=False))
    return [
        sorted(int(x) for x in part)
        for part in np.split(perm, bounds)
    ]


class TestBackendSelection:
    def test_explicit_flags(self):
        m = int_matrix(16, 0)
        dense, sparse = pair(m)
        assert not dense.is_sparse
        assert sparse.is_sparse
        assert sparse.nnz == int(np.count_nonzero(m))

    def test_sparse_input_densified_on_request(self):
        csr = sp.csr_array(int_matrix(8, 1))
        comm = CommunicationMatrix(csr, sparse=False)
        assert not comm.is_sparse

    def test_auto_is_dense_below_order_cutoff(self):
        comm = CommunicationMatrix.stencil2d(SPARSE_AUTO_ORDER - 1)
        assert not comm.is_sparse

    def test_auto_is_sparse_for_large_low_density(self):
        comm = CommunicationMatrix.stencil2d(SPARSE_AUTO_ORDER)
        assert comm.is_sparse

    def test_from_edges_validation_matches_dense(self):
        for kwargs in ({"sparse": True}, {"sparse": False}):
            with pytest.raises(MappingError, match="outside order"):
                CommunicationMatrix.from_edges(2, {(0, 5): 1.0}, **kwargs)
            with pytest.raises(MappingError, match="negative traffic"):
                CommunicationMatrix.from_edges(2, {(0, 1): -1.0}, **kwargs)

    def test_negative_entries_rejected(self):
        m = np.array([[0.0, -1.0], [0.0, 0.0]])
        with pytest.raises((MappingError, ValueError)):
            CommunicationMatrix(m, sparse=True)
        with pytest.raises(MappingError):
            CommunicationMatrix(sp.csr_array(m), sparse=True)


class TestBitForBitEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 1000), st.integers(6, 64))
    def test_affinity_and_views_random(self, seed, n):
        m = int_matrix(n, seed)
        dense, sparse = pair(m)
        assert np.array_equal(dense.raw, sparse.raw)
        assert np.array_equal(dense.affinity(), sparse.affinity())
        assert np.array_equal(
            dense.affinity(), sparse.affinity_sparse().toarray()
        )
        assert dense.total_traffic() == sparse.total_traffic()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 1000), st.integers(8, 64))
    def test_restricted_random(self, seed, n):
        m = int_matrix(n, seed)
        dense, sparse = pair(m)
        rng = np.random.default_rng(seed + 1)
        idx = sorted(
            int(i) for i in rng.choice(n, size=max(2, n // 3), replace=False)
        )
        rd = dense.restricted(idx)
        rs = sparse.restricted(idx)
        assert np.array_equal(rd.raw, rs.raw)
        assert list(rd.labels) == list(rs.labels)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 1000), st.integers(4, 48), st.integers(1, 40))
    def test_padded_random(self, seed, n, extra):
        m = int_matrix(n, seed)
        dense, sparse = pair(m)
        pd = dense.padded(n + extra)
        ps = sparse.padded(n + extra)
        assert ps.is_sparse
        assert np.array_equal(pd.raw, ps.raw)
        assert list(pd.labels) == list(ps.labels)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 1000), st.integers(8, 64))
    def test_placement_cost_random(self, seed, n):
        m = int_matrix(n, seed)
        dense, sparse = pair(m)
        rng = np.random.default_rng(seed + 2)
        placement = {
            i: int(pu) for i, pu in enumerate(rng.integers(0, 12, size=n))
        }
        # Leave some threads unbound to exercise the membership guard.
        for t in rng.choice(n, size=n // 5, replace=False):
            placement.pop(int(t), None)
        hop = {
            (a, b): float(abs(a - b)) * 1.25
            for a in range(12) for b in range(12)
        }
        assert dense.placement_cost(placement, hop) == \
            sparse.placement_cost(placement, hop)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 1000), st.integers(8, 64), st.integers(2, 6))
    def test_aggregate_random(self, seed, n, k):
        m = int_matrix(n, seed)
        groups = random_partition(n, k, seed + 3)
        a_dense = aggregate_comm_matrix(m, groups)
        a_sparse = aggregate_comm_matrix(sp.csr_array(m), groups)
        assert np.array_equal(a_dense, a_sparse)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 400))
    def test_stencil_both_backends(self, n):
        dense = CommunicationMatrix.stencil2d(n, sparse=False)
        sparse = CommunicationMatrix.stencil2d(n, sparse=True)
        assert np.array_equal(dense.raw, sparse.raw)
        rng = np.random.default_rng(n)
        placement = {
            i: int(pu) for i, pu in enumerate(rng.integers(0, 8, size=n))
        }
        hop = {(a, b): float(a != b) for a in range(8) for b in range(8)}
        assert dense.placement_cost(placement, hop) == \
            sparse.placement_cost(placement, hop)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 1000))
    def test_from_edges_both_backends(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 64))
        edges = {
            (int(rng.integers(0, n)), int(rng.integers(0, n))):
                float(rng.integers(1, 100))
            for _ in range(n * 2)
        }
        edges = {
            (i, j): w for (i, j), w in edges.items() if i != j
        }
        dense = CommunicationMatrix.from_edges(n, edges, sparse=False)
        sparse = CommunicationMatrix.from_edges(n, edges, sparse=True)
        assert np.array_equal(dense.raw, sparse.raw)


class TestSparseRoundtrips:
    def test_csv_roundtrip_from_sparse(self):
        comm = CommunicationMatrix.stencil2d(32, sparse=True)
        back = CommunicationMatrix.from_csv(comm.to_csv())
        assert not back.is_sparse
        assert np.array_equal(back.raw, comm.raw)

    def test_tocsr_of_dense(self):
        m = int_matrix(10, 5)
        dense = CommunicationMatrix(m, sparse=False)
        assert np.array_equal(dense.tocsr().toarray(), m)

    def test_default_labels_lazy(self):
        comm = CommunicationMatrix.stencil2d(5000, sparse=True)
        assert comm.labels[0] == "t0"
        assert comm.labels[4999] == "t4999"
        assert len(comm.labels) == 5000
