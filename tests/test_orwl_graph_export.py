"""Tests for the DFG export (Fig. 3 rendering) and remaining machine ops."""

import pytest

from repro.apps.video import VideoConfig
from repro.apps.video.pipeline import build_orwl_video
from repro.orwl import Runtime
from repro.orwl.graph import edge_list, to_dot
from repro.sim import Compute, SimMachine, Spawn
from repro.topology import fig2_machine, smp20e7_4s
from repro.util.bitmap import Bitmap


def small_program():
    rt = Runtime(fig2_machine(), affinity=False)
    a, b = rt.task("prod"), rt.task("cons")
    loc = a.location("chan", 512)
    a.write_handle(loc, iterative=True)
    h = b.read_handle(loc, iterative=True)
    h.traffic = 128.0
    return rt


class TestEdgeList:
    def test_edges_and_traffic(self):
        rt = small_program()
        edges = edge_list(rt)
        assert ("prod/op0", "chan", "w", 512.0) in edges
        assert ("chan", "cons/op0", "r", 128.0) in edges

    def test_video_graph_edge_count(self):
        rt = Runtime(smp20e7_4s(), affinity=False)
        build_orwl_video(rt, VideoConfig(resolution="HD", frames=1))
        edges = edge_list(rt)
        # every handle (declared or split/fifo-attached) gives one edge
        n_handles = sum(len(op.all_handles) for op in rt.operations)
        assert len(edges) == n_handles
        assert any(len(op.ext_handles) > 0 for op in rt.operations)


class TestDot:
    def test_dot_structure(self):
        dot = to_dot(small_program(), name="demo")
        assert dot.startswith('digraph "demo" {')
        assert dot.rstrip().endswith("}")
        assert '"prod/op0" [shape=box' in dot
        assert '"chan" [shape=ellipse' in dot
        assert '"prod/op0" -> "chan"' in dot
        assert '"chan" -> "cons/op0"' in dot

    def test_write_solid_read_dashed(self):
        dot = to_dot(small_program())
        assert "style=solid" in dot
        assert "style=dashed" in dot

    def test_video_dot_contains_fig3_nodes(self):
        rt = Runtime(smp20e7_4s(), affinity=False)
        build_orwl_video(rt, VideoConfig(resolution="HD", frames=1))
        dot = to_dot(rt)
        for node in ("producer", "gmm", "erode", "dilate", "ccl",
                     "tracking", "consumer", "fg_mask"):
            assert node in dot


class TestMachineRemainingOps:
    def test_spawn_op_starts_unstarted_thread(self):
        m = SimMachine(fig2_machine())
        log = []

        def child():
            log.append("child")
            yield Compute(1.0)

        child_thread = m.add_thread("child", child(), start=False)

        def parent():
            yield Compute(1.0)
            yield Spawn(child_thread)
            yield Compute(1.0)

        m.add_thread("parent", parent(), cpuset=Bitmap.single(0))
        m.run()
        assert log == ["child"]
        assert child_thread.state == "done"

    def test_unstarted_thread_never_runs_alone(self):
        m = SimMachine(fig2_machine())
        m.add_thread("never", iter([Compute(1.0)]), start=False)
        m.add_thread("main", iter([Compute(1.0)]), cpuset=Bitmap.single(0))
        m.run()  # must not deadlock on the unstarted thread
        assert m.threads[0].state == "unstarted"

    def test_max_cycles_partial_run(self):
        m = SimMachine(fig2_machine())
        m.add_thread("t", iter([Compute(1e12)]), cpuset=Bitmap.single(0))
        m.run(max_cycles=1e6)
        assert m.threads[0].state != "done"

    def test_busy_cycles_accumulate(self):
        m = SimMachine(fig2_machine())
        m.add_thread("t", iter([Compute(1000.0)]), cpuset=Bitmap.single(0))
        m.run()
        assert m.total_counters().busy_cycles == pytest.approx(500.0)
