"""Cross-variant application behaviours the paper remarks on."""

import pytest

from repro.apps.lk23 import Lk23Config, run_openmp_lk23, run_orwl_lk23
from repro.apps.matmul import MatmulConfig, run_orwl_matmul
from repro.apps.video import VideoConfig, run_openmp_video, run_orwl_video
from repro.openmp.mkl import threaded_dgemm
from repro.topology import smp12e5, smp12e5_4s, smp20e7, smp20e7_4s


class TestLk23OpenmpBindings:
    def test_close_and_spread_equivalent(self):
        """Sec. VI-B.1: 'OMP_PROC_BIND=close/spread (both implementations
        giving the same results)' — with master-homed data neither choice
        can matter much."""
        cfg = Lk23Config(n=2048, iterations=4, n_threads=32)
        close = run_openmp_lk23(smp12e5(), cfg, binding="close", seed=1)
        spread = run_openmp_lk23(smp12e5(), cfg, binding="spread", seed=1)
        assert close.seconds == pytest.approx(spread.seconds, rel=0.25)

    def test_binding_kills_migrations(self):
        cfg = Lk23Config(n=1024, iterations=3, n_threads=16)
        for binding in ("close", "spread", "compact", "scatter"):
            res = run_openmp_lk23(smp20e7(), cfg, binding=binding, seed=1)
            assert res.counters.cpu_migrations == 0, binding


class TestSingleThreadAgreement:
    def test_all_single_core_rates_agree(self):
        """At one core every variant runs the same serial workload; times
        must agree within the model's jitter (Fig. 4/5 leftmost points)."""
        cfg = Lk23Config(n=1024, iterations=3, n_threads=1)
        orwl = run_orwl_lk23(smp12e5(), cfg, affinity=True, seed=1)
        omp = run_openmp_lk23(smp12e5(), cfg, binding="close", seed=1)
        assert orwl.seconds == pytest.approx(omp.seconds, rel=0.35)

    def test_matmul_single_task_matches_mkl_single(self):
        n = 1024
        orwl = run_orwl_matmul(smp20e7(), MatmulConfig(n=n, n_tasks=1),
                               affinity=True, seed=1)
        mkl = threaded_dgemm(smp20e7(), n, 1, binding="close", seed=1)
        assert orwl.gflops == pytest.approx(mkl.gflops, rel=0.15)


class TestVideoVariants:
    def test_n_dilate_changes_task_count(self):
        assert VideoConfig(n_dilate=2).n_tasks == 28
        assert VideoConfig(n_dilate=4).n_tasks == 30

    def test_smaller_splits_still_run(self):
        cfg = VideoConfig(resolution="HD", frames=4, gmm_split=8, ccl_split=2)
        res, out = run_orwl_video(smp20e7_4s(), cfg, affinity=True, seed=1)
        assert out["frames_done"] == 4

    def test_openmp_video_team_size_matters(self):
        cfg = VideoConfig(resolution="FullHD", frames=8)
        t4 = run_openmp_video(smp12e5_4s(), cfg, 4, binding="close", seed=1)
        t30 = run_openmp_video(smp12e5_4s(), cfg, 30, binding="close", seed=1)
        assert t30.seconds < t4.seconds

    def test_both_machines_affinity_wins_fullhd(self):
        cfg = VideoConfig(resolution="FullHD", frames=10)
        for topo_fn in (smp12e5_4s, smp20e7_4s):
            nat, _ = run_orwl_video(topo_fn(), cfg, affinity=False, seed=1)
            aff, _ = run_orwl_video(topo_fn(), cfg, affinity=True, seed=1)
            assert aff.seconds <= nat.seconds


class TestOversubscribedApps:
    def test_lk23_more_threads_than_cores(self):
        """Dimensioning beyond the machine (the paper's 'some applications
        may have a minimum requirement for the number of tasks')."""
        cfg = Lk23Config(n=1024, iterations=2, n_threads=48)  # 48 > 32 PUs
        from repro.topology import fig2_machine

        res = run_orwl_lk23(fig2_machine(), cfg, affinity=True, seed=1)
        assert res.placement.oversub_factor >= 2
        assert res.seconds > 0

    def test_matmul_oversubscribed(self):
        from repro.topology import fig2_machine

        cfg = MatmulConfig(n=1024, n_tasks=40)
        res = run_orwl_matmul(fig2_machine(), cfg, affinity=True, seed=1)
        assert res.placement.oversub_factor == 2
