"""Tests for GroupProcesses / AggregateComMatrix and their invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MappingError
from repro.treematch.aggregate import aggregate_comm_matrix
from repro.treematch.grouping import (
    group_greedy,
    group_optimal,
    group_processes,
    intra_group_weight,
    partition_count,
    refine_groups,
)


def symmetric(n, rng):
    m = rng.random((n, n)) * 100
    m = m + m.T
    np.fill_diagonal(m, 0)
    return m


class TestPartitionCount:
    def test_known_values(self):
        assert partition_count(4, 2) == 3
        assert partition_count(6, 2) == 15
        assert partition_count(6, 3) == 10
        assert partition_count(8, 4) == 35
        assert partition_count(4, 4) == 1

    def test_indivisible_rejected(self):
        with pytest.raises(MappingError):
            partition_count(5, 2)


class TestGroupProcesses:
    def test_arity_one_identity(self):
        m = symmetric(5, np.random.default_rng(0))
        assert group_processes(m, 1) == [[i] for i in range(5)]

    def test_full_arity_single_group(self):
        m = symmetric(4, np.random.default_rng(0))
        assert group_processes(m, 4) == [[0, 1, 2, 3]]

    def test_indivisible_rejected(self):
        m = symmetric(5, np.random.default_rng(0))
        with pytest.raises(MappingError):
            group_processes(m, 2)

    def test_bad_arity_rejected(self):
        m = symmetric(4, np.random.default_rng(0))
        with pytest.raises(MappingError):
            group_processes(m, 0)

    def test_unknown_engine_rejected(self):
        m = symmetric(4, np.random.default_rng(0))
        with pytest.raises(MappingError):
            group_processes(m, 2, force="magic")

    def test_obvious_pairs_found(self):
        # Threads (0,1) and (2,3) communicate heavily; optimal pairing is clear.
        m = np.zeros((4, 4))
        m[0, 1] = m[1, 0] = 100
        m[2, 3] = m[3, 2] = 100
        m[0, 2] = m[2, 0] = 1
        for force in (None, "optimal", "greedy"):
            groups = group_processes(m, 2, force=force)
            assert groups == [[0, 1], [2, 3]]

    def test_partition_is_exact_cover(self):
        rng = np.random.default_rng(7)
        m = symmetric(12, rng)
        groups = group_processes(m, 3)
        flat = sorted(i for g in groups for i in g)
        assert flat == list(range(12))
        assert all(len(g) == 3 for g in groups)

    def test_greedy_matches_optimal_on_separable(self):
        # Block-diagonal affinity: both engines must find the blocks.
        rng = np.random.default_rng(3)
        m = np.zeros((8, 8))
        for base in range(0, 8, 4):
            blk = rng.random((4, 4)) * 10 + 50
            m[base : base + 4, base : base + 4] = blk + blk.T
        np.fill_diagonal(m, 0)
        opt = group_processes(m, 4, force="optimal")
        greedy = group_processes(m, 4, force="greedy")
        assert intra_group_weight(m, opt) == pytest.approx(
            intra_group_weight(m, greedy)
        )

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_optimal_never_worse_than_greedy(self, seed):
        rng = np.random.default_rng(seed)
        m = symmetric(6, rng)
        opt = group_optimal(m, 2)
        greedy = refine_groups(m, group_greedy(m, 2))
        assert (
            intra_group_weight(m, opt)
            >= intra_group_weight(m, greedy) - 1e-9
        )

    def test_refine_improves_or_keeps(self):
        rng = np.random.default_rng(11)
        m = symmetric(10, rng)
        base = group_greedy(m, 2)
        refined = refine_groups(m, base)
        assert intra_group_weight(m, refined) >= intra_group_weight(m, base) - 1e-9

    def test_deterministic(self):
        rng = np.random.default_rng(5)
        m = symmetric(16, rng)
        assert group_processes(m, 2) == group_processes(m, 2)


class TestAggregate:
    def test_pairwise_sums(self):
        m = np.array(
            [
                [0.0, 1.0, 2.0, 3.0],
                [1.0, 0.0, 4.0, 5.0],
                [2.0, 4.0, 0.0, 6.0],
                [3.0, 5.0, 6.0, 0.0],
            ]
        )
        agg = aggregate_comm_matrix(m, [[0, 1], [2, 3]])
        # Traffic between group {0,1} and {2,3}: m[0,2]+m[0,3]+m[1,2]+m[1,3]
        assert agg[0, 1] == pytest.approx(2 + 3 + 4 + 5)
        assert agg[1, 0] == agg[0, 1]
        assert agg[0, 0] == 0 and agg[1, 1] == 0

    def test_total_cross_traffic_preserved(self):
        rng = np.random.default_rng(13)
        m = rng.random((6, 6)) * 10
        m = m + m.T
        np.fill_diagonal(m, 0)
        groups = [[0, 3], [1, 4], [2, 5]]
        agg = aggregate_comm_matrix(m, groups)
        cross = sum(
            m[i, j]
            for gi in range(3)
            for gj in range(3)
            if gi != gj
            for i in groups[gi]
            for j in groups[gj]
        )
        assert agg.sum() == pytest.approx(cross)

    def test_incomplete_cover_rejected(self):
        m = np.zeros((4, 4))
        with pytest.raises(MappingError):
            aggregate_comm_matrix(m, [[0, 1]])

    def test_duplicate_rejected(self):
        m = np.zeros((4, 4))
        with pytest.raises(MappingError):
            aggregate_comm_matrix(m, [[0, 1], [1, 2], [3]])

    def test_out_of_range_rejected(self):
        m = np.zeros((2, 2))
        with pytest.raises(MappingError):
            aggregate_comm_matrix(m, [[0, 5]])
