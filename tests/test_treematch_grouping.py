"""Tests for GroupProcesses / AggregateComMatrix and their invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MappingError
from repro.treematch.aggregate import aggregate_comm_matrix
from repro.treematch.grouping import (
    group_greedy,
    group_optimal,
    group_processes,
    intra_group_weight,
    partition_count,
    partition_count_exceeds,
    refine_groups,
)


def symmetric(n, rng):
    m = rng.random((n, n)) * 100
    m = m + m.T
    np.fill_diagonal(m, 0)
    return m


class TestPartitionCount:
    def test_known_values(self):
        assert partition_count(4, 2) == 3
        assert partition_count(6, 2) == 15
        assert partition_count(6, 3) == 10
        assert partition_count(8, 4) == 35
        assert partition_count(4, 4) == 1

    def test_indivisible_rejected(self):
        with pytest.raises(MappingError):
            partition_count(5, 2)


class TestPartitionCountExceeds:
    @pytest.mark.parametrize("p,a", [(4, 2), (6, 2), (6, 3), (8, 4), (4, 4)])
    def test_agrees_with_full_count(self, p, a):
        count = partition_count(p, a)
        assert not partition_count_exceeds(p, a, count)
        assert partition_count_exceeds(p, a, count - 1)
        assert not partition_count_exceeds(p, a, count + 1)

    def test_huge_instance_short_circuits(self):
        # 4160 elements into groups of 26: the true count has thousands of
        # digits; the early-exit variant must answer without computing it.
        assert partition_count_exceeds(4160, 26, 200_000)

    def test_indivisible_rejected(self):
        with pytest.raises(MappingError):
            partition_count_exceeds(5, 2, 10)


class TestGroupProcesses:
    def test_arity_one_identity(self):
        m = symmetric(5, np.random.default_rng(0))
        assert group_processes(m, 1) == [[i] for i in range(5)]

    def test_full_arity_single_group(self):
        m = symmetric(4, np.random.default_rng(0))
        assert group_processes(m, 4) == [[0, 1, 2, 3]]

    def test_indivisible_rejected(self):
        m = symmetric(5, np.random.default_rng(0))
        with pytest.raises(MappingError):
            group_processes(m, 2)

    def test_bad_arity_rejected(self):
        m = symmetric(4, np.random.default_rng(0))
        with pytest.raises(MappingError):
            group_processes(m, 0)

    def test_unknown_engine_rejected(self):
        m = symmetric(4, np.random.default_rng(0))
        with pytest.raises(MappingError):
            group_processes(m, 2, force="magic")

    def test_obvious_pairs_found(self):
        # Threads (0,1) and (2,3) communicate heavily; optimal pairing is clear.
        m = np.zeros((4, 4))
        m[0, 1] = m[1, 0] = 100
        m[2, 3] = m[3, 2] = 100
        m[0, 2] = m[2, 0] = 1
        for force in (None, "optimal", "greedy"):
            groups = group_processes(m, 2, force=force)
            assert groups == [[0, 1], [2, 3]]

    def test_partition_is_exact_cover(self):
        rng = np.random.default_rng(7)
        m = symmetric(12, rng)
        groups = group_processes(m, 3)
        flat = sorted(i for g in groups for i in g)
        assert flat == list(range(12))
        assert all(len(g) == 3 for g in groups)

    def test_greedy_matches_optimal_on_separable(self):
        # Block-diagonal affinity: both engines must find the blocks.
        rng = np.random.default_rng(3)
        m = np.zeros((8, 8))
        for base in range(0, 8, 4):
            blk = rng.random((4, 4)) * 10 + 50
            m[base : base + 4, base : base + 4] = blk + blk.T
        np.fill_diagonal(m, 0)
        opt = group_processes(m, 4, force="optimal")
        greedy = group_processes(m, 4, force="greedy")
        assert intra_group_weight(m, opt) == pytest.approx(
            intra_group_weight(m, greedy)
        )

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_optimal_never_worse_than_greedy(self, seed):
        rng = np.random.default_rng(seed)
        m = symmetric(6, rng)
        opt = group_optimal(m, 2)
        greedy = refine_groups(m, group_greedy(m, 2))
        assert (
            intra_group_weight(m, opt)
            >= intra_group_weight(m, greedy) - 1e-9
        )

    def test_refine_improves_or_keeps(self):
        rng = np.random.default_rng(11)
        m = symmetric(10, rng)
        base = group_greedy(m, 2)
        refined = refine_groups(m, base)
        assert intra_group_weight(m, refined) >= intra_group_weight(m, base) - 1e-9

    def test_deterministic(self):
        rng = np.random.default_rng(5)
        m = symmetric(16, rng)
        assert group_processes(m, 2) == group_processes(m, 2)


class TestAggregate:
    def test_pairwise_sums(self):
        m = np.array(
            [
                [0.0, 1.0, 2.0, 3.0],
                [1.0, 0.0, 4.0, 5.0],
                [2.0, 4.0, 0.0, 6.0],
                [3.0, 5.0, 6.0, 0.0],
            ]
        )
        agg = aggregate_comm_matrix(m, [[0, 1], [2, 3]])
        # Traffic between group {0,1} and {2,3}: m[0,2]+m[0,3]+m[1,2]+m[1,3]
        assert agg[0, 1] == pytest.approx(2 + 3 + 4 + 5)
        assert agg[1, 0] == agg[0, 1]
        assert agg[0, 0] == 0 and agg[1, 1] == 0

    def test_total_cross_traffic_preserved(self):
        rng = np.random.default_rng(13)
        m = rng.random((6, 6)) * 10
        m = m + m.T
        np.fill_diagonal(m, 0)
        groups = [[0, 3], [1, 4], [2, 5]]
        agg = aggregate_comm_matrix(m, groups)
        cross = sum(
            m[i, j]
            for gi in range(3)
            for gj in range(3)
            if gi != gj
            for i in groups[gi]
            for j in groups[gj]
        )
        assert agg.sum() == pytest.approx(cross)

    def test_incomplete_cover_rejected(self):
        m = np.zeros((4, 4))
        with pytest.raises(MappingError):
            aggregate_comm_matrix(m, [[0, 1]])

    def test_duplicate_rejected(self):
        m = np.zeros((4, 4))
        with pytest.raises(MappingError):
            aggregate_comm_matrix(m, [[0, 1], [1, 2], [3]])

    def test_out_of_range_rejected(self):
        m = np.zeros((2, 2))
        with pytest.raises(MappingError):
            aggregate_comm_matrix(m, [[0, 5]])

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from([(4, 2), (6, 2), (6, 3), (9, 3), (12, 4)]),
    )
    def test_matmul_matches_loop_reference(self, seed, shape):
        # The G.T @ m @ G formulation must agree with the per-pair loop it
        # replaced — including on *asymmetric* inputs, where the mirror of
        # the upper triangle defines the result.
        n, size = shape
        rng = np.random.default_rng(seed)
        m = rng.random((n, n)) * 100  # deliberately not symmetrized
        perm = rng.permutation(n)
        groups = [sorted(perm[i : i + size].tolist())
                  for i in range(0, n, size)]
        k = len(groups)
        ref = np.zeros((k, k))
        for gi in range(k):
            for gj in range(gi + 1, k):
                w = m[np.ix_(groups[gi], groups[gj])].sum()
                ref[gi, gj] = ref[gj, gi] = w
        np.testing.assert_allclose(
            aggregate_comm_matrix(m, groups), ref, atol=1e-9
        )


def exhaustive_best_weight(m, arity):
    """Unpruned reference for group_optimal: enumerate every partition."""
    from itertools import combinations

    best = [-np.inf]

    def recurse(rest, weight):
        if not rest:
            best[0] = max(best[0], weight)
            return
        anchor = rest[0]
        for combo in combinations(rest[1:], arity - 1):
            members = (anchor, *combo)
            w = sum(m[a, b] for i, a in enumerate(members)
                    for b in members[i + 1 :])
            recurse([u for u in rest[1:] if u not in combo], weight + w)

    recurse(list(range(m.shape[0])), 0.0)
    return best[0]


class TestEngineEquivalence:
    """Property tests pinning the vectorized engines to their references."""

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from([(6, 2), (6, 3), (8, 2), (8, 4), (10, 5), (12, 3)]),
    )
    def test_refine_never_decreases_weight(self, seed, shape):
        # From an arbitrary (not greedy) starting partition, refinement
        # must be monotone in intra-group weight.
        n, size = shape
        rng = np.random.default_rng(seed)
        m = symmetric(n, rng)
        perm = rng.permutation(n)
        start = [sorted(perm[i : i + size].tolist())
                 for i in range(0, n, size)]
        before = intra_group_weight(m, start)
        after = intra_group_weight(m, refine_groups(m, start))
        assert after >= before - 1e-9

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from([(6, 2), (6, 3), (8, 4), (9, 3)]),
    )
    def test_branch_and_bound_is_exact(self, seed, shape):
        # group_optimal prunes with an upper bound; the result must still
        # have the same weight as full enumeration.
        n, size = shape
        m = symmetric(n, np.random.default_rng(seed))
        w = intra_group_weight(m, group_optimal(m, size))
        assert w == pytest.approx(exhaustive_best_weight(m, size), abs=1e-9)

    # Curated instances (pre-scanned) where the greedy+refine pipeline
    # lands on the exact optimum — a floor the fast path must not lose.
    GALLERY = [
        (0, 6, 2), (1, 6, 2), (2, 6, 2),
        (0, 6, 3), (1, 6, 3), (2, 6, 3),
        (0, 8, 2), (1, 8, 2), (2, 8, 2),
        (0, 8, 4), (1, 8, 4), (2, 8, 4),
        (0, 9, 3), (2, 9, 3), (3, 9, 3),
        (1, 10, 2), (2, 10, 2), (3, 10, 2),
        (0, 12, 3), (5, 12, 3), (7, 12, 3),
    ]

    @pytest.mark.parametrize("seed,n,size", GALLERY)
    def test_greedy_refine_reaches_optimal_on_gallery(self, seed, n, size):
        rng = np.random.default_rng(seed)
        m = symmetric(n, rng)
        w_opt = intra_group_weight(m, group_optimal(m, size))
        w_fast = intra_group_weight(
            m, refine_groups(m, group_greedy(m, size))
        )
        assert w_fast == pytest.approx(w_opt, abs=1e-9)
