"""Direct unit tests for the cache/memory models (below machine level)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.cache import CacheSystem, L3State
from repro.sim.counters import Counters
from repro.sim.memory import MemorySystem
from repro.sim.params import CostModel
from repro.topology import fig2_machine, smp12e5


def make_mem(topo=None, model=None):
    topo = topo or fig2_machine()
    model = model or CostModel()
    return topo, model, MemorySystem(topo, model)


class TestL3State:
    def test_install_and_resident(self):
        l3 = L3State(1000)
        l3.install(1, 400)
        assert l3.resident_bytes(1) == 400
        assert l3.used == 400

    def test_install_grows_not_shrinks(self):
        l3 = L3State(1000)
        l3.install(1, 400)
        l3.install(1, 100)  # smaller touch must not drop residency
        assert l3.resident_bytes(1) == 400

    def test_lru_eviction(self):
        l3 = L3State(1000)
        l3.install(1, 600)
        l3.install(2, 600)  # evicts 1
        assert l3.resident_bytes(1) == 0
        assert l3.resident_bytes(2) == 600
        assert l3.used == 600

    def test_touch_lru_protects(self):
        l3 = L3State(1000)
        l3.install(1, 400)
        l3.install(2, 400)
        l3.touch_lru(1)  # 1 now most recent
        l3.install(3, 400)  # must evict 2, not 1
        assert l3.resident_bytes(1) == 400
        assert l3.resident_bytes(2) == 0

    def test_invalidate_and_flush(self):
        l3 = L3State(1000)
        l3.install(1, 300)
        l3.invalidate(1)
        assert l3.used == 0
        l3.install(2, 300)
        l3.flush()
        assert l3.resident_bytes(2) == 0

    def test_capacity_positive(self):
        with pytest.raises(SimulationError):
            L3State(0)

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(1, 2000)),
                    max_size=30))
    @settings(max_examples=50)
    def test_used_never_exceeds_capacity(self, ops):
        l3 = L3State(1024)
        for buf_id, nbytes in ops:
            l3.install(buf_id, nbytes)
            assert 0 <= l3.used <= 1024
            assert l3.resident_bytes(buf_id) <= 1024


class TestMemorySystem:
    def test_numa_of_pu(self):
        topo, _, mem = make_mem()
        assert mem.numa_of_pu(0) == 0
        assert mem.numa_of_pu(31) == 3
        with pytest.raises(SimulationError):
            mem.numa_of_pu(999)

    def test_first_touch_once(self):
        _, _, mem = make_mem()
        buf = mem.allocate(64, "b")
        assert buf.home_numa is None
        assert mem.first_touch(buf, 17) == 2
        assert mem.first_touch(buf, 0) == 2  # sticky

    def test_miss_cost_monotone_in_distance(self):
        _, _, mem = make_mem(smp12e5())
        local = mem.miss_cycles_per_line(0, 0)
        near = mem.miss_cycles_per_line(0, 1)
        far = mem.miss_cycles_per_line(0, 8)
        assert local < near < far

    def test_reserve_bandwidth_serializes(self):
        _, model, mem = make_mem()
        horizon1 = mem.reserve_bandwidth(0, 1 << 20, now=0.0)
        horizon2 = mem.reserve_bandwidth(0, 1 << 20, now=0.0)
        expected = (1 << 20) * model.node_bandwidth_cyc_per_byte
        assert horizon1 == pytest.approx(expected)
        assert horizon2 == pytest.approx(2 * expected)

    def test_reserve_bandwidth_idle_gap(self):
        _, model, mem = make_mem()
        mem.reserve_bandwidth(0, 1000, now=0.0)
        # After the node went idle, a later request starts fresh.
        h = mem.reserve_bandwidth(0, 1000, now=1e9)
        assert h == pytest.approx(1e9 + 1000 * model.node_bandwidth_cyc_per_byte)

    def test_reserve_zero_is_noop(self):
        _, _, mem = make_mem()
        assert mem.reserve_bandwidth(0, 0, now=5.0) == 5.0

    def test_nodes_independent(self):
        _, _, mem = make_mem()
        mem.reserve_bandwidth(0, 1 << 30, now=0.0)
        h = mem.reserve_bandwidth(1, 64, now=0.0)
        assert h < 100


class TestCacheSystem:
    def make(self):
        topo = fig2_machine()
        model = CostModel()
        mem = MemorySystem(topo, model)
        return topo, model, mem, CacheSystem(topo, model, mem)

    def test_pu_to_l3_mapping(self):
        _, _, _, caches = self.make()
        assert caches.l3_index_of_pu(0) == caches.l3_index_of_pu(7)
        assert caches.l3_index_of_pu(0) != caches.l3_index_of_pu(8)
        with pytest.raises(SimulationError):
            caches.l3_index_of_pu(999)

    def test_cold_touch_all_misses(self):
        _, model, mem, caches = self.make()
        buf = mem.allocate(64 * 100, "b")
        c = Counters()
        res = caches.touch(0, buf, 64 * 100, write=False, counters=c)
        assert c.l3_misses == 100
        assert c.l3_hits == 0
        assert res.miss_bytes == 64 * 100
        assert res.home_numa == 0

    def test_warm_touch_hits(self):
        _, _, mem, caches = self.make()
        buf = mem.allocate(64 * 100, "b")
        c = Counters()
        caches.touch(0, buf, 64 * 100, write=False, counters=c)
        res = caches.touch(0, buf, 64 * 100, write=False, counters=c)
        assert res.miss_bytes == 0
        assert c.l3_hits == 100

    def test_partial_residency_fractional_hits(self):
        _, _, mem, caches = self.make()
        buf = mem.allocate(64 * 100, "b")
        c = Counters()
        caches.touch(0, buf, 64 * 50, write=False, counters=c)  # half resident
        res = caches.touch(0, buf, 64 * 50, write=False, counters=c)
        # hit fraction = 50/100 on the second (random-slice model)
        assert res.miss_bytes == pytest.approx(64 * 25)

    def test_write_invalidates_remote_l3s_only(self):
        _, _, mem, caches = self.make()
        buf = mem.allocate(4096, "b")
        c = Counters()
        caches.touch(0, buf, 4096, write=False, counters=c)   # socket 0
        caches.touch(8, buf, 4096, write=False, counters=c)   # socket 1
        caches.touch(0, buf, 4096, write=True, counters=c)    # invalidates s1
        assert caches.l3_of_pu(0).resident_bytes(buf.buf_id) > 0
        assert caches.l3_of_pu(8).resident_bytes(buf.buf_id) == 0

    def test_zero_byte_touch_free_but_homes(self):
        _, _, mem, caches = self.make()
        buf = mem.allocate(4096, "b")
        res = caches.touch(9, buf, 0, write=False, counters=Counters())
        assert res.cycles == 0
        assert buf.home_numa == 1

    def test_streaming_self_eviction(self):
        topo, model, mem, caches = self.make()
        cap = caches.l3_of_pu(0).capacity
        buf = mem.allocate(cap * 2, "big")
        c = Counters()
        caches.touch(0, buf, cap * 2, write=False, counters=c)
        assert caches.l3_of_pu(0).resident_bytes(buf.buf_id) == 0

    def test_remote_bytes_tracked(self):
        _, _, mem, caches = self.make()
        buf = mem.allocate(4096, "b", home_numa=3)
        c = Counters()
        caches.touch(0, buf, 4096, write=False, counters=c)
        assert c.remote_bytes == 4096


class TestCounters:
    def test_add_merges_everything(self):
        a, b = Counters(), Counters()
        a.l3_misses = 5
        a.context_switches = 2
        b.l3_misses = 3
        b.cpu_migrations = 7
        b.flops = 100.0
        a.add(b)
        assert a.l3_misses == 8
        assert a.context_switches == 2
        assert a.cpu_migrations == 7
        assert a.flops == 100.0

    def test_snapshot_keys(self):
        snap = Counters().snapshot()
        for key in ("l3_misses", "stalled_cycles", "context_switches",
                    "cpu_migrations", "flops"):
            assert key in snap

    def test_miss_ratio(self):
        c = Counters()
        assert c.miss_ratio == 0.0
        c.l3_misses, c.l3_hits = 1, 3
        assert c.miss_ratio == 0.25
