"""Tests for the persistence / reporting conveniences."""

import numpy as np
import pytest

from repro.errors import MappingError, TopologyError
from repro.orwl import Runtime
from repro.sim.process import Compute
from repro.topology import smp12e5, smp20e7_4s
from repro.topology.serialize import load_topology, save_topology
from repro.treematch import CommunicationMatrix, Placement, treematch_map


class TestTopologyFiles:
    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "machine.json"
        topo = smp12e5()
        save_topology(topo, path)
        clone = load_topology(path)
        assert clone.n_pus == topo.n_pus
        assert clone.level_arities() == topo.level_arities()

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(TopologyError):
            load_topology(tmp_path / "nope.json")

    def test_load_garbage(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{not json")
        with pytest.raises(TopologyError):
            load_topology(p)


class TestPlacementSerialization:
    def make_placement(self):
        m = np.zeros((6, 6))
        for i in range(5):
            m[i + 1, i] = 10
        return treematch_map(smp12e5(), CommunicationMatrix(m), n_control=6)

    def test_roundtrip(self):
        pl = self.make_placement()
        clone = Placement.from_dict(pl.to_dict())
        assert clone.thread_to_pu == pl.thread_to_pu
        assert clone.control_to_pu == pl.control_to_pu
        assert clone.control_mode == pl.control_mode
        assert clone.granularity == pl.granularity

    def test_json_compatible(self):
        import json

        pl = self.make_placement()
        blob = json.dumps(pl.to_dict())
        clone = Placement.from_dict(json.loads(blob))
        assert clone.thread_to_pu == pl.thread_to_pu

    def test_bad_record_rejected(self):
        with pytest.raises(MappingError):
            Placement.from_dict({"thread_to_pu": {"x": "y"}})
        with pytest.raises(MappingError):
            Placement.from_dict({})


class TestCommMatrixCsv:
    def test_roundtrip(self):
        m = np.array([[0.0, 5.5], [1.25, 0.0]])
        comm = CommunicationMatrix(m, labels=["a", "b"])
        clone = CommunicationMatrix.from_csv(comm.to_csv())
        assert np.array_equal(clone.raw, comm.raw)
        assert clone.labels == comm.labels

    def test_empty_rejected(self):
        with pytest.raises(MappingError):
            CommunicationMatrix.from_csv("")

    def test_ragged_rejected(self):
        with pytest.raises(MappingError):
            CommunicationMatrix.from_csv(",a,b\na,0,1")


class TestRunReport:
    def test_report_fields(self):
        rt = Runtime(smp20e7_4s(), affinity=True)
        t = rt.task("a")
        loc = t.location("x", 4096)
        h = t.write_handle(loc, iterative=True)

        def body(op):
            for _ in range(3):
                yield from h.acquire()
                yield Compute(1e6)
                h.release()

        t.set_body(body)
        res = rt.run()
        text = res.report()
        for token in ("elapsed", "GFLOP/s", "utilization", "migrations",
                      "placement"):
            assert token in text
        assert "control=" in text

    def test_utilization_bounds(self):
        rt = Runtime(smp20e7_4s(), affinity=False)
        t = rt.task("a")
        t.set_body(lambda op: iter([Compute(1e6)]))
        res = rt.run()
        assert 0.0 <= res.machine.utilization() <= 1.0
