"""Tests for the Livermore Kernel 23 application (both implementations)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.lk23 import (
    Lk23Config,
    choose_grid,
    lk23_reference,
    make_lk23_arrays,
    run_openmp_lk23,
    run_orwl_lk23,
)
from repro.errors import ReproError
from repro.topology import fig2_machine, smp12e5


class TestConfigAndGrid:
    def test_blocks_from_threads(self):
        assert Lk23Config(n_threads=64).n_blocks == 16
        assert Lk23Config(n_threads=1).n_blocks == 1
        assert Lk23Config(n_threads=3).n_blocks == 1

    def test_validation(self):
        with pytest.raises(ReproError):
            Lk23Config(n=2)
        with pytest.raises(ReproError):
            Lk23Config(iterations=0)

    def test_choose_grid_near_square(self):
        assert choose_grid(16) == (4, 4)
        assert choose_grid(24) == (4, 6)
        assert choose_grid(1) == (1, 1)
        assert choose_grid(7) == (1, 7)

    @given(st.integers(min_value=1, max_value=200))
    def test_choose_grid_covers(self, nb):
        gh, gw = choose_grid(nb)
        assert gh * gw == nb
        assert gh <= gw


class TestReferenceKernel:
    def test_boundary_untouched(self):
        arrays = make_lk23_arrays(8, seed=0)
        out = lk23_reference(**arrays, iterations=2)
        za = arrays["za"]
        assert np.array_equal(out[0, :], za[0, :])
        assert np.array_equal(out[-1, :], za[-1, :])
        assert np.array_equal(out[:, 0], za[:, 0])
        assert np.array_equal(out[:, -1], za[:, -1])

    def test_interior_changes(self):
        arrays = make_lk23_arrays(8, seed=0)
        out = lk23_reference(**arrays, iterations=1)
        assert not np.allclose(out[1:-1, 1:-1], arrays["za"][1:-1, 1:-1])

    def test_input_not_mutated(self):
        arrays = make_lk23_arrays(8, seed=0)
        before = arrays["za"].copy()
        lk23_reference(**arrays, iterations=1)
        assert np.array_equal(arrays["za"], before)


class TestOrwlDataCorrectness:
    """The load-bearing test: the ORWL wavefront equals the sequential
    sweep bit-for-bit — any FIFO/ordering bug breaks exact equality."""

    @pytest.mark.parametrize("n_threads", [1, 4, 16, 24])
    def test_bit_exact_vs_reference(self, n_threads):
        n, iters = 20, 3
        arrays = make_lk23_arrays(n, seed=2)
        ref = lk23_reference(**arrays, iterations=iters)
        cfg = Lk23Config(n=n, iterations=iters, n_threads=n_threads,
                         execute_data=True)
        work = {k: v.copy() for k, v in arrays.items()}
        run_orwl_lk23(fig2_machine(), cfg, affinity=False, arrays=work)
        assert np.array_equal(work["za"], ref)

    def test_bit_exact_with_affinity(self):
        n, iters = 16, 2
        arrays = make_lk23_arrays(n, seed=5)
        ref = lk23_reference(**arrays, iterations=iters)
        cfg = Lk23Config(n=n, iterations=iters, n_threads=16, execute_data=True)
        work = {k: v.copy() for k, v in arrays.items()}
        run_orwl_lk23(smp12e5(), cfg, affinity=True, arrays=work)
        assert np.array_equal(work["za"], ref)

    @settings(max_examples=6, deadline=None)
    @given(
        st.integers(min_value=0, max_value=1000),
        st.sampled_from([4, 8, 16]),
    )
    def test_bit_exact_random_inputs(self, seed, n_threads):
        n, iters = 12, 2
        arrays = make_lk23_arrays(n, seed=seed)
        ref = lk23_reference(**arrays, iterations=iters)
        cfg = Lk23Config(n=n, iterations=iters, n_threads=n_threads,
                         execute_data=True)
        work = {k: v.copy() for k, v in arrays.items()}
        run_orwl_lk23(fig2_machine(), cfg, affinity=False, arrays=work)
        assert np.array_equal(work["za"], ref)

    def test_execute_data_requires_arrays(self):
        cfg = Lk23Config(n=16, iterations=1, n_threads=4, execute_data=True)
        with pytest.raises(ReproError):
            run_orwl_lk23(fig2_machine(), cfg, affinity=False)


class TestOpenmpLk23:
    def test_openmp_converges_close_to_reference(self):
        """Naive row-chunked OpenMP drifts at chunk boundaries but must
        stay close after few iterations."""
        n, iters = 24, 2
        arrays = make_lk23_arrays(n, seed=3)
        ref = lk23_reference(**arrays, iterations=iters)
        cfg = Lk23Config(n=n, iterations=iters, n_threads=4, execute_data=True)
        work = {k: v.copy() for k, v in arrays.items()}
        run_openmp_lk23(fig2_machine(), cfg, binding="close", arrays=work)
        assert np.allclose(work["za"], ref, atol=0.05)

    def test_flop_accounting(self):
        cfg = Lk23Config(n=256, iterations=2, n_threads=4)
        res = run_openmp_lk23(fig2_machine(), cfg, binding="close")
        expected = 11.0 * (256 - 2) * (256 - 2) * 2
        assert res.counters.flops == pytest.approx(expected, rel=0.02)


class TestPerformanceShape:
    def test_flops_independent_of_decomposition(self):
        cfg4 = Lk23Config(n=256, iterations=2, n_threads=4)
        cfg16 = Lk23Config(n=256, iterations=2, n_threads=16)
        r4 = run_orwl_lk23(fig2_machine(), cfg4, affinity=True)
        r16 = run_orwl_lk23(fig2_machine(), cfg16, affinity=True)
        assert r4.compute_counters.flops == pytest.approx(
            r16.compute_counters.flops, rel=0.01
        )

    def test_affinity_zero_migrations(self):
        cfg = Lk23Config(n=512, iterations=2, n_threads=16)
        res = run_orwl_lk23(smp12e5(), cfg, affinity=True, seed=1)
        assert res.counters.cpu_migrations == 0

    def test_native_migrates(self):
        cfg = Lk23Config(n=2048, iterations=6, n_threads=32)
        res = run_orwl_lk23(smp12e5(), cfg, affinity=False, seed=1)
        assert res.counters.cpu_migrations > 0

    def test_affinity_not_slower(self):
        cfg = Lk23Config(n=2048, iterations=4, n_threads=32)
        nat = run_orwl_lk23(smp12e5(), cfg, affinity=False, seed=1)
        aff = run_orwl_lk23(smp12e5(), cfg, affinity=True, seed=1)
        assert aff.seconds <= nat.seconds
