"""Tests for the discrete-event engine and simulated-thread primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.process import Compute, SimEvent


class TestEngine:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        seen = []
        eng.schedule(5, lambda: seen.append("b"))
        eng.schedule(1, lambda: seen.append("a"))
        eng.schedule(9, lambda: seen.append("c"))
        eng.run()
        assert seen == ["a", "b", "c"]
        assert eng.now == 9

    def test_equal_times_fifo(self):
        eng = Engine()
        seen = []
        for i in range(5):
            eng.schedule(3, lambda i=i: seen.append(i))
        eng.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.schedule(-1, lambda: None)

    def test_schedule_at(self):
        eng = Engine()
        seen = []
        eng.schedule_at(4.5, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [4.5]

    def test_schedule_at_in_the_past_rejected(self):
        eng = Engine()
        eng.schedule_at(5, lambda: None)
        eng.run()
        assert eng.now == 5
        with pytest.raises(SimulationError) as exc:
            eng.schedule_at(4, lambda: None)
        assert "cannot schedule in the past (when=4, now=5)" in str(exc.value)

    def test_schedule_at_now_is_fine(self):
        eng = Engine()
        seen = []
        eng.schedule_at(3, lambda: eng.schedule_at(3.0, lambda: seen.append(eng.now)))
        eng.run()
        assert seen == [3.0]

    def test_nested_scheduling(self):
        eng = Engine()
        seen = []

        def outer():
            seen.append(("outer", eng.now))
            eng.schedule(2, lambda: seen.append(("inner", eng.now)))

        eng.schedule(1, outer)
        eng.run()
        assert seen == [("outer", 1), ("inner", 3)]

    def test_max_cycles_stops_early(self):
        eng = Engine()
        seen = []
        eng.schedule(1, lambda: seen.append(1))
        eng.schedule(100, lambda: seen.append(2))
        eng.run(max_cycles=10)
        assert seen == [1]
        assert eng.pending == 1

    def test_event_budget_raises(self):
        eng = Engine()

        def forever():
            eng.schedule(1, forever)

        eng.schedule(1, forever)
        with pytest.raises(SimulationError):
            eng.run(max_events=100)

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False


class TestSimEvent:
    def test_counting_semantics(self):
        ev = SimEvent("e", count=2)
        assert ev.try_consume()
        assert ev.try_consume()
        assert not ev.try_consume()

    def test_signal_accumulates(self):
        ev = SimEvent()
        ev.signal(3)
        assert ev.count == 3

    def test_bad_counts_rejected(self):
        with pytest.raises(SimulationError):
            SimEvent(count=-1)
        with pytest.raises(SimulationError):
            SimEvent().signal(0)


class TestOps:
    def test_compute_validates(self):
        with pytest.raises(SimulationError):
            Compute(-1)
        with pytest.raises(SimulationError):
            Compute(1, efficiency=0)
