"""Dynamic cross-check over the fork-join (OpenMP-model) applications."""

import pytest

from repro.analyze.openmp import (
    OMP_APPS,
    analyze_openmp,
    check_openmp,
    omp_app_names,
    run_openmp_dynamic,
    OpenMPDynamicResult,
)
from repro.errors import ReproError


class TestRegistry:
    def test_names(self):
        assert omp_app_names() == ["omp-dgemm", "omp-lk23", "omp-video"]
        assert set(OMP_APPS) == set(omp_app_names())

    def test_unknown_app_raises(self):
        with pytest.raises(ReproError, match="unknown OpenMP app"):
            run_openmp_dynamic("omp-nosuch")


class TestMonitoredRun:
    @pytest.fixture(scope="class")
    def result(self):
        return run_openmp_dynamic("omp-lk23", sanitize=True)

    def test_completes_and_records_core(self, result):
        assert result.completed
        assert result.error == ""
        assert result.core in ("soa", "batched", "object")

    def test_regions_fork_join_in_order(self, result):
        assert result.forked  # at least one parallel_for fired the hook
        assert result.forked == result.joined
        assert result.forked == sorted(result.forked)

    def test_binding_and_migrations(self, result):
        assert result.binding == "close"
        assert result.migrations == 0

    def test_sanitizer_rode_along(self, result):
        assert result.sanitizer_checks > 0
        assert result.sanitizer_violations == []


class TestCheckFindings:
    def test_clean_run_notes(self):
        result = run_openmp_dynamic("omp-dgemm")
        findings = check_openmp(result)
        codes = {f.code for f in findings}
        assert "omp-regions-balanced" in codes
        assert "migrations-zero-confirmed" in codes
        assert not [f for f in findings if f.severity == "error"]
        assert all(f.source == "dynamic" for f in findings)

    def test_unbalanced_regions_error(self):
        result = OpenMPDynamicResult(
            name="synthetic", completed=True, forked=[0, 1], joined=[0],
            n_threads=4,
        )
        codes = {f.code for f in check_openmp(result)}
        assert "omp-region-unbalanced" in codes

    def test_failed_run_error(self):
        result = OpenMPDynamicResult(name="synthetic", error="boom")
        codes = {f.code for f in check_openmp(result)}
        assert "omp-run-failed" in codes

    def test_sanitizer_violation_error(self):
        result = OpenMPDynamicResult(
            name="synthetic", completed=True,
            sanitizer_checks=3, sanitizer_violations=["bad clock"],
        )
        findings = check_openmp(result)
        codes = {f.code for f in findings}
        assert "sanitizer-violation" in codes
        assert "sanitizer-clean" not in codes


class TestAnalysisPackaging:
    def test_analyze_openmp_records_dynamic_core(self):
        a = analyze_openmp("omp-lk23")
        assert a.name == "omp-lk23"
        assert a.dynamic_core in ("soa", "batched", "object")
        assert a.static.findings == []
        assert a.exit_code() == 0
