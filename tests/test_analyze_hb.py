"""Happens-before gallery: exact verdicts for races and FP idioms.

Three true races (``race``, ``aba_reuse``, ``unordered_split``) must
come back ``CONFIRMED``; three protocol-correct idioms that fool the
lockset heuristic (``split_ok``, ``deferred_read``, ``fanout``) must
come back ``ORDERED`` — suppressed as errors, surfaced as notes under
``hb_notes``. The verdicts are asserted exactly: nothing stronger,
nothing weaker.
"""

import pytest

from repro.analyze import analyze
from tests.badprograms import (
    aba_reuse,
    deferred_read,
    fanout,
    race,
    split_ok,
    unordered_split,
)


def race_errors(report):
    return [f for f in report.findings if f.code == "data-race"]


def ordered_notes(report):
    return [f for f in report.findings if f.code == "race-ordered"]


class TestConfirmedRaces:
    """True races: the replay must confirm, never downgrade."""

    @pytest.mark.parametrize(
        "mod,name,buffer,kind",
        [
            (race, "race", "shared", "write/write"),
            (aba_reuse, "aba_reuse", "cell", "read/write"),
            (unordered_split, "unordered_split", "frame", "read/write"),
        ],
    )
    def test_confirmed(self, mod, name, buffer, kind):
        a = analyze(mod.build, name=name)
        errors = race_errors(a.static)
        assert len(errors) == 1
        f = errors[0]
        assert f.verdict == "CONFIRMED"
        assert f.subject == buffer
        assert kind in f.message
        assert a.exit_code() == 3

    def test_replay_covers_every_candidate(self):
        # No stalls, no forgiveness needed: the verdicts are grounded.
        for mod, name in [(aba_reuse, "aba"), (unordered_split, "split")]:
            a = analyze(mod.build, name=name)
            assert a.hb is not None
            assert not a.hb.stalled
            assert all(a.hb.eligible.values())


class TestOrderedIdioms:
    """Lockset false positives the delegation rule must absorb."""

    @pytest.mark.parametrize(
        "mod,name,n_notes,n_delegations",
        [
            (split_ok, "split_ok", 1, 3),  # live-watch attach path
            (deferred_read, "deferred_read", 1, 3),  # pending attach path
            (fanout, "fanout", 2, 6),  # two targets per publication
        ],
    )
    def test_ordered(self, mod, name, n_notes, n_delegations):
        a = analyze(mod.build, name=name, hb_notes=True)
        assert race_errors(a.static) == []
        notes = ordered_notes(a.static)
        assert len(notes) == n_notes
        assert all(f.verdict == "ORDERED" for f in notes)
        assert all(f.subject == "frame" for f in notes)
        assert a.hb is not None and a.hb.delegations == n_delegations
        assert a.exit_code() == 0

    def test_notes_off_by_default(self):
        a = analyze(split_ok.build, name="split_ok")
        assert ordered_notes(a.static) == []
        assert race_errors(a.static) == []

    def test_fanout_waits_for_both_workers(self):
        # The frame's deferred release must gate on BOTH worker groups;
        # a single-target detector would flag worker_a as racing.
        a = analyze(fanout.build, name="fanout", hb_notes=True)
        raced_names = {
            f.message for f in a.static.findings if f.code == "data-race"
        }
        assert raced_names == set()
        names = {n.message.split("(")[1].split(",")[0]
                 for n in ordered_notes(a.static)}
        assert names == {"producer/op0 vs worker_a/op0",
                         "producer/op0 vs worker_b/op0"}


class TestDynamicAgreement:
    """The monitored execution agrees with the replay's verdicts."""

    def test_confirmed_race_also_fires_dynamically(self):
        a = analyze(aba_reuse.build, name="aba_reuse", dynamic=True)
        codes = {f.code for f in a.dynamic.findings}
        assert "race-confirmed" in codes

    def test_ordered_idiom_has_no_dynamic_race(self):
        a = analyze(split_ok.build, name="split_ok", dynamic=True)
        codes = {f.code for f in a.dynamic.findings}
        assert "race-confirmed" not in codes
