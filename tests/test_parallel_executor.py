"""Tests for the job-based executor and the content-addressed cache.

Determinism contract: a figure regenerated with one worker, four
workers, or from a warm cache is *identical* — same labels, same x/y
values, bit for bit.
"""

import json

import pytest

from repro.errors import ReproError
from repro.experiments.figures import fig4_lk23
from repro.experiments.runner import Scale
from repro.experiments.tables import table2_lk23_counters
from repro.parallel import (
    CELLS,
    JOBS_ENV,
    ResultCache,
    cache_enabled,
    default_jobs,
    make_job,
    run_cell,
    run_jobs,
    source_digest,
)

TINY = Scale("tiny", lk23_n=256, lk23_iterations=2, matmul_n=512,
             video_frames=3, video_frames_4k=2)


def tiny_job(n_threads=2, seed=1):
    return make_job(
        "lk23",
        TINY,
        {"machine": "SMP12E5", "variant": "orwl", "n_threads": n_threads},
        seed,
    )


def fig_fingerprint(fig):
    return [(s.label, s.x, s.y) for s in fig.series]


class TestJobs:
    def test_cells_registered(self):
        assert set(CELLS) == {"lk23", "matmul", "video", "map-subtree"}

    def test_unknown_cell_rejected_early(self):
        with pytest.raises(ReproError, match="unknown cell"):
            make_job("nope", TINY, {}, 1)

    def test_job_is_picklable_and_json_safe(self):
        import pickle

        job = tiny_job()
        assert pickle.loads(pickle.dumps(job)) == job
        json.dumps(job.to_dict())  # must not raise

    def test_run_cell_matches_direct_run(self):
        from repro.apps.lk23 import Lk23Config, run_orwl_lk23
        from repro.topology import machine_by_name

        payload = run_cell(tiny_job())
        cfg = Lk23Config(n=TINY.lk23_n, iterations=TINY.lk23_iterations,
                         n_threads=2)
        direct = run_orwl_lk23(machine_by_name("SMP12E5"), cfg,
                               affinity=False, seed=1)
        assert payload["seconds"] == direct.seconds
        assert payload["counters"]["l3_misses"] == direct.counters.l3_misses


class TestDefaultJobs:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert default_jobs() == 1

    def test_env_parsing(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert default_jobs() == 3
        monkeypatch.setenv(JOBS_ENV, "0")
        assert default_jobs() >= 1  # cpu count
        monkeypatch.setenv(JOBS_ENV, "banana")
        with pytest.raises(ReproError, match=JOBS_ENV):
            default_jobs()
        monkeypatch.setenv(JOBS_ENV, "-2")
        with pytest.raises(ReproError, match=JOBS_ENV):
            default_jobs()


class TestResultCache:
    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path, digest="testgen")
        job = tiny_job()
        assert cache.get(job) is None
        cache.put(job, {"seconds": 1.25, "counters": {"l3_misses": 3.0}})
        assert cache.get(job) == {"seconds": 1.25, "counters": {"l3_misses": 3.0}}
        assert cache.hits == 1 and cache.misses == 1

    def test_floats_survive_roundtrip_exactly(self, tmp_path):
        cache = ResultCache(tmp_path, digest="g")
        job = tiny_job()
        value = 0.1 + 0.2  # not exactly representable in decimal
        cache.put(job, {"seconds": value})
        assert cache.get(job)["seconds"] == value

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, digest="g")
        job = tiny_job()
        cache.put(job, {"seconds": 1.0})
        cache.path_for(job).write_text("{ not json")
        assert cache.get(job) is None

    def test_key_distinguishes_jobs(self, tmp_path):
        cache = ResultCache(tmp_path, digest="g")
        assert cache.key(tiny_job(n_threads=2)) != cache.key(tiny_job(n_threads=4))
        assert cache.key(tiny_job(seed=1)) != cache.key(tiny_job(seed=2))
        assert cache.key(tiny_job()) == cache.key(tiny_job())

    def test_source_digest_partitions_generations(self, tmp_path):
        job = tiny_job()
        old = ResultCache(tmp_path, digest="aaaa")
        new = ResultCache(tmp_path, digest="bbbb")
        old.put(job, {"seconds": 9.9})
        # Same job, new source generation: the stale entry is invisible.
        assert new.get(job) is None
        assert old.get(job) == {"seconds": 9.9}

    def test_source_digest_is_stable(self):
        assert source_digest() == source_digest()
        assert len(source_digest()) == 16

    def test_cache_enabled_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert cache_enabled()
        for off in ("off", "0", "no", "false", "OFF"):
            monkeypatch.setenv("REPRO_CACHE", off)
            assert not cache_enabled()
        monkeypatch.setenv("REPRO_CACHE", "on")
        assert cache_enabled()


class TestRunJobs:
    def test_order_preserved(self, tmp_path):
        jobs = [tiny_job(n_threads=nc) for nc in (1, 2, 4)]
        payloads = run_jobs(jobs, n_jobs=1, cache=False)
        # Payload i belongs to job i, in submission order.
        assert payloads == [run_cell(j) for j in jobs]
        again = run_jobs(list(reversed(jobs)), n_jobs=1, cache=False)
        assert again == list(reversed(payloads))

    def test_cache_hits_skip_execution(self, tmp_path):
        cache = ResultCache(tmp_path, digest="g")
        jobs = [tiny_job(n_threads=nc) for nc in (1, 2)]
        cold = run_jobs(jobs, n_jobs=1, cache=cache)
        assert cache.misses == 2
        warm = run_jobs(jobs, n_jobs=1, cache=cache)
        assert warm == cold
        assert cache.hits == 2

    def test_parallel_matches_serial(self, tmp_path):
        jobs = [tiny_job(n_threads=nc) for nc in (1, 2, 4)]
        serial = run_jobs(jobs, n_jobs=1, cache=False)
        parallel = run_jobs(jobs, n_jobs=4, cache=False)
        assert parallel == serial


class TestFigureDeterminism:
    def test_jobs_1_jobs_4_and_warm_cache_identical(self, tmp_path):
        cache = ResultCache(tmp_path, digest="g")
        serial = fig4_lk23("SMP12E5", scale=TINY, cores=[1, 2, 4],
                           jobs=1, cache=False)
        parallel = fig4_lk23("SMP12E5", scale=TINY, cores=[1, 2, 4],
                             jobs=4, cache=cache)
        warm = fig4_lk23("SMP12E5", scale=TINY, cores=[1, 2, 4],
                         jobs=1, cache=cache)
        assert cache.hits == len(parallel.series) * 3
        fp = fig_fingerprint(serial)
        assert fig_fingerprint(parallel) == fp
        assert fig_fingerprint(warm) == fp
        assert [s.label for s in serial.series] == [
            "ORWL", "ORWL (affinity)", "OpenMP", "OpenMP (affinity)",
        ]

    def test_table_shares_cache_with_figure(self, tmp_path):
        cache = ResultCache(tmp_path, digest="g")
        fig4_lk23("SMP12E5", scale=TINY, cores=[64], jobs=1, cache=cache)
        before = cache.misses
        rows = table2_lk23_counters(scale=TINY, cores=64, jobs=1, cache=cache)
        # The 4 table rows are the 4 figure variants at 64 threads: all hits.
        assert cache.misses == before
        assert cache.hits >= 4
        assert [r.variant for r in rows] == [
            "ORWL", "ORWL (Affinity)", "OpenMP", "OpenMP (Affinity)",
        ]

    def test_source_change_invalidates(self, tmp_path):
        jobs = [tiny_job()]
        gen1 = ResultCache(tmp_path, digest="gen1")
        run_jobs(jobs, n_jobs=1, cache=gen1)
        assert gen1.misses == 1
        # "Edit a source file": the digest moves, the old entry is stale.
        gen2 = ResultCache(tmp_path, digest="gen2")
        run_jobs(jobs, n_jobs=1, cache=gen2)
        assert gen2.misses == 1 and gen2.hits == 0
