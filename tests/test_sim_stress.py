"""Randomized stress tests: simulator invariants under arbitrary programs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Compute, SimMachine, Touch, Wait, YieldCPU
from repro.topology import fig2_machine, smp12e5_4s
from repro.util.bitmap import Bitmap

op_specs = st.lists(
    st.one_of(
        st.tuples(st.just("compute"), st.floats(min_value=1, max_value=1e8)),
        st.tuples(st.just("touch"), st.integers(min_value=1, max_value=1 << 22)),
        st.tuples(st.just("yield"), st.just(0)),
    ),
    min_size=1,
    max_size=12,
)

programs = st.lists(op_specs, min_size=1, max_size=8)


def materialize(machine, spec, buf):
    def gen():
        for kind, arg in spec:
            if kind == "compute":
                yield Compute(arg)
            elif kind == "touch":
                yield Touch(buf, min(arg, buf.size), write=bool(int(arg) % 2))
            else:
                yield YieldCPU()

    return gen()


class TestStress:
    @settings(max_examples=30, deadline=None)
    @given(programs, st.booleans(), st.integers(min_value=0, max_value=5))
    def test_invariants_hold(self, prog, bind, seed):
        machine = SimMachine(fig2_machine(), seed=seed)
        buf = machine.allocate(1 << 20, "shared")
        for i, spec in enumerate(prog):
            cpuset = Bitmap.single(i % machine.topology.n_pus) if bind else None
            machine.add_thread(f"t{i}", materialize(machine, spec, buf),
                               cpuset=cpuset)
        machine.run()
        c = machine.total_counters()
        # Invariant 1: every thread finished.
        assert all(t.state == "done" for t in machine.threads)
        # Invariant 2: utilization is a valid fraction.
        assert 0.0 <= machine.utilization() <= 1.0
        # Invariant 3: busy time never exceeds elapsed × PUs.
        assert c.busy_cycles <= machine.elapsed_cycles * machine.topology.n_pus + 1e-6
        # Invariant 4: counters are non-negative.
        for value in c.snapshot().values():
            assert value >= -1e-9
        # Invariant 5: bound threads never migrate.
        if bind:
            assert c.cpu_migrations == 0
        # Invariant 6: hits+misses account for all touched lines.
        lines_touched = c.bytes_touched / machine.model.cache_line
        # (ht-contention inflates misses, so ≥)
        assert c.l3_misses + c.l3_hits >= lines_touched - 1e-6

    @settings(max_examples=10, deadline=None)
    @given(programs)
    def test_deterministic_replay(self, prog):
        def run():
            machine = SimMachine(smp12e5_4s(), seed=3)
            buf = machine.allocate(1 << 18, "b")
            for i, spec in enumerate(prog):
                machine.add_thread(f"t{i}", materialize(machine, spec, buf))
            machine.run()
            c = machine.total_counters()
            return (machine.elapsed_cycles, c.l3_misses,
                    c.context_switches, c.cpu_migrations)

        assert run() == run()

    def test_many_waiters_single_event(self):
        machine = SimMachine(fig2_machine())
        ev = machine.event("gate")
        woken = []

        def waiter(i):
            yield Wait(ev)
            woken.append(i)
            yield Compute(10.0)

        for i in range(12):
            machine.add_thread(f"w{i}", waiter(i))

        def opener():
            yield Compute(1e5)
            ev.signal(12)

        machine.add_thread("opener", opener(), cpuset=Bitmap.single(31))
        machine.run()
        assert sorted(woken) == list(range(12))
