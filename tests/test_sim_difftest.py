"""Differential tests: 54 generated programs across all three cores.

Driven by :mod:`tests.harness.difftest` — each generated spec executes
on the object, batched and SoA cores and the full fingerprint (counters, final
clock, event count, thread states, plus ring/metrics/monitor streams
when taps are attached) must be bit-identical. A second pass pins the
complementary guarantee: attaching taps never perturbs the run itself.
"""

from __future__ import annotations

import dataclasses

import pytest

pytestmark = pytest.mark.simcore

from tests.harness import difftest

N_PROGRAMS = 54
SPECS = difftest.generate_programs(N_PROGRAMS, seed=2026)

#: Fingerprint fields that describe the run itself (must also be
#: invariant under tap configuration, not just across cores).
RUN_FIELDS = (
    "counters", "compute", "control",
    "elapsed_cycles", "events_processed", "thread_states",
)


def test_generator_coverage():
    """The 54 specs cover every (app, tap-mode) pair, every topology
    preset and both affinity settings."""
    assert len(SPECS) >= 50
    combos = {(s.app, s.tap_mode) for s in SPECS}
    assert combos == {
        (a, m) for a in difftest.APPS for m in difftest.TAP_MODES
    }
    assert {s.topology for s in SPECS} == set(difftest.TOPOLOGIES)
    assert {s.affinity for s in SPECS} == {False, True}


def test_generator_deterministic():
    again = difftest.generate_programs(N_PROGRAMS, seed=2026)
    assert again == SPECS
    assert difftest.generate_programs(8, seed=1) != \
        difftest.generate_programs(8, seed=2)


@pytest.mark.parametrize(
    "spec", SPECS, ids=lambda s: f"{s.index:02d}-{s.app}-{s.tap_mode}"
)
def test_bit_identical_across_cores(spec):
    fp = difftest.check_program(spec)
    assert fp["core_used"] == "batched"
    if spec.tap_mode != "off":
        recorded, _dropped = fp["ring_totals"]
        assert recorded > 0
        assert fp["metrics"]["sim_events_processed_total"] == \
            fp["events_processed"]
        assert fp["monitor"]["finished"] > 0


@pytest.mark.parametrize("core", ["batched", "soa"])
@pytest.mark.parametrize("index", range(9))
def test_taps_do_not_perturb_the_run(index, core):
    """Same spec, all three tap modes, each flat core: the
    run-describing fields must not move at all when observation is
    attached."""
    base = SPECS[index]
    fps = {
        mode: difftest.run_one(
            dataclasses.replace(base, tap_mode=mode), core
        )
        for mode in difftest.TAP_MODES
    }
    for mode in ("on", "sampled"):
        for key in RUN_FIELDS:
            assert fps[mode][key] == fps["off"][key], (key, mode)


def test_sampled_mode_wraps_and_drops():
    """At least one generated sampled-mode program overflows its
    256-record ring, exercising wraparound accounting."""
    dropped = []
    for spec in SPECS:
        if spec.tap_mode != "sampled":
            continue
        fp = difftest.run_one(spec, "batched")
        recorded, drop = fp["ring_totals"]
        assert len(fp["ring"]) == min(recorded, 256)
        dropped.append(drop)
    assert any(d > 0 for d in dropped)


def test_run_smoke_passes():
    assert difftest.run_smoke(3) == 3
