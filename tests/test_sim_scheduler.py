"""Direct unit tests for the OS scheduler models."""

import pytest

from repro.errors import SimulationError
from repro.sim.memory import MemorySystem
from repro.sim.params import CostModel
from repro.sim.process import SimThread
from repro.sim.scheduler import OSScheduler
from repro.topology import fig2_machine, smp12e5, smp20e7
from repro.util.bitmap import Bitmap
from repro.util.rng import make_rng


def make_sched(topo=None, policy=None, **kw):
    topo = topo or fig2_machine()
    mem = MemorySystem(topo, CostModel())
    return OSScheduler(topo, mem, policy=policy, **kw)


def thread(tid=0, cpuset=None, last_pu=None):
    t = SimThread(tid=tid, name=f"t{tid}", gen=iter([]), cpuset=cpuset)
    t.last_pu = last_pu
    return t


class TestOccupancy:
    def test_occupy_release_cycle(self):
        s = make_sched()
        t = thread()
        s.occupy(3, t)
        assert not s.is_free(3)
        assert s.thread_on(3) is t
        s.release(3)
        assert s.is_free(3)

    def test_double_occupy_rejected(self):
        s = make_sched()
        s.occupy(0, thread(0))
        with pytest.raises(SimulationError):
            s.occupy(0, thread(1))

    def test_release_idle_rejected(self):
        with pytest.raises(SimulationError):
            make_sched().release(0)

    def test_free_pus_shrink(self):
        s = make_sched()
        n = len(s.free_pus)
        s.occupy(0, thread())
        assert len(s.free_pus) == n - 1


class TestPlacement:
    def test_bound_thread_stays_in_cpuset(self):
        s = make_sched()
        t = thread(cpuset=Bitmap([5, 6]))
        assert s.place(t) == 5
        s.occupy(5, thread(9))
        assert s.place(t) == 6
        s.occupy(6, thread(8))
        assert s.place(t) is None

    def test_bound_thread_prefers_last(self):
        s = make_sched()
        t = thread(cpuset=Bitmap([5, 6]), last_pu=6)
        assert s.place(t) == 6

    def test_sticky_unbound(self):
        s = make_sched(policy="consolidate")
        t = thread(last_pu=20)
        assert s.place(t) == 20

    def test_first_placement_consolidate_starts_node0(self):
        s = make_sched(smp12e5(), policy="consolidate")
        assert s.place(thread()) == 0

    def test_first_placement_spread_distributes(self):
        s = make_sched(smp20e7(), policy="spread")
        t0, t1 = thread(0), thread(1)
        p0 = s.place(t0)
        s.occupy(p0, t0)
        p1 = s.place(t1)
        assert s.memory.numa_of_pu(p0) != s.memory.numa_of_pu(p1)

    def test_rebalance_consolidate_picks_lowest(self):
        s = make_sched(policy="consolidate")
        t = thread(last_pu=9)
        assert s.place(t, rebalance=True) == 0

    def test_rebalance_random_migration(self):
        s = make_sched(policy="consolidate", rng=make_rng(0), migrate_prob=1.0)
        t = thread(last_pu=9)
        # With migrate_prob=1 a rebalance never lands on last_pu.
        for _ in range(10):
            assert s.place(t, rebalance=True) != 9

    def test_wakeup_migration_probability(self):
        s = make_sched(policy="consolidate", rng=make_rng(0),
                       wakeup_migrate_prob=1.0)
        t = thread(last_pu=9)
        # Always rebalanced on wake: policy pick = PU 0, not 9.
        assert s.place(t) == 0

    def test_no_free_pu_returns_none(self):
        s = make_sched()
        for pu in list(s.free_pus):
            s.occupy(pu, thread(pu))
        assert s.place(thread(99)) is None

    def test_unknown_policy_rejected(self):
        with pytest.raises(SimulationError):
            make_sched(policy="chaotic")

    def test_policy_from_topology_attr(self):
        assert make_sched(smp20e7()).policy == "spread"
        assert make_sched(smp12e5()).policy == "consolidate"
