"""Unit tests for the video imaging substrate: frames, GMM, morphology,
CCL and tracking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.apps.video.ccl import (
    Component,
    label,
    label_strips,
    merge_strip_labels,
    strip_bounds,
)
from repro.apps.video.frames import FRAME_FORMATS, FrameSpec, VideoSource
from repro.apps.video.gmm import GMMBackground
from repro.apps.video.morphology import dilate3, erode3
from repro.apps.video.tracking import CentroidTracker
from repro.errors import ReproError

masks = arrays(np.bool_, (12, 16), elements=st.booleans())


class TestFrames:
    def test_formats(self):
        assert FRAME_FORMATS["HD"].pixels == 1280 * 720
        assert FRAME_FORMATS["4K"].nbytes == 3840 * 2160

    def test_spec_validation(self):
        with pytest.raises(ReproError):
            FrameSpec(4, 4)

    def test_deterministic(self):
        a = VideoSource(FrameSpec(64, 48), seed=7).next_frame()
        b = VideoSource(FrameSpec(64, 48), seed=7).next_frame()
        assert np.array_equal(a, b)

    def test_objects_move(self):
        src = VideoSource(FrameSpec(64, 48), n_objects=1, noise=0, seed=1)
        f1, f2 = src.next_frame(), src.next_frame()
        assert not np.array_equal(f1, f2)

    def test_objects_stay_in_frame(self):
        spec = FrameSpec(32, 32)
        src = VideoSource(spec, n_objects=2, seed=3)
        for _ in range(200):
            src.next_frame()
        for obj in src.objects:
            assert 0 <= obj.x <= spec.width - obj.w
            assert 0 <= obj.y <= spec.height - obj.h

    def test_frames_generator_counts(self):
        src = VideoSource(FrameSpec(16, 16), seed=0)
        assert len(list(src.frames(5))) == 5
        assert src.frame_index == 5


class TestGMM:
    def test_first_frame_is_background(self):
        gmm = GMMBackground((8, 8))
        mask = gmm.apply(np.full((8, 8), 100, dtype=np.uint8))
        assert not mask.any()

    def test_static_scene_stays_background(self):
        gmm = GMMBackground((8, 8))
        frame = np.full((8, 8), 100, dtype=np.uint8)
        for _ in range(10):
            mask = gmm.apply(frame)
        assert not mask.any()

    def test_sudden_object_detected(self):
        gmm = GMMBackground((16, 16))
        bg = np.full((16, 16), 60, dtype=np.uint8)
        for _ in range(5):
            gmm.apply(bg)
        scene = bg.copy()
        scene[4:8, 4:8] = 220
        mask = gmm.apply(scene)
        assert mask[4:8, 4:8].all()
        assert not mask[0, 0]

    def test_strip_models_equal_full_model(self):
        """Per-pixel independence: 4 strip models == one full model."""
        spec = FrameSpec(32, 24)
        src = VideoSource(spec, seed=2)
        full = GMMBackground((24, 32))
        bounds = strip_bounds(24, 4)
        strips = [GMMBackground((hi - lo, 32)) for lo, hi in bounds]
        for frame in src.frames(6):
            want = full.apply(frame)
            got = np.vstack(
                [m.apply(frame[lo:hi]) for m, (lo, hi) in zip(strips, bounds)]
            )
            assert np.array_equal(want, got)

    def test_shape_mismatch_rejected(self):
        gmm = GMMBackground((4, 4))
        with pytest.raises(ReproError):
            gmm.apply(np.zeros((5, 4), dtype=np.uint8))

    def test_param_validation(self):
        with pytest.raises(ReproError):
            GMMBackground((4, 4), alpha=0)
        with pytest.raises(ReproError):
            GMMBackground((4, 4), threshold_sigma=-1)


class TestMorphology:
    def test_erode_removes_isolated(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[3, 3] = True
        assert not erode3(mask).any()

    def test_erode_keeps_interior(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[2:7, 2:7] = True
        out = erode3(mask)
        assert out[3:6, 3:6].all()
        assert not out[2, 2]

    def test_dilate_grows(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[4, 4] = True
        out = dilate3(mask)
        assert out[3:6, 3:6].all()
        assert out.sum() == 9

    def test_non_2d_rejected(self):
        with pytest.raises(ReproError):
            erode3(np.zeros(5, dtype=bool))

    @given(masks)
    def test_duality_bounds(self, mask):
        # erosion shrinks, dilation grows
        assert erode3(mask).sum() <= mask.sum() <= dilate3(mask).sum()

    @given(masks)
    def test_erode_dilate_are_min_max_filters(self, mask):
        padded = np.zeros((14, 18), dtype=bool)
        padded[1:-1, 1:-1] = mask
        er = erode3(padded)
        di = dilate3(padded)
        for y in range(1, 13):
            for x in range(1, 17):
                neigh = padded[y - 1 : y + 2, x - 1 : x + 2]
                assert er[y, x] == neigh.all()
                assert di[y, x] == neigh.any()


class TestCCL:
    def test_two_blobs(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[1:3, 1:3] = True
        mask[5:7, 5:7] = True
        labels, comps = label(mask)
        assert len(comps) == 2
        assert comps[0].area == 4 and comps[1].area == 4
        assert labels[1, 1] == 1 and labels[5, 5] == 2

    def test_4_connectivity_diagonals_split(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 0] = mask[1, 1] = True
        _, comps = label(mask)
        assert len(comps) == 2

    def test_u_shape_merges(self):
        # A 'U' requires a union across runs.
        mask = np.array(
            [
                [1, 0, 1],
                [1, 0, 1],
                [1, 1, 1],
            ],
            dtype=bool,
        )
        _, comps = label(mask)
        assert len(comps) == 1
        assert comps[0].area == 7

    def test_labels_in_scan_order(self):
        mask = np.zeros((4, 8), dtype=bool)
        mask[0, 6] = True
        mask[2, 1] = True
        labels, _ = label(mask)
        assert labels[0, 6] == 1
        assert labels[2, 1] == 2

    def test_component_geometry(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[2:4, 1:5] = True
        _, comps = label(mask)
        c = comps[0]
        assert c.bbox == (2, 1, 4, 5)
        assert c.centroid == (2.5, 2.5)
        assert c.area == 8

    def test_empty_mask(self):
        labels, comps = label(np.zeros((4, 4), dtype=bool))
        assert comps == []
        assert not labels.any()

    @given(masks, st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_strips_equal_monolithic(self, mask, n_strips):
        """The load-bearing CCL property: strip+merge == whole-mask pass."""
        want_labels, want_comps = label(mask)
        got_labels, got_comps = label_strips(mask, n_strips)
        assert np.array_equal(want_labels, got_labels)
        assert want_comps == got_comps

    def test_strip_bounds_validation(self):
        with pytest.raises(ReproError):
            strip_bounds(4, 0)
        with pytest.raises(ReproError):
            strip_bounds(2, 5)

    def test_merge_validates_tiling(self):
        with pytest.raises(ReproError):
            merge_strip_labels(
                [(0, 2), (3, 4)],
                [np.zeros((2, 4), np.int32), np.zeros((1, 4), np.int32)],
                (4, 4),
            )


class TestTracker:
    def comp(self, cy, cx, area=10, lab=1):
        return Component(lab, area, (0, 0, 1, 1), (cy, cx))

    def test_new_components_open_tracks(self):
        tr = CentroidTracker()
        tracks = tr.update([self.comp(5, 5), self.comp(20, 20)])
        assert [t.track_id for t in tracks] == [1, 2]

    def test_nearby_component_matches(self):
        tr = CentroidTracker()
        tr.update([self.comp(5, 5)])
        tracks = tr.update([self.comp(7, 6)])
        assert len(tracks) == 1
        assert tracks[0].track_id == 1
        assert tracks[0].age == 2

    def test_far_component_is_new_track(self):
        tr = CentroidTracker(max_distance=10)
        tr.update([self.comp(5, 5)])
        tracks = tr.update([self.comp(100, 100)])
        ids = sorted(t.track_id for t in tracks)
        assert ids == [1, 2]

    def test_missed_tracks_expire(self):
        tr = CentroidTracker(max_missed=2)
        tr.update([self.comp(5, 5)])
        for _ in range(3):
            tr.update([])
        assert tr.tracks == []

    def test_small_components_ignored(self):
        tr = CentroidTracker(min_area=5)
        tracks = tr.update([self.comp(5, 5, area=2)])
        assert tracks == []

    def test_track_follows_moving_object(self):
        tr = CentroidTracker()
        for k in range(10):
            tracks = tr.update([self.comp(5 + 2 * k, 5)])
        assert len(tracks) == 1
        assert tracks[0].track_id == 1
        assert tracks[0].age == 10
        assert len(tracks[0].history) == 9

    def test_param_validation(self):
        with pytest.raises(ReproError):
            CentroidTracker(max_distance=0)
