#!/usr/bin/env python3
"""Repository preflight: verify every paper app, then byte-compile src.

Usage:
    PYTHONPATH=src python scripts/lint_repro.py [--dynamic]

Runs the equivalent of ``repro-paper lint --all`` (exit 3 on any
error-level finding) followed by ``python -m compileall src`` (exit 1 on
syntax errors anywhere in the tree). Intended for CI and as the
preflight step of ``scripts/regenerate_all.py``.
"""

from __future__ import annotations

import compileall
import os
import sys


def run_lint(dynamic: bool = False) -> int:
    from repro.cli import main as cli_main

    argv = ["lint", "--all"] + (["--dynamic"] if dynamic else [])
    return cli_main(argv)


def run_compileall() -> int:
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    ok = compileall.compile_dir(src, quiet=1, force=False)
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    dynamic = "--dynamic" in args

    code = run_lint(dynamic=dynamic)
    if code != 0:
        print(f"lint_repro: lint failed (exit {code})", file=sys.stderr)
        return code

    code = run_compileall()
    if code != 0:
        print("lint_repro: compileall found syntax errors", file=sys.stderr)
        return code

    print("lint_repro: all apps lint clean, src byte-compiles")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
