#!/usr/bin/env python3
"""Repository preflight: verify every paper app, then byte-compile src.

Usage:
    PYTHONPATH=src python scripts/lint_repro.py [--dynamic]

Runs, in order:

1. the equivalent of ``repro-paper lint --all`` (exit 3 on any
   error-level finding);
2. the hot-loop purity lint (``repro-paper lint --hotlint``) over the
   simulator's hot paths;
3. ``ruff check`` with the ``[tool.ruff]`` config from pyproject.toml —
   skipped with a notice when ruff is not installed (the container
   image does not bake it in);
4. ``python -m compileall src`` (exit 1 on syntax errors anywhere);
5. the simulator smoke: ``bench_repro --check --quick`` (throughput
   floor, SoA-vs-batched gate, tap overhead, shard fingerprint — a few
   noise-robust paired samples each) plus the three-way differential
   smoke (object/batched/SoA bit-identity on generated programs);
6. the adaptive-controller family: ``pytest -m adaptive`` (drift
   detector properties, warm-start contract, zero-remap differential).

Intended for CI and as the preflight step of
``scripts/regenerate_all.py``.
"""

from __future__ import annotations

import compileall
import os
import shutil
import subprocess
import sys


def run_lint(dynamic: bool = False) -> int:
    from repro.cli import main as cli_main

    argv = ["lint", "--all"] + (["--dynamic"] if dynamic else [])
    return cli_main(argv)


def run_hotlint() -> int:
    from repro.cli import main as cli_main

    return cli_main(["lint", "--hotlint"])


def run_ruff() -> int:
    """``ruff check`` on the whole tree; 0 (with a notice) if absent."""
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    ruff = shutil.which("ruff")
    if ruff is None:
        print("lint_repro: ruff not installed — skipping ruff check")
        return 0
    proc = subprocess.run([ruff, "check", root], cwd=root)
    return proc.returncode


def run_compileall() -> int:
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    ok = compileall.compile_dir(src, quiet=1, force=False)
    return 0 if ok else 1


def run_sim_smoke() -> int:
    """Quick bench gates + three-way differential smoke."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(here)
    for extra in (here, os.path.join(root, "tests")):
        if extra not in sys.path:
            sys.path.insert(0, extra)
    import bench_repro

    code = bench_repro.main(["--check", "--quick"])
    if code != 0:
        return code
    from harness import difftest

    n = difftest.run_smoke()
    print(f"lint_repro: difftest smoke — {n} program(s) bit-identical "
          "across the object, batched and SoA cores")
    n = difftest.run_chain_smoke()
    print(f"lint_repro: chain difftest smoke — {n} serial-dependency "
          "program(s) bit-identical (chain chase / run-ahead paths)")
    return 0


def run_adaptive_tests() -> int:
    """The ``adaptive`` pytest family (controller + warm-start tests)."""
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    src = os.path.join(root, "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else src
    )
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-m", "adaptive", "-q"],
        cwd=root, env=env,
    )
    return proc.returncode


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    dynamic = "--dynamic" in args

    code = run_lint(dynamic=dynamic)
    if code != 0:
        print(f"lint_repro: lint failed (exit {code})", file=sys.stderr)
        return code

    code = run_hotlint()
    if code != 0:
        print(f"lint_repro: hotlint failed (exit {code})", file=sys.stderr)
        return code

    code = run_ruff()
    if code != 0:
        print(f"lint_repro: ruff failed (exit {code})", file=sys.stderr)
        return code

    code = run_compileall()
    if code != 0:
        print("lint_repro: compileall found syntax errors", file=sys.stderr)
        return code

    code = run_sim_smoke()
    if code != 0:
        print(f"lint_repro: simulator smoke failed (exit {code})",
              file=sys.stderr)
        return code

    code = run_adaptive_tests()
    if code != 0:
        print(f"lint_repro: adaptive test family failed (exit {code})",
              file=sys.stderr)
        return code

    print("lint_repro: all apps lint clean, hot paths pure, "
          "src byte-compiles, simulator smoke green, adaptive family green")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
