#!/usr/bin/env python3
"""Regenerate every table and figure and dump a full report.

Usage:
    REPRO_SCALE=paper python scripts/regenerate_all.py [outfile]
    python scripts/regenerate_all.py --jobs 4            # 4 worker processes
    python scripts/regenerate_all.py --no-cache          # force re-simulation

Writes the rendered report to *outfile* (default: stdout) and a raw JSON
dump next to it when an outfile is given.

Regeneration is incremental: experiment cells already present in the
on-disk result cache (see ``repro.parallel.cache``) are served without
re-simulating, so a second run at the same scale finishes in seconds.
``--no-cache`` (or ``REPRO_CACHE=off``) bypasses the cache; ``--jobs``
(or ``REPRO_JOBS``) fans cache misses out over worker processes.
"""

from __future__ import annotations

import argparse
import json
import time

from repro.experiments import (
    current_scale,
    fig1_comm_matrix,
    fig2_allocation,
    fig4_lk23,
    fig5_matmul,
    fig6_video,
    format_figure,
    table1_machines,
    table2_lk23_counters,
    table3_matmul_counters,
    table4_video_counters,
)
from repro.experiments.figures import comm_matrix_ascii
from repro.experiments.report import format_counter_rows, format_table


def parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("outfile", nargs="?", default=None,
                        help="report destination (default: stdout)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS or 1; "
                             "0 = one per CPU)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache")
    return parser.parse_args(argv)


def main(argv: list[str] | None = None) -> None:
    args = parse_args(argv)
    out_path = args.outfile
    jobs = args.jobs
    cache = False if args.no_cache else None

    # Preflight: every app must lint clean and src must byte-compile
    # before we spend minutes regenerating figures from a broken tree.
    # lint_repro also runs the quick simulator smoke (bench gates on a
    # few paired samples, plus the three-way object/batched/SoA
    # differential smoke); the *full* noise-robust --check then gates
    # with all probes, including the mapping-engine comparison.
    import bench_repro
    import lint_repro

    code = lint_repro.main([])
    if code != 0:
        raise SystemExit(code)
    code = bench_repro.main(["--check"])
    if code != 0:
        raise SystemExit(code)

    scale = current_scale()
    chunks: list[str] = [f"# Full regeneration at scale {scale.name!r}", ""]
    raw: dict = {"scale": scale.name}
    t_start = time.time()

    def add(title: str, text: str) -> None:
        elapsed = time.time() - t_start
        chunks.append(f"## {title}  [t+{elapsed:.0f}s]")
        chunks.append(text)
        chunks.append("")
        print(f"done: {title} (t+{elapsed:.0f}s)", flush=True)

    rows = table1_machines()
    keys = list(rows[0].keys())
    add("Table I", format_table(keys, [[r[k] for k in keys] for r in rows]))

    comm, _ = fig1_comm_matrix()
    add("Fig. 1 (communication matrix, log-gray ASCII)",
        comm_matrix_ascii(comm))
    raw["fig1"] = comm.raw.tolist()

    text, info = fig2_allocation()
    add("Fig. 2 (task allocation)",
        text + f"\nreserved for control threads: PUs {info['reserved_pus']}")

    for machine in ("SMP12E5", "SMP20E7"):
        fig = fig4_lk23(machine, jobs=jobs, cache=cache)
        raw[f"fig4_{machine}"] = [(s.label, s.x, s.y) for s in fig.series]
        add(f"Fig. 4 ({machine})", format_figure(fig))

    rows2 = table2_lk23_counters(jobs=jobs, cache=cache)
    raw["table2"] = [vars(r) for r in rows2]
    add("Table II", format_counter_rows("LK23 counters, SMP12E5/64", rows2))

    for machine in ("SMP12E5", "SMP20E7"):
        fig = fig5_matmul(machine, jobs=jobs, cache=cache)
        raw[f"fig5_{machine}"] = [(s.label, s.x, s.y) for s in fig.series]
        add(f"Fig. 5 ({machine})", format_figure(fig))

    rows3 = table3_matmul_counters(jobs=jobs, cache=cache)
    raw["table3"] = [vars(r) for r in rows3]
    add("Table III", format_counter_rows("Matmul counters, SMP12E5/64", rows3))

    for machine in ("SMP12E5-4S", "SMP20E7-4S"):
        fig = fig6_video(machine, jobs=jobs, cache=cache)
        raw[f"fig6_{machine}"] = [(s.label, s.x, s.y) for s in fig.series]
        add(f"Fig. 6 ({machine})", format_figure(fig))

    rows4 = table4_video_counters(jobs=jobs, cache=cache)
    raw["table4"] = [vars(r) for r in rows4]
    add("Table IV", format_counter_rows("Video counters, SMP12E5-4S/HD", rows4))

    report = "\n".join(chunks)
    if out_path:
        with open(out_path, "w") as fh:
            fh.write(report)
        with open(out_path.rsplit(".", 1)[0] + ".json", "w") as fh:
            json.dump(raw, fh, indent=1)
        print(f"\nwrote {out_path}")
    else:
        print(report)


if __name__ == "__main__":
    main()
