#!/usr/bin/env python3
"""Benchmark the simulator substrate and record the results.

Two modes:

``python scripts/bench_repro.py``
    Runs the infrastructure benchmarks
    (``benchmarks/test_infra_simulator_throughput.py``) under
    pytest-benchmark plus a quick-scale Fig. 4 wall-clock probe, and
    distils everything into ``BENCH_sim.json`` at the repo root. If a
    previous ``BENCH_sim.json`` exists, its measurements rotate into the
    ``previous`` key — so running the script once on the old tree and
    once on the new one leaves a before/after record in a single file.

``python scripts/bench_repro.py --check [--tolerance 0.2]``
    Fast preflight (no pytest): runs the engine event-throughput ring
    inline and exits 1 if it processes <= 2_000 events — the same floor
    ``test_engine_event_throughput`` asserts. Two *paired-ratio*
    regression gates follow, each the median of back-to-back per-pair
    time ratios measured on this machine (recorded absolute rates are
    never compared against — they swing tens of percent between runs on
    the shared container): the batched core must keep a real edge over
    the object core (recorded speedup discounted 50%, floored at 1.2x),
    and the fully tapped run must stay within ``--tolerance`` (default
    20%) of the untapped batched run. ``regenerate_all.py`` calls this
    before spending minutes on figures.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
BENCH_FILE = ROOT / "benchmarks" / "test_infra_simulator_throughput.py"
OUT_PATH = ROOT / "BENCH_sim.json"

#: Floor asserted by ``test_engine_event_throughput`` (events per run).
ENGINE_EVENTS_FLOOR = 2_000

#: Thread counts the mapping benchmarks sweep (ISSUE 3 scaling ladder).
MAPPING_SIZES = (128, 512, 2048, 4096)

#: Once one size of a mapping benchmark takes longer than this, the
#: larger sizes are recorded as skipped instead of run — keeps a run on a
#: slow (pre-optimization) tree from taking tens of minutes.
MAPPING_BUDGET_S = 60.0

if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def engine_ring_events(
    core: str = "auto", *, traced: bool = False
) -> tuple[int, float]:
    """The ``test_engine_event_throughput`` workload, inline.

    Returns (events processed, wall-clock seconds). ``core`` selects the
    simulator core ("auto" resolves to the batched one). ``traced``
    attaches the full observability stack — metrics plus a ring trace
    with 1-in-16 busy sampling, the docs/OBSERVABILITY.md reference
    configuration — to measure tap overhead on the same workload.
    Machine construction is timed on purpose: the metric has always been
    end-to-end, so generations stay comparable.
    """
    from repro.sim import Compute, SimMachine, Touch, Wait
    from repro.topology import smp12e5
    from repro.util.bitmap import Bitmap

    t0 = time.perf_counter()
    machine = SimMachine(smp12e5(), core=core)
    if traced:
        from repro.sim.observe import RingTrace, SimObserver

        machine.attach_observer(SimObserver(
            trace=RingTrace(capacity=4096, sample={"busy": 16})
        ))
    bufs = [machine.allocate(1 << 16, f"b{i}") for i in range(32)]
    events = [machine.event(f"e{i}") for i in range(32)]

    def stage(i):
        nxt = events[(i + 1) % 32]
        for _ in range(50):
            yield Compute(1e4)
            yield Touch(bufs[i], 4096, write=True)
            nxt.signal()
            yield Wait(events[i])

    for i in range(32):
        machine.add_thread(f"s{i}", stage(i), cpuset=Bitmap.single(2 * i))
    events[0].signal()
    machine.run()
    return machine.engine.events_processed, time.perf_counter() - t0


def fig4_probe() -> dict:
    """Wall-clock of one quick-scale Fig. 4 sweep (no cache, one worker)."""
    from repro.experiments.figures import fig4_lk23
    from repro.experiments.runner import QUICK

    t0 = time.perf_counter()
    fig = fig4_lk23("SMP12E5", scale=QUICK, jobs=1, cache=False)
    dt = time.perf_counter() - t0
    return {
        "seconds": dt,
        "series": len(fig.series),
        "points": sum(len(s.y) for s in fig.series),
    }


def mapping_benchmarks() -> dict:
    """Time the TreeMatch placement engines on synthetic stencil matrices.

    Three benchmarks per thread count: ``group`` (the greedy grouping
    engine, arity 8), ``refine`` (the swap local search on the greedy
    result), and ``full_map`` (the whole Algorithm 1 pipeline on the
    SMP20E7 topology, oversubscription included). Deterministic — the
    stencil matrix has no randomness — so two runs on the same tree agree
    and before/after generations are directly comparable.
    """
    import numpy as np  # noqa: F401  (keeps the import cost out of the timing)

    from repro.topology import smp20e7
    from repro.treematch import CommunicationMatrix, treematch_map
    from repro.treematch.grouping import (
        group_greedy,
        intra_group_weight,
        refine_groups,
    )

    topo = smp20e7()
    out: dict = {}

    def sweep(kind: str, run) -> None:
        entries: dict = {}
        over_budget = False
        for p in MAPPING_SIZES:
            if over_budget:
                entries[str(p)] = {"skipped": True,
                                   "reason": f"budget {MAPPING_BUDGET_S}s"}
                continue
            entry = run(p)
            entries[str(p)] = entry
            print(f"  mapping {kind} p={p}: {entry['seconds']:.3f}s",
                  flush=True)
            if entry["seconds"] > MAPPING_BUDGET_S:
                over_budget = True
        out[kind] = entries

    def bench_group(p: int) -> dict:
        aff = CommunicationMatrix.stencil2d(p).affinity()
        t0 = time.perf_counter()
        groups = group_greedy(aff, 8)
        dt = time.perf_counter() - t0
        return {"seconds": dt,
                "intra_group_weight": intra_group_weight(aff, groups)}

    def bench_refine(p: int) -> dict:
        aff = CommunicationMatrix.stencil2d(p).affinity()
        groups = group_greedy(aff, 8)
        before = intra_group_weight(aff, groups)
        t0 = time.perf_counter()
        refined = refine_groups(aff, groups)
        dt = time.perf_counter() - t0
        return {"seconds": dt,
                "weight_before": before,
                "intra_group_weight": intra_group_weight(aff, refined)}

    def bench_full_map(p: int) -> dict:
        comm = CommunicationMatrix.stencil2d(p)
        t0 = time.perf_counter()
        pl = treematch_map(topo, comm)
        dt = time.perf_counter() - t0
        return {"seconds": dt,
                "oversub_factor": pl.oversub_factor,
                "threads_bound": len(pl.thread_to_pu)}

    sweep("group", bench_group)
    sweep("refine", bench_refine)
    sweep("full_map", bench_full_map)
    return out


def mapping_speedups(current: dict, previous: dict | None) -> dict:
    """Per-benchmark speedup vs. the previous generation (sizes in both)."""
    if not previous:
        return {}
    prev_bench = previous.get("mapping_bench")
    if not prev_bench:
        return {}
    speedups: dict = {}
    for kind, entries in current.items():
        prev_entries = prev_bench.get(kind, {})
        for size, entry in entries.items():
            prev = prev_entries.get(size)
            if (
                prev
                and not entry.get("skipped")
                and not prev.get("skipped")
                and entry.get("seconds")
            ):
                speedups.setdefault(kind, {})[size] = round(
                    prev["seconds"] / entry["seconds"], 2
                )
    return speedups


def pytest_benchmarks() -> dict:
    """Run the infra benchmarks under pytest-benchmark, distil the stats."""
    fd, json_path = tempfile.mkstemp(suffix=".json")
    os.close(fd)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    try:
        proc = subprocess.run(
            [
                sys.executable, "-m", "pytest", str(BENCH_FILE),
                "-q", f"--benchmark-json={json_path}",
            ],
            cwd=ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            print(proc.stdout, file=sys.stderr)
            print(proc.stderr, file=sys.stderr)
            raise SystemExit(f"benchmark run failed (exit {proc.returncode})")
        with open(json_path) as fh:
            data = json.load(fh)
    finally:
        try:
            os.unlink(json_path)
        except OSError:
            pass

    out = {}
    for bench in data.get("benchmarks", []):
        stats = bench.get("stats", {})
        out[bench["name"]] = {
            "mean_s": stats.get("mean"),
            "min_s": stats.get("min"),
            "rounds": stats.get("rounds"),
        }
    return out


def _paired_ratios(run_num, run_den, pairs: int) -> tuple[list, float, float]:
    """Back-to-back pairs of two probes; per-pair ``dt_num / dt_den``.

    Machine-level drift (frequency scaling, noisy neighbours) moves both
    runs of a pair together and cancels in the ratio, where comparing
    two independently-measured rates — or worse, a rate measured now
    against one recorded on a different container — sees the drift as a
    regression. Returns (ratios, best num rate, best den rate).
    """
    ratios: list[float] = []
    rate_num = rate_den = 0.0
    for _ in range(pairs):
        ev_d, dt_d = run_den()
        ev_n, dt_n = run_num()
        if dt_d > 0 and dt_n > 0:
            ratios.append(dt_n / dt_d)
            rate_den = max(rate_den, ev_d / dt_d)
            rate_num = max(rate_num, ev_n / dt_n)
    return ratios, rate_num, rate_den


def run_check(tolerance: float = 0.2, reps: int = 3) -> int:
    """Floor check + paired-ratio regression gates.

    Every gate is *relative*, measured as the median of back-to-back
    per-pair time ratios on this machine, right now:

    1. absolute floor — the auto core must process more than
       ``ENGINE_EVENTS_FLOOR`` events (best-of-*reps*);
    2. core gate — the batched core must stay genuinely faster than the
       object core. The required edge derives from the recorded
       ``batched_vs_object_speedup`` but is discounted 50% (and floored
       at 1.2x), so a generation recorded on a fast container can't
       fail a healthy run on a loaded one;
    3. observability gate — the fully tapped batched run (metrics +
       1-in-16 sampled busy tracing) must stay within *tolerance* of
       the untapped batched run.

    Recorded absolute rates in BENCH_sim.json (which have swung 40%
    between runs of the same code on the shared container) are never
    compared against directly.
    """
    import statistics

    events, dt = min(engine_ring_events() for _ in range(reps))
    rate = events / dt if dt > 0 else float("inf")
    ok = events > ENGINE_EVENTS_FLOOR
    status = "ok" if ok else "FAIL"
    print(
        f"bench_repro --check: {events} engine events in {dt:.3f}s "
        f"({rate:,.0f} ev/s) — floor {ENGINE_EVENTS_FLOOR} [{status}]"
    )
    if not ok:
        return 1

    recorded_speedup = None
    if OUT_PATH.exists():
        try:
            with open(OUT_PATH) as fh:
                recorded = json.load(fh)
            recorded_speedup = recorded.get("engine_batched", {}).get(
                "batched_vs_object_speedup"
            )
        except (OSError, ValueError, AttributeError):
            print("bench_repro --check: BENCH_sim.json unreadable — "
                  "recorded speedup unavailable")

    # Core gate: batched vs object, paired.
    ratios, rate_o, rate_b = _paired_ratios(
        lambda: engine_ring_events("object"),
        lambda: engine_ring_events("batched"),
        reps,
    )
    speedup = statistics.median(ratios) if ratios else float("inf")
    required = 1.2
    if recorded_speedup:
        required = max(required, 1.0 + (recorded_speedup - 1.0) * 0.5)
    regressed = speedup < required
    verdict = "REGRESSION" if regressed else "ok"
    print(
        f"bench_repro --check: engine_batched {rate_b:,.0f} ev/s vs object "
        f"{rate_o:,.0f}, median paired speedup {speedup:.2f}x "
        f"(required >= {required:.2f}x"
        + (f", recorded {recorded_speedup:.2f}x" if recorded_speedup else "")
        + f") [{verdict}]"
    )
    if regressed:
        return 1

    # Observability gate: tapped vs untapped batched runs, paired.
    ratios, rate_t, rate_b = _paired_ratios(
        lambda: engine_ring_events("batched", traced=True),
        lambda: engine_ring_events("batched"),
        reps + 4,
    )
    overhead = statistics.median(ratios) - 1.0 if ratios else 0.0
    traced_regressed = overhead > tolerance
    verdict = "REGRESSION" if traced_regressed else "ok"
    print(
        f"bench_repro --check: engine_ring_traced {rate_t:,.0f} ev/s vs "
        f"untapped {rate_b:,.0f}, median paired overhead {overhead:+.1%} "
        f"(allowed <= {tolerance:.0%}) [{verdict}]"
    )
    return 1 if traced_regressed else 0


def run_full() -> int:
    previous = None
    if OUT_PATH.exists():
        try:
            with open(OUT_PATH) as fh:
                previous = json.load(fh)
            previous.pop("previous", None)  # keep exactly one generation back
        except (OSError, ValueError):
            previous = None

    print("running pytest-benchmark suite ...", flush=True)
    benches = pytest_benchmarks()
    print("running engine ring probe ...", flush=True)
    # Best-of-5: the headline regression-gate number; single-core CI
    # boxes jitter 10-20% and only the fastest run reflects the code.
    events, dt = min(engine_ring_events() for _ in range(5))
    print("running batched-vs-object core probe ...", flush=True)
    ev_b, dt_b = min(engine_ring_events("batched") for _ in range(3))
    ev_o, dt_o = min(engine_ring_events("object") for _ in range(3))
    print("running ring-traced observability probe ...", flush=True)
    ev_t, dt_t = min(
        engine_ring_events("batched", traced=True) for _ in range(3)
    )
    print("running quick-scale Fig. 4 probe ...", flush=True)
    probe = fig4_probe()
    print("running mapping benchmarks ...", flush=True)
    mapping = mapping_benchmarks()

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "engine_ring": {
            "events": events,
            "seconds": dt,
            "events_per_second": events / dt if dt > 0 else None,
        },
        "engine_batched": {
            "batched_events_per_second": ev_b / dt_b if dt_b > 0 else None,
            "object_events_per_second": ev_o / dt_o if dt_o > 0 else None,
            "batched_vs_object_speedup": (
                round(dt_o / dt_b, 2) if dt_b > 0 else None
            ),
            "events": ev_b,
        },
        "engine_ring_traced": {
            "events": ev_t,
            "seconds": dt_t,
            "events_per_second": ev_t / dt_t if dt_t > 0 else None,
            "overhead_vs_batched": (
                round(dt_t / dt_b, 3) if dt_b > 0 else None
            ),
        },
        "pytest_benchmarks": benches,
        "fig4_quick_probe": probe,
        "mapping_bench": mapping,
    }
    speedups = mapping_speedups(mapping, previous)
    if speedups:
        record["mapping_speedup_vs_previous"] = speedups
    if previous is not None:
        record["previous"] = previous

    with open(OUT_PATH, "w") as fh:
        json.dump(record, fh, indent=1)
        fh.write("\n")
    print(f"wrote {OUT_PATH}")
    print(json.dumps({k: v for k, v in record.items() if k != "previous"},
                     indent=1))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="fast engine-throughput floor + regression check "
             "(no pytest, no JSON write)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.2, metavar="FRAC",
        help="allowed fractional throughput drop vs BENCH_sim.json "
             "before --check fails (default 0.2)",
    )
    args = parser.parse_args(argv)
    return run_check(args.tolerance) if args.check else run_full()


if __name__ == "__main__":
    raise SystemExit(main())
