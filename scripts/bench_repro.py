#!/usr/bin/env python3
"""Benchmark the simulator substrate and record the results.

Two modes:

``python scripts/bench_repro.py``
    Runs the infrastructure benchmarks
    (``benchmarks/test_infra_simulator_throughput.py``) under
    pytest-benchmark plus a quick-scale Fig. 4 wall-clock probe, and
    distils everything into ``BENCH_sim.json`` at the repo root. If a
    previous ``BENCH_sim.json`` exists, its measurements rotate into the
    ``previous`` key — so running the script once on the old tree and
    once on the new one leaves a before/after record in a single file.

``python scripts/bench_repro.py --check [--tolerance 0.3] [--quick]``
    Fast preflight (no pytest): runs the engine event-throughput ring
    inline and exits 1 if it processes <= 2_000 events — the same floor
    ``test_engine_event_throughput`` asserts. Paired-ratio regression
    gates follow. Every probe gets one untimed warmup pass first, every
    gate is best-of-N interleaved pairs (N >= 5, ``--pairs``), and the
    verdict is always the *median of per-pair ratios* measured on this
    machine right now (recorded absolute rates are never compared
    against — they swing tens of percent between runs on the shared
    container):

    * core gate — batched must keep a real edge over the object core
      (recorded speedup discounted 50%, floored at 1.2x);
    * SoA gate — the wide lockstep workload on the SoA core must reach
      >= 3x the classic batched ring's event rate, pair by pair (the
      tentpole throughput claim, drift-cancelled);
    * observability gate — the fully tapped run must stay within
      ``--tolerance`` (default 30%; the honest interleaved measurement
      puts the true tap cost at ~15-20%, where the old best-vs-best
      comparison once recorded taps as *faster* — pure bias) of the
      untapped batched run; a median ratio *below* 1.0 marks the
      measurement unstable instead of being celebrated;
    * shard gate — a 2-shard scenario must produce the same global
      trace fingerprint with 1 worker and 2 workers;
    * mapping gate — the TreeMatch probe (greedy p=1024 + multilevel
      p=4096) must stay within 2x of its recorded ratio against a numpy
      matmul canary (informational until a ratio is recorded);
    * adaptive gates — on the phase-shift workload the remapping
      controller must beat the best static placement >= 1.1x in
      deterministic virtual seconds, and on the phase-stable control
      program (zero remaps) its wall-clock overhead must stay <= 5%.

    ``--quick`` drops to 3 pairs and skips the mapping gate — a <10s
    smoke for lint preflight; ``regenerate_all.py`` runs the full check
    before spending minutes on figures.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
BENCH_FILE = ROOT / "benchmarks" / "test_infra_simulator_throughput.py"
OUT_PATH = ROOT / "BENCH_sim.json"

#: Floor asserted by ``test_engine_event_throughput`` (events per run).
ENGINE_EVENTS_FLOOR = 2_000

#: Thread counts the mapping benchmarks sweep (ISSUE 3 scaling ladder).
MAPPING_SIZES = (128, 512, 2048, 4096)

#: Once one size of a mapping benchmark takes longer than this, the
#: larger sizes are recorded as skipped instead of run — keeps a run on a
#: slow (pre-optimization) tree from taking tens of minutes.
MAPPING_BUDGET_S = 60.0

#: Task counts of the sparse multilevel scaling probes (ISSUE 7): the
#: 10^5 point must land in single-digit seconds, the 10^6 point must
#: complete at all (it is the dense-n² infeasibility demonstrator).
MAPPING_SCALE_SIZES = (100_000, 1_000_000)

#: Separate, larger budget for the scale probes — a million-task map is
#: allowed minutes, and skipping it on a slow tree is still recorded.
MAPPING_SCALE_BUDGET_S = 240.0

#: Sizes at which the multilevel sweep also records its placement cost
#: relative to the dense greedy+refine engine (quality gate: <= 1.05).
MAPPING_QUALITY_SIZES = (512, 2048, 4096)

if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def engine_ring_events(
    core: str = "auto", *, traced: bool = False
) -> tuple[int, float]:
    """The ``test_engine_event_throughput`` workload, inline.

    Returns (events processed, wall-clock seconds). ``core`` selects the
    simulator core ("auto" resolves to the batched one). ``traced``
    attaches the full observability stack — metrics plus a ring trace
    with 1-in-16 busy sampling, the docs/OBSERVABILITY.md reference
    configuration — to measure tap overhead on the same workload.
    Machine construction is timed on purpose: the metric has always been
    end-to-end, so generations stay comparable.
    """
    from repro.sim import Compute, SimMachine, Touch, Wait
    from repro.topology import smp12e5
    from repro.util.bitmap import Bitmap

    t0 = time.perf_counter()
    machine = SimMachine(smp12e5(), core=core)
    if traced:
        from repro.sim.observe import RingTrace, SimObserver

        machine.attach_observer(SimObserver(
            trace=RingTrace(capacity=4096, sample={"busy": 16})
        ))
    bufs = [machine.allocate(1 << 16, f"b{i}") for i in range(32)]
    events = [machine.event(f"e{i}") for i in range(32)]

    def stage(i):
        nxt = events[(i + 1) % 32]
        for _ in range(50):
            yield Compute(1e4)
            yield Touch(bufs[i], 4096, write=True)
            nxt.signal()
            yield Wait(events[i])

    for i in range(32):
        machine.add_thread(f"s{i}", stage(i), cpuset=Bitmap.single(2 * i))
    events[0].signal()
    machine.run()
    return machine.engine.events_processed, time.perf_counter() - t0


def engine_wide_events(core: str = "soa") -> tuple[int, float]:
    """The wide lockstep workload: one bound thread per PU of SMP12E5.

    Every thread runs the same Compute+Touch loop, so all 192 quanta
    expire at the same virtual instants — the full-machine steady state
    the SoA core's vectorized drain targets. This is the workload behind
    the tentpole ">= 3x the batched ring rate" claim; the serial ring
    above (where nothing can vectorize) is kept as the honest
    worst case. Construction is timed in, like every engine probe.
    """
    from repro.sim import Compute, SimMachine, Touch
    from repro.topology import smp12e5
    from repro.util.bitmap import Bitmap

    t0 = time.perf_counter()
    machine = SimMachine(smp12e5(), core=core)

    def worker(buf):
        for _ in range(8):
            yield Compute(2e8)
            yield Touch(buf, 1 << 16, write=True)

    for i, pu in enumerate(machine.topology.pus):
        buf = machine.allocate(1 << 16, f"wbuf{i}")
        machine.add_thread(
            f"w{i}", worker(buf), cpuset=Bitmap.single(pu.os_index)
        )
    machine.run()
    return machine.engine.events_processed, time.perf_counter() - t0


def engine_chain_events(
    core: str = "soa", *, chase: bool = True, stages: int = 8,
    loops: int = 1500,
) -> tuple[int, float]:
    """A *genuinely serial* token-passing chain: one event ready at a time.

    Unlike the classic ring probe — whose 32 stages all compute before
    their first Wait, so ~32 tokens circulate concurrently and the
    calendar always holds many buckets — every stage here waits FIRST,
    and a single external signal starts one token around the loop. At
    any virtual instant exactly one thread is runnable, which is the
    pure serial-dependency worst case the chain chase (and, with numba,
    the run-ahead kernel) targets: the emitted completion is provably
    the next event anywhere. ``chase=False`` measures the same workload
    with the fast path disabled, for paired feature-on/off ratios.
    Construction is timed in, like every engine probe.
    """
    from repro.sim import Compute, SimMachine, Wait
    from repro.sim.params import SimLimits
    from repro.topology import smp12e5
    from repro.util.bitmap import Bitmap

    t0 = time.perf_counter()
    machine = SimMachine(
        smp12e5(), core=core, limits=SimLimits(chase=chase)
    )
    events = [machine.event(f"e{i}") for i in range(stages)]

    def stage(i):
        nxt = events[(i + 1) % stages]
        for _ in range(loops):
            yield Wait(events[i])
            yield Compute(1e4)
            nxt.signal()

    for i in range(stages):
        machine.add_thread(f"s{i}", stage(i), cpuset=Bitmap.single(2 * i))
    events[0].signal()
    machine.run()
    return machine.engine.events_processed, time.perf_counter() - t0


def chain_chase_stats() -> dict:
    """One serial-chain run on the SoA core, reporting the chase counters.

    Separate from :func:`engine_chain_events` (whose return shape feeds
    the paired-ratio helpers) so BENCH_sim.json can record how many
    events the run-ahead paths actually absorbed.
    """
    from repro.sim import Compute, SimMachine, Wait
    from repro.sim.params import SimLimits
    from repro.topology import smp12e5
    from repro.util.bitmap import Bitmap

    machine = SimMachine(smp12e5(), core="soa", limits=SimLimits())
    events = [machine.event(f"e{i}") for i in range(8)]

    def stage(i):
        nxt = events[(i + 1) % 8]
        for _ in range(300):
            yield Wait(events[i])
            yield Compute(1e4)
            nxt.signal()

    for i in range(8):
        machine.add_thread(f"s{i}", stage(i), cpuset=Bitmap.single(2 * i))
    events[0].signal()
    machine.run()
    return {
        "events": machine.engine.events_processed,
        "chase_events": machine.core_stats.get("chase_events", 0),
        "jit_events": machine.core_stats.get("jit_events", 0),
        "core_used": machine.core_used,
    }


def engine_soa_jit_probe() -> dict:
    """Wide lockstep on the SoA core with the compiled run-ahead kernel.

    When numba is not installed the probe records an explicit
    ``skipped: "numba unavailable"`` entry — never a silent pass — so a
    container without the ``repro[jit]`` extra still documents that the
    kernel went unmeasured. With numba, it records the jit-on wide rate,
    the paired ratio against the interpreted SoA wide run, and how many
    events the kernel absorbed.
    """
    from repro.sim.jit import HAVE_NUMBA

    if not HAVE_NUMBA:
        return {"skipped": "numba unavailable"}

    import statistics

    from repro.sim import Compute, SimMachine, Touch
    from repro.sim.params import SimLimits
    from repro.topology import smp12e5
    from repro.util.bitmap import Bitmap

    def wide(jit: str) -> tuple[int, float]:
        t0 = time.perf_counter()
        machine = SimMachine(
            smp12e5(), core="soa", limits=SimLimits(jit=jit)
        )

        def worker(buf):
            for _ in range(8):
                yield Compute(2e8)
                yield Touch(buf, 1 << 16, write=True)

        for i, pu in enumerate(machine.topology.pus):
            buf = machine.allocate(1 << 16, f"jbuf{i}")
            machine.add_thread(
                f"w{i}", worker(buf), cpuset=Bitmap.single(pu.os_index)
            )
        machine.run()
        wide.last = machine  # noqa: B010 — stats for the record below
        return machine.engine.events_processed, time.perf_counter() - t0

    # dt_num/dt_den with the interpreted run in the numerator: the
    # recorded median is "how many times longer the interpreter takes",
    # i.e. the kernel's paired speedup.
    ratios, rate_py, rate_jit = _paired_ratios(
        lambda: wide("off"), lambda: wide("on"), 3
    )
    wide("on")  # one more kernel run so the recorded stats are jit-on
    m = wide.last
    return {
        "events": m.engine.events_processed,
        "jit_events": m.core_stats.get("jit_events", 0),
        "core_used": m.core_used,
        "wide_events_per_second": rate_jit,
        "wide_interpreted_events_per_second": rate_py,
        "jit_speedup_vs_interpreted": (
            round(statistics.median(ratios), 2) if ratios else None
        ),
    }


def shard_smoke() -> dict:
    """Tiny 2-shard halo ring, workers=1 vs workers=2: one fingerprint.

    The cheapest end-to-end exercise of the conservative shard protocol
    — program build, epochs, message exchange, forked workers — with the
    determinism invariant as the pass criterion.
    """
    from repro.sim.shard import halo_ring_scenario, run_sharded

    sc = halo_ring_scenario(
        2, width=4, iters=2, flops=4e6, nbytes=1 << 13, latency=5e7
    )
    r1 = run_sharded(sc, workers=1)
    r2 = run_sharded(sc, workers=2)
    return {
        "fingerprint": r1.fingerprint,
        "match": r1.fingerprint == r2.fingerprint,
        "epochs": r1.epochs,
        "messages": r1.messages,
    }


def shard_scaling_probe() -> dict:
    """4-machine halo ring at 1/2/4 workers: invariance + wall clock.

    The fingerprint must be identical at every worker count — that gate
    is unconditional. The >= 2.5x speedup-at-4-workers gate only applies
    when the container actually exposes >= 4 CPUs; on a 1-CPU box the
    probe records the (necessarily ~1x) measurement plus the CPU count
    and marks the speedup gate skipped, so the record stays honest
    instead of encoding an impossible expectation.
    """
    from repro.sim.shard import available_cpus, halo_ring_scenario, run_sharded

    cpus = available_cpus()
    sc = halo_ring_scenario(
        4, width=192, iters=60, flops=2e8, nbytes=1 << 16, latency=1e9
    )
    entry: dict = {"cpus_available": cpus, "workers": {}}
    fingerprints = set()
    base = None
    for w in (1, 2, 4):
        r = run_sharded(sc, workers=w)
        fingerprints.add(r.fingerprint)
        entry["workers"][str(w)] = {
            "wall_seconds": round(r.wall_seconds, 3),
            "events": r.events_processed,
        }
        if w == 1:
            base = r.wall_seconds
        print(
            f"  shard_scaling workers={w}: {r.wall_seconds:.3f}s "
            f"({r.events_processed} events, {r.epochs} epochs)",
            flush=True,
        )
    entry["epochs"] = r.epochs
    entry["messages"] = r.messages
    entry["fingerprint_invariant"] = len(fingerprints) == 1
    w4 = entry["workers"]["4"]["wall_seconds"]
    entry["speedup_at_4"] = round(base / w4, 2) if w4 > 0 else None
    if cpus >= 4:
        entry["gate"] = (
            "pass" if (entry["speedup_at_4"] or 0) >= 2.5 else "FAIL (< 2.5x)"
        )
    else:
        entry["gate"] = (
            f"skipped ({cpus} cpu available; the speedup gate needs >= 4)"
        )
    return entry


def fig4_probe() -> dict:
    """Wall-clock of one quick-scale Fig. 4 sweep (no cache, one worker)."""
    from repro.experiments.figures import fig4_lk23
    from repro.experiments.runner import QUICK

    t0 = time.perf_counter()
    fig = fig4_lk23("SMP12E5", scale=QUICK, jobs=1, cache=False)
    dt = time.perf_counter() - t0
    return {
        "seconds": dt,
        "series": len(fig.series),
        "points": sum(len(s.y) for s in fig.series),
    }


def mapping_benchmarks() -> dict:
    """Time the TreeMatch placement engines on synthetic stencil matrices.

    Three benchmarks per thread count: ``group`` (the greedy grouping
    engine, arity 8), ``refine`` (the swap local search on the greedy
    result), and ``full_map`` (the whole Algorithm 1 pipeline on the
    SMP20E7 topology, oversubscription included). Deterministic — the
    stencil matrix has no randomness — so two runs on the same tree agree
    and before/after generations are directly comparable.
    """
    import numpy as np  # noqa: F401  (keeps the import cost out of the timing)

    from repro.topology import smp20e7
    from repro.treematch import (
        CommunicationMatrix,
        multilevel_map,
        treematch_map,
    )
    from repro.treematch.grouping import (
        group_greedy,
        intra_group_weight,
        refine_groups,
    )

    topo = smp20e7()
    out: dict = {}
    greedy_costs: dict[int, float] = {}

    def sweep(kind: str, run, *, sizes=MAPPING_SIZES,
              budget=MAPPING_BUDGET_S) -> None:
        entries: dict = {}
        over_budget = False
        for p in sizes:
            if over_budget:
                entries[str(p)] = {"skipped": True,
                                   "reason": f"budget {budget}s"}
                continue
            entry = run(p)
            entries[str(p)] = entry
            print(f"  mapping {kind} p={p}: {entry['seconds']:.3f}s",
                  flush=True)
            if entry["seconds"] > budget:
                over_budget = True
        out[kind] = entries

    def bench_group(p: int) -> dict:
        aff = CommunicationMatrix.stencil2d(p).affinity()
        t0 = time.perf_counter()
        groups = group_greedy(aff, 8)
        dt = time.perf_counter() - t0
        return {"seconds": dt,
                "intra_group_weight": intra_group_weight(aff, groups)}

    def bench_refine(p: int) -> dict:
        aff = CommunicationMatrix.stencil2d(p).affinity()
        groups = group_greedy(aff, 8)
        before = intra_group_weight(aff, groups)
        t0 = time.perf_counter()
        refined = refine_groups(aff, groups)
        dt = time.perf_counter() - t0
        return {"seconds": dt,
                "weight_before": before,
                "intra_group_weight": intra_group_weight(aff, refined)}

    def bench_full_map(p: int) -> dict:
        comm = CommunicationMatrix.stencil2d(p)
        t0 = time.perf_counter()
        pl = treematch_map(topo, comm)
        dt = time.perf_counter() - t0
        entry = {"seconds": dt,
                 "oversub_factor": pl.oversub_factor,
                 "threads_bound": len(pl.thread_to_pu)}
        if p in MAPPING_QUALITY_SIZES:
            cost = pl.cost(topo, comm)
            greedy_costs[p] = cost
            entry["cost"] = cost
        return entry

    def bench_multilevel(p: int) -> dict:
        comm = CommunicationMatrix.stencil2d(p)
        t0 = time.perf_counter()
        pl = multilevel_map(topo, comm)
        dt = time.perf_counter() - t0
        entry = {"seconds": dt,
                 "oversub_factor": pl.oversub_factor,
                 "threads_bound": len(pl.thread_to_pu)}
        if p in MAPPING_QUALITY_SIZES and greedy_costs.get(p):
            cost = pl.cost(topo, comm)
            entry["cost"] = cost
            entry["cost_vs_greedy"] = round(cost / greedy_costs[p], 4)
        return entry

    def bench_multilevel_scale(p: int) -> dict:
        # CSR end to end: build, affinity, coarsen, bisect — no O(p²)
        # array ever exists (dense would be 8 TB at 10^6 tasks).
        t0 = time.perf_counter()
        comm = CommunicationMatrix.stencil2d(p, sparse=True)
        build_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        pl = multilevel_map(topo, comm)
        dt = time.perf_counter() - t0
        return {"seconds": dt,
                "build_seconds": build_s,
                "sparse": comm.is_sparse,
                "nnz": comm.nnz,
                "oversub_factor": pl.oversub_factor,
                "threads_bound": len(pl.thread_to_pu)}

    sweep("group", bench_group)
    sweep("refine", bench_refine)
    sweep("full_map", bench_full_map)
    sweep("multilevel", bench_multilevel)
    sweep("multilevel_scale", bench_multilevel_scale,
          sizes=MAPPING_SCALE_SIZES, budget=MAPPING_SCALE_BUDGET_S)
    return out


def mapping_speedups(current: dict, previous: dict | None) -> dict:
    """Per-benchmark speedup vs. the previous generation (sizes in both)."""
    if not previous:
        return {}
    prev_bench = previous.get("mapping_bench")
    if not prev_bench:
        return {}
    speedups: dict = {}
    for kind, entries in current.items():
        prev_entries = prev_bench.get(kind, {})
        for size, entry in entries.items():
            prev = prev_entries.get(size)
            if (
                prev
                and not entry.get("skipped")
                and not prev.get("skipped")
                and entry.get("seconds")
            ):
                speedups.setdefault(kind, {})[size] = round(
                    prev["seconds"] / entry["seconds"], 2
                )
    return speedups


def pytest_benchmarks() -> dict:
    """Run the infra benchmarks under pytest-benchmark, distil the stats."""
    fd, json_path = tempfile.mkstemp(suffix=".json")
    os.close(fd)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    try:
        proc = subprocess.run(
            [
                sys.executable, "-m", "pytest", str(BENCH_FILE),
                "-q", f"--benchmark-json={json_path}",
            ],
            cwd=ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            print(proc.stdout, file=sys.stderr)
            print(proc.stderr, file=sys.stderr)
            raise SystemExit(f"benchmark run failed (exit {proc.returncode})")
        with open(json_path) as fh:
            data = json.load(fh)
    finally:
        try:
            os.unlink(json_path)
        except OSError:
            pass

    out = {}
    for bench in data.get("benchmarks", []):
        stats = bench.get("stats", {})
        out[bench["name"]] = {
            "mean_s": stats.get("mean"),
            "min_s": stats.get("min"),
            "rounds": stats.get("rounds"),
        }
    return out


def mapping_probe() -> tuple[int, float]:
    """Fixed mapping workload for the paired ``--check`` gate.

    One dense greedy+refine map (p=1024) plus one multilevel map
    (p=4096, auto-CSR) — together they cross every hot loop ISSUE 3 and
    ISSUE 7 optimized: ``group_greedy``, ``refine_groups``, coarsening,
    bisection, and the sparse matrix plumbing. Deterministic; returns
    ``(1, seconds)`` so it plugs into :func:`_paired_ratios`.
    """
    from repro.topology import smp20e7
    from repro.treematch import (
        CommunicationMatrix,
        multilevel_map,
        treematch_map,
    )

    topo = smp20e7()
    t0 = time.perf_counter()
    treematch_map(topo, CommunicationMatrix.stencil2d(1024))
    multilevel_map(topo, CommunicationMatrix.stencil2d(4096))
    return 1, time.perf_counter() - t0


def numpy_canary() -> tuple[int, float]:
    """Machine-speed canary paired against :func:`mapping_probe`.

    A fixed dense matmul whose wall-clock tracks the container's current
    compute throughput; the probe/canary time ratio cancels machine
    drift the same way the engine gates' paired ratios do.
    """
    import numpy as np

    a = np.linspace(0.0, 1.0, 1024 * 1024).reshape(1024, 1024)
    t0 = time.perf_counter()
    (a @ a).sum()
    return 1, time.perf_counter() - t0


def adaptive_static_probe(declared: str) -> tuple[int, float]:
    """One static run of the phase-shift experiment, *virtual* seconds.

    Returns ``(1, simulated_seconds)`` so it plugs into
    :func:`_paired_ratios`. Virtual time is deterministic — the paired
    discipline here guards the *comparison shape* (and doubles as a
    determinism check: every pair must produce the same ratio), not
    machine drift.
    """
    from repro.experiments.adaptive import AdaptSetup, run_static

    return 1, run_static(declared, AdaptSetup(iters_per_phase=16))["seconds"]


def adaptive_adaptive_probe() -> tuple[int, float]:
    """One controller run of the phase-shift experiment, virtual seconds."""
    from repro.experiments.adaptive import AdaptSetup, run_adaptive

    return 1, run_adaptive(AdaptSetup(iters_per_phase=16))["seconds"]


def adaptive_best_static() -> str:
    """Which static declaration wins on the phase-shift workload."""
    from repro.experiments.adaptive import DECLARED, AdaptSetup, run_static

    setup = AdaptSetup(iters_per_phase=16)
    return min(
        ((run_static(d, setup)["seconds"], d) for d in DECLARED)
    )[1]


def adaptive_overhead_probe(controlled: bool) -> tuple[int, float]:
    """Phase-stable control program, wall-clock, with/without controller.

    Both sides run the *windowed* drain at the controller's window
    spacing — the per-epoch teardown/re-entry cost of ``run_window`` is
    the execution substrate's (the shard driver pays it with no
    controller in sight), so the baseline includes it and the ratio
    isolates what the controller itself adds: the telemetry tap, the
    window fold and the drift score. The controller performs zero
    remaps here (virtual time is bit-identical to the uncontrolled
    run), and the addition is gated at <= 5%.
    """
    from repro.affinity import AdaptiveController
    from repro.experiments.adaptive import (
        AdaptSetup,
        adapt_config,
        build_runtime,
        run_windowed,
    )

    setup = AdaptSetup(iters_per_phase=16, shift=False)
    t0 = time.perf_counter()
    if controlled:
        rt = build_runtime("stencil", setup)
        AdaptiveController.for_orwl(rt, config=adapt_config()).run()
    else:
        run_windowed("stencil", setup)
    return 1, time.perf_counter() - t0


def _paired_ratios(
    run_num, run_den, pairs: int, inner: int = 3
) -> tuple[list, float, float]:
    """Back-to-back pairs of two probes; per-pair ``dt_num / dt_den``.

    Machine-level drift (frequency scaling, noisy neighbours) moves both
    runs of a pair together and cancels in the ratio, where comparing
    two independently-measured rates — or worse, a rate measured now
    against one recorded on a different container — sees the drift as a
    regression. One untimed warmup pass of each side precedes the timed
    pairs so allocator/import/branch-predictor cold starts never land in
    pair #1, and each side of a pair is the best of *inner* back-to-back
    runs — scheduler interruptions only ever *add* time, so the min
    filters them symmetrically and the surviving ratio tracks the code,
    not the container. Returns (ratios, best num rate, best den rate).
    """
    run_den()
    run_num()
    ratios: list[float] = []
    rate_num = rate_den = 0.0
    for _ in range(pairs):
        ev_d, dt_d = min(
            (run_den() for _ in range(inner)), key=lambda r: r[1]
        )
        ev_n, dt_n = min(
            (run_num() for _ in range(inner)), key=lambda r: r[1]
        )
        if dt_d > 0 and dt_n > 0:
            ratios.append(dt_n / dt_d)
            rate_den = max(rate_den, ev_d / dt_d)
            rate_num = max(rate_num, ev_n / dt_n)
    return ratios, rate_num, rate_den


def _paired_rate_ratios(
    run_num, run_den, pairs: int, inner: int = 3
) -> tuple[list, float, float]:
    """Like :func:`_paired_ratios` but for *different* workloads.

    The two sides process different event counts, so the comparable
    quantity is the per-pair event-rate ratio ``(ev_n/dt_n)/(ev_d/dt_d)``
    rather than the raw time ratio. Same warmup, interleaving, and
    inner best-of filtering.
    """
    run_den()
    run_num()
    ratios: list[float] = []
    rate_num = rate_den = 0.0
    for _ in range(pairs):
        ev_d, dt_d = min(
            (run_den() for _ in range(inner)), key=lambda r: r[1]
        )
        ev_n, dt_n = min(
            (run_num() for _ in range(inner)), key=lambda r: r[1]
        )
        if dt_d > 0 and dt_n > 0:
            rn = ev_n / dt_n
            rd = ev_d / dt_d
            ratios.append(rn / rd)
            rate_num = max(rate_num, rn)
            rate_den = max(rate_den, rd)
    return ratios, rate_num, rate_den


def _best_of(run, n: int) -> tuple[int, float]:
    """One warmup pass, then the fastest of *n* timed runs."""
    run()
    return min(run() for _ in range(n))


def run_check(
    tolerance: float = 0.3, pairs: int = 5, quick: bool = False
) -> int:
    """Floor check + paired-ratio regression gates.

    Every gate is *relative*, measured as the median of back-to-back
    per-pair ratios on this machine, right now, after an untimed warmup
    pass of each probe:

    1. absolute floor — the auto core must process more than
       ``ENGINE_EVENTS_FLOOR`` events (best-of-*pairs* after warmup);
    2. core gate — the batched core must stay genuinely faster than the
       object core. The required edge derives from the recorded
       ``batched_vs_object_speedup`` but is discounted 50% (and floored
       at 1.2x), so a generation recorded on a fast container can't
       fail a healthy run on a loaded one;
    3. SoA gate — the wide lockstep workload on the SoA core must run at
       >= 3x the classic batched ring's event rate (median per-pair rate
       ratio): the tentpole claim, re-proven on every check;
    4. observability gate — the fully tapped batched run (metrics +
       1-in-16 sampled busy tracing) must stay within *tolerance* of
       the untapped batched run; a median *negative* overhead is
       reported as an unstable measurement, not a win;
    5. shard gate — the 2-shard smoke's fingerprint must match between
       1 and 2 workers;
    6. mapping gate (skipped by ``quick``) — probe vs numpy canary
       within 2x of the recorded ratio.

    Recorded absolute rates in BENCH_sim.json (which have swung 40%
    between runs of the same code on the shared container) are never
    compared against directly.
    """
    import statistics

    pairs = 3 if quick else max(5, pairs)

    events, dt = _best_of(engine_ring_events, pairs)
    rate = events / dt if dt > 0 else float("inf")
    ok = events > ENGINE_EVENTS_FLOOR
    status = "ok" if ok else "FAIL"
    print(
        f"bench_repro --check: {events} engine events in {dt:.3f}s "
        f"({rate:,.0f} ev/s) — floor {ENGINE_EVENTS_FLOOR} [{status}]"
    )
    if not ok:
        return 1

    recorded = None
    recorded_speedup = None
    if OUT_PATH.exists():
        try:
            with open(OUT_PATH) as fh:
                recorded = json.load(fh)
            recorded_speedup = recorded.get("engine_batched", {}).get(
                "batched_vs_object_speedup"
            )
        except (OSError, ValueError, AttributeError):
            print("bench_repro --check: BENCH_sim.json unreadable — "
                  "recorded speedup unavailable")

    # Core gate: batched vs object, paired.
    ratios, rate_o, rate_b = _paired_ratios(
        lambda: engine_ring_events("object"),
        lambda: engine_ring_events("batched"),
        pairs,
    )
    speedup = statistics.median(ratios) if ratios else float("inf")
    required = 1.2
    if recorded_speedup:
        required = max(required, 1.0 + (recorded_speedup - 1.0) * 0.5)
    regressed = speedup < required
    verdict = "REGRESSION" if regressed else "ok"
    print(
        f"bench_repro --check: engine_batched {rate_b:,.0f} ev/s vs object "
        f"{rate_o:,.0f}, median paired speedup {speedup:.2f}x "
        f"(required >= {required:.2f}x"
        + (f", recorded {recorded_speedup:.2f}x" if recorded_speedup else "")
        + f") [{verdict}]"
    )
    if regressed:
        return 1

    # SoA gate: wide lockstep on the SoA core vs the classic batched
    # ring, per-pair *rate* ratio (different workloads). The >= 3x bound
    # is the tentpole acceptance criterion stated against the recorded
    # ring rate; measuring the ring side fresh in each pair keeps the
    # comparison drift-cancelled instead of trusting a stale number.
    ratios, rate_soa, rate_ring = _paired_rate_ratios(
        lambda: engine_wide_events("soa"),
        lambda: engine_ring_events("batched"),
        pairs,
    )
    soa_ratio = statistics.median(ratios) if ratios else 0.0
    soa_regressed = soa_ratio < 3.0
    verdict = "REGRESSION" if soa_regressed else "ok"
    print(
        f"bench_repro --check: engine_soa wide {rate_soa:,.0f} ev/s vs "
        f"batched ring {rate_ring:,.0f}, median paired rate ratio "
        f"{soa_ratio:.2f}x (required >= 3.00x) [{verdict}]"
    )
    if soa_regressed:
        return 1

    # Serial-chain gate: the chain chase, feature-on vs feature-off on
    # the genuinely serial token chain, paired so container drift
    # cancels. The chase must never make the serial worst case slower
    # (>= 0.95 allows pure measurement jitter); how much it helps on
    # this container is printed but not gated — the shared box has
    # swung 40% between identical runs.
    ratios, _, _ = _paired_ratios(
        lambda: engine_chain_events("soa", chase=True),
        lambda: engine_chain_events("soa", chase=False),
        pairs,
    )
    # dt_chase / dt_nochase: < 1.0 means the chase is winning.
    chase_cost = statistics.median(ratios) if ratios else 1.0
    chase_regressed = chase_cost > 1.05
    verdict = "REGRESSION" if chase_regressed else "ok"
    print(
        f"bench_repro --check: engine_serial_chain chase/nochase paired "
        f"time ratio {chase_cost:.2f} (speedup {1.0 / chase_cost:.2f}x, "
        f"required ratio <= 1.05) [{verdict}]"
    )
    if chase_regressed:
        return 1

    # Chain parity gate: SoA(+chase) vs batched on the same serial
    # chain, paired rate ratio. Before the chase the SoA scalar path
    # ran the classic ring at 0.86x batched; the chase brings the
    # serial chain to parity. 0.75 is the floor at which the scalar
    # path counts as regressed rather than noisy.
    ratios, rate_sc, rate_bc = _paired_rate_ratios(
        lambda: engine_chain_events("soa"),
        lambda: engine_chain_events("batched"),
        pairs,
    )
    chain_ratio = statistics.median(ratios) if ratios else 0.0
    chain_regressed = chain_ratio < 0.75
    verdict = "REGRESSION" if chain_regressed else "ok"
    print(
        f"bench_repro --check: engine_serial_chain soa {rate_sc:,.0f} ev/s "
        f"vs batched {rate_bc:,.0f}, median paired rate ratio "
        f"{chain_ratio:.2f} (required >= 0.75) [{verdict}]"
    )
    if chain_regressed:
        return 1

    # JIT gate: never a silent pass. Without numba the skip is printed
    # and recorded by run_full; with numba the compiled kernel must not
    # be slower than the interpreted SoA wide run.
    from repro.sim.jit import HAVE_NUMBA

    if not HAVE_NUMBA:
        print(
            "bench_repro --check: engine_soa_jit skipped: numba "
            "unavailable (install the repro[jit] extra to measure the "
            "compiled drain kernel)"
        )
    else:
        jit_entry = engine_soa_jit_probe()
        jit_speedup = jit_entry.get("jit_speedup_vs_interpreted") or 0.0
        jit_regressed = jit_speedup < 0.95
        verdict = "REGRESSION" if jit_regressed else "ok"
        print(
            f"bench_repro --check: engine_soa_jit paired speedup "
            f"{jit_speedup:.2f}x vs interpreted "
            f"({jit_entry.get('jit_events', 0)} kernel events, "
            f"required >= 0.95x) [{verdict}]"
        )
        if jit_regressed:
            return 1

    # Observability gate: tapped vs untapped batched runs, paired,
    # interleaved in this same warmed process so both sides see the
    # same allocator and cache state.
    ratios, rate_t, rate_b = _paired_ratios(
        lambda: engine_ring_events("batched", traced=True),
        lambda: engine_ring_events("batched"),
        max(pairs, 5),
    )
    overhead = statistics.median(ratios) - 1.0 if ratios else 0.0
    traced_regressed = overhead > tolerance
    unstable = overhead < 0.0
    verdict = "REGRESSION" if traced_regressed else (
        "ok, UNSTABLE measurement" if unstable else "ok"
    )
    print(
        f"bench_repro --check: engine_ring_traced {rate_t:,.0f} ev/s vs "
        f"untapped {rate_b:,.0f}, median paired overhead {overhead:+.1%} "
        f"(allowed <= {tolerance:.0%}) [{verdict}]"
    )
    if unstable:
        print(
            "bench_repro --check: taps measuring faster than no taps is "
            "noise, not speedup — treat the overhead number as unreliable"
        )
    if traced_regressed:
        return 1

    # Shard gate: the conservative protocol's determinism invariant on
    # the cheapest real scenario.
    smoke = shard_smoke()
    verdict = "ok" if smoke["match"] else "FAIL"
    print(
        f"bench_repro --check: shard smoke fingerprint "
        f"{smoke['fingerprint'][:16]} ({smoke['epochs']} epochs, "
        f"{smoke['messages']} msgs), workers 1 vs 2 "
        f"{'match' if smoke['match'] else 'MISMATCH'} [{verdict}]"
    )
    if not smoke["match"]:
        return 1

    if quick:
        print("bench_repro --check: shard scaling + mapping + "
              "adaptive_remap gates skipped (--quick)")
        return 0

    # Shard scaling gate: on a box with >= 4 CPUs the 4-machine halo
    # ring must actually go >= 2.5x faster at 4 workers — honest
    # multi-worker scaling, enforced, not just recorded. On a smaller
    # box the probe is skipped with the CPU count in the message (the
    # full run_full record keeps the same skip reason).
    from repro.sim.shard import available_cpus

    cpus = available_cpus()
    if cpus >= 4:
        scaling = shard_scaling_probe()
        gate = scaling.get("gate", "")
        verdict = "ok" if gate == "pass" else "REGRESSION"
        print(
            f"bench_repro --check: shard scaling speedup at 4 workers "
            f"{scaling.get('speedup_at_4')}x on {cpus} cpus "
            f"(required >= 2.5x) [{verdict}]"
        )
        if gate != "pass":
            return 1
    else:
        print(
            f"bench_repro --check: shard scaling gate skipped "
            f"({cpus} cpu available; the speedup gate needs >= 4)"
        )

    # Mapping gate: probe vs numpy canary, paired — same discipline as
    # the engine gates. The recorded ratio gets 2x headroom (cache state
    # and BLAS threading move the two sides differently on the shared
    # container); without a recorded ratio the result is informational.
    recorded_ratio = None
    if isinstance(recorded, dict):
        recorded_ratio = recorded.get("mapping_check", {}).get(
            "probe_vs_canary_ratio"
        )
    ratios, _, _ = _paired_ratios(mapping_probe, numpy_canary, pairs)
    ratio = statistics.median(ratios) if ratios else float("inf")
    if recorded_ratio:
        allowed = recorded_ratio * 2.0
        map_regressed = ratio > allowed
        verdict = "REGRESSION" if map_regressed else "ok"
        print(
            f"bench_repro --check: mapping probe/canary ratio {ratio:.2f} "
            f"(recorded {recorded_ratio:.2f}, allowed <= {allowed:.2f}) "
            f"[{verdict}]"
        )
        if map_regressed:
            return 1
    else:
        print(
            f"bench_repro --check: mapping probe/canary ratio {ratio:.2f} "
            f"(no recorded ratio — informational)"
        )

    # Adaptive speedup gate: on the phase-shift workload the controller
    # must beat the best static placement by >= 1.1x in *virtual*
    # (simulated) seconds — deterministic, so every pair must also agree
    # on the ratio exactly.
    best = adaptive_best_static()
    ratios, _, _ = _paired_ratios(
        lambda: adaptive_static_probe(best),
        adaptive_adaptive_probe,
        3, inner=1,
    )
    adapt_speedup = statistics.median(ratios) if ratios else 0.0
    nondet = len(set(round(r, 12) for r in ratios)) > 1
    adapt_regressed = adapt_speedup < 1.1 or nondet
    verdict = "REGRESSION" if adapt_regressed else "ok"
    print(
        f"bench_repro --check: adaptive_remap phase-shift speedup "
        f"{adapt_speedup:.2f}x vs best static ({best}) in virtual time "
        f"(required >= 1.10x, deterministic"
        + (", NONDETERMINISTIC" if nondet else "")
        + f") [{verdict}]"
    )
    if adapt_regressed:
        return 1

    # Adaptive overhead gate: on the phase-stable control program the
    # controller does nothing (zero remaps, bit-identical virtual time),
    # so what it adds over the uncontrolled *windowed* baseline — the
    # telemetry tap, the window fold and the drift score — must stay
    # within 5%. Gate on the ratio of best-observed runs, not the
    # median: scheduler noise is strictly additive and this probe's
    # true delta (~3%) sits below the per-run noise floor of a busy
    # container, where a median over 5 pairs still flakes. The medians
    # are printed for the record; a median below 1.0 marks the
    # measurement unstable.
    ratios, rate_ctl, rate_base = _paired_ratios(
        lambda: adaptive_overhead_probe(True),
        lambda: adaptive_overhead_probe(False),
        max(pairs, 5),
    )
    adapt_overhead = rate_base / rate_ctl - 1.0 if rate_ctl > 0 else 0.0
    med = statistics.median(ratios) - 1.0 if ratios else 0.0
    overhead_regressed = adapt_overhead > 0.05
    unstable = med < 0.0
    verdict = "REGRESSION" if overhead_regressed else (
        "ok, UNSTABLE measurement" if unstable else "ok"
    )
    print(
        f"bench_repro --check: adaptive_remap phase-stable controller "
        f"overhead {adapt_overhead:+.1%} wall-clock best-of "
        f"(median {med:+.1%}, allowed <= 5%) [{verdict}]"
    )
    if overhead_regressed:
        return 1
    return 0


def run_full() -> int:
    previous = None
    if OUT_PATH.exists():
        try:
            with open(OUT_PATH) as fh:
                previous = json.load(fh)
            previous.pop("previous", None)  # keep exactly one generation back
        except (OSError, ValueError):
            previous = None

    import statistics

    print("running pytest-benchmark suite ...", flush=True)
    benches = pytest_benchmarks()
    print("running engine ring probe ...", flush=True)
    # Warmup + best-of-5: the headline regression-gate number;
    # single-core CI boxes jitter 10-20% and only the fastest run
    # reflects the code.
    events, dt = _best_of(engine_ring_events, 5)
    print("running batched-vs-object core probe ...", flush=True)
    ev_b, dt_b = _best_of(lambda: engine_ring_events("batched"), 5)
    ev_o, dt_o = _best_of(lambda: engine_ring_events("object"), 5)
    print("running SoA wide-lockstep probe ...", flush=True)
    ev_s, dt_s = _best_of(lambda: engine_wide_events("soa"), 5)
    ev_wb, dt_wb = _best_of(lambda: engine_wide_events("batched"), 5)
    ev_sr, dt_sr = _best_of(lambda: engine_ring_events("soa"), 5)
    print("running serial-chain chase probe ...", flush=True)
    ev_c, dt_c = _best_of(lambda: engine_chain_events("soa"), 5)
    chase_pairs, rate_nochase, rate_chase = _paired_ratios(
        lambda: engine_chain_events("soa", chase=False),
        lambda: engine_chain_events("soa", chase=True),
        5,
    )
    chain_batched_pairs, _, rate_chain_b = _paired_rate_ratios(
        lambda: engine_chain_events("soa"),
        lambda: engine_chain_events("batched"),
        5,
    )
    chase_stats = chain_chase_stats()
    print("running SoA jit kernel probe ...", flush=True)
    soa_jit = engine_soa_jit_probe()
    if "skipped" in soa_jit:
        print(f"  engine_soa_jit: skipped ({soa_jit['skipped']})", flush=True)
    soa_pairs, _, _ = _paired_rate_ratios(
        lambda: engine_wide_events("soa"),
        lambda: engine_ring_events("batched"),
        5,
    )
    soa_vs_ring = (
        round(statistics.median(soa_pairs), 2) if soa_pairs else None
    )
    print("running ring-traced observability probe ...", flush=True)
    traced_pairs, _, _ = _paired_ratios(
        lambda: engine_ring_events("batched", traced=True),
        lambda: engine_ring_events("batched"),
        7,
    )
    traced_overhead = (
        round(statistics.median(traced_pairs), 3) if traced_pairs else None
    )
    ev_t, dt_t = _best_of(
        lambda: engine_ring_events("batched", traced=True), 5
    )
    print("running shard scaling probe ...", flush=True)
    shard_scaling = shard_scaling_probe()
    print("running quick-scale Fig. 4 probe ...", flush=True)
    probe = fig4_probe()
    print("running mapping benchmarks ...", flush=True)
    mapping = mapping_benchmarks()
    print("running mapping probe/canary pairs ...", flush=True)
    map_ratios, _, _ = _paired_ratios(mapping_probe, numpy_canary, 5)
    map_ratio = (
        round(statistics.median(map_ratios), 3) if map_ratios else None
    )
    print("running adaptive remap experiment ...", flush=True)
    from repro.experiments.adaptive import AdaptSetup, run_experiment

    adapt_report = run_experiment(AdaptSetup(iters_per_phase=16))
    adapt_oh_pairs, oh_rate_ctl, oh_rate_base = _paired_ratios(
        lambda: adaptive_overhead_probe(True),
        lambda: adaptive_overhead_probe(False),
        5,
    )
    # Best-of ratio (same estimator the --check gate uses) plus the
    # median for the record.
    adapt_overhead = (
        round(oh_rate_base / oh_rate_ctl - 1.0, 3) if oh_rate_ctl > 0 else None
    )
    adapt_overhead_median = (
        round(statistics.median(adapt_oh_pairs) - 1.0, 3)
        if adapt_oh_pairs else None
    )

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "engine_ring": {
            "events": events,
            "seconds": dt,
            "events_per_second": events / dt if dt > 0 else None,
        },
        "engine_batched": {
            "batched_events_per_second": ev_b / dt_b if dt_b > 0 else None,
            "object_events_per_second": ev_o / dt_o if dt_o > 0 else None,
            "batched_vs_object_speedup": (
                round(dt_o / dt_b, 2) if dt_b > 0 else None
            ),
            "events": ev_b,
        },
        "engine_soa": {
            "wide_events": ev_s,
            "wide_seconds": dt_s,
            "wide_events_per_second": ev_s / dt_s if dt_s > 0 else None,
            "wide_batched_events_per_second": (
                ev_wb / dt_wb if dt_wb > 0 else None
            ),
            "soa_vs_batched_wide_speedup": (
                round((ev_s / dt_s) / (ev_wb / dt_wb), 2)
                if dt_s > 0 and dt_wb > 0 else None
            ),
            # The tentpole gate number: median per-pair rate ratio of the
            # wide SoA workload against the classic batched ring
            # (acceptance bound >= 3.0; --check re-measures it).
            "soa_wide_vs_batched_ring_ratio": soa_vs_ring,
            # Honest worst case: the serial ring on the SoA core, where
            # nothing vectorizes and the probe overhead is all cost.
            "ring_events_per_second": ev_sr / dt_sr if dt_sr > 0 else None,
            "ring_vs_batched_ring_speedup": (
                round(dt_b / dt_sr, 2) if dt_sr > 0 else None
            ),
        },
        "engine_serial_chain": {
            # The genuinely serial token chain (one runnable thread at
            # any instant) on the SoA core with the chain chase on:
            # the workload the chase run-ahead targets.
            "events": ev_c,
            "seconds": dt_c,
            "events_per_second": ev_c / dt_c if dt_c > 0 else None,
            "nochase_events_per_second": rate_nochase,
            # Median paired time ratio chase-off / chase-on: the
            # feature's own drift-cancelled speedup on this container.
            "chase_speedup_vs_nochase": (
                round(statistics.median(chase_pairs), 2)
                if chase_pairs else None
            ),
            "batched_events_per_second": rate_chain_b,
            # Median paired rate ratio SoA(+chase) / batched on the same
            # chain — the scalar-path parity number (was 0.86x on the
            # classic ring before the chase landed).
            "soa_vs_batched_chain_ratio": (
                round(statistics.median(chain_batched_pairs), 2)
                if chain_batched_pairs else None
            ),
            # How many of a short reference run's events each run-ahead
            # path absorbed (chase: pure-python; jit: compiled kernel).
            "chase_stats": chase_stats,
        },
        "engine_soa_jit": soa_jit,
        "engine_ring_traced": {
            "events": ev_t,
            "seconds": dt_t,
            "events_per_second": ev_t / dt_t if dt_t > 0 else None,
            # Median paired (interleaved same-process) time ratio; the
            # old best-vs-best comparison once recorded taps as 25%
            # *faster*, which is noise. A ratio below 1.0 is flagged
            # unstable rather than reported as a win.
            "overhead_vs_batched": traced_overhead,
            "unstable": (
                traced_overhead is not None and traced_overhead < 1.0
            ),
        },
        "shard_scaling": shard_scaling,
        "pytest_benchmarks": benches,
        "fig4_quick_probe": probe,
        "mapping_bench": mapping,
        "mapping_check": {"probe_vs_canary_ratio": map_ratio},
        "adaptive_remap": {
            # Virtual-time (deterministic) phase-shift comparison; the
            # --check gate requires speedup >= 1.1x over the best static.
            "statics_seconds": adapt_report["statics"],
            "adaptive_seconds": adapt_report["adaptive_seconds"],
            "best_static": adapt_report["best_static"],
            "speedup_vs_best_static": round(adapt_report["speedup"], 3),
            "remaps": adapt_report["remaps"],
            "windows": adapt_report["windows"],
            # Wall-clock controller cost over the uncontrolled windowed
            # baseline on the phase-stable control program (zero remaps;
            # gate <= 5% on the best-of ratio). A negative median =
            # unstable measurement, not a win.
            "stable_overhead_wall": adapt_overhead,
            "stable_overhead_wall_median": adapt_overhead_median,
            "stable_overhead_unstable": (
                adapt_overhead_median is not None
                and adapt_overhead_median < 0.0
            ),
        },
    }
    speedups = mapping_speedups(mapping, previous)
    if speedups:
        record["mapping_speedup_vs_previous"] = speedups
    if previous is not None:
        record["previous"] = previous

    with open(OUT_PATH, "w") as fh:
        json.dump(record, fh, indent=1)
        fh.write("\n")
    print(f"wrote {OUT_PATH}")
    print(json.dumps({k: v for k, v in record.items() if k != "previous"},
                     indent=1))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="fast engine-throughput floor + regression check "
             "(no pytest, no JSON write)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.3, metavar="FRAC",
        help="allowed tapped-vs-untapped overhead before --check fails "
             "(default 0.3; honest interleaved overhead is ~15-20%%)",
    )
    parser.add_argument(
        "--pairs", type=int, default=5, metavar="N",
        help="interleaved measurement pairs per --check gate "
             "(default 5, minimum 5; --quick forces 3)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="with --check: 3 pairs and no mapping gate — a <10s smoke "
             "for lint preflight",
    )
    args = parser.parse_args(argv)
    if args.check:
        return run_check(args.tolerance, pairs=args.pairs, quick=args.quick)
    if args.quick:
        parser.error("--quick only applies to --check")
    return run_full()


if __name__ == "__main__":
    raise SystemExit(main())
