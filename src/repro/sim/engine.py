"""The discrete-event core: a time-ordered callback queue.

Deliberately minimal — all machine semantics (PUs, scheduling, caches)
live above it in :mod:`repro.sim.machine`. Events at equal times fire in
scheduling order (a monotonically increasing sequence number breaks ties),
which keeps every simulation deterministic.

This is the innermost loop of every experiment cell: a paper-scale
regeneration drains hundreds of millions of events through :meth:`run`,
so the class is slotted, and the drain loop binds its hot names locally
and skips the watcher dispatch entirely while no watcher is registered
(the common case — watchers exist only for :mod:`repro.analyze.dynamic`).
"""

from __future__ import annotations

import heapq
from collections.abc import Callable

from repro.errors import SimulationError

__all__ = ["Engine"]


class Engine:
    """A deterministic event queue over a virtual clock (in cycles)."""

    __slots__ = ("now", "_heap", "_seq", "_events_processed", "watchers")

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._events_processed = 0
        #: Observers called as ``watcher(now)`` after every processed
        #: event — the dynamic-analysis tap (see repro.analyze.dynamic).
        #: Keep them cheap: they run inside the hot loop. Register them
        #: before :meth:`run`; the drain loop snapshots the list object.
        self.watchers: list[Callable[[float], None]] = []

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run *fn* at ``now + delay`` (delay may be 0, never negative)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))

    def schedule_at(self, when: float, fn: Callable[[], None]) -> None:
        """Run *fn* at absolute time *when* (>= now)."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule in the past (when={when}, now={self.now})"
            )
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, fn))

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        if not self._heap:
            return False
        when, _, fn = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError("event queue went backwards in time")
        self.now = when
        self._events_processed += 1
        fn()
        if self.watchers:
            for watcher in self.watchers:
                watcher(self.now)
        return True

    def run(self, *, max_cycles: float | None = None, max_events: int | None = None) -> None:
        """Drain the queue, optionally stopping at a time/event budget."""
        heap = self._heap
        pop = heapq.heappop
        watchers = self.watchers
        budget = None
        if max_events is not None:
            budget = self._events_processed + max_events
        while heap:
            if max_cycles is not None and heap[0][0] > max_cycles:
                break
            if budget is not None and self._events_processed >= budget:
                raise SimulationError(
                    f"event budget {max_events} exhausted at t={self.now:.3g} "
                    "— runaway simulation?"
                )
            when, _, fn = pop(heap)
            if when < self.now:
                raise SimulationError("event queue went backwards in time")
            self.now = when
            self._events_processed += 1
            fn()
            if watchers:
                now = self.now
                for watcher in watchers:
                    watcher(now)
