"""The discrete-event core: a time-ordered callback queue.

Deliberately minimal — all machine semantics (PUs, scheduling, caches)
live above it in :mod:`repro.sim.machine`. Events at equal times fire in
scheduling order (a monotonically increasing sequence number breaks ties),
which keeps every simulation deterministic.

Two queue representations share this module:

:class:`Engine`
    the *object* queue — a heap of ``(when, seq, callback)`` closures.
    This is the compatibility path, and the one external code talks to
    (``machine.engine.schedule`` keeps working on both paths). Its
    per-event :attr:`Engine.watchers` callback is the only tap that
    still requires it — monitors, traces and the
    :mod:`repro.sim.observe` layer run natively on either path.

:class:`BatchedQueue`
    the queue of the machine's *batched core*: a calendar queue that
    groups events by timestamp into structure-of-arrays buckets
    (parallel ``seqs``/``kinds``/``payloads`` lists) ordered by a small
    min-heap of *unique* timestamps. No closure is allocated per event,
    popping is a list index instead of a heap sift, and a whole
    same-instant bucket is exactly the batch the quantum-batched
    dispatcher in :mod:`repro.sim.machine` vectorizes over. The machine
    selects it automatically whenever no ``Engine.watchers`` tap is
    installed; fixed-seed runs produce bit-identical counters and clocks
    on either path (see ``tests/test_sim_batched_equivalence.py``).

This is the innermost loop of every experiment cell: a paper-scale
regeneration drains hundreds of millions of events through the drain
loops, so both classes are slotted and the hot loops bind their names
locally; :meth:`Engine.run` additionally skips the watcher dispatch
entirely while no watcher is registered.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable

from repro.errors import SimulationError

__all__ = [
    "Engine",
    "BatchedQueue",
    "EV_CALL",
    "EV_STEP",
    "EV_BUSY",
    "EV_DRAIN",
    "EV_VBUSY",
]

#: Event kinds of the batched core. The payload is interpreted per kind:
#: a zero-arg callable (CALL — external ``Engine.schedule`` traffic merged
#: into the batched run), a SimThread (STEP: resume the generator; BUSY:
#: its in-flight busy chunk ended), or a SimEvent (DRAIN: release waiters).
EV_CALL = 0
EV_STEP = 1
EV_BUSY = 2
EV_DRAIN = 3
#: SoA-core vector busy completion: the payload is an int64 numpy array of
#: thread ids whose busy chunks all end at this instant, emitted as ONE
#: bucket triple by the vectorized drain. The k member events own the
#: consecutive sequence numbers ``seq .. seq+k-1`` where ``seq`` is the
#: triple's stored seq — exactly what a scalar emit loop in the same
#: thread order would have allocated, so expanding a vector event back
#: into scalar triples (or converting it to object-path events at exit)
#: reproduces the batched core's (when, seq) order bit for bit.
EV_VBUSY = 4


class _ReStep:
    """Object-path re-entry shim for a batched/SoA ``EV_STEP`` event.

    When a windowed run (``SimMachine.run_window``) exits, leftover bucket
    events are converted to ``(when, seq, callable)`` heap entries so the
    object engine — and the next window, whatever core it drains on — can
    resume them. Plain lambdas would be opaque; these typed shims let the
    batched/SoA merge loops recognize a re-entering event and reconstruct
    its kind-coded triple instead of demoting it to ``EV_CALL`` forever.
    """

    __slots__ = ("m", "t")

    def __init__(self, m, t) -> None:
        self.m = m
        self.t = t

    def __call__(self) -> None:
        self.m._step(self.t)


class _ReBusy:
    """Re-entry shim for ``EV_BUSY`` / one lane of ``EV_VBUSY``."""

    __slots__ = ("m", "t")

    def __init__(self, m, t) -> None:
        self.m = m
        self.t = t

    def __call__(self) -> None:
        self.m._busy_done(self.t, self.t.cur_chunk)


class _ReDrain:
    """Re-entry shim for ``EV_DRAIN``."""

    __slots__ = ("m", "e")

    def __init__(self, m, e) -> None:
        self.m = m
        self.e = e

    def __call__(self) -> None:
        self.m._drain_event(self.e)


class BatchedQueue:
    """Calendar-bucket event queue for the batched simulator core.

    Events are grouped by exact timestamp: ``buckets[when]`` is one flat
    list interleaving ``seq, kind, payload`` triples (stride 3) — most
    buckets hold a single event, and one 3-element list is a lot cheaper
    to allocate than three 1-element lists — and :attr:`when_heap` is a
    min-heap of the *unique* timestamps (plain floats, so sifts compare
    natively). Sequence numbers are allocated monotonically
    (``Engine._seq``), therefore append order within a bucket *is* seq
    order and popping degenerates to indexing a list: no per-event tuple
    allocation, no per-event heap sift. Events scheduled at the
    timestamp currently draining land at the tail of the live bucket
    with higher seqs, so exact ``(when, seq)`` order is preserved for
    free.

    The hot loop in :mod:`repro.sim.machine` deliberately reaches into
    :attr:`buckets`/:attr:`when_heap` directly (bound to locals); the
    methods here are the convenience surface for setup and tests.
    """

    __slots__ = ("buckets", "when_heap")

    def __init__(self) -> None:
        #: when -> flat [seq, kind, payload, ...] triples in seq order.
        self.buckets: dict[float, list] = {}
        self.when_heap: list[float] = []

    def __len__(self) -> int:
        return sum(len(b) for b in self.buckets.values()) // 3

    def push(self, when: float, seq: int, kind: int, payload) -> None:
        b = self.buckets.get(when)
        if b is None:
            self.buckets[when] = [seq, kind, payload]
            heapq.heappush(self.when_heap, when)
        else:
            b.append(seq)
            b.append(kind)
            b.append(payload)

    def peek_when(self) -> float | None:
        return self.when_heap[0] if self.when_heap else None

    def pop_single(self) -> tuple[float, int, int, object] | None:
        """Pop the earliest event *iff* it is alone in its bucket.

        The single-ready fast pop: a serial dependency chain leaves
        exactly one event per timestamp, and this is the O(1) shape
        test for it — no slicing, no list-of-lists split. Returns
        ``(when, seq, kind, payload)``, or None when the queue is empty
        *or* the earliest bucket holds more than one event (the bucket
        is left untouched; use :meth:`pop_batch`). The SoA core's
        chain chase inlines this probe against the bound-local dict and
        heap; this method is the convenience surface for drivers and
        tests.
        """
        heap = self.when_heap
        if not heap:
            return None
        when = heap[0]
        b = self.buckets[when]
        if len(b) != 3:
            return None
        heapq.heappop(heap)
        del self.buckets[when]
        return when, b[0], b[1], b[2]

    def pop_batch(self) -> tuple[float, list[int], list[int], list] | None:
        """Remove and return the earliest bucket ``(when, seqs, kinds,
        payloads)``, or None when empty. Batch semantics are exact: every
        event the simulation will ever see at this timestamp that was
        scheduled *before* this call is in the bucket, in seq order."""
        if not self.when_heap:
            return None
        when = heapq.heappop(self.when_heap)
        b = self.buckets.pop(when)
        return when, b[0::3], b[1::3], b[2::3]


class Engine:
    """A deterministic event queue over a virtual clock (in cycles)."""

    __slots__ = ("now", "_heap", "_seq", "_events_processed", "watchers")

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._events_processed = 0
        #: Observers called as ``watcher(now)`` after every processed
        #: event. Keep them cheap: they run inside the hot loop. This is
        #: the one tap the batched core cannot serve (it forces the
        #: object path — see SimMachine._unsupported_taps); prefer the
        #: repro.sim.observe layer, which works on both cores. Register
        #: before :meth:`run`; the drain loop snapshots the list object.
        self.watchers: list[Callable[[float], None]] = []

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run *fn* at ``now + delay`` (delay may be 0, never negative)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))

    def schedule_at(self, when: float, fn: Callable[[], None]) -> None:
        """Run *fn* at absolute time *when* (>= now)."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule in the past (when={when}, now={self.now})"
            )
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, fn))

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        if not self._heap:
            return False
        when, _, fn = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError("event queue went backwards in time")
        self.now = when
        self._events_processed += 1
        fn()
        if self.watchers:
            for watcher in self.watchers:
                watcher(self.now)
        return True

    def run(self, *, max_cycles: float | None = None, max_events: int | None = None) -> None:
        """Drain the queue, optionally stopping at a time/event budget."""
        heap = self._heap
        pop = heapq.heappop
        watchers = self.watchers
        budget = None
        if max_events is not None:
            budget = self._events_processed + max_events
        while heap:
            if max_cycles is not None and heap[0][0] > max_cycles:
                break
            if budget is not None and self._events_processed >= budget:
                raise SimulationError(
                    f"event budget {max_events} exhausted at t={self.now:.3g} "
                    "— runaway simulation?"
                )
            when, _, fn = pop(heap)
            if when < self.now:
                raise SimulationError("event queue went backwards in time")
            self.now = when
            self._events_processed += 1
            fn()
            if watchers:
                now = self.now
                for watcher in watchers:
                    watcher(now)
