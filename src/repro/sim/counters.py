"""Hardware/software counters (the simulator's `perf stat`).

Mirrors the four quantities of Tables II–IV of the paper plus bookkeeping
used by the experiment harness. Counters exist globally and per thread;
:meth:`Counters.add` merges.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Counters"]


@dataclass(slots=True)
class Counters:
    """Accumulated event counts for a run (or a single thread).

    Slotted: counter bumps sit inside the simulator's touch/compute hot
    path, and every simulated thread carries one of these.
    """

    l3_misses: float = 0.0
    l3_hits: float = 0.0
    stalled_cycles: float = 0.0
    context_switches: int = 0
    cpu_migrations: int = 0
    busy_cycles: float = 0.0
    compute_cycles: float = 0.0
    memory_cycles: float = 0.0
    flops: float = 0.0
    bytes_touched: float = 0.0
    remote_bytes: float = 0.0

    def add(self, other: Counters) -> None:
        """Merge *other* into self."""
        self.l3_misses += other.l3_misses
        self.l3_hits += other.l3_hits
        self.stalled_cycles += other.stalled_cycles
        self.context_switches += other.context_switches
        self.cpu_migrations += other.cpu_migrations
        self.busy_cycles += other.busy_cycles
        self.compute_cycles += other.compute_cycles
        self.memory_cycles += other.memory_cycles
        self.flops += other.flops
        self.bytes_touched += other.bytes_touched
        self.remote_bytes += other.remote_bytes

    def snapshot(self) -> dict[str, float]:
        """Plain-dict view (for reports and JSON dumps)."""
        return {
            "l3_misses": self.l3_misses,
            "l3_hits": self.l3_hits,
            "stalled_cycles": self.stalled_cycles,
            "context_switches": float(self.context_switches),
            "cpu_migrations": float(self.cpu_migrations),
            "busy_cycles": self.busy_cycles,
            "compute_cycles": self.compute_cycles,
            "memory_cycles": self.memory_cycles,
            "flops": self.flops,
            "bytes_touched": self.bytes_touched,
            "remote_bytes": self.remote_bytes,
        }

    @property
    def miss_ratio(self) -> float:
        total = self.l3_misses + self.l3_hits
        return self.l3_misses / total if total else 0.0

    @property
    def local_bytes(self) -> float:
        """Bytes served without crossing a NUMA link (the complement of
        :attr:`remote_bytes` — together they are the miss-mix the
        observability layer exports)."""
        local = self.bytes_touched - self.remote_bytes
        return local if local > 0.0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Counters misses={self.l3_misses:.3g} stalls={self.stalled_cycles:.3g} "
            f"ctxsw={self.context_switches} migr={self.cpu_migrations}>"
        )
