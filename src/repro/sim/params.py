"""Cost-model constants for the machine simulator.

All latencies are in CPU cycles; sizes in bytes. Defaults are calibrated so
that the three applications land in the neighbourhood of the paper's
figures (see EXPERIMENTS.md for the calibration notes); the *relative*
behaviour — who wins, where curves flatten — is robust to these values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

__all__ = ["CostModel", "SimLimits"]


@dataclass(frozen=True)
class SimLimits:
    """Runaway guards and batching knobs of the simulation run loop.

    Previously module constants in :mod:`repro.sim.machine`
    (``MAX_OPS_PER_STEP`` / ``DEFAULT_MAX_EVENTS``); promoted here so
    stress tests pass a custom :class:`SimLimits` to
    :class:`~repro.sim.machine.SimMachine` instead of monkeypatching
    module globals.

    ``max_ops_per_step``: max zero-cost ops a thread may issue without
    consuming virtual time before the machine declares a livelock.
    ``max_events``: default event budget for ``SimMachine.run``.
    ``batch_min``: minimum number of same-instant busy-completion events
    before the batched core switches from scalar to vectorized (numpy)
    quantum advancement — below this the gather/scatter overhead beats
    the win.
    ``vec_min``: minimum run length of same-instant busy completions
    before the SoA core prices the run in one numpy segment instead of
    scalar triples. Lower than ``batch_min`` because the SoA core keeps
    its state in arrays already — the segment pays only the mask/gather,
    not a per-thread attribute walk. Consulted both at drain entry and
    when a vector event *narrows* mid-drain: a still-eligible prefix
    below ``vec_min`` re-materializes as scalar triples instead of
    paying the numpy setup per sub-batch.
    ``chase``: enable the SoA core's chain-chasing run-ahead — when a
    completion is provably the unique next event (empty calendar and
    object heap past the live bucket), the scalar path follows the
    dependency chain directly instead of round-tripping each hop
    through the calendar queue. Bit-identical either way; the knob
    exists for A/B tests and as an escape hatch.
    ``jit``: compiled run-ahead kernel selection for the SoA core.
    ``"auto"`` (default) uses the numba kernel when the ``repro[jit]``
    extra is installed and silently stays pure-python otherwise;
    ``"on"`` forces the kernel (the pure-python fallback of
    :mod:`repro.sim.jit` when numba is absent — slow, but it exercises
    the exact kernel logic, which is how the equivalence tests referee
    it without numba); ``"off"`` never calls it.
    :attr:`SimMachine.core_used` records ``"soa+jit"`` when the kernel
    was active.
    """

    max_ops_per_step: int = 100_000
    max_events: int = 20_000_000
    batch_min: int = 16
    vec_min: int = 8
    chase: bool = True
    jit: str = "auto"

    def __post_init__(self) -> None:
        if self.max_ops_per_step < 1:
            raise SimulationError("max_ops_per_step must be >= 1")
        if self.max_events < 1:
            raise SimulationError("max_events must be >= 1")
        if self.batch_min < 2:
            raise SimulationError("batch_min must be >= 2")
        if self.vec_min < 2:
            raise SimulationError("vec_min must be >= 2")
        if self.jit not in ("auto", "on", "off"):
            raise SimulationError(
                f"jit must be 'auto', 'on' or 'off', got {self.jit!r}"
            )


@dataclass(frozen=True)
class CostModel:
    """Tunable constants of the simulated hardware and OS.

    Compute
    -------
    ``cycles_per_flop``: inverse throughput of one core running one thread
    (0.5 ⇒ 2 flop/cycle, a conservative scalar+SSE mix; DGEMM-like kernels
    override this via their own op efficiency).
    ``ht_contention``: multiplier applied to compute when the hyperthread
    sibling of the core is simultaneously running another compute thread.
    ``control_cycles``: CPU consumed by one control-thread activation.

    Memory
    ------
    ``l3_hit_cycles``: average cycles per cache line served from L3 (covers
    the L1/L2/L3 mix for block-sized streaming accesses).
    ``mem_cycles_local``: cycles per line missed to local DRAM.
    Remote misses scale that by SLIT distance / 10 and add an interconnect
    bandwidth term. ``mem_parallelism``: outstanding-miss factor dividing
    raw per-line latency (memory-level parallelism of streaming code).
    ``stall_fraction``: fraction of a miss's latency counted as front-end
    stall cycles (Tables II–IV).

    Operating system
    ----------------
    ``timeslice_cycles``: scheduling quantum; long compute ops are chopped
    at this boundary so contention/migration is re-evaluated.
    ``rebalance_slices``: an *unbound* thread is re-placed by the OS
    policy every this-many quanta (the source of CPU migrations).
    ``context_switch_cycles``: direct cost of a context switch (~100 ns).
    ``migration_cycles``: direct cost of a cross-core migration.
    """

    cycles_per_flop: float = 0.5
    ht_contention: float = 1.8
    control_cycles: float = 3_000.0

    cache_line: int = 64
    l3_hit_cycles: float = 2.5
    mem_cycles_local: float = 60.0
    mem_parallelism: float = 8.0
    interconnect_cycles_per_byte: float = 1.0
    stall_fraction: float = 0.75
    write_invalidate: bool = True
    #: Hard bandwidth cap of one NUMA node's memory controller, in cycles
    #: per byte served: 0.12 cy/B ≈ 22 GB/s at 2.6 GHz. Miss traffic to a
    #: node is serviced FIFO at this rate no matter how many threads pull
    #: from it — the saturation that makes master-allocated data a hotspot
    #: and gives Fig. 4 its single-node plateau.
    node_bandwidth_cyc_per_byte: float = 0.12

    timeslice_cycles: float = 20_000_000.0  # ~8 ms at 2.6 GHz
    rebalance_slices: int = 8
    migrate_prob: float = 0.3  # chance a rebalance actually moves the thread
    #: Chance the OS re-places an unbound thread on wakeup instead of
    #: keeping it on its previous PU (CFS select-idle wake balancing).
    #: This is what makes lock-heavy unbound workloads (ORWL native)
    #: wander away from their first-touched data.
    wakeup_migrate_prob: float = 0.12
    context_switch_cycles: float = 260.0
    migration_cycles: float = 5_000.0
    os_jitter: float = 0.02  # relative duration noise on unbound threads

    def __post_init__(self) -> None:
        positive = (
            "cycles_per_flop",
            "ht_contention",
            "cache_line",
            "l3_hit_cycles",
            "mem_cycles_local",
            "mem_parallelism",
            "timeslice_cycles",
        )
        for name in positive:
            if getattr(self, name) <= 0:
                raise SimulationError(f"{name} must be > 0")
        if not 0.0 <= self.stall_fraction <= 1.0:
            raise SimulationError("stall_fraction must be within [0, 1]")
        if self.rebalance_slices < 1:
            raise SimulationError("rebalance_slices must be >= 1")
        if not 0.0 <= self.migrate_prob <= 1.0:
            raise SimulationError("migrate_prob must be within [0, 1]")
        if not 0.0 <= self.wakeup_migrate_prob <= 1.0:
            raise SimulationError("wakeup_migrate_prob must be within [0, 1]")
        if self.ht_contention < 1.0:
            raise SimulationError("ht_contention must be >= 1 (slowdown)")
