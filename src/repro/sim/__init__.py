"""Discrete-event multicore/NUMA machine simulator.

This is the substitute for the paper's physical testbeds (see DESIGN.md):
a virtual machine built from a :class:`~repro.topology.tree.Topology`, with

* per-PU execution of *simulated threads* (Python generators yielding ops),
* an L3-centric cache model with coherence invalidations,
* a first-touch NUMA memory model priced by the SLIT distance matrix,
* hyperthread contention on shared physical cores,
* two OS scheduler policies ("consolidate" ≈ Linux 3.10, "spread" ≈
  Linux 2.6.32) for unbound threads, with timeslice rebalancing,
* the four hardware/software counters reported by the paper's Tables
  II–IV: L3 misses, stalled cycles, context switches, CPU migrations,
* native observability on both run-loop cores: a metrics registry and a
  sampled ring trace (see :mod:`repro.sim.observe`).

Virtual time is counted in cycles and reported in seconds through the
machine's clock rate.
"""

from repro.sim.counters import Counters
from repro.sim.engine import Engine
from repro.sim.machine import SimMachine
from repro.sim.observe import MetricsRegistry, RingTrace, SimObserver
from repro.sim.params import CostModel
from repro.sim.process import (
    Compute,
    SimEvent,
    Spawn,
    Touch,
    Wait,
    YieldCPU,
)
from repro.sim.shard import (
    Channel,
    Scenario,
    ShardRunResult,
    ShardSpec,
    halo_ring_scenario,
    register_program,
    run_sharded,
)

__all__ = [
    "CostModel",
    "Counters",
    "Engine",
    "SimMachine",
    "Compute",
    "Touch",
    "Wait",
    "Spawn",
    "YieldCPU",
    "SimEvent",
    "MetricsRegistry",
    "RingTrace",
    "SimObserver",
    "Channel",
    "Scenario",
    "ShardSpec",
    "ShardRunResult",
    "register_program",
    "run_sharded",
    "halo_ring_scenario",
]
