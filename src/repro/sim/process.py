"""Simulated-thread protocol: the ops a thread generator may yield.

A simulated thread is a Python generator. Each ``yield`` hands the machine
an *operation*; the machine prices it against the cost model, advances
virtual time, and resumes the generator (with a value for ops that return
one). This cooperative protocol is how application code "runs" on the
simulated machine without real OS threads — the GIL substitution described
in DESIGN.md.

Ops
---
``Compute(flops)``           burn CPU.
``Touch(buffer, nbytes, write=)``  access memory through the cache model.
``Wait(event)``              block until the event is signalled.
``Spawn(thread)``            start another simulated thread.
``YieldCPU()``               give the PU up voluntarily (re-queue).

Synchronisation uses :class:`SimEvent` — a counting event: ``signal()``
increments, a waiting thread consumes one count per wait.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import SimulationError
from repro.sim.counters import Counters
from repro.util.bitmap import Bitmap

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.memory import Buffer

__all__ = [
    "Compute",
    "Touch",
    "Wait",
    "Spawn",
    "YieldCPU",
    "SimEvent",
    "SimThread",
    "ThreadGen",
]

ThreadGen = Generator["Op", Any, None]

# Ops are slotted, identity-compared plain classes rather than
# dataclasses: applications construct one per simulated operation —
# hundreds of millions per paper-scale sweep — and the handwritten
# __init__ skips the generated-init + __post_init__ double call (a
# frozen dataclass would further pay two object.__setattr__ calls per
# field). Treat them as immutable all the same; the machine only reads
# them. Validation stays in __init__ so a bad op raises at construction
# time, where the application's traceback points at the culprit.


class Compute:
    """Burn ``flops`` floating-point operations on the current PU.

    ``efficiency`` scales throughput relative to the machine's base
    ``cycles_per_flop`` (e.g. a DGEMM inner kernel runs at >1).
    """

    __slots__ = ("flops", "efficiency")

    def __init__(self, flops: float, efficiency: float = 1.0) -> None:
        if flops < 0 or efficiency <= 0:
            raise SimulationError("flops must be >= 0 and efficiency > 0")
        self.flops = flops
        self.efficiency = efficiency

    def __repr__(self) -> str:
        return f"Compute(flops={self.flops!r}, efficiency={self.efficiency!r})"


class Touch:
    """Stream ``nbytes`` of ``buffer`` through the cache hierarchy."""

    __slots__ = ("buffer", "nbytes", "write")

    def __init__(
        self,
        buffer: "Buffer",
        nbytes: float | None = None,  # None = whole buffer
        write: bool = False,
    ) -> None:
        self.buffer = buffer
        self.nbytes = nbytes
        self.write = write

    def __repr__(self) -> str:
        return (
            f"Touch(buffer={self.buffer!r}, nbytes={self.nbytes!r}, "
            f"write={self.write!r})"
        )


class Wait:
    """Block until ``event`` has a pending count."""

    __slots__ = ("event",)

    def __init__(self, event: "SimEvent") -> None:
        self.event = event

    def __repr__(self) -> str:
        return f"Wait(event={self.event!r})"


class Spawn:
    """Start another (already-registered) simulated thread."""

    __slots__ = ("thread",)

    def __init__(self, thread: "SimThread") -> None:
        self.thread = thread

    def __repr__(self) -> str:
        return f"Spawn(thread={self.thread!r})"


class YieldCPU:
    """Voluntarily release the PU (cooperative yield)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "YieldCPU()"


Op = Compute | Touch | Wait | Spawn | YieldCPU


class SimEvent:
    """A counting event: each :meth:`signal` releases one waiter.

    Events created through :meth:`repro.sim.machine.SimMachine.event`
    carry a notify hook so that a ``signal()`` issued from inside a
    running thread wakes waiters via the engine (never reentrantly).
    """

    __slots__ = ("name", "count", "waiters", "_notify")

    def __init__(self, name: str = "", count: int = 0, notify=None) -> None:
        if count < 0:
            raise SimulationError("initial count must be >= 0")
        self.name = name
        self.count = count
        self.waiters: list[SimThread] = []
        self._notify = notify

    def signal(self, n: int = 1) -> None:
        if n <= 0:
            raise SimulationError("signal count must be positive")
        self.count += n
        if self._notify is not None and self.waiters:
            self._notify(self)

    def try_consume(self) -> bool:
        if self.count > 0:
            self.count -= 1
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover
        return f"<SimEvent {self.name!r} count={self.count} waiters={len(self.waiters)}>"


@dataclass(slots=True, eq=False)
class SimThread:
    """Machine-side record of one simulated thread."""

    tid: int
    name: str
    gen: ThreadGen
    kind: str = "compute"  # "compute" | "control"
    cpuset: Bitmap | None = None  # None = unbound (OS decides)
    state: str = "new"  # new | ready | running | blocked | done
    pu: int | None = None  # PU currently (or last) hosting the thread
    last_pu: int | None = None
    counters: Counters = field(default_factory=Counters)
    send_value: Any = None
    slices_run: int = 0
    slice_used: float = 0.0
    pending_busy: float = 0.0
    #: Length of the busy chunk currently in flight. The batched core's
    #: events carry no payload beyond the thread, so the chunk lives
    #: here; the object path passes it through the event closure.
    cur_chunk: float = 0.0
    needs_rebalance: bool = False
    waiting_on: SimEvent | None = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<SimThread {self.tid} {self.name!r} {self.state} pu={self.pu}>"
