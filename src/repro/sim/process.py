"""Simulated-thread protocol: the ops a thread generator may yield.

A simulated thread is a Python generator. Each ``yield`` hands the machine
an *operation*; the machine prices it against the cost model, advances
virtual time, and resumes the generator (with a value for ops that return
one). This cooperative protocol is how application code "runs" on the
simulated machine without real OS threads — the GIL substitution described
in DESIGN.md.

Ops
---
``Compute(flops)``           burn CPU.
``Touch(buffer, nbytes, write=)``  access memory through the cache model.
``Wait(event)``              block until the event is signalled.
``Spawn(thread)``            start another simulated thread.
``YieldCPU()``               give the PU up voluntarily (re-queue).

Synchronisation uses :class:`SimEvent` — a counting event: ``signal()``
increments, a waiting thread consumes one count per wait.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import SimulationError
from repro.sim.counters import Counters
from repro.util.bitmap import Bitmap

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.memory import Buffer

__all__ = [
    "Compute",
    "Touch",
    "Wait",
    "Spawn",
    "YieldCPU",
    "SimEvent",
    "SimThread",
    "ThreadGen",
]

ThreadGen = Generator["Op", Any, None]


@dataclass(frozen=True)
class Compute:
    """Burn ``flops`` floating-point operations on the current PU.

    ``efficiency`` scales throughput relative to the machine's base
    ``cycles_per_flop`` (e.g. a DGEMM inner kernel runs at >1).
    """

    flops: float
    efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.flops < 0 or self.efficiency <= 0:
            raise SimulationError("flops must be >= 0 and efficiency > 0")


@dataclass(frozen=True)
class Touch:
    """Stream ``nbytes`` of ``buffer`` through the cache hierarchy."""

    buffer: "Buffer"
    nbytes: float | None = None  # None = whole buffer
    write: bool = False


@dataclass(frozen=True)
class Wait:
    """Block until ``event`` has a pending count."""

    event: "SimEvent"


@dataclass(frozen=True)
class Spawn:
    """Start another (already-registered) simulated thread."""

    thread: "SimThread"


@dataclass(frozen=True)
class YieldCPU:
    """Voluntarily release the PU (cooperative yield)."""


Op = Compute | Touch | Wait | Spawn | YieldCPU


class SimEvent:
    """A counting event: each :meth:`signal` releases one waiter.

    Events created through :meth:`repro.sim.machine.SimMachine.event`
    carry a notify hook so that a ``signal()`` issued from inside a
    running thread wakes waiters via the engine (never reentrantly).
    """

    __slots__ = ("name", "count", "waiters", "_notify")

    def __init__(self, name: str = "", count: int = 0, notify=None) -> None:
        if count < 0:
            raise SimulationError("initial count must be >= 0")
        self.name = name
        self.count = count
        self.waiters: list[SimThread] = []
        self._notify = notify

    def signal(self, n: int = 1) -> None:
        if n <= 0:
            raise SimulationError("signal count must be positive")
        self.count += n
        if self._notify is not None and self.waiters:
            self._notify(self)

    def try_consume(self) -> bool:
        if self.count > 0:
            self.count -= 1
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover
        return f"<SimEvent {self.name!r} count={self.count} waiters={len(self.waiters)}>"


@dataclass(eq=False)
class SimThread:
    """Machine-side record of one simulated thread."""

    tid: int
    name: str
    gen: ThreadGen
    kind: str = "compute"  # "compute" | "control"
    cpuset: Bitmap | None = None  # None = unbound (OS decides)
    state: str = "new"  # new | ready | running | blocked | done
    pu: int | None = None  # PU currently (or last) hosting the thread
    last_pu: int | None = None
    counters: Counters = field(default_factory=Counters)
    send_value: Any = None
    slices_run: int = 0
    slice_used: float = 0.0
    pending_busy: float = 0.0
    needs_rebalance: bool = False
    waiting_on: SimEvent | None = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<SimThread {self.tid} {self.name!r} {self.state} pu={self.pu}>"
