"""Optional compiled run-ahead kernel for the SoA simulator core.

The SoA core's vectorized drain (:mod:`repro.sim.soa`) advances a
lockstep gang of busy completions one *round* per calendar bucket:
price the chunks in one numpy pass, emit one :data:`~repro.sim.engine.
EV_VBUSY` event at the common completion instant, pop it again next
iteration. When the gang is alone in the world — empty calendar past
the live bucket, empty object heap, empty ready queue, busy-ring tap
off — every one of those rounds is predetermined, and the interpreter
round-trip is pure overhead. :func:`chain_runahead` collapses the whole
stretch: it advances the gang round after round directly over the
preallocated columns until a lane becomes ineligible, the chunks
diverge, or a budget/horizon boundary is hit, and reports how far it
got so the interpreter can re-seat the pending completion and resume.

The kernel body is written once, in loop style, and wrapped with
``numba.njit`` when the ``repro[jit]`` extra is installed
(:data:`HAVE_NUMBA`). Without numba the *same function object* runs as
pure python — far slower per round, but bit-identical, which is how the
equivalence and difftest suites referee the kernel logic on containers
that cannot install the extra (``SimLimits(jit="on")`` forces it).
Import never fails: the gate degrades, it does not raise, and
``SimLimits(jit="auto")`` only selects the kernel when it is compiled.

Bit-identity contract (same as every other fast path in the package):
each round applies exactly the float expressions of
``soa.vec_advance`` — ``su2 = su if below else 0.0``,
``chunk = min(pend, timeslice - su2)``, per-lane adds in lane order —
and refuses any round the interpreter would not have handled as a
uniform vector advance. IEEE doubles make the loop-style arithmetic
elementwise identical to the numpy expressions, compiled or not.
"""

from __future__ import annotations

__all__ = ["HAVE_NUMBA", "chain_runahead"]

try:  # pragma: no cover - exercised only where the extra is installed
    from numba import njit

    HAVE_NUMBA = True
except ImportError:
    njit = None
    HAVE_NUMBA = False


def _chain_runahead(
    sl, pend, ch, busy, pub, sr, bnd, pu, tids,
    t, timeslice, ts_edge, horizon, max_rounds,
):
    """Advance a lockstep gang round after round over the SoA columns.

    Entered while the interpreter holds a pending gang completion at
    time *t* (the VBUSY event it just popped, not yet advanced). One
    round = process that completion (advance every lane one chunk) and
    schedule the next at ``t + chunk``. Rounds apply only while they
    are provably what the interpreter would do: every lane still
    eligible (pending work, and below the quantum edge or bound), all
    chunks equal, processing time within *horizon*, round count within
    *max_rounds* (the caller derives it from the event budget).

    Returns ``(rounds, pending, t_proc)``: rounds applied, the time of
    the now-pending (emitted, unprocessed) completion, and the time of
    the last processed round — the clock value the interpreter must
    adopt. With ``rounds == 0`` nothing was touched.
    """
    k = tids.shape[0]
    rounds = 0
    t_proc = t
    pending = t
    while rounds < max_rounds and pending <= horizon:
        c0 = 0.0
        ok = True
        for i in range(k):
            tid = tids[i]
            pb = pend[tid]
            if pb <= 0.0:
                ok = False
                break
            su = sl[tid] + ch[tid]
            below = su < ts_edge
            if not below and not bnd[tid]:
                ok = False
                break
            su2 = su if below else 0.0
            rem = timeslice - su2
            chunk = pb if pb <= rem else rem
            if i == 0:
                c0 = chunk
            elif chunk != c0:
                ok = False
                break
        if not ok:
            break
        for i in range(k):
            tid = tids[i]
            su = sl[tid] + ch[tid]
            if su < ts_edge:
                sl[tid] = su
            else:
                sl[tid] = 0.0
                sr[tid] += 1
            pend[tid] = pend[tid] - c0
            ch[tid] = c0
            busy[tid] += c0
            pub[pu[tid]] += c0
        t_proc = pending
        pending = pending + c0
        rounds += 1
    return rounds, pending, t_proc


if HAVE_NUMBA:  # pragma: no cover - exercised only with the extra
    chain_runahead = njit(cache=True)(_chain_runahead)
else:
    chain_runahead = _chain_runahead
