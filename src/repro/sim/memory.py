"""NUMA memory model: buffers, first-touch homing, distance-priced misses.

Every simulated allocation is a :class:`Buffer`. Its *home* NUMA node is
fixed by the first thread that touches it (Linux first-touch policy) —
this is what makes the OpenMP master-allocates pattern a NUMA hotspot and
what lets bound ORWL tasks keep their locations local.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError
from repro.sim.params import CostModel
from repro.topology.distance import LOCAL_DISTANCE, numa_distance_matrix
from repro.topology.tree import Topology

__all__ = ["Buffer", "MemorySystem"]

#: topology -> (pu→numa map, distance matrix). Topology presets are
#: memoized module-level singletons, so a per-topology cache turns the
#: O(tree) walks into one-time costs across the thousands of machines an
#: experiment sweep constructs. WeakKey so ad-hoc test topologies die.
_NUMA_TABLES: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()

#: (topology, model) -> precomputed per-(accessor, home) miss-cost rows.
_MISS_TABLES: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()


def _numa_tables(topology: Topology):
    try:
        return _NUMA_TABLES[topology]
    except KeyError:
        pass
    distance = numa_distance_matrix(topology)
    distance.setflags(write=False)
    pu_numa: dict[int, int] = {}
    for numa_idx, numa in enumerate(topology.numa_nodes):
        for pu in numa.leaves():
            pu_numa[pu.os_index] = numa_idx
    tables = (pu_numa, distance)
    _NUMA_TABLES[topology] = tables
    return tables


@dataclass(slots=True, eq=False)
class Buffer:
    """A simulated allocation.

    ``home_numa`` is ``None`` until first touch. ``data`` optionally holds
    a real numpy array when the application runs in data-execution mode;
    the simulator itself never reads it.
    """

    buf_id: int
    size: int
    label: str = ""
    home_numa: int | None = None
    data: Any = None
    meta: dict = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Buffer #{self.buf_id} {self.label!r} {self.size}B "
            f"home={self.home_numa}>"
        )


class MemorySystem:
    """Prices cache-line fetches from DRAM according to NUMA distance."""

    def __init__(self, topology: Topology, model: CostModel) -> None:
        self.topology = topology
        self.model = model
        self._pu_numa, self.distance = _numa_tables(topology)
        self._buffers: list[Buffer] = []
        self._node_free_at: dict[int, float] = {
            i: 0.0 for i in range(self.distance.shape[0])
        }
        if not self._pu_numa:
            raise SimulationError("topology has no NUMA-homed PUs")
        # Precomputed per-(accessor, home) miss cost — the formula below
        # is pure in (distance, model), and CacheSystem.touch consults it
        # on every priced access, so pay the O(n_numa²) cost once per
        # (topology, model) pair. The batched core gathers whole rows of
        # this table at once when pricing a quantum batch.
        per_model = _MISS_TABLES.setdefault(topology, {})
        try:
            self._miss_cost = per_model[model]
        except KeyError:
            n_numa = self.distance.shape[0]
            self._miss_cost = [
                [self._compute_miss_cycles(a, h) for h in range(n_numa)]
                for a in range(n_numa)
            ]
            per_model[model] = self._miss_cost

    # -- allocation ----------------------------------------------------------

    def allocate(
        self,
        size: int,
        label: str = "",
        *,
        home_numa: int | None = None,
        data: Any = None,
    ) -> Buffer:
        """Create a buffer. ``home_numa`` pre-homes it (bypass first touch)."""
        if size <= 0:
            raise SimulationError(f"buffer size must be positive, got {size}")
        n_numa = self.distance.shape[0]
        if home_numa is not None and not 0 <= home_numa < n_numa:
            raise SimulationError(f"home_numa {home_numa} outside [0, {n_numa})")
        buf = Buffer(len(self._buffers), int(size), label, home_numa, data)
        self._buffers.append(buf)
        return buf

    @property
    def buffers(self) -> list[Buffer]:
        return list(self._buffers)

    @property
    def pu_numa_map(self) -> dict[int, int]:
        """PU os-index → NUMA logical index (shared, treat as read-only)."""
        return self._pu_numa

    @property
    def miss_cost_table(self) -> list[list[float]]:
        """Precomputed ``miss_cycles_per_line`` rows (treat as read-only)."""
        return self._miss_cost

    def pu_numa_list(self) -> list[int | None]:
        """PU→NUMA map flattened to a dense list (``None`` for holes).

        OS indices are small and dense on every supported topology, and a
        list index is the cheapest lookup the flat cores' pump can make.
        A fresh list per call — callers bind it to a local for one run.
        """
        flat: list[int | None] = [None] * (max(self._pu_numa) + 1)
        for k, v in self._pu_numa.items():
            flat[k] = v
        return flat

    def free_at_list(self) -> list[float]:
        """Node bandwidth horizons as a dense list snapshot.

        The flat cores accumulate FIFO reservations into this snapshot
        during a run and write it back via :meth:`store_free_at` on exit,
        keeping the node-keyed dict authoritative between runs/windows.
        """
        d = self._node_free_at
        return [d[i] for i in range(len(d))]

    def store_free_at(self, free_at: list[float]) -> None:
        """Write a :meth:`free_at_list` snapshot back (run/window exit)."""
        d = self._node_free_at
        for i in range(len(free_at)):
            d[i] = free_at[i]

    # -- placement queries -----------------------------------------------------

    def numa_of_pu(self, pu: int) -> int:
        try:
            return self._pu_numa[pu]
        except KeyError:
            raise SimulationError(f"unknown PU {pu}") from None

    def first_touch(self, buf: Buffer, pu: int) -> int:
        """Home *buf* on the toucher's node if not yet homed; return home."""
        if buf.home_numa is None:
            buf.home_numa = self.numa_of_pu(pu)
        return buf.home_numa

    # -- cost ---------------------------------------------------------------------

    def _compute_miss_cycles(self, accessor_numa: int, home_numa: int) -> float:
        d = float(self.distance[accessor_numa, home_numa])
        latency = self.model.mem_cycles_local * (d / LOCAL_DISTANCE)
        if accessor_numa != home_numa:
            latency += self.model.interconnect_cycles_per_byte * self.model.cache_line
        return latency / self.model.mem_parallelism

    def miss_cycles_per_line(self, accessor_numa: int, home_numa: int) -> float:
        """Cycles to fetch one cache line of a missed buffer.

        Local misses pay DRAM latency divided by memory-level parallelism;
        remote misses scale by SLIT distance and add an interconnect
        bandwidth term per byte. Served from the table precomputed at
        construction.
        """
        return self._miss_cost[accessor_numa][home_numa]

    def is_remote(self, accessor_numa: int, home_numa: int) -> bool:
        return accessor_numa != home_numa

    # -- memory-controller contention -------------------------------------------

    def reserve_bandwidth(
        self, home_numa: int, miss_bytes: float, now: float
    ) -> float:
        """Reserve FIFO service for *miss_bytes* at *home_numa*'s controller.

        Returns the absolute cycle time at which the node will have
        delivered these bytes. The controller serves at
        ``node_bandwidth_cyc_per_byte`` regardless of how many threads
        pull from it, so aggregate throughput to one node is hard-capped —
        a thread's touch completes no earlier than this horizon.
        """
        if miss_bytes <= 0:
            return now
        service = miss_bytes * self.model.node_bandwidth_cyc_per_byte
        start = max(now, self._node_free_at[home_numa])
        end = start + service
        self._node_free_at[home_numa] = end
        return end

    def node_free_at(self, home_numa: int) -> float:
        return self._node_free_at[home_numa]
