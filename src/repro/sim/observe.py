"""Native observability for the simulator — metrics, ring trace, export.

Three pieces, usable on **both** run-loop cores (the batched interpreter
and the object compatibility path):

:class:`MetricsRegistry`
    labeled counters/gauges/histograms with a Prometheus-flavoured
    ``name{label=value}`` snapshot — migrations per thread, L3/NUMA miss
    mix, per-PU busy/idle cycles, scheduler queue depths, preemptions.

:class:`RingTrace`
    a bounded ring buffer of scheduling/busy events with per-kind
    sampling periods (``0`` disables a kind, ``1`` records every event,
    ``N`` records 1-in-N), exportable as Chrome ``trace_event`` JSON
    (``chrome://tracing`` / Perfetto): ``pid`` is the PU, ``tid`` the
    simulated thread.

:class:`SimObserver`
    the glue the machine understands: ``SimMachine(..., observer=obs)``
    (or :meth:`SimMachine.attach_observer`). During the run the hot
    loops update only flat per-kind arrays owned by the observer —
    allocation-free, one ``is not None`` guard per site when no observer
    is attached — and :meth:`SimObserver.fold` aggregates them into the
    registry when the run drains. Because every update is a pure
    read/accumulate, attaching an observer never perturbs pricing, rng
    order or event order: fixed-seed runs stay bit-identical across
    cores *and* across tap configurations (``tests/test_sim_difftest.py``
    asserts exactly that).

Usage::

    obs = SimObserver(trace=RingTrace(capacity=65536,
                                      sample={"busy": 16}))
    machine = SimMachine(smp12e5(), observer=obs)
    ...
    machine.run()
    obs.snapshot()["sim_pu_busy_cycles_total{pu=0}"]
    json.dump(obs.chrome_trace(), open("trace.json", "w"))
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.trace import TAGS as _SCHED_TAGS

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "RingTrace",
    "SimObserver",
    "TRACE_KINDS",
    "TR_READY",
    "TR_RUN",
    "TR_BLOCK",
    "TR_PREEMPT",
    "TR_DONE",
    "TR_CRASH",
    "TR_BUSY",
    "KIND_BY_NAME",
    "QUEUE_DEPTH_BUCKETS",
]

#: Ring-trace event kinds. The first six are exactly the legacy
#: :class:`~repro.sim.trace.Trace` tags (scheduling transitions, imported
#: so the vocabularies cannot drift); BUSY is one completed busy chunk
#: (the hot kind — the one worth sampling).
TR_READY = 0
TR_RUN = 1
TR_BLOCK = 2
TR_PREEMPT = 3
TR_DONE = 4
TR_CRASH = 5
TR_BUSY = 6

TRACE_KINDS = _SCHED_TAGS + ("busy",)
KIND_BY_NAME = {name: i for i, name in enumerate(TRACE_KINDS)}

#: Queue-depth histogram resolution: exact counts for depths 0..63, one
#: overflow bucket for 64+.
QUEUE_DEPTH_BUCKETS = 65

#: Upper bounds of the queue-depth histogram exported by fold().
_DEPTH_BOUNDS = (0, 1, 2, 4, 8, 16, 32, 64)


# -- metrics ------------------------------------------------------------------


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: tuple) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise SimulationError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        self.value += amount


class Gauge:
    """A value that can go either way (set wins)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: tuple) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics: ``le``)."""

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "sum")
    kind = "histogram"

    def __init__(self, name: str, labels: tuple, bounds: tuple) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise SimulationError(
                f"histogram {self.__class__.__name__} {name!r} needs sorted "
                f"non-empty bounds, got {bounds!r}"
            )
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +inf
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float, n: int = 1) -> None:
        """Record *value*, optionally *n* identical observations at once
        (fold() feeds pre-aggregated per-depth counts this way)."""
        if value <= self.bounds[0]:
            # Batch-of-one fast path: serial chain workloads dispatch
            # one waker at a time, so fold()'s queue-depth stream is
            # dominated by first-bucket (depth 0/1) observations — one
            # comparison instead of the bound scan.
            self.bucket_counts[0] += n
        else:
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[i] += n
                    break
            else:
                self.bucket_counts[-1] += n
        self.count += n
        self.sum += value * n

    def to_dict(self) -> dict:
        buckets = {
            f"le_{bound:g}": c
            for bound, c in zip(self.bounds, self.bucket_counts)
        }
        buckets["le_inf"] = self.bucket_counts[-1]
        return {"count": self.count, "sum": self.sum, "buckets": buckets}


class MetricsRegistry:
    """Labeled metric families, keyed ``(name, sorted labels)``.

    ``counter``/``gauge``/``histogram`` are get-or-create: the same
    (name, labels) pair always returns the same instance, and reusing a
    name with a different metric kind is an error.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple, object] = {}

    def _get(self, cls, name: str, labels: dict, **kwargs):
        key = (name, tuple(sorted(labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise SimulationError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def _counter1(self, name: str, label: str, value) -> Counter:
        """Get-or-create a counter with exactly one label, skipping the
        kwargs/sort machinery — fold() creates two metrics per thread
        and per PU, and on short runs that series would otherwise cost
        more than the instrumentation itself."""
        key = (name, ((label, value),))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Counter(name, key[1])
            self._metrics[key] = metric
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def _gauge1(self, name: str, label: str, value) -> Gauge:
        """Single-label gauge fast path; see :meth:`_counter1`."""
        key = (name, ((label, value),))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Gauge(name, key[1])
            self._metrics[key] = metric
        return metric

    def histogram(self, name: str, *, bounds: tuple, **labels) -> Histogram:
        return self._get(Histogram, name, labels, bounds=bounds)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    @staticmethod
    def _key_text(name: str, labels: tuple) -> str:
        if not labels:
            return name
        inner = ",".join(f"{k}={v}" for k, v in labels)
        return f"{name}{{{inner}}}"

    def snapshot(self) -> dict:
        """Flat ``{"name{label=value}": value_or_histogram_dict}`` view,
        deterministically ordered (sorted keys)."""
        out = {}
        for (name, labels), metric in self._metrics.items():
            key = self._key_text(name, labels)
            if isinstance(metric, Histogram):
                out[key] = metric.to_dict()
            else:
                out[key] = metric.value
        return dict(sorted(out.items()))


# -- ring trace ---------------------------------------------------------------


class RingTrace:
    """Bounded ring of ``(kind, ts_cycles, tid, pu)`` trace records.

    *capacity* bounds memory (old records are overwritten, counted in
    :attr:`dropped`). *sample* maps kind (name or ``TR_*`` int) to a
    sampling period: ``0`` disables the kind, ``1`` keeps every event,
    ``N`` keeps the 1st of every N (per-kind countdown, so the stream
    stays deterministic). Unlisted kinds default to period 1.
    """

    __slots__ = (
        "capacity", "_buf", "_period", "_countdown", "_cell", "add",
        "add_raw",
    )

    def __init__(self, capacity: int = 65536, sample: dict | None = None):
        if capacity < 1:
            raise SimulationError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buf: list = [None] * capacity
        self._period = [1] * len(TRACE_KINDS)
        # Countdown starts at 1 so the first occurrence of a sampled kind
        # is always kept — a trace that begins at the 16th busy chunk
        # would be confusing.
        self._countdown = [1] * len(TRACE_KINDS)
        for kind, period in (sample or {}).items():
            if isinstance(kind, str):
                if kind not in KIND_BY_NAME:
                    raise SimulationError(
                        f"unknown trace kind {kind!r}; known: {TRACE_KINDS}"
                    )
                kind = KIND_BY_NAME[kind]
            elif not 0 <= kind < len(TRACE_KINDS):
                raise SimulationError(f"unknown trace kind id {kind}")
            if period < 0:
                raise SimulationError(
                    f"sampling period must be >= 0, got {period}"
                )
            self._period[kind] = period
        self._cell = [0, 0]  # [next write index, records kept]
        self._bind_add()

    def _bind_add(self) -> None:
        """Build the hot-path recorders, closed over locals.

        ``add`` (sampling applied) and ``add_raw`` (caller already
        decided to keep the record — the machine inlines the countdown
        for the hot busy kind) run once per scheduling transition inside
        the simulator drain loops, so everything they touch is a closure
        local — no ``self`` attribute walks. Mutable state lives in the
        shared ``_cell`` list so properties can read it back.
        """
        period_by_kind = self._period
        countdown = self._countdown
        buf = self._buf
        cap = self.capacity
        cell = self._cell

        def add_raw(kind: int, ts: float, tid: int, pu) -> bool:
            """Record one event unconditionally (no sampling)."""
            i = cell[0]
            buf[i] = (kind, ts, tid, -1 if pu is None else pu)
            i += 1
            cell[0] = 0 if i == cap else i
            cell[1] += 1
            return True

        def add(kind: int, ts: float, tid: int, pu) -> bool:
            """Record one event; returns True when kept (not sampled out)."""
            period = period_by_kind[kind]
            if period != 1:
                if period == 0:
                    return False
                left = countdown[kind] - 1
                if left:
                    countdown[kind] = left
                    return False
                countdown[kind] = period
            i = cell[0]
            buf[i] = (kind, ts, tid, -1 if pu is None else pu)
            i += 1
            cell[0] = 0 if i == cap else i
            cell[1] += 1
            return True

        self.add = add
        self.add_raw = add_raw

    @property
    def recorded(self) -> int:
        """Records kept, including ones later overwritten by wraparound."""
        return self._cell[1]

    @property
    def dropped(self) -> int:
        """Records overwritten by ring wraparound."""
        kept = self._cell[1]
        return kept - self.capacity if kept > self.capacity else 0

    def __len__(self) -> int:
        return self.recorded if self.recorded < self.capacity else self.capacity

    def records(self) -> list[tuple]:
        """Live records oldest-first (timestamps are nondecreasing)."""
        buf = self._buf
        i = self._cell[0]
        if buf[i] is None:  # never wrapped
            return [r for r in buf[:i]]
        return [r for r in buf[i:] + buf[:i] if r is not None]

    def to_chrome(
        self,
        *,
        clock_hz: float,
        thread_names: dict[int, str] | None = None,
    ) -> dict:
        """Chrome ``trace_event`` JSON (load in Perfetto / chrome://tracing).

        Mapping: ``pid`` = PU os-index (``-1`` while off-PU), ``tid`` =
        simulated thread id, ``ts`` = microseconds of virtual time. Each
        record is an instant event (``ph="i"``); ``M`` metadata events
        name the PUs and threads.
        """
        scale = 1e6 / clock_hz
        names = thread_names or {}
        instants = []
        pids: set = set()
        tids: set = set()
        for kind, ts, tid, pu in self.records():
            pids.add(pu)
            tids.add((pu, tid))
            instants.append({
                "name": TRACE_KINDS[kind],
                "ph": "i",
                "ts": ts * scale,
                "pid": pu,
                "tid": tid,
                "s": "t",
                "args": {"cycles": ts},
            })
        meta = []
        for pu in sorted(pids):
            meta.append({
                "name": "process_name",
                "ph": "M",
                "ts": 0.0,
                "pid": pu,
                "tid": 0,
                "args": {"name": "off-PU" if pu < 0 else f"PU {pu}"},
            })
        for pu, tid in sorted(tids):
            meta.append({
                "name": "thread_name",
                "ph": "M",
                "ts": 0.0,
                "pid": pu,
                "tid": tid,
                "args": {"name": names.get(tid, f"t{tid}")},
            })
        return {
            "traceEvents": meta + instants,
            "displayTimeUnit": "ms",
            "metadata": {
                "recorded": self.recorded,
                "dropped": self.dropped,
                "capacity": self.capacity,
            },
        }


# -- the observer the machine drives ------------------------------------------


class SimObserver:
    """Metrics + optional ring trace for one :class:`SimMachine` run.

    Single-use, like the machine itself: attach (constructor kwarg or
    :meth:`SimMachine.attach_observer`) before ``run()``; read
    :meth:`snapshot` / :meth:`chrome_trace` after. The live fields the
    hot loops touch (:attr:`pu_busy`, :attr:`kind_counts`,
    :attr:`queue_depths`, :attr:`preempts`) are flat preallocated lists —
    nothing allocates inside the drain loop.
    """

    def __init__(self, *, metrics: bool = True, trace: RingTrace | bool = False):
        self.registry = MetricsRegistry()
        self.metrics_enabled = bool(metrics)
        if trace is True:
            trace = RingTrace()
        # Identity test, not truthiness: an empty RingTrace has len 0.
        self.ring: RingTrace | None = (
            trace if isinstance(trace, RingTrace) else None
        )
        # Live arrays, sized at begin(). None while metrics are off so the
        # machine's per-site guards collapse to one is-None test.
        self.pu_busy: list | None = None
        self.queue_depths: list | None = None
        self.kind_counts: list | None = None
        self.preempts: list | None = None
        self.meta: dict = {}
        self._machine = None
        self._folded = False

    # -- machine protocol ----------------------------------------------------

    def begin(self, machine) -> None:
        """Size the live arrays for *machine* (called by ``run()``)."""
        if self._machine is not None and self._machine is not machine:
            raise SimulationError(
                "SimObserver is single-use: already attached to another "
                "machine"
            )
        self._machine = machine
        if self.metrics_enabled and self.pu_busy is None:
            n_pus = max(p.os_index for p in machine.topology.pus) + 1
            self.pu_busy = [0.0] * n_pus
            self.queue_depths = [0] * QUEUE_DEPTH_BUCKETS
            self.kind_counts = [0] * 4  # EV_CALL/STEP/BUSY/DRAIN
            self.preempts = [0]

    def fold(self, machine) -> None:
        """Aggregate live arrays + machine state into the registry."""
        if self._folded:
            return
        self._folded = True
        self._machine = machine
        reg = self.registry
        elapsed = machine.engine.now
        self.meta = {
            "core": machine.core_used or "",
            "elapsed_cycles": elapsed,
            "elapsed_seconds": machine.elapsed_seconds,
            "clock_hz": machine.clock_hz,
            "threads": len(machine.threads),
        }
        if not self.metrics_enabled:
            return
        reg.gauge("sim_elapsed_cycles").set(elapsed)
        reg.counter("sim_events_processed_total").inc(
            machine.engine.events_processed
        )
        total = machine.total_counters()
        reg.counter("sim_l3_hits_total").inc(total.l3_hits)
        reg.counter("sim_l3_misses_total").inc(total.l3_misses)
        reg.gauge("sim_l3_miss_ratio").set(total.miss_ratio)
        reg.counter("sim_numa_local_bytes_total").inc(total.local_bytes)
        reg.counter("sim_numa_remote_bytes_total").inc(total.remote_bytes)
        reg.counter("sim_stalled_cycles_total").inc(total.stalled_cycles)
        reg.counter("sim_flops_total").inc(total.flops)
        reg.counter("sim_migrations_total").inc(total.cpu_migrations)
        reg.counter("sim_context_switches_total").inc(total.context_switches)
        for t in machine.threads:
            name = t.name or f"t{t.tid}"
            reg._counter1("sim_thread_migrations_total", "thread", name).inc(
                t.counters.cpu_migrations
            )
            reg._counter1("sim_thread_busy_cycles_total", "thread", name).inc(
                t.counters.busy_cycles
            )
        if self.pu_busy is not None:
            for pu, busy in enumerate(self.pu_busy):
                reg._counter1("sim_pu_busy_cycles_total", "pu", pu).inc(busy)
                idle = elapsed - busy
                reg._gauge1("sim_pu_idle_cycles", "pu", pu).set(
                    idle if idle > 0.0 else 0.0
                )
        if self.preempts is not None:
            reg.counter("sim_sched_preempts_total").inc(self.preempts[0])
        if self.queue_depths is not None:
            hist = reg.histogram(
                "sim_sched_queue_depth", bounds=_DEPTH_BOUNDS
            )
            for depth, count in enumerate(self.queue_depths):
                if count:
                    hist.observe(depth, count)
        if self.kind_counts is not None and machine.core_used in (
            "batched", "soa", "soa+jit"
        ):
            # Per-kind event split exists only where events are kind-coded
            # — the object path drains opaque closures. The SoA core
            # counts each lane of a vector busy completion as one busy
            # event — and each chased or kernel-absorbed completion too —
            # so the split is identical across the flat cores.
            for kind, name in enumerate(("call", "step", "busy", "drain")):
                reg.counter("sim_events_by_kind_total", kind=name).inc(
                    self.kind_counts[kind]
                )
        if self.ring is not None:
            reg.counter("sim_trace_records_total").inc(self.ring.recorded)
            reg.counter("sim_trace_dropped_total").inc(self.ring.dropped)

    # -- user-facing results -------------------------------------------------

    def snapshot(self) -> dict:
        return self.registry.snapshot()

    def chrome_trace(self) -> dict:
        """Chrome ``trace_event`` export of the ring (requires trace=...)."""
        if self.ring is None:
            raise SimulationError(
                "observer has no ring trace — construct with "
                "SimObserver(trace=RingTrace(...))"
            )
        names = {}
        clock_hz = 1e6
        if self._machine is not None:
            clock_hz = self._machine.clock_hz
            names = {
                t.tid: (t.name or f"t{t.tid}") for t in self._machine.threads
            }
        return self.ring.to_chrome(clock_hz=clock_hz, thread_names=names)
