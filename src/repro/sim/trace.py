"""Optional execution trace for debugging and ordering assertions.

Enabled with ``SimMachine(..., trace=True)``; every scheduling transition
is recorded as ``(time_cycles, tid, tag, detail)`` where tag is one of
:data:`TAGS`. Records are unbounded and unsampled — for long runs use
the bounded, sampled ring in :mod:`repro.sim.observe` instead (it shares
this module's tag vocabulary and exports Chrome ``trace_event`` JSON).
Both tracers work on either simulator core.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TraceRecord", "Trace", "TAGS"]

#: The scheduling-transition vocabulary, in kind-id order — the ring
#: trace extends it with a "busy" kind (see repro.sim.observe).
TAGS = ("ready", "run", "block", "preempt", "done", "crash")


@dataclass(frozen=True)
class TraceRecord:
    time: float
    tid: int
    tag: str
    detail: str = ""


class Trace:
    """An append-only list of scheduling transitions."""

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []

    def record(self, time: float, tid: int, tag: str, detail: str = "") -> None:
        self.records.append(TraceRecord(time, tid, tag, detail))

    def for_thread(self, tid: int) -> list[TraceRecord]:
        return [r for r in self.records if r.tid == tid]

    def with_tag(self, tag: str) -> list[TraceRecord]:
        return [r for r in self.records if r.tag == tag]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def gantt(
        self,
        *,
        names: dict[int, str] | None = None,
        width: int = 80,
        max_threads: int = 40,
    ) -> str:
        """ASCII Gantt chart: one row per thread, '#' while running.

        Time is bucketed into *width* columns between the first and last
        record; a bucket is marked if the thread was in the running state
        at any point inside it.
        """
        if not self.records:
            return "(empty trace)"
        t0 = self.records[0].time
        t1 = max(r.time for r in self.records)
        span = (t1 - t0) or 1.0
        tids = sorted({r.tid for r in self.records if r.tid >= 0})[:max_threads]
        rows = []
        for tid in tids:
            cells = [" "] * width
            running_since: float | None = None
            for r in self.for_thread(tid):
                if r.tag == "run":
                    running_since = r.time
                elif r.tag in ("block", "preempt", "done", "crash"):
                    if running_since is not None:
                        lo = int((running_since - t0) / span * (width - 1))
                        hi = int((r.time - t0) / span * (width - 1))
                        for c in range(lo, hi + 1):
                            cells[c] = "#"
                        running_since = None
            if running_since is not None:
                lo = int((running_since - t0) / span * (width - 1))
                for c in range(lo, width):
                    cells[c] = "#"
            label = (names or {}).get(tid, f"t{tid}")
            rows.append(f"{label:>14.14} |{''.join(cells)}|")
        return "\n".join(rows)
