"""L3-centric cache model with LRU residency and write invalidation.

The model tracks, per L3 (one per socket on both testbeds), how many bytes
of each buffer are resident. A :meth:`CacheSystem.touch` splits an access
into hit and miss bytes, prices them, installs the touched bytes (evicting
LRU), and on writes invalidates the buffer in every *other* L3 — the
coherence traffic that makes cross-socket producer/consumer expensive and
shared-L3 pipelines cheap, i.e. exactly the effect the paper's placement
exploits.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.counters import Counters
from repro.sim.memory import Buffer, MemorySystem
from repro.sim.params import CostModel
from repro.topology.objects import ObjType
from repro.topology.tree import Topology

__all__ = ["L3State", "CacheSystem", "TouchResult"]

#: topology -> (l3 capacities, pu→l3-index map); see memory._NUMA_TABLES.
_L3_TABLES: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()


def _l3_tables(topology: Topology):
    try:
        return _L3_TABLES[topology]
    except KeyError:
        pass
    l3_objs = topology.objects_by_type(ObjType.L3)
    capacities = tuple(obj.cache.size for obj in l3_objs)
    pu_l3: dict[int, int] = {}
    for idx, obj in enumerate(l3_objs):
        for pu in obj.leaves():
            pu_l3[pu.os_index] = idx
    tables = (capacities, pu_l3)
    _L3_TABLES[topology] = tables
    return tables


@dataclass(frozen=True, slots=True)
class TouchResult:
    """Priced access: hit/miss cycle split plus the buffer's home node.

    The miss portion is what memory-controller contention scales; hits are
    served by the local L3 and are contention-free.
    """

    hit_cycles: float
    miss_cycles: float
    miss_bytes: float
    home_numa: int

    @property
    def cycles(self) -> float:
        return self.hit_cycles + self.miss_cycles


class L3State:
    """Residency bookkeeping for one last-level cache.

    When wired into a :class:`CacheSystem`, every L3 shares one
    *presence* map (buffer id → set of L3 indices holding any entry for
    it). Write invalidation then visits only the caches that actually
    hold the buffer instead of broadcasting over every L3 of the machine
    — on the 12-socket testbeds that turns 11 no-op invalidations per
    written touch into typically zero.
    """

    __slots__ = ("capacity", "used", "index", "presence", "_resident")

    def __init__(
        self,
        capacity: int,
        index: int = 0,
        presence: dict[int, set[int]] | None = None,
    ) -> None:
        if capacity <= 0:
            raise SimulationError("L3 capacity must be positive")
        self.capacity = capacity
        self.used = 0
        self.index = index
        self.presence = presence if presence is not None else {}
        # Plain dict as LRU: insertion order is the recency order
        # (pop+reinsert moves to the tail, next(iter()) is the LRU head)
        # — same semantics as OrderedDict with cheaper constant factors
        # on the pump's hot pop/reinsert sequence.
        self._resident: dict[int, float] = {}

    def resident_bytes(self, buf_id: int) -> float:
        return self._resident.get(buf_id, 0.0)

    def install(self, buf_id: int, nbytes: float) -> None:
        """Make *nbytes* of the buffer resident (LRU eviction as needed)."""
        nbytes = min(nbytes, self.capacity)
        current = self._resident.pop(buf_id, 0.0)
        self.used -= current
        target = min(max(current, nbytes), self.capacity)
        presence = self.presence
        while self.used + target > self.capacity and self._resident:
            evicted_id = next(iter(self._resident))
            evicted = self._resident.pop(evicted_id)
            self.used -= evicted
            present = presence.get(evicted_id)
            if present is not None:
                present.discard(self.index)
        if self.used + target > self.capacity:
            target = self.capacity - self.used
        self._resident[buf_id] = target
        self.used += target
        presence.setdefault(buf_id, set()).add(self.index)

    def touch_lru(self, buf_id: int) -> None:
        resident = self._resident
        cur = resident.pop(buf_id, None)
        if cur is not None:
            resident[buf_id] = cur

    def invalidate(self, buf_id: int) -> None:
        dropped = self._resident.pop(buf_id, None)
        if dropped is not None:
            self.used -= dropped
            present = self.presence.get(buf_id)
            if present is not None:
                present.discard(self.index)

    def flush(self) -> None:
        presence = self.presence
        for buf_id in self._resident:
            present = presence.get(buf_id)
            if present is not None:
                present.discard(self.index)
        self._resident.clear()
        self.used = 0


class CacheSystem:
    """All L3s of the machine plus the touch-pricing logic.

    :meth:`touch` is called for every simulated memory access; the
    constructor therefore flattens everything the pricing needs —
    per-(accessor, home) miss-cost rows, the PU→NUMA and PU→L3 maps, and
    the scalar model constants — into plain attributes so the hot path
    performs only dict/list lookups and float arithmetic.
    """

    __slots__ = (
        "topology", "model", "memory", "_l3s", "_pu_l3", "_pu_numa",
        "_presence", "_miss_cost", "_line", "_l3_hit_cycles",
        "_stall_fraction", "_write_invalidate",
    )

    def __init__(
        self, topology: Topology, model: CostModel, memory: MemorySystem
    ) -> None:
        self.topology = topology
        self.model = model
        self.memory = memory
        capacities, pu_l3 = _l3_tables(topology)
        if not capacities:
            raise SimulationError("topology has no L3 caches")
        self._presence: dict[int, set[int]] = {}
        self._l3s = [
            L3State(size, idx, self._presence)
            for idx, size in enumerate(capacities)
        ]
        self._pu_l3 = pu_l3
        # Hot-path caches: shared maps/tables plus scalar model constants.
        self._pu_numa = memory.pu_numa_map
        self._miss_cost = memory.miss_cost_table
        self._line = float(model.cache_line)
        self._l3_hit_cycles = model.l3_hit_cycles
        self._stall_fraction = model.stall_fraction
        self._write_invalidate = model.write_invalidate

    def pu_l3_list(self) -> list[int | None]:
        """PU→L3 map flattened to a dense list (``None`` for holes).

        Same rationale as :meth:`MemorySystem.pu_numa_list`: the flat
        cores index this with raw os indices inside the pump.
        """
        flat: list[int | None] = [None] * (max(self._pu_l3) + 1)
        for k, v in self._pu_l3.items():
            flat[k] = v
        return flat

    def l3_index_of_pu(self, pu: int) -> int:
        try:
            return self._pu_l3[pu]
        except KeyError:
            raise SimulationError(f"PU {pu} is not under any L3") from None

    def l3_of_pu(self, pu: int) -> L3State:
        return self._l3s[self.l3_index_of_pu(pu)]

    def flush_all(self) -> None:
        for l3 in self._l3s:
            l3.flush()

    # -- the core pricing call --------------------------------------------------

    def touch(
        self,
        pu: int,
        buf: Buffer,
        nbytes: float,
        *,
        write: bool,
        counters: Counters,
    ) -> TouchResult:
        """Price an access of *nbytes* of *buf* from *pu*.

        Updates residency, performs first-touch homing, and accumulates the
        L3-miss / stall / traffic counters.
        """
        if nbytes <= 0:
            home = self.memory.first_touch(buf, pu)
            return TouchResult(0.0, 0.0, 0.0, home)
        nbytes = min(float(nbytes), float(buf.size))
        line = self._line
        try:
            l3_idx = self._pu_l3[pu]
            accessor_numa = self._pu_numa[pu]
        except KeyError:
            raise SimulationError(f"PU {pu} is not under any L3") from None
        l3 = self._l3s[l3_idx]
        home = buf.home_numa
        if home is None:
            home = self.memory.first_touch(buf, pu)

        # Fractional residency: with R of the buffer's S bytes resident,
        # a touch of n bytes hits on n·R/S of them. This avoids aliasing
        # different chunks of one large shared buffer (distinct threads
        # touching distinct slices must not hit on each other's lines)
        # while still giving full reuse for buffers that fit entirely.
        resident = l3.resident_bytes(buf.buf_id)
        hit_fraction = min(1.0, resident / float(buf.size))
        hit_bytes = nbytes * hit_fraction
        miss_bytes = nbytes - hit_bytes
        lines_hit = hit_bytes / line
        lines_miss = miss_bytes / line

        miss_per_line = self._miss_cost[accessor_numa][home]
        hit_cycles = lines_hit * self._l3_hit_cycles
        miss_cycles = lines_miss * miss_per_line
        cycles = hit_cycles + miss_cycles
        result = TouchResult(hit_cycles, miss_cycles, miss_bytes, home)

        counters.l3_hits += lines_hit
        counters.l3_misses += lines_miss
        counters.stalled_cycles += miss_cycles * self._stall_fraction
        counters.memory_cycles += cycles
        counters.bytes_touched += nbytes
        if accessor_numa != home:
            counters.remote_bytes += miss_bytes

        if nbytes > l3.capacity:
            # Streaming a working set larger than the cache self-evicts:
            # by the time the stream wraps around, its head is gone, so a
            # cyclic re-touch gets no reuse (classic LRU worst case).
            l3.invalidate(buf.buf_id)
        else:
            l3.install(buf.buf_id, min(resident + miss_bytes, float(buf.size)))
            l3.touch_lru(buf.buf_id)
        if write and self._write_invalidate:
            present = self._presence.get(buf.buf_id)
            if present and (len(present) > 1 or l3_idx not in present):
                l3s = self._l3s
                for idx in sorted(present):
                    if idx != l3_idx:
                        l3s[idx].invalidate(buf.buf_id)
        return result
