"""OS scheduler models for the simulated machine.

Bound threads (a cpuset from the affinity module or a baseline strategy)
only ever run inside their cpuset — zero migrations for singleton sets,
like a real `pthread_setaffinity`. Unbound threads are placed by one of
two policies reproducing the behaviours the paper observed on its
testbeds (Sec. VI-B.1):

``consolidate`` (Linux 3.10 / SMP12E5)
    prefer the lowest-numbered free PU — packs threads onto few NUMA
    nodes *including hyperthread siblings*.
``spread`` (Linux 2.6.32 / SMP20E7)
    prefer a free PU on the NUMA node currently running the fewest
    threads — spreads work over all nodes regardless of affinity.

Unbound threads are also periodically *rebalanced*: every
``rebalance_slices`` quanta their placement is recomputed from scratch,
which is what generates CPU migrations (and the cache-cold penalties that
follow them) in the native, non-affinity runs.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.memory import MemorySystem
from repro.sim.process import SimThread
from repro.topology.tree import Topology

__all__ = ["OSScheduler"]


class OSScheduler:
    """Chooses a PU for each ready thread; tracks per-node load."""

    POLICIES = ("consolidate", "spread")

    def __init__(
        self,
        topology: Topology,
        memory: MemorySystem,
        *,
        policy: str | None = None,
        rng=None,
        migrate_prob: float = 0.0,
        wakeup_migrate_prob: float = 0.0,
    ) -> None:
        policy = policy or str(topology.root.attrs.get("os_policy", "consolidate"))
        if policy not in self.POLICIES:
            raise SimulationError(
                f"unknown OS policy {policy!r}; known: {self.POLICIES}"
            )
        self.policy = policy
        self.topology = topology
        self.memory = memory
        self._rng = rng
        self.migrate_prob = migrate_prob
        self.wakeup_migrate_prob = wakeup_migrate_prob
        self._all_pus = [pu.os_index for pu in topology.pus]
        #: Observers called as ``hook(pu, thread)`` on every occupation —
        #: lets the dynamic analyzer watch placements and migrations as
        #: they happen (see repro.analyze.dynamic). Served on both
        #: simulator cores: the object path calls the hooks from
        #: :meth:`occupy`, the batched core from its inlined start_on at
        #: the same point (busy map updated, transition not yet traced).
        self.on_place: list = []
        self._busy: dict[int, SimThread | None] = {p: None for p in self._all_pus}
        self._node_load: dict[int, int] = {
            i: 0 for i in range(len(topology.numa_nodes))
        }

    # -- occupancy bookkeeping (machine calls these) -----------------------------

    def occupy(self, pu: int, thread: SimThread) -> None:
        if self._busy[pu] is not None:
            raise SimulationError(f"PU {pu} already busy")
        self._busy[pu] = thread
        self._node_load[self.memory.pu_numa_map[pu]] += 1
        # Guarded: occupy sits on the hot wakeup path, and the on_place
        # tap exists only for repro.analyze.dynamic runs.
        if self.on_place:
            for hook in self.on_place:
                hook(pu, thread)

    def release(self, pu: int) -> None:
        if self._busy[pu] is None:
            raise SimulationError(f"PU {pu} is not busy")
        self._busy[pu] = None
        self._node_load[self.memory.pu_numa_map[pu]] -= 1

    def thread_on(self, pu: int) -> SimThread | None:
        return self._busy.get(pu)

    def is_free(self, pu: int) -> bool:
        return self._busy[pu] is None

    @property
    def free_pus(self) -> list[int]:
        return [p for p in self._all_pus if self._busy[p] is None]

    def compute_pressure(self, sibling_pus: dict[int, tuple[int, ...]]) -> list[int]:
        """Per-PU count of *compute* threads on hyperthread siblings.

        ``result[pu]`` is how many compute threads currently occupy PUs in
        ``sibling_pus[pu]`` — the table both flat cores maintain
        incrementally at occupy/release so the hyperthread-contention test
        is a single list index. This builds the starting snapshot from the
        busy map (placements at run entry, e.g. re-entering a window).
        """
        sib_compute = [0] * (max(self._busy) + 1)
        for pu_i, occupant in self._busy.items():
            if occupant is not None and occupant.kind == "compute":
                for sib in sibling_pus[pu_i]:
                    sib_compute[sib] += 1
        return sib_compute

    # -- placement ------------------------------------------------------------------

    def place(self, thread: SimThread, *, rebalance: bool = False) -> int | None:
        """Pick a PU for *thread*, or None when no allowed PU is free.

        Sticky by default (reuse ``last_pu`` when free); a *rebalance* call
        ignores stickiness and re-applies the policy, which may migrate the
        thread.
        """
        if thread.cpuset is not None:
            # Sticky fast path: a bound thread whose last PU is free and
            # allowed reuses it without materializing the candidate list
            # (bound threads never take the wakeup-migrate branch below).
            last = thread.last_pu
            if (
                not rebalance
                and last is not None
                and self._busy.get(last) is None
                and last in thread.cpuset
            ):
                return last
            candidates = [p for p in thread.cpuset if self._busy.get(p) is None]
        else:
            candidates = self.free_pus
        if not candidates:
            return None
        if not rebalance and thread.last_pu in candidates:
            # Sticky placement — except that the OS occasionally wake-
            # balances unbound threads onto the policy's preferred PU.
            if (
                thread.cpuset is None
                and self._rng is not None
                and self.wakeup_migrate_prob > 0.0
                and self._rng.random() < self.wakeup_migrate_prob
            ):
                pass  # fall through to the policy choice below
            else:
                return thread.last_pu
        if thread.cpuset is not None:
            # Bound threads keep cpuset order (deterministic, no policy).
            return candidates[0]
        if thread.last_pu is None and self.policy == "consolidate":
            # Fork placement under the consolidating kernel (Linux 3.10):
            # a new thread starts near its parent (the main thread on
            # node 0) and is only balanced away later — which is why
            # native runs first-touch their data on the low nodes. The
            # old spreading kernel (2.6.32) distributes at fork already.
            first_node = min(
                self.memory.numa_of_pu(p) for p in candidates
            )
            near = [
                p for p in candidates if self.memory.numa_of_pu(p) == first_node
            ]
            return min(near)
        if (
            rebalance
            and self._rng is not None
            and self.migrate_prob > 0.0
            and len(candidates) > 1
            and self._rng.random() < self.migrate_prob
        ):
            # Model CFS load-balancing churn: an actual move to some other
            # eligible PU, not the policy's first choice.
            others = [p for p in candidates if p != thread.last_pu]
            return int(others[self._rng.integers(0, len(others))])
        if self.policy == "consolidate":
            return min(candidates)
        # spread: least-loaded NUMA node, lowest PU within it.
        def node_key(p: int) -> tuple[int, int]:
            return (self._node_load[self.memory.numa_of_pu(p)], p)

        return min(candidates, key=node_key)
