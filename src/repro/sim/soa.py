"""The SoA simulator core: thread state in arrays, buckets drained vectorized.

``run_soa`` is the third run-loop implementation of
:class:`~repro.sim.machine.SimMachine` (after the object path and the
batched core). It keeps the batched core's calendar-bucket queue and
inlined op pump, but moves the per-thread quantum state — ``slice_used``,
``pending_busy``, ``cur_chunk``, ``slices_run``, ``busy_cycles``, the
occupied PU and the bound/unbound flag — out of the ``SimThread`` objects
into preallocated columns for the duration of the run:

* storage is ``array('d')`` / ``array('q')`` / ``array('b')`` columns, so
  the *scalar* paths (the op pump, single busy completions) index them at
  plain-list speed and read back native Python floats — no numpy-scalar
  boxing on the hot scalar arithmetic;
* ``np.frombuffer`` views over the same buffers give the *vector* paths
  zero-copy fancy indexing, so a run of same-instant busy completions is
  priced in one numpy pass (mask, ``np.minimum``, scatter) instead of k
  interpreter iterations.

Vectorized runs emit their follow-on completions as **one**
:data:`~repro.sim.engine.EV_VBUSY` bucket triple (payload: the int64 tid
array, owning consecutive seqs) when every chunk lands at the same
instant — the steady state of a lockstep gang — so the next drain of
that gang is again one event. Eligibility for vectorization is exactly
the set of events whose scalar processing is a pure quantum advance
(no generator resumption, no preemption, no rng): pending work remains
and either the quantum continues or the thread is bound with an empty
ready queue. Everything else — and every lane of a vector event that
stopped qualifying — falls back to the scalar handlers, lane order and
sequence numbers preserved, so fixed-seed runs stay *bit-identical* to
the batched and object cores (``tests/test_sim_batched_equivalence.py``
and the difftest harness referee all three).

Two run-ahead paths sit on top of the vectorized drain, both strictly
semantics-preserving:

* the **chain chase** — the serial complement of the vector path. A
  dependency chain (token ring, pipeline stage hand-off) leaves exactly
  one event per calendar bucket, so the vectorized drain never engages
  and every hop pays a full bucket+heap round-trip. When an emitted
  completion is provably the unique next event in the world (the live
  bucket is drained, the timestamp heap and the object heap are empty,
  and the budget/horizon allow it), the scalar handlers skip the
  calendar: they relocate the drained live bucket to the completion
  instant (so same-instant signals still append to it), jump the clock,
  and process the completion directly at the top of the loop. Each
  chased hop still allocates its seq, counts against the event budget
  and fires every tap exactly as the round-trip would — the chase
  changes *where* the next event comes from, never *what* happens.
  ``SimLimits.chase`` is the off switch for A/B runs.

* the optional **compiled run-ahead kernel** (:mod:`repro.sim.jit`,
  ``SimLimits.jit``) — the vector complement of the chase. A lockstep
  gang that is alone in the world re-runs the same predetermined
  vector round bucket after bucket; the kernel advances the columns
  through the whole stretch in one call (numba-compiled when the
  ``repro[jit]`` extra is installed, same function pure-python
  otherwise) and the interpreter re-seats the pending completion it
  leaves behind. ``machine.core_used`` reports ``"soa+jit"`` when the
  kernel is selected; ``machine.core_stats`` counts the events either
  fast path absorbed.

Column state folds back into the ``SimThread`` objects in the ``finally``
block, before :meth:`SimObserver.fold` runs and before leftover bucket
events are converted to object-path re-entry shims — which is what makes
:meth:`SimMachine.run_window` (the sharded driver's epoch step) safe to
call repeatedly on any core.
"""

from __future__ import annotations

import heapq
from array import array

import numpy as np

from repro.errors import SimulationError
from repro.sim.engine import (
    EV_BUSY,
    EV_CALL,
    EV_DRAIN,
    EV_STEP,
    EV_VBUSY,
    BatchedQueue,
    _ReBusy,
    _ReDrain,
    _ReStep,
)
from repro.sim.observe import (
    QUEUE_DEPTH_BUCKETS,
    TR_BLOCK,
    TR_BUSY,
    TR_CRASH,
    TR_DONE,
    TR_PREEMPT,
    TR_READY,
    TR_RUN,
)
from repro.sim.process import Compute, Spawn, Touch, Wait, YieldCPU

__all__ = ["run_soa"]


def run_soa(machine, *, max_cycles, max_events, jit=False):
    """Drain *machine* on the SoA core (see module docstring).

    Mirrors ``SimMachine._run_batched`` statement for statement on the
    scalar paths — same float expressions, same (when, seq) order, same
    rng call order. When changing either core, mirror the other; the
    golden-trace equivalence tests are the referee. *jit* selects the
    run-ahead kernel (resolved by ``SimMachine`` from ``SimLimits.jit``
    and numba availability).
    """
    # Lazy import: machine.py imports this module at its top.
    from repro.sim.machine import _OP_BASES, _OP_CODE

    eng = machine.engine
    model = machine.model
    limits = machine.limits
    max_ops = limits.max_ops_per_step
    vec_min = limits.vec_min
    # Flat buckets interleave seq/kind/payload: the cheap probe gate
    # compares against 3x the event count.
    vec_min3 = vec_min * 3
    chase_on = limits.chase
    runahead = None
    if jit:
        from repro.sim.jit import chain_runahead as runahead
    # Both run-ahead paths compare emission instants against one plain
    # float: +inf when the run is unbounded in time.
    horizon = float("inf") if max_cycles is None else max_cycles
    n_chased = 0
    n_jit = 0

    # -- hoisted model constants and subsystem internals ----------------
    timeslice = model.timeslice_cycles
    ts_edge = timeslice - 1e-9
    rebalance_slices = model.rebalance_slices
    cpf = model.cycles_per_flop
    htc = model.ht_contention
    os_jitter = model.os_jitter
    ctx_cycles = model.context_switch_cycles
    mig_cycles = model.migration_cycles
    cache_line = model.cache_line
    node_bw = model.node_bandwidth_cyc_per_byte
    caches = machine.caches
    line = caches._line
    l3_hit_cy = caches._l3_hit_cycles
    stall_f = caches._stall_fraction
    winv = caches._write_invalidate
    l3s = caches._l3s
    presence = caches._presence
    miss_cost = machine.memory._miss_cost
    pu_l3 = caches.pu_l3_list()
    pu_numa = machine.memory.pu_numa_list()
    node_free_at = machine.memory.free_at_list()
    sched = machine.scheduler
    busy_map = sched._busy
    node_load = sched._node_load
    place = sched.place
    rng = machine._rng
    ready = machine._ready
    sibling_pus = machine._sibling_pus
    pu_last_tid = machine._pu_last_tid
    op_code = _OP_CODE
    cls_touch = Touch
    cls_compute = Compute
    cls_wait = Wait
    cls_spawn = Spawn
    cls_yield = YieldCPU
    cls_restep = _ReStep
    cls_rebusy = _ReBusy
    cls_redrain = _ReDrain

    # -- observability taps, bound to locals ----------------------------
    # Identical discipline to the batched core: metric sites update flat
    # arrays unconditionally (throwaway storage when untapped), ring and
    # trace records keep their guards, and no tap can perturb pricing,
    # rng order or event order.
    notify_touch = machine._monitor_fns("on_touch")
    notify_block = machine._monitor_fns("on_block")
    notify_finish = machine._monitor_fns("on_finish")
    trace_tap = machine.trace
    trace_rec = trace_tap.record if trace_tap is not None else None
    on_place = sched.on_place or None
    obs = machine.observer
    ring_add = None
    ring_add_raw = None
    ring_busy_period = 0
    ring_cd = None
    obs_kinds = obs_depths = obs_preempts = None
    obs_pub = None
    if obs is not None:
        obs_pub = obs.pu_busy
        obs_kinds = obs.kind_counts
        obs_depths = obs.queue_depths
        obs_preempts = obs.preempts
        if obs.ring is not None:
            ring_add = obs.ring.add
            ring_add_raw = obs.ring.add_raw
            ring_busy_period = obs.ring._period[TR_BUSY]
            ring_cd = obs.ring._countdown
    # Per-PU busy cycles live in a column too: scalar sites index the
    # array('d') directly, the vector scatter adds through the numpy
    # view. Folded back into the observer's list on exit.
    if obs_pub is not None:
        col_pub = array("d", obs_pub)
    else:
        col_pub = array(
            "d", bytes(8 * (max(p.os_index for p in machine.topology.pus) + 1))
        )
    pub_np = np.frombuffer(col_pub)
    if obs_kinds is None:
        obs_kinds = [0] * 4
    if obs_depths is None:
        obs_depths = [0] * QUEUE_DEPTH_BUCKETS
    if obs_preempts is None:
        obs_preempts = [0]
    depth_last = QUEUE_DEPTH_BUCKETS - 1

    # -- the SoA columns -------------------------------------------------
    # Capacity is fixed at entry: growing would invalidate the frombuffer
    # views, and no supported workload adds threads mid-run (make_ready
    # raises if one ever does). array('d')/('q')/('b') + frombuffer give
    # the same memory two personalities: python-float scalar access and
    # zero-copy numpy vector access.
    thread_list = machine.threads
    n = len(thread_list)
    col_slice = array("d", bytes(8 * n))
    col_pend = array("d", bytes(8 * n))
    col_chunk = array("d", bytes(8 * n))
    col_busy = array("d", bytes(8 * n))
    col_sr = array("q", bytes(8 * n))
    col_pu = array("q", bytes(8 * n))
    col_bound = array("b", bytes(n))
    for _i, _t in enumerate(thread_list):
        col_slice[_i] = _t.slice_used
        col_pend[_i] = _t.pending_busy
        col_chunk[_i] = _t.cur_chunk
        col_busy[_i] = _t.counters.busy_cycles
        col_sr[_i] = _t.slices_run
        col_pu[_i] = -1 if _t.pu is None else _t.pu
        col_bound[_i] = 0 if _t.cpuset is None else 1
    sl_np = np.frombuffer(col_slice)
    pend_np = np.frombuffer(col_pend)
    ch_np = np.frombuffer(col_chunk)
    busy_np = np.frombuffer(col_busy)
    sr_np = np.frombuffer(col_sr, dtype=np.int64)
    puq_np = np.frombuffer(col_pu, dtype=np.int64)
    bnd_np = np.frombuffer(col_bound, dtype=np.bool_)
    # bind_thread keeps the bound column coherent while we run.
    machine._soa_bound = col_bound

    queue = BatchedQueue()
    buckets = queue.buckets
    when_heap = queue.when_heap
    push = heapq.heappush
    pop = heapq.heappop
    eheap = eng._heap
    buckets_l = buckets
    wheap_l = when_heap

    sib_compute = sched.compute_pressure(sibling_pus)

    now = eng.now
    processed = eng._events_processed
    # run()/run_window() always normalize max_events.
    budget = processed + max_events

    # -- the object path's helper methods, as flat closures -------------

    def make_ready(thread):
        if thread.state == "done":
            raise SimulationError(
                f"cannot restart finished thread {thread.name}"
            )
        if thread.tid >= n:
            raise SimulationError(
                f"thread {thread.name} was added after run() started — the "
                "SoA core preallocates its columns at entry; use "
                "core='batched' for dynamic thread creation"
            )
        thread.state = "ready"
        ready.append(thread)
        if trace_rec is not None:
            trace_rec(now, thread.tid, "ready", "")
        if ring_add is not None:
            ring_add(TR_READY, now, thread.tid, thread.pu)

    def release_pu(thread):
        pu = thread.pu
        if pu is None:
            raise SimulationError(f"{thread.name} holds no PU")
        if busy_map[pu] is None:
            raise SimulationError(f"PU {pu} is not busy")
        busy_map[pu] = None
        node_load[pu_numa[pu]] -= 1
        thread.pu = None
        col_pu[thread.tid] = -1
        if thread.kind == "compute":
            for sib in sibling_pus[pu]:
                sib_compute[sib] -= 1

    def start_on(thread, pu):
        overhead = 0.0
        counters = thread.counters
        if pu_last_tid.get(pu) != thread.tid:
            counters.context_switches += 1
            overhead += ctx_cycles
        last = thread.last_pu
        if last is not None and last != pu:
            counters.cpu_migrations += 1
            overhead += mig_cycles
        if busy_map[pu] is not None:
            raise SimulationError(f"PU {pu} already busy")
        busy_map[pu] = thread
        node_load[pu_numa[pu]] += 1
        if on_place is not None:
            # Mirrors OSScheduler.occupy: hooks fire with the busy map
            # already updated, before the run transition is recorded.
            for hook in on_place:
                hook(pu, thread)
        pu_last_tid[pu] = thread.tid
        thread.state = "running"
        thread.pu = pu
        thread.last_pu = pu
        col_pu[thread.tid] = pu
        if trace_rec is not None:
            trace_rec(now, thread.tid, "run", f"pu={pu}")
        if ring_add is not None:
            ring_add(TR_RUN, now, thread.tid, pu)
        if thread.kind == "compute":
            for sib in sibling_pus[pu]:
                sib_compute[sib] += 1
        eng._seq = s = eng._seq + 1
        w = now + overhead
        b = buckets.get(w)
        if b is None:
            buckets[w] = [s, EV_STEP, thread]
            push(when_heap, w)
        else:
            b.append(s)
            b.append(EV_STEP)
            b.append(thread)

    def dispatch():
        d = len(ready)
        obs_depths[d if d < depth_last else depth_last] += 1
        while d == 1:
            # Single-ready fast path — the common shape on serial
            # dependency chains, where every wakeup readies exactly one
            # thread. Same placement decision, same failure handling
            # (peek instead of popleft+append keeps the thread at the
            # head), none of the rotation scaffolding.
            thread = ready[0]
            pu = place(thread, rebalance=thread.needs_rebalance)
            if pu is None:
                return
            ready.popleft()
            thread.needs_rebalance = False
            start_on(thread, pu)
            # A placement hook may have readied more threads; re-check.
            d = len(ready)
            if d == 0:
                return
        progressed = True
        while progressed and ready:
            progressed = False
            for _ in range(len(ready)):
                thread = ready.popleft()
                pu = place(thread, rebalance=thread.needs_rebalance)
                if pu is None:
                    ready.append(thread)
                    continue
                thread.needs_rebalance = False
                start_on(thread, pu)
                progressed = True

    def advance(thread, cycles):
        # _run_busy: returns True when the op cost zero cycles and the
        # caller should keep stepping (fresh op budget, like the object
        # path's recursion through _step).
        tid = thread.tid
        if cycles <= 0.0:
            col_pend[tid] = 0.0
            return True
        remaining = timeslice - col_slice[tid]
        chunk = cycles if cycles <= remaining else remaining
        col_pend[tid] = cycles - chunk
        col_busy[tid] += chunk
        col_pub[thread.pu] += chunk
        col_chunk[tid] = chunk
        eng._seq = s = eng._seq + 1
        w = now + chunk
        b = buckets.get(w)
        if b is None:
            buckets[w] = [s, EV_BUSY, thread]
            push(when_heap, w)
        else:
            b.append(s)
            b.append(EV_BUSY)
            b.append(thread)
        return False

    def finish(thread, crashed=False):
        thread.state = "done"
        if notify_finish:
            for fn in notify_finish:
                fn(thread)
        if trace_rec is not None:
            trace_rec(now, thread.tid, "crash" if crashed else "done", "")
        if ring_add is not None:
            ring_add(TR_CRASH if crashed else TR_DONE, now, thread.tid,
                     thread.pu)
        if thread.pu is not None:
            release_pu(thread)
        dispatch()

    def drain(event):
        waiters = event.waiters
        if event.count == 1 and len(waiters) == 1:
            # Single-waiter fast path: the token hand-off of a serial
            # chain. Same pop/decrement order as the general loop.
            thread = waiters.pop(0)
            event.count = 0
            thread.waiting_on = None
            make_ready(thread)
            dispatch()
            return
        woke = False
        while event.count > 0 and waiters:
            thread = waiters.pop(0)
            event.count -= 1
            thread.waiting_on = None
            make_ready(thread)
            woke = True
        if woke:
            dispatch()

    def fast_signal(event):
        eng._seq = s = eng._seq + 1
        b = buckets.get(now)
        if b is None:
            buckets[now] = [s, EV_DRAIN, event]
            push(when_heap, now)
        else:
            b.append(s)
            b.append(EV_DRAIN)
            b.append(event)

    def busy_boundary(thread):
        # Quantum expired: account a slice, decide preemption/migration.
        # Returns True when the thread keeps its PU with no pending busy
        # work — the caller then resumes its generator (the inlined pump
        # in the main loop).
        tid = thread.tid
        col_sr[tid] = sr = col_sr[tid] + 1
        col_slice[tid] = 0.0
        rebalance_due = (
            thread.cpuset is None and sr % rebalance_slices == 0
        )
        contender = False
        if ready:
            pu = thread.pu
            for t in ready:
                cs = t.cpuset
                if cs is None or pu in cs:
                    contender = True
                    break
        if rebalance_due or contender:
            thread.needs_rebalance = rebalance_due
            obs_preempts[0] += 1
            if trace_rec is not None:
                trace_rec(now, thread.tid, "preempt", "")
            if ring_add is not None:
                ring_add(TR_PREEMPT, now, thread.tid, thread.pu)
            release_pu(thread)
            make_ready(thread)
            dispatch()
            return False
        pb = col_pend[tid]
        if pb > 0.0:
            advance(thread, pb)
            return False
        return True

    def vec_advance(tids_v, su_v, below_v, pend_v):
        # Price one eligible segment of same-instant busy completions in
        # a single numpy pass. Bit-identity with the scalar handlers:
        # same expressions elementwise (IEEE ops are elementwise
        # identical), lanes tapped in event order before processing, and
        # seqs allocated exactly as a scalar emit loop would.
        seg = len(tids_v)
        if ring_busy_period:
            # The busy ring tap stays a scalar in-order loop — it mutates
            # the shared sampling countdown exactly like the scalar
            # handler, one tick per lane.
            tl = tids_v.tolist()
            if ring_busy_period == 1:
                for _x in tl:
                    t = thread_list[_x]
                    ring_add_raw(TR_BUSY, now, t.tid, t.pu)
            else:
                for _x in tl:
                    left = ring_cd[TR_BUSY] - 1
                    if left:
                        ring_cd[TR_BUSY] = left
                    else:
                        ring_cd[TR_BUSY] = ring_busy_period
                        t = thread_list[_x]
                        ring_add_raw(TR_BUSY, now, t.tid, t.pu)
        su2 = np.where(below_v, su_v, 0.0)
        if not below_v.all():
            sr_np[tids_v] += ~below_v
        chunk = np.minimum(pend_v, timeslice - su2)
        sl_np[tids_v] = su2
        pend_np[tids_v] = pend_v - chunk
        ch_np[tids_v] = chunk
        busy_np[tids_v] += chunk
        pub_np[puq_np[tids_v]] += chunk
        c0 = chunk[0]
        if bool((chunk == c0).all()):
            # The lockstep steady state: every lane's next completion
            # lands at the same instant — emit one vector event owning
            # the seg consecutive seqs a scalar emit loop would have
            # allocated. float(c0) unboxes exactly, so the bucket key is
            # the same python float `now + chunk` computes scalar-side.
            eng._seq = s = eng._seq + seg
            w2 = now + float(c0)
            b2 = buckets_l.get(w2)
            if b2 is None:
                buckets_l[w2] = [s - seg + 1, EV_VBUSY, tids_v]
                push(wheap_l, w2)
            else:
                b2.append(s - seg + 1)
                b2.append(EV_VBUSY)
                b2.append(tids_v)
        else:
            when_l = (now + chunk).tolist()
            tl2 = tids_v.tolist()
            s = eng._seq
            for _x in range(seg):
                s += 1
                w2 = when_l[_x]
                t = thread_list[tl2[_x]]
                b2 = buckets_l.get(w2)
                if b2 is None:
                    buckets_l[w2] = [s, EV_BUSY, t]
                    push(wheap_l, w2)
                else:
                    b2.append(s)
                    b2.append(EV_BUSY)
                    b2.append(t)
            eng._seq = s

    # -- run ------------------------------------------------------------
    machine._fast_signal = fast_signal
    # Live-bucket cursor, exactly as in the batched core.
    bb: list = []
    bi = 0
    bwhen = 0.0
    blive = False
    # The chain chase's hand-off slot: an emit site that proved its
    # completion is the unique next event parks the thread here instead
    # of the calendar; the loop top picks it up immediately.
    chase_t = None
    try:
        for thread in thread_list:
            if thread.state == "new":
                make_ready(thread)
        dispatch()
        while True:
            if chase_t is not None:
                # A chased completion. The emit site proved nothing else
                # is pending anywhere (drained live bucket, empty
                # timestamp heap, empty object heap), allocated the seq,
                # advanced the clock and checked budget and horizon —
                # processing it here is bit-identical to the calendar
                # round-trip it skipped, including every tap.
                payload = chase_t
                chase_t = None
                ev_kind = EV_BUSY
                processed += 1
                obs_kinds[EV_BUSY] += 1
                n_chased += 1
            elif bi < len(bb):
                if eheap:
                    # External engine.schedule traffic — and re-entry
                    # shims from a previous window's exit conversion,
                    # which reconstruct their original kind-coded
                    # triples so windowed runs keep draining natively.
                    while eheap:
                        w, s, fn = pop(eheap)
                        tf = fn.__class__
                        if tf is cls_rebusy:
                            kind = EV_BUSY
                            pl = fn.t
                        elif tf is cls_restep:
                            kind = EV_STEP
                            pl = fn.t
                        elif tf is cls_redrain:
                            kind = EV_DRAIN
                            pl = fn.e
                        else:
                            kind = EV_CALL
                            pl = fn
                        b = buckets_l.get(w)
                        if b is None:
                            buckets_l[w] = [s, kind, pl]
                            push(wheap_l, w)
                        else:
                            b.append(s)
                            b.append(kind)
                            b.append(pl)
                ev_kind = bb[bi + 1]
                if ev_kind == EV_VBUSY:
                    # A vector busy completion: re-check eligibility lane
                    # by lane (the world may have changed since emit — a
                    # wakeup filled `ready`, pending work drained). The
                    # still-eligible prefix advances vectorized; the rest
                    # re-materializes as scalar triples at the cursor,
                    # seqs preserved, and drains through the unchanged
                    # scalar handlers.
                    tids = bb[bi + 2]
                    base = bb[bi]
                    bi += 3
                    k = len(tids)
                    if (
                        runahead is not None
                        and not ready
                        and not wheap_l
                        and bi == len(bb)
                        and not eheap
                        and ring_busy_period == 0
                        and processed + k <= budget
                    ):
                        # The gang is alone in the world: every further
                        # round is predetermined, so hand the stretch to
                        # the run-ahead kernel (repro.sim.jit), adopt
                        # the clock of its last processed round, and
                        # re-seat the pending completion it leaves as a
                        # fresh single-event bucket — the unchanged
                        # handler logic then deals with whatever
                        # stopped it (narrowing, divergence, budget,
                        # horizon).
                        rounds, t_pend, t_proc = runahead(
                            sl_np, pend_np, ch_np, busy_np, pub_np,
                            sr_np, bnd_np, puq_np, tids, now,
                            timeslice, ts_edge, horizon,
                            (budget - processed) // k,
                        )
                        if rounds:
                            rk = rounds * k
                            processed += rk
                            n_jit += rk
                            obs_kinds[EV_BUSY] += rk
                            eng._seq = eng._seq + rk
                            now = t_proc
                            eng.now = t_proc
                            del buckets_l[bwhen]
                            blive = False
                            del bb[:]
                            bb.append(eng._seq - k + 1)
                            bb.append(EV_VBUSY)
                            bb.append(tids)
                            buckets_l[t_pend] = bb
                            push(wheap_l, t_pend)
                            continue
                    su_v = sl_np[tids] + ch_np[tids]
                    pend_v = pend_np[tids]
                    below_v = su_v < ts_edge
                    pos = pend_v > 0.0
                    if ready:
                        elig = below_v & pos
                    else:
                        elig = pos & (below_v | bnd_np[tids])
                    seg = k if bool(elig.all()) else int(np.argmin(elig))
                    if seg < k and seg < vec_min:
                        # The gang narrowed mid-drain: a still-eligible
                        # prefix below vec_min is not worth the numpy
                        # setup per sub-batch — re-materialize every
                        # lane and take the scalar pump (identical
                        # arithmetic and emission order either way).
                        seg = 0
                    if processed + seg > budget:
                        seg = 0
                    if seg:
                        vec_advance(
                            tids[:seg], su_v[:seg], below_v[:seg],
                            pend_v[:seg],
                        )
                        processed += seg
                        obs_kinds[EV_BUSY] += seg
                    if seg < k:
                        rest = tids[seg:].tolist()
                        sq = base + seg
                        ins = []
                        for tid_ in rest:
                            ins.append(sq)
                            ins.append(EV_BUSY)
                            ins.append(thread_list[tid_])
                            sq += 1
                        bb[bi:bi] = ins
                    continue
                if ev_kind == EV_BUSY:
                    # Cheap O(1) probe on this event before any scan: is
                    # it itself a pure quantum advance? Only then is a
                    # run worth gathering — pump-bound buckets stay on
                    # the scalar path with one condition of overhead.
                    t0 = bb[bi + 2]
                    tid0 = t0.tid
                    if (
                        col_pend[tid0] > 0.0
                        and len(bb) - bi >= vec_min3
                        and (
                            col_slice[tid0] + col_chunk[tid0] < ts_edge
                            or (col_bound[tid0] and not ready)
                        )
                    ):
                        nbb = len(bb)
                        j = bi + 4
                        while j < nbb and bb[j] == EV_BUSY:
                            j += 3
                        k = (j - bi - 1) // 3
                        if k >= vec_min:
                            # hotlint: ok(alloc) — the genexp amortizes
                            # over k >= vec_min events; that is the point
                            # of the vectorized segment.
                            tids = np.fromiter(
                                (bb[x].tid for x in range(bi + 2, j + 1, 3)),  # hotlint: ok(alloc)
                                dtype=np.int64, count=k,
                            )
                            su_v = sl_np[tids] + ch_np[tids]
                            pend_v = pend_np[tids]
                            below_v = su_v < ts_edge
                            pos = pend_v > 0.0
                            if ready:
                                elig = below_v & pos
                            else:
                                elig = pos & (below_v | bnd_np[tids])
                            seg = (
                                k if bool(elig.all())
                                else int(np.argmin(elig))
                            )
                            if seg >= vec_min and processed + seg <= budget:
                                vec_advance(
                                    tids[:seg], su_v[:seg], below_v[:seg],
                                    pend_v[:seg],
                                )
                                bi += 3 * seg
                                processed += seg
                                obs_kinds[EV_BUSY] += seg
                                continue
                if processed >= budget:
                    eng._events_processed = processed
                    raise SimulationError(
                        f"event budget {max_events} exhausted at "
                        f"t={now:.3g} — runaway simulation?"
                    )
                payload = bb[bi + 2]
                bi += 3
                processed += 1
                obs_kinds[ev_kind] += 1
            else:
                if eheap:
                    while eheap:
                        w, s, fn = pop(eheap)
                        tf = fn.__class__
                        if tf is cls_rebusy:
                            kind = EV_BUSY
                            pl = fn.t
                        elif tf is cls_restep:
                            kind = EV_STEP
                            pl = fn.t
                        elif tf is cls_redrain:
                            kind = EV_DRAIN
                            pl = fn.e
                        else:
                            kind = EV_CALL
                            pl = fn
                        b = buckets_l.get(w)
                        if b is None:
                            buckets_l[w] = [s, kind, pl]
                            push(wheap_l, w)
                        else:
                            b.append(s)
                            b.append(kind)
                            b.append(pl)
                    if bi < len(bb):
                        # Zero-delay traffic landed in the live bucket.
                        continue
                if blive:
                    del buckets_l[bwhen]
                    blive = False
                if not wheap_l:
                    break
                w0 = wheap_l[0]
                if w0 > horizon:
                    break
                if processed >= budget:
                    eng._events_processed = processed
                    raise SimulationError(
                        f"event budget {max_events} exhausted at "
                        f"t={now:.3g} — runaway simulation?"
                    )
                pop(wheap_l)
                bb = buckets_l[w0]
                bi = 0
                bwhen = w0
                blive = True
                now = w0
                eng.now = w0
                continue
            if ev_kind == EV_BUSY:
                # The hottest kind: a busy chunk ended. Either the
                # quantum continues (fall through to the pump) or the
                # boundary logic decides preemption/rebalance.
                thread = payload
                tid = thread.tid
                if ring_busy_period:
                    if ring_busy_period == 1:
                        ring_add_raw(TR_BUSY, now, thread.tid, thread.pu)
                    else:
                        left = ring_cd[TR_BUSY] - 1
                        if left:
                            ring_cd[TR_BUSY] = left
                        else:
                            ring_cd[TR_BUSY] = ring_busy_period
                            ring_add_raw(
                                TR_BUSY, now, thread.tid, thread.pu
                            )
                su = col_slice[tid] + col_chunk[tid]
                if su < ts_edge:
                    col_slice[tid] = su
                    pb = col_pend[tid]
                    if pb > 0.0:  # inline advance(): pb > 0 known
                        remaining = timeslice - su
                        chunk = pb if pb <= remaining else remaining
                        col_pend[tid] = pb - chunk
                        col_busy[tid] += chunk
                        col_pub[thread.pu] += chunk
                        col_chunk[tid] = chunk
                        eng._seq = s2 = eng._seq + 1
                        w2 = now + chunk
                        if (
                            chase_on
                            and bi == len(bb)
                            and processed < budget
                            and w2 <= horizon
                            and (not wheap_l or w2 < wheap_l[0])
                            and (not eheap or w2 < eheap[0][0])
                        ):
                            # Chain chase: this completion is provably
                            # the next event anywhere — the live bucket
                            # is drained and w2 strictly beats every
                            # pending timestamp (a tie would lose on
                            # seq order, and strictness also means no
                            # bucket exists at w2 yet). Relocate the
                            # drained live bucket to w2 (same-instant
                            # signals keep appending to it), jump the
                            # clock, skip the calendar round-trip.
                            del buckets_l[bwhen]
                            del bb[:]
                            buckets_l[w2] = bb
                            bwhen = w2
                            bi = 0
                            now = w2
                            eng.now = w2
                            chase_t = thread
                            continue
                        b2 = buckets_l.get(w2)
                        if b2 is None:
                            buckets_l[w2] = [s2, EV_BUSY, thread]
                            push(wheap_l, w2)
                        else:
                            b2.append(s2)
                            b2.append(EV_BUSY)
                            b2.append(thread)
                        continue
                else:
                    if not busy_boundary(thread):
                        continue
            elif ev_kind == EV_STEP:
                thread = payload
                tid = thread.tid
                pb = col_pend[tid]
                if pb > 0.0:  # inline advance(): pb > 0 known
                    remaining = timeslice - col_slice[tid]
                    chunk = pb if pb <= remaining else remaining
                    col_pend[tid] = pb - chunk
                    col_busy[tid] += chunk
                    col_pub[thread.pu] += chunk
                    col_chunk[tid] = chunk
                    eng._seq = s2 = eng._seq + 1
                    w2 = now + chunk
                    if (
                        chase_on
                        and bi == len(bb)
                        and processed < budget
                        and w2 <= horizon
                        and (not wheap_l or w2 < wheap_l[0])
                        and (not eheap or w2 < eheap[0][0])
                    ):
                        # Chain chase (see the EV_BUSY handler).
                        del buckets_l[bwhen]
                        del bb[:]
                        buckets_l[w2] = bb
                        bwhen = w2
                        bi = 0
                        now = w2
                        eng.now = w2
                        chase_t = thread
                        continue
                    b2 = buckets_l.get(w2)
                    if b2 is None:
                        buckets_l[w2] = [s2, EV_BUSY, thread]
                        push(wheap_l, w2)
                    else:
                        b2.append(s2)
                        b2.append(EV_BUSY)
                        b2.append(thread)
                    continue
            elif ev_kind == EV_DRAIN:
                drain(payload)
                continue
            else:  # EV_CALL
                eng._events_processed = processed
                payload()
                continue

            # ---- op pump: resume the generator and price ops until one
            # costs cycles. Identical to the batched core's pump except
            # that quantum state lives in the columns.
            gen = thread.gen
            counters = thread.counters
            is_compute = thread.kind == "compute"
            ops = 0
            resets = 0
            while True:
                try:
                    sv = thread.send_value
                    if sv is None:
                        op = next(gen)
                    else:
                        thread.send_value = None
                        op = gen.send(sv)
                except StopIteration:
                    finish(thread)
                    break
                except Exception:
                    finish(thread, True)
                    raise
                cls = op.__class__
                if cls is cls_touch:
                    code = 0
                elif cls is cls_compute:
                    code = 1
                elif cls is cls_wait:
                    code = 2
                elif cls is cls_spawn:
                    code = 3
                elif cls is cls_yield:
                    code = 4
                else:
                    code = op_code.get(cls)
                    if code is None:
                        for base in _OP_BASES:
                            if isinstance(op, base):
                                code = op_code[base]
                                op_code[cls] = code
                                break
                        else:
                            raise SimulationError(
                                f"{thread.name} yielded unknown op {op!r}"
                            )
                if code == 0:  # Touch
                    buf = op.buffer
                    nbytes = op.nbytes
                    if nbytes is None:
                        nbytes = buf.size
                    if notify_touch:
                        # Same observation point as _step: the request
                        # size before clamping, priced right after.
                        for fn in notify_touch:
                            fn(thread, buf, nbytes, op.write)
                    pu = thread.pu
                    if nbytes <= 0:
                        if buf.home_numa is None:
                            buf.home_numa = pu_numa[pu]
                        busy = 0.0
                    else:
                        nb = nbytes
                        size = buf.size
                        if nb > size:
                            nb = size
                        l3_idx = pu_l3[pu]
                        l3 = l3s[l3_idx]
                        buf_id = buf.buf_id
                        od = l3._resident
                        resident = od.get(buf_id, 0.0)
                        if resident >= size:
                            # Steady-state all-hit touch; see the batched
                            # core for the full derivation.
                            lines_hit = nb / line
                            busy = lines_hit * l3_hit_cy
                            counters.l3_hits += lines_hit
                            counters.memory_cycles += busy
                            counters.bytes_touched += nb
                            cur = od.pop(buf_id)
                            od[buf_id] = cur
                            if op.write and winv:
                                present = presence.get(buf_id)
                                if present and (
                                    len(present) > 1 or l3_idx not in present
                                ):
                                    # Deterministic invalidation order on
                                    # a handful of L3 indices.
                                    for idx in sorted(present):  # hotlint: ok(alloc)
                                        if idx != l3_idx:
                                            l3s[idx].invalidate(buf_id)
                            if is_compute and sib_compute[pu]:
                                busy *= htc
                        else:
                            accessor = pu_numa[pu]
                            home = buf.home_numa
                            if home is None:
                                home = accessor
                                buf.home_numa = home
                            hit_fraction = resident / size
                            hit_bytes = nb * hit_fraction
                            miss_bytes = nb - hit_bytes
                            lines_hit = hit_bytes / line
                            lines_miss = miss_bytes / line
                            hit_cycles = lines_hit * l3_hit_cy
                            miss_cycles = (
                                lines_miss * miss_cost[accessor][home]
                            )
                            busy = hit_cycles + miss_cycles
                            counters.l3_hits += lines_hit
                            counters.l3_misses += lines_miss
                            counters.stalled_cycles += miss_cycles * stall_f
                            counters.memory_cycles += busy
                            counters.bytes_touched += nb
                            if accessor != home:
                                counters.remote_bytes += miss_bytes
                            cap = l3.capacity
                            if nb > cap:
                                l3.invalidate(buf_id)
                                if op.write and winv:
                                    present = presence.get(buf_id)
                                    if present and (
                                        len(present) > 1
                                        or l3_idx not in present
                                    ):
                                        for idx in sorted(present):  # hotlint: ok(alloc)
                                            if idx != l3_idx:
                                                l3s[idx].invalidate(buf_id)
                            else:
                                inst = resident + miss_bytes
                                if inst > size:
                                    inst = size
                                # Inline L3State.install; see the batched
                                # core for the derivation.
                                if inst > cap:
                                    inst = cap
                                cur = resident
                                if cur > 0.0:
                                    del od[buf_id]
                                used = l3.used - cur
                                tgt = cur if cur >= inst else inst
                                if tgt > cap:
                                    tgt = cap
                                while used + tgt > cap and od:
                                    ev_id = next(iter(od))
                                    ev_bytes = od.pop(ev_id)
                                    used -= ev_bytes
                                    p = presence.get(ev_id)
                                    if p is not None:
                                        p.discard(l3_idx)
                                if used + tgt > cap:
                                    tgt = cap - used
                                od[buf_id] = tgt
                                l3.used = used + tgt
                                ps = presence.get(buf_id)
                                if ps is None:
                                    # Fresh singleton: once per (buffer,
                                    # first install), not per event.
                                    presence[buf_id] = {l3_idx}  # hotlint: ok(alloc)
                                else:
                                    ps.add(l3_idx)
                                    if op.write and winv and len(ps) > 1:
                                        for idx in sorted(ps):  # hotlint: ok(alloc)
                                            if idx != l3_idx:
                                                l3s[idx].invalidate(
                                                    buf_id
                                                )
                            if is_compute and sib_compute[pu]:
                                busy *= htc
                                extra = htc - 1.0
                                counters.l3_misses += (
                                    miss_bytes / cache_line * extra
                                )
                                counters.stalled_cycles += (
                                    miss_cycles * extra * stall_f
                                )
                            if miss_bytes > 0:
                                free_at = node_free_at[home]
                                start = now if now >= free_at else free_at
                                end = start + miss_bytes * node_bw
                                node_free_at[home] = end
                                queued = end - now - busy
                                if queued > 0:
                                    busy += queued
                                    counters.stalled_cycles += (
                                        queued * stall_f
                                    )
                                    counters.memory_cycles += queued
                    if busy > 0.0:  # inline advance()
                        remaining = timeslice - col_slice[tid]
                        chunk = busy if busy <= remaining else remaining
                        col_pend[tid] = busy - chunk
                        col_busy[tid] += chunk
                        col_pub[pu] += chunk
                        col_chunk[tid] = chunk
                        eng._seq = s2 = eng._seq + 1
                        w2 = now + chunk
                        if (
                            chase_on
                            and bi == len(bb)
                            and processed < budget
                            and w2 <= horizon
                            and (not wheap_l or w2 < wheap_l[0])
                            and (not eheap or w2 < eheap[0][0])
                        ):
                            # Chain chase (see the EV_BUSY handler).
                            del buckets_l[bwhen]
                            del bb[:]
                            buckets_l[w2] = bb
                            bwhen = w2
                            bi = 0
                            now = w2
                            eng.now = w2
                            chase_t = thread
                            break
                        b2 = buckets_l.get(w2)
                        if b2 is None:
                            buckets_l[w2] = [s2, EV_BUSY, thread]
                            push(wheap_l, w2)
                        else:
                            b2.append(s2)
                            b2.append(EV_BUSY)
                            b2.append(thread)
                        break
                    col_pend[tid] = 0.0
                    ops = 0
                    resets += 1
                    if resets > max_ops:
                        raise SimulationError(
                            f"{thread.name} issued {max_ops} zero-cost "
                            "ops — livelock?"
                        )
                    continue
                elif code == 1:  # Compute
                    flops = op.flops
                    eff = op.efficiency
                    cycles = flops * cpf if eff == 1.0 else flops * cpf / eff
                    if is_compute and sib_compute[thread.pu]:
                        cycles *= htc
                    if thread.cpuset is None and os_jitter > 0:
                        cycles *= 1.0 + rng.uniform(-os_jitter, os_jitter)
                    counters.flops += flops
                    counters.compute_cycles += cycles
                    if cycles > 0.0:  # inline advance()
                        remaining = timeslice - col_slice[tid]
                        chunk = cycles if cycles <= remaining else remaining
                        col_pend[tid] = cycles - chunk
                        col_busy[tid] += chunk
                        col_pub[thread.pu] += chunk
                        col_chunk[tid] = chunk
                        eng._seq = s2 = eng._seq + 1
                        w2 = now + chunk
                        if (
                            chase_on
                            and bi == len(bb)
                            and processed < budget
                            and w2 <= horizon
                            and (not wheap_l or w2 < wheap_l[0])
                            and (not eheap or w2 < eheap[0][0])
                        ):
                            # Chain chase (see the EV_BUSY handler).
                            del buckets_l[bwhen]
                            del bb[:]
                            buckets_l[w2] = bb
                            bwhen = w2
                            bi = 0
                            now = w2
                            eng.now = w2
                            chase_t = thread
                            break
                        b2 = buckets_l.get(w2)
                        if b2 is None:
                            buckets_l[w2] = [s2, EV_BUSY, thread]
                            push(wheap_l, w2)
                        else:
                            b2.append(s2)
                            b2.append(EV_BUSY)
                            b2.append(thread)
                        break
                    col_pend[tid] = 0.0
                    ops = 0
                    resets += 1
                    if resets > max_ops:
                        raise SimulationError(
                            f"{thread.name} issued {max_ops} zero-cost "
                            "ops — livelock?"
                        )
                    continue
                elif code == 2:  # Wait
                    event = op.event
                    if event.count > 0:
                        event.count -= 1
                        ops += 1
                        if ops >= max_ops:
                            raise SimulationError(
                                f"{thread.name} issued {max_ops} "
                                "untimed ops — livelock?"
                            )
                        continue
                    thread.state = "blocked"
                    thread.waiting_on = event
                    event.waiters.append(thread)
                    if notify_block:
                        for fn in notify_block:
                            fn(thread, event)
                    if trace_rec is not None:
                        trace_rec(now, thread.tid, "block", event.name)
                    if ring_add is not None:
                        ring_add(TR_BLOCK, now, thread.tid, thread.pu)
                    release_pu(thread)
                    if ready:
                        dispatch()
                    else:
                        # Inline the empty-queue dispatch: nothing to
                        # place, only the depth histogram to keep exact.
                        obs_depths[0] += 1
                    break
                elif code == 3:  # Spawn
                    target = op.thread
                    if target.state in ("new", "unstarted"):
                        make_ready(target)
                    ops += 1
                    if ops >= max_ops:
                        raise SimulationError(
                            f"{thread.name} issued {max_ops} "
                            "untimed ops — livelock?"
                        )
                    continue
                else:  # YieldCPU
                    # The object path routes this through _requeue, so it
                    # counts and traces as a preemption there too.
                    obs_preempts[0] += 1
                    if trace_rec is not None:
                        trace_rec(now, thread.tid, "preempt", "")
                    if ring_add is not None:
                        ring_add(TR_PREEMPT, now, thread.tid, thread.pu)
                    release_pu(thread)
                    make_ready(thread)
                    dispatch()
                    break
    finally:
        machine._fast_signal = None
        machine._soa_bound = None
        eng.now = now
        eng._events_processed = processed
        # Diagnostic only (benchmarks and threshold tests read these):
        # how many events each run-ahead path absorbed. Accumulates
        # across windows.
        stats = machine.core_stats
        stats["chase_events"] = stats.get("chase_events", 0) + n_chased
        stats["jit_events"] = stats.get("jit_events", 0) + n_jit
        machine.memory.store_free_at(node_free_at)
        # Fold the columns back into the SimThread objects by assignment
        # — exact (the column held the authoritative double), and safe
        # across windows (re-entry re-seeds the columns from here).
        for _i in range(n):
            _t = thread_list[_i]
            _t.slice_used = col_slice[_i]
            _t.pending_busy = col_pend[_i]
            _t.cur_chunk = col_chunk[_i]
            _t.slices_run = col_sr[_i]
            _t.counters.busy_cycles = col_busy[_i]
        if obs_pub is not None:
            for _i in range(len(col_pub)):
                obs_pub[_i] = col_pub[_i]
        if buckets:
            # A max_cycles/budget stop (or an app raise mid-bucket) can
            # leave events in flight: convert them to typed re-entry
            # shims so engine.pending, manual engine.run() and the next
            # run_window() all keep working — the merge loops above
            # recognize the shims and rebuild their kind-coded triples.
            for w, b_l in buckets.items():
                j0 = bi if blive and w == bwhen else 0
                for j in range(j0, len(b_l), 3):
                    ev_kind = b_l[j + 1]
                    payload = b_l[j + 2]
                    if ev_kind == EV_VBUSY:
                        base = b_l[j]
                        for off, tid_ in enumerate(payload.tolist()):
                            heapq.heappush(
                                eheap,
                                (
                                    w, base + off,
                                    _ReBusy(machine, thread_list[tid_]),
                                ),
                            )
                        continue
                    if ev_kind == EV_CALL:
                        fn = payload
                    elif ev_kind == EV_STEP:
                        fn = _ReStep(machine, payload)
                    elif ev_kind == EV_BUSY:
                        fn = _ReBusy(machine, payload)
                    else:
                        fn = _ReDrain(machine, payload)
                    heapq.heappush(eheap, (w, b_l[j], fn))
            buckets.clear()
            del when_heap[:]
