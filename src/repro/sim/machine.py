"""The simulated machine: threads × PUs × caches × OS, under one clock.

:class:`SimMachine` is the façade the runtimes (ORWL, OpenMP-model) build
on. Usage::

    machine = SimMachine(smp12e5())
    buf = machine.allocate(1 << 20, "halo")
    done = machine.event("done")

    def worker():
        yield Compute(1e9)
        yield Touch(buf, write=True)
        done.signal()

    machine.add_thread("w0", worker(), cpuset=Bitmap.single(0))
    machine.run()
    machine.elapsed_seconds  # virtual wall-clock

Execution model: each thread is a generator; CPU-consuming ops (Compute,
Touch) occupy the thread's PU for a priced duration, chopped at the OS
timeslice so preemption, hyperthread contention and rebalancing are
re-evaluated at quantum boundaries. Blocking ops free the PU.

Three run-loop implementations share these semantics:

* the **object path** — the small methods below (`_step`, `_busy_done`,
  `_dispatch`, …) driven by closure events on :class:`Engine`.
* the **batched core** (:meth:`_run_batched`) — one flat interpreter
  over a :class:`~repro.sim.engine.BatchedQueue` of scalar kind-coded
  events, with the Touch/Compute pricing inlined against the
  precomputed ``(accessor, home)`` cost table and same-instant
  busy-completion batches advanced in one vectorized pass.
* the **SoA core** (:mod:`repro.sim.soa`) — the batched interpreter with
  per-thread quantum state moved into struct-of-arrays columns for the
  duration of the run; runs of same-instant busy completions are priced
  in one numpy segment and re-emitted as single vector events. This is
  the default (``core="auto"``).

Observability works on **both** paths: ``SimMachine.monitors``,
:class:`Trace`, ``OSScheduler.on_place`` and a
:class:`~repro.sim.observe.SimObserver` (metrics registry + sampled ring
trace) are instrumented natively in the batched interpreter. The one tap
that still forces the object path is ``Engine.watchers`` — a callback
after *every* processed event is exactly the per-event dispatch the
batched core exists to eliminate.

:meth:`run` selects the SoA core automatically whenever no watcher is
installed; fixed-seed runs produce bit-identical counters and clocks on
every path, with or without taps
(``tests/test_sim_batched_equivalence.py`` and
``tests/test_sim_difftest.py`` prove it on the three paper
applications plus a generated program family). When editing one path,
mirror the others — the equivalence tests will catch any drift.

:meth:`run_window` drains events only up to a virtual-time horizon and
may be called repeatedly — the epoch primitive :mod:`repro.sim.shard`
builds its conservative multi-machine synchronization on.
"""

from __future__ import annotations

import heapq
import os
import weakref
from collections import deque
from collections.abc import Iterable

import numpy as np

from repro.errors import DeadlockError, SimulationError
from repro.sim.cache import CacheSystem
from repro.sim.counters import Counters
from repro.sim.engine import (
    EV_BUSY,
    EV_CALL,
    EV_DRAIN,
    EV_STEP,
    BatchedQueue,
    Engine,
    _ReBusy,
    _ReDrain,
    _ReStep,
)
from repro.sim.memory import Buffer, MemorySystem
from repro.sim.observe import (
    KIND_BY_NAME,
    QUEUE_DEPTH_BUCKETS,
    TR_BLOCK,
    TR_BUSY,
    TR_CRASH,
    TR_DONE,
    TR_PREEMPT,
    TR_READY,
    TR_RUN,
    SimObserver,
)
from repro.sim.params import CostModel, SimLimits
from repro.sim.process import (
    Compute,
    SimEvent,
    SimThread,
    Spawn,
    ThreadGen,
    Touch,
    Wait,
    YieldCPU,
)
from repro.sim.scheduler import OSScheduler
from repro.sim.soa import run_soa
from repro.sim.trace import Trace
from repro.topology.binding import validate_cpuset
from repro.topology.tree import Topology
from repro.util.bitmap import Bitmap
from repro.util.rng import make_rng

__all__ = ["SimMachine"]

#: Back-compat aliases — these limits live in :class:`repro.sim.params.
#: SimLimits` now; pass ``SimMachine(..., limits=SimLimits(...))`` instead
#: of monkeypatching these module globals (the machine no longer reads
#: them after construction).
MAX_OPS_PER_STEP = SimLimits().max_ops_per_step
DEFAULT_MAX_EVENTS = SimLimits().max_events

#: topology -> {pu: [hyperthread sibling PUs]} (pure in the topology, and
#: topology presets are memoized — share across the many machines a sweep
#: builds instead of re-walking the tree per construction).
_SIBLING_TABLES: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()


def _sibling_tables(topology: Topology) -> dict[int, list[int]]:
    try:
        return _SIBLING_TABLES[topology]
    except KeyError:
        tables = {
            pu.os_index: [s.os_index for s in topology.siblings_of_pu(pu.os_index)]
            for pu in topology.pus
        }
        _SIBLING_TABLES[topology] = tables
        return tables


#: Op class -> dispatch code for the batched core. Subclasses of the op
#: types are resolved through isinstance once and then cached here, so
#: the hot dispatch is a single dict lookup.
_OP_CODE: dict[type, int] = {
    Touch: 0,
    Compute: 1,
    Wait: 2,
    Spawn: 3,
    YieldCPU: 4,
}
_OP_BASES = (Touch, Compute, Wait, Spawn, YieldCPU)


class SimMachine:
    """A virtual NUMA machine executing simulated threads."""

    #: Run-loop implementations selectable via the ``core`` kwarg.
    CORES = ("auto", "soa", "batched", "object")

    def __init__(
        self,
        topology: Topology,
        model: CostModel | None = None,
        *,
        os_policy: str | None = None,
        seed: int = 0,
        trace: bool = False,
        core: str = "auto",
        limits: SimLimits | None = None,
        observer: SimObserver | None = None,
        sanitize: bool | None = None,
    ) -> None:
        if core not in self.CORES:
            raise SimulationError(f"unknown core {core!r}; known: {self.CORES}")
        self.core = core
        if sanitize is None:
            sanitize = os.environ.get("REPRO_SANITIZE", "") == "1"
        #: Checked mode: attach the SimSanitizer's invariant taps during
        #: run() (repro.analyze.invariants). Default follows the
        #: REPRO_SANITIZE env var; strictly zero cost when off (one
        #: boolean test in run()).
        self.sanitize = bool(sanitize)
        #: The attached SimSanitizer instance, set by run() when
        #: sanitizing; None otherwise.
        self.sanitizer = None
        self.limits = limits or SimLimits()
        self.topology = topology
        self.model = model or CostModel()
        self.engine = Engine()
        self.memory = MemorySystem(topology, self.model)
        self.caches = CacheSystem(topology, self.model, self.memory)
        self._rng = make_rng(seed)
        self.scheduler = OSScheduler(
            topology,
            self.memory,
            policy=os_policy,
            rng=self._rng,
            migrate_prob=self.model.migrate_prob,
            wakeup_migrate_prob=self.model.wakeup_migrate_prob,
        )
        self.threads: list[SimThread] = []
        #: Dynamic-analysis monitors (see repro.analyze.dynamic). Duck
        #: typed: any of ``on_touch(thread, buffer, nbytes, write)``,
        #: ``on_block(thread, event)``, ``on_finish(thread)`` is called
        #: when present. Empty for normal runs — zero overhead.
        self.monitors: list = []
        self.trace: Trace | None = Trace() if trace else None
        #: Optional metrics/ring-trace observer (repro.sim.observe); works
        #: on both cores. Set here or via :meth:`attach_observer`.
        self.observer: SimObserver | None = observer
        #: Which run loop :meth:`run` actually executed ("soa",
        #: "soa+jit", "batched" or "object"); None before run().
        #: "soa+jit" is the SoA loop with the compiled run-ahead kernel
        #: of :mod:`repro.sim.jit` selected (``SimLimits.jit``).
        self.core_used: str | None = None
        #: Diagnostic counters of the SoA core's run-ahead paths
        #: (``chase_events``, ``jit_events``: events absorbed by the
        #: chain chase / the run-ahead kernel). Empty on other cores.
        self.core_stats: dict = {}
        self.clock_hz = float(topology.root.attrs.get("clock_hz", 2.6e9))
        self._ready: deque[SimThread] = deque()
        self._pu_last_tid: dict[int, int] = {}
        self._sibling_pus = _sibling_tables(topology)
        #: Set by _run_batched for the duration of the fast drain loop;
        #: _on_signal routes wakeups through it so signals raised from
        #: generator code land in the batched queue, not the object heap.
        self._fast_signal = None
        #: While the SoA core drains, this is its bound-flag column
        #: (array('b') indexed by tid); bind_thread keeps it coherent so
        #: affinity changes made from running generator code are seen by
        #: the vectorized eligibility masks.
        self._soa_bound = None
        #: Virtual time (cycles) at which the event queue last made
        #: progress. run_window() quantizes ``engine.now`` up to the
        #: epoch horizon even when the queue drained early, so windowed
        #: drivers (repro.sim.shard, repro.affinity) read the honest
        #: program end time here; run() sets it to the final clock.
        self.window_drained_at = 0.0
        self._ran = False

    # -- construction API ---------------------------------------------------

    def allocate(
        self,
        size: int,
        label: str = "",
        *,
        home_numa: int | None = None,
        data=None,
    ) -> Buffer:
        """Allocate a simulated buffer (see :class:`MemorySystem`)."""
        return self.memory.allocate(size, label, home_numa=home_numa, data=data)

    def event(self, name: str = "", count: int = 0) -> SimEvent:
        """A counting event wired to this machine's wakeup mechanism."""
        return SimEvent(name, count, notify=self._on_signal)

    def add_thread(
        self,
        name: str,
        gen: ThreadGen,
        *,
        kind: str = "compute",
        cpuset: Bitmap | None = None,
        start: bool = True,
    ) -> SimThread:
        """Register a simulated thread; started at :meth:`run` by default.

        ``cpuset=None`` leaves the thread to the OS scheduler policy;
        a cpuset restricts (binds) it, like ``hwloc_set_cpubind``.
        """
        if kind not in ("compute", "control"):
            raise SimulationError(f"unknown thread kind {kind!r}")
        if cpuset is not None:
            validate_cpuset(self.topology, cpuset)
        thread = SimThread(
            tid=len(self.threads), name=name, gen=gen, kind=kind, cpuset=cpuset
        )
        thread.state = "new" if start else "unstarted"
        self.threads.append(thread)
        return thread

    def bind_thread(self, thread: SimThread, cpuset: Bitmap | None) -> None:
        """Re-bind a registered thread (the affinity_set path)."""
        if cpuset is not None:
            validate_cpuset(self.topology, cpuset)
        thread.cpuset = cpuset
        bound = self._soa_bound
        if bound is not None and thread.tid < len(bound):
            bound[thread.tid] = 0 if cpuset is None else 1

    def attach_sanitizer(self):
        """Attach the invariant sanitizer's live taps (idempotent).

        :meth:`run` calls this automatically when ``sanitize`` is set;
        windowed drivers (the adaptive controller of
        :mod:`repro.affinity`) call it before the first window so the
        occupancy/clock taps observe every epoch, then ``verify()`` at
        the end themselves. Lazy import — the analyze package is never
        paid for on normal runs. Returns the sanitizer.
        """
        if self.sanitizer is None:
            from repro.analyze.invariants import SimSanitizer

            self.sanitizer = SimSanitizer(self)
            self.sanitizer.attach()
        return self.sanitizer

    def attach_observer(self, observer: SimObserver) -> SimObserver:
        """Attach a metrics/trace observer before :meth:`run`.

        Constructor-kwarg alternative for machines built indirectly (the
        app builders construct runtimes that own their machine).
        """
        if self._ran:
            raise SimulationError("cannot attach an observer after run()")
        if self.observer is not None and self.observer is not observer:
            raise SimulationError("machine already has an observer attached")
        self.observer = observer
        return observer

    # -- run loop -------------------------------------------------------------

    def _unsupported_taps(self) -> list[str]:
        """Tap kinds only the object path can serve.

        monitors, :class:`Trace` and ``scheduler.on_place`` are
        instrumented natively in both cores; ``engine.watchers`` — a
        callback after *every* processed event — is exactly the
        per-event dispatch the batched core optimizes away, so it alone
        still forces the object path.
        """
        return ["engine.watchers"] if self.engine.watchers else []

    def _select_core(self) -> str:
        """Resolve the ``core`` kwarg to the loop that will execute."""
        unsupported = self._unsupported_taps()
        if self.core in ("soa", "batched") and unsupported:
            raise SimulationError(
                f"core={self.core!r} is incompatible with the "
                f"{', '.join(unsupported)} tap — a per-event callback only "
                "exists on the object path; use core='auto'/'object', or "
                "the repro.sim.observe layer which works on every core"
            )
        if self.core == "object" or unsupported:
            return "object"
        if self.core == "batched":
            return "batched"
        return "soa"  # "auto" and "soa"

    def _use_jit(self) -> bool:
        """Resolve ``SimLimits.jit`` against numba availability.

        ``"auto"`` selects the compiled kernel only when the
        ``repro[jit]`` extra is installed; ``"on"`` forces the kernel
        (pure-python fallback without numba — slow, but it exercises
        the exact kernel logic, which is how the equivalence tests
        referee it); ``"off"`` never calls it.
        """
        jit = self.limits.jit
        if jit == "on":
            return True
        if jit == "off":
            return False
        from repro.sim.jit import HAVE_NUMBA

        return HAVE_NUMBA

    def run(
        self,
        *,
        max_cycles: float | None = None,
        max_events: int | None = None,
        allow_incomplete: bool = False,
    ) -> float:
        """Execute until every thread finishes; returns elapsed seconds.

        *max_events* defaults to ``self.limits.max_events``. Core
        selection: ``core="auto"`` runs the SoA core unless an
        ``engine.watchers`` tap is installed (the one tap that needs the
        object path's per-event callback); ``core="object"`` forces the
        compatibility path; ``core="soa"``/``core="batched"`` insist on
        that flat core and raise if a watcher makes it impossible.
        monitors/trace/on_place taps and
        :class:`~repro.sim.observe.SimObserver` run natively on every
        core. On the SoA core, ``SimLimits.jit`` additionally selects
        the compiled run-ahead kernel (``"auto"`` — only when the
        ``repro[jit]`` extra is installed). All cores are bit-identical
        on fixed seeds; :attr:`core_used` records which one executed
        (``"soa+jit"`` when the kernel was selected).

        Raises :class:`DeadlockError` if threads remain blocked with an
        empty event queue (unless *allow_incomplete*).
        """
        if self._ran:
            raise SimulationError("SimMachine.run may only be called once")
        self._ran = True
        if self.sanitize:
            # Checked mode: the sanitizer rides the native monitor and
            # on_place taps (both cores), then verifies end-state
            # invariants below.
            self.attach_sanitizer()
        if max_events is None:
            max_events = self.limits.max_events
        use = self._select_core()
        jit = use == "soa" and self._use_jit()
        self.core_used = "soa+jit" if jit else use
        observer = self.observer
        if observer is not None:
            observer.begin(self)
        try:
            if use == "soa":
                run_soa(
                    self, max_cycles=max_cycles, max_events=max_events,
                    jit=jit,
                )
            elif use == "batched":
                self._run_batched(max_cycles=max_cycles, max_events=max_events)
            else:
                for thread in self.threads:
                    if thread.state == "new":
                        self._make_ready(thread)
                self._dispatch()
                self.engine.run(max_cycles=max_cycles, max_events=max_events)
        finally:
            # Fold on every exit so deadlocked/budget-stopped runs are
            # still observable (the registry reports partial progress).
            if observer is not None:
                observer.fold(self)
        leftover = [t for t in self.threads if t.state not in ("done", "unstarted")]
        if leftover and not allow_incomplete and max_cycles is None:
            blocked = ", ".join(
                f"{t.name}({t.state}"
                + (f" on {t.waiting_on.name!r}" if t.waiting_on else "")
                + ")"
                for t in leftover[:12]
            )
            raise DeadlockError(
                f"{len(leftover)} thread(s) never finished: {blocked}"
            )
        if self.sanitizer is not None and not leftover:
            self.sanitizer.verify(self)
        self.window_drained_at = self.engine.now
        return self.elapsed_seconds

    def run_window(
        self, until: float, *, max_events: int | None = None
    ) -> float:
        """Drain events with timestamps ``<= until``; may be called again.

        The epoch primitive of :mod:`repro.sim.shard`: a shard driver
        alternates ``run_window(T_k)`` with cross-shard message exchange,
        and the conservative window bound guarantees no event inside the
        window depends on a message that arrives at a later one. Between
        windows the machine is quiescent at a well-defined virtual time:
        in-flight busy chunks and wakeups are parked as typed re-entry
        shims on the object heap, and every core's merge loop restores
        them natively on the next call.

        Differences from :meth:`run`: no deadlock check (threads are
        expected to be mid-flight between windows), no sanitizer attach,
        and the observer folds only when the caller invokes
        ``observer.fold(machine)`` after the last window (``fold`` is
        idempotent). *max_events* is a per-window budget. Returns
        elapsed seconds at the window boundary.
        """
        if until < self.engine.now:
            raise SimulationError(
                f"window horizon {until} is before now={self.engine.now}"
            )
        if max_events is None:
            max_events = self.limits.max_events
        use = self._select_core()
        jit = use == "soa" and self._use_jit()
        first = not self._ran
        self._ran = True
        if first:
            self.core_used = "soa+jit" if jit else use
            observer = self.observer
            if observer is not None:
                observer.begin(self)
        ev0 = self.engine.events_processed
        if use == "soa":
            run_soa(self, max_cycles=until, max_events=max_events, jit=jit)
        elif use == "batched":
            self._run_batched(max_cycles=until, max_events=max_events)
        else:
            if first:
                for thread in self.threads:
                    if thread.state == "new":
                        self._make_ready(thread)
                self._dispatch()
            self.engine.run(max_cycles=until, max_events=max_events)
        # Record the honest drain point before the horizon clamp below —
        # only when this window actually processed events, so idle
        # windows don't push the mark out to their horizon.
        if self.engine.events_processed > ev0:
            self.window_drained_at = self.engine.now
        # The clock of a windowed run advances to the horizon even when
        # the queue drains early — the shard protocol equates "machine
        # time" with the epoch boundary, and a later window may receive
        # messages stamped anywhere inside (T_{k-1}, T_k].
        if self.engine.now < until:
            self.engine.now = until
        return self.elapsed_seconds

    def _run_batched(
        self, *, max_cycles: float | None, max_events: int | None
    ) -> None:
        """The batched core: one flat drain loop over kind-coded events.

        A straight transcription of the object path (`_step`, `_busy_done`,
        `_dispatch`, …) with everything inlined: no closure per event, op
        dispatch through `_OP_CODE`, Touch pricing directly against the
        precomputed miss-cost rows, and same-instant busy-completion
        batches advanced in one vectorized numpy pass. Must stay
        *bit-identical* to the object path — same float expressions, same
        (when, seq) event order, same rng call order. When changing either
        path, mirror the other; ``tests/test_sim_batched_equivalence.py``
        is the referee.
        """
        eng = self.engine
        model = self.model
        limits = self.limits
        max_ops = limits.max_ops_per_step
        batch_min = limits.batch_min
        # Flat buckets interleave seq/kind/payload, so the cheap size
        # gate compares against 3x the event count.
        batch_min3 = batch_min * 3

        # -- hoisted model constants and subsystem internals ----------------
        timeslice = model.timeslice_cycles
        ts_edge = timeslice - 1e-9
        rebalance_slices = model.rebalance_slices
        cpf = model.cycles_per_flop
        htc = model.ht_contention
        os_jitter = model.os_jitter
        ctx_cycles = model.context_switch_cycles
        mig_cycles = model.migration_cycles
        cache_line = model.cache_line
        node_bw = model.node_bandwidth_cyc_per_byte
        # One plain-float horizon (+inf when unbounded) keeps the
        # per-bucket stop check to a single comparison.
        horizon = float("inf") if max_cycles is None else max_cycles
        caches = self.caches
        line = caches._line
        l3_hit_cy = caches._l3_hit_cycles
        stall_f = caches._stall_fraction
        winv = caches._write_invalidate
        l3s = caches._l3s
        presence = caches._presence
        miss_cost = self.memory._miss_cost
        # PU- and node-keyed dicts flattened to lists for the pump: os
        # indices are small and dense, and a list index is the cheapest
        # lookup there is. node_free_at is written back on exit.
        pu_l3 = caches.pu_l3_list()
        pu_numa = self.memory.pu_numa_list()
        node_free_at = self.memory.free_at_list()
        sched = self.scheduler
        busy_map = sched._busy
        node_load = sched._node_load
        place = sched.place
        rng = self._rng
        ready = self._ready
        sibling_pus = self._sibling_pus
        pu_last_tid = self._pu_last_tid
        op_code = _OP_CODE
        cls_touch = Touch
        cls_compute = Compute
        cls_wait = Wait
        cls_spawn = Spawn
        cls_yield = YieldCPU
        cls_restep = _ReStep
        cls_rebusy = _ReBusy
        cls_redrain = _ReDrain

        # -- observability taps, bound to locals ----------------------------
        # Every instrumentation site below is a pure read/accumulate, so a
        # tapped run cannot perturb pricing, rng order or event order
        # (bit-identical across tap configurations). Metric sites update
        # flat arrays *unconditionally* — without a tap the increments
        # land in throwaway arrays, which beats a per-site branch on the
        # tapped path and costs <1% on the untapped one. Ring/trace
        # records keep their guards: a call per transition is worth
        # skipping.
        notify_touch = self._monitor_fns("on_touch")
        notify_block = self._monitor_fns("on_block")
        notify_finish = self._monitor_fns("on_finish")
        trace_tap = self.trace
        trace_rec = trace_tap.record if trace_tap is not None else None
        on_place = sched.on_place or None
        obs = self.observer
        ring_add = None
        # The busy kind fires once per completed chunk — far hotter than
        # every scheduling transition combined — so its sampling countdown
        # is inlined here instead of paying a closure call per rejection.
        # ring_cd is RingTrace._countdown itself (shared state), so mixing
        # inlined and closure-side sampling stays coherent.
        ring_add_raw = None
        ring_busy_period = 0
        ring_cd = None
        obs_pu_busy = obs_kinds = obs_depths = obs_preempts = None
        if obs is not None:
            obs_pu_busy = obs.pu_busy
            obs_kinds = obs.kind_counts
            obs_depths = obs.queue_depths
            obs_preempts = obs.preempts
            if obs.ring is not None:
                ring_add = obs.ring.add
                ring_add_raw = obs.ring.add_raw
                ring_busy_period = obs.ring._period[TR_BUSY]
                ring_cd = obs.ring._countdown
        if obs_pu_busy is None:
            obs_pu_busy = [0.0] * (
                max(p.os_index for p in self.topology.pus) + 1
            )
        if obs_kinds is None:
            obs_kinds = [0] * 4
        if obs_depths is None:
            obs_depths = [0] * QUEUE_DEPTH_BUCKETS
        if obs_preempts is None:
            obs_preempts = [0]
        depth_last = QUEUE_DEPTH_BUCKETS - 1

        queue = BatchedQueue()
        buckets = queue.buckets
        when_heap = queue.when_heap
        push = heapq.heappush
        pop = heapq.heappop
        eheap = eng._heap
        # The pump below indexes these through plain locals (closures
        # capture `buckets`/`when_heap` as cells; a second name keeps the
        # per-op accesses on LOAD_FAST).
        buckets_l = buckets
        wheap_l = when_heap

        # sib_compute[pu] = number of *compute* threads currently running
        # on pu's hyperthread siblings — maintained at occupy/release so
        # the per-op contention test is one list index instead of a scan
        # (placements change ~1000x less often than ops are priced).
        sib_compute = sched.compute_pressure(sibling_pus)

        now = eng.now
        processed = eng._events_processed
        # run() always normalizes max_events (None -> limits.max_events).
        budget = processed + max_events

        # -- the object path's helper methods, as flat closures -------------
        # eng._seq stays the one authoritative sequence counter so events
        # scheduled externally (engine.schedule from app code) interleave
        # in exactly the order the object path would give them.

        def make_ready(thread):
            if thread.state == "done":
                raise SimulationError(
                    f"cannot restart finished thread {thread.name}"
                )
            thread.state = "ready"
            ready.append(thread)
            if trace_rec is not None:
                trace_rec(now, thread.tid, "ready", "")
            if ring_add is not None:
                ring_add(TR_READY, now, thread.tid, thread.pu)

        def release_pu(thread):
            pu = thread.pu
            if pu is None:
                raise SimulationError(f"{thread.name} holds no PU")
            if busy_map[pu] is None:
                raise SimulationError(f"PU {pu} is not busy")
            busy_map[pu] = None
            node_load[pu_numa[pu]] -= 1
            thread.pu = None
            if thread.kind == "compute":
                for sib in sibling_pus[pu]:
                    sib_compute[sib] -= 1

        def start_on(thread, pu):
            overhead = 0.0
            counters = thread.counters
            if pu_last_tid.get(pu) != thread.tid:
                counters.context_switches += 1
                overhead += ctx_cycles
            last = thread.last_pu
            if last is not None and last != pu:
                counters.cpu_migrations += 1
                overhead += mig_cycles
            if busy_map[pu] is not None:
                raise SimulationError(f"PU {pu} already busy")
            busy_map[pu] = thread
            node_load[pu_numa[pu]] += 1
            if on_place is not None:
                # Mirrors OSScheduler.occupy: hooks fire with the busy map
                # already updated, before the run transition is recorded.
                for hook in on_place:
                    hook(pu, thread)
            pu_last_tid[pu] = thread.tid
            thread.state = "running"
            thread.pu = pu
            thread.last_pu = pu
            if trace_rec is not None:
                trace_rec(now, thread.tid, "run", f"pu={pu}")
            if ring_add is not None:
                ring_add(TR_RUN, now, thread.tid, pu)
            if thread.kind == "compute":
                for sib in sibling_pus[pu]:
                    sib_compute[sib] += 1
            eng._seq = s = eng._seq + 1
            w = now + overhead
            b = buckets.get(w)
            if b is None:
                buckets[w] = [s, EV_STEP, thread]
                push(when_heap, w)
            else:
                b.append(s)
                b.append(EV_STEP)
                b.append(thread)

        def dispatch():
            d = len(ready)
            obs_depths[d if d < depth_last else depth_last] += 1
            progressed = True
            while progressed and ready:
                progressed = False
                for _ in range(len(ready)):
                    thread = ready.popleft()
                    pu = place(thread, rebalance=thread.needs_rebalance)
                    if pu is None:
                        ready.append(thread)
                        continue
                    thread.needs_rebalance = False
                    start_on(thread, pu)
                    progressed = True

        def advance(thread, cycles):
            # _run_busy: returns True when the op cost zero cycles and the
            # caller should keep stepping (fresh op budget, like the object
            # path's recursion through _step).
            if cycles <= 0.0:
                thread.pending_busy = 0.0
                return True
            remaining = timeslice - thread.slice_used
            chunk = cycles if cycles <= remaining else remaining
            thread.pending_busy = cycles - chunk
            thread.counters.busy_cycles += chunk
            obs_pu_busy[thread.pu] += chunk
            thread.cur_chunk = chunk
            eng._seq = s = eng._seq + 1
            w = now + chunk
            b = buckets.get(w)
            if b is None:
                buckets[w] = [s, EV_BUSY, thread]
                push(when_heap, w)
            else:
                b.append(s)
                b.append(EV_BUSY)
                b.append(thread)
            return False

        def finish(thread, crashed=False):
            thread.state = "done"
            if notify_finish:
                for fn in notify_finish:
                    fn(thread)
            if trace_rec is not None:
                trace_rec(now, thread.tid, "crash" if crashed else "done", "")
            if ring_add is not None:
                ring_add(TR_CRASH if crashed else TR_DONE, now, thread.tid,
                         thread.pu)
            if thread.pu is not None:
                release_pu(thread)
            dispatch()

        def drain(event):
            woke = False
            waiters = event.waiters
            while event.count > 0 and waiters:
                thread = waiters.pop(0)
                event.count -= 1
                thread.waiting_on = None
                make_ready(thread)
                woke = True
            if woke:
                dispatch()

        def fast_signal(event):
            eng._seq = s = eng._seq + 1
            b = buckets.get(now)
            if b is None:
                buckets[now] = [s, EV_DRAIN, event]
                push(when_heap, now)
            else:
                b.append(s)
                b.append(EV_DRAIN)
                b.append(event)

        def busy_boundary(thread):
            # Quantum expired: account a slice, decide preemption/migration.
            # Returns True when the thread keeps its PU with no pending
            # busy work — the caller then resumes its generator (the
            # inlined pump in the main loop).
            thread.slices_run = sr = thread.slices_run + 1
            thread.slice_used = 0.0
            rebalance_due = (
                thread.cpuset is None and sr % rebalance_slices == 0
            )
            contender = False
            if ready:
                pu = thread.pu
                for t in ready:
                    cs = t.cpuset
                    if cs is None or pu in cs:
                        contender = True
                        break
            if rebalance_due or contender:
                thread.needs_rebalance = rebalance_due
                obs_preempts[0] += 1
                if trace_rec is not None:
                    trace_rec(now, thread.tid, "preempt", "")
                if ring_add is not None:
                    ring_add(TR_PREEMPT, now, thread.tid, thread.pu)
                release_pu(thread)
                make_ready(thread)
                dispatch()
                return False
            if thread.pending_busy > 0.0:
                advance(thread, thread.pending_busy)
                return False
            return True

        # -- run ------------------------------------------------------------
        self._fast_signal = fast_signal
        # Live-bucket cursor: the flat [seq, kind, payload, ...] list of
        # the calendar bucket currently draining, an index into it
        # (stride 3, pointing at the next seq slot), and its timestamp
        # (`blive` marks it still registered in `buckets` so pushes at
        # `now` keep landing in its tail).
        bb: list = []
        bi = 0
        bwhen = 0.0
        blive = False
        try:
            for thread in self.threads:
                if thread.state == "new":
                    make_ready(thread)
            dispatch()
            while True:
                if bi < len(bb):
                    # Drain one event of the live bucket: append order is
                    # seq order (eng._seq is monotonic) and every entry
                    # shares `now`, so there is no heap sift and no clock
                    # store per event. Anything processing schedules at
                    # `now` appends behind `bi` and is drained in turn.
                    if eheap:
                        # External engine.schedule traffic: merge into the
                        # calendar. Delays are >= 0 and
                        # their seqs are fresh, so entries land at the
                        # live bucket's tail or in future buckets —
                        # global (when, seq) order is preserved because
                        # eng._seq is shared.
                        while eheap:
                            w, s, fn = pop(eheap)
                            # Re-entry shims (from a previous window's
                            # exit conversion) are recognized by type and
                            # restored to their kind-coded triples; other
                            # callables stay CALL events.
                            tf = fn.__class__
                            if tf is cls_rebusy:
                                kind = EV_BUSY
                                pl = fn.t
                            elif tf is cls_restep:
                                kind = EV_STEP
                                pl = fn.t
                            elif tf is cls_redrain:
                                kind = EV_DRAIN
                                pl = fn.e
                            else:
                                kind = EV_CALL
                                pl = fn
                            b = buckets_l.get(w)
                            if b is None:
                                buckets_l[w] = [s, kind, pl]
                                push(wheap_l, w)
                            else:
                                b.append(s)
                                b.append(kind)
                                b.append(pl)
                    if processed >= budget:
                        eng._events_processed = processed
                        raise SimulationError(
                            f"event budget {max_events} exhausted at "
                            f"t={now:.3g} — runaway simulation?"
                        )
                    ev_kind = bb[bi + 1]
                    payload = bb[bi + 2]
                    bi += 3
                    processed += 1
                    obs_kinds[ev_kind] += 1
                else:
                    if eheap:
                        while eheap:
                            w, s, fn = pop(eheap)
                            # Re-entry shims (from a previous window's
                            # exit conversion) are recognized by type and
                            # restored to their kind-coded triples; other
                            # callables stay CALL events.
                            tf = fn.__class__
                            if tf is cls_rebusy:
                                kind = EV_BUSY
                                pl = fn.t
                            elif tf is cls_restep:
                                kind = EV_STEP
                                pl = fn.t
                            elif tf is cls_redrain:
                                kind = EV_DRAIN
                                pl = fn.e
                            else:
                                kind = EV_CALL
                                pl = fn
                            b = buckets_l.get(w)
                            if b is None:
                                buckets_l[w] = [s, kind, pl]
                                push(wheap_l, w)
                            else:
                                b.append(s)
                                b.append(kind)
                                b.append(pl)
                        if bi < len(bb):
                            # Zero-delay traffic landed in the live bucket.
                            continue
                    if blive:
                        del buckets_l[bwhen]
                        blive = False
                    if not wheap_l:
                        break
                    w0 = wheap_l[0]
                    if w0 > horizon:
                        break
                    if processed >= budget:
                        eng._events_processed = processed
                        raise SimulationError(
                            f"event budget {max_events} exhausted at "
                            f"t={now:.3g} — runaway simulation?"
                        )
                    pop(wheap_l)
                    bb = buckets_l[w0]
                    bi = 0
                    bwhen = w0
                    blive = True
                    now = w0
                    eng.now = w0
                    # Vectorized quantum batch: a bucket opening with a
                    # run of pure busy continuations of bound threads (the
                    # full-machine steady state: every PU's chunk expiring
                    # at the same quantum boundary) advances in one numpy
                    # pass. Eligibility is strict so the scalar semantics
                    # are provably untouched: no ready contender, no
                    # rebalance (bound), no generator resumption (pending
                    # work remains).
                    if not ready and len(bb) >= batch_min3:
                        t = bb[2]
                        if (
                            bb[1] == EV_BUSY
                            and t.pending_busy > 0.0
                            and t.cpuset is not None
                        ):
                            k = 1
                            j = 4  # kind slot of the second triple
                            n_b = len(bb)
                            while j < n_b:
                                if bb[j] != EV_BUSY:
                                    break
                                t = bb[j + 1]
                                if t.cpuset is None or t.pending_busy <= 0.0:
                                    break
                                k += 1
                                j += 3
                            if k >= batch_min and processed + k <= budget:
                                threads_b = bb[2:3 * k:3]
                                # hotlint: ok(alloc) — the genexps and the
                                # enumerate below amortize over k >= batch_min
                                # events per allocation; that is the point of
                                # the vectorized batch.
                                cur = np.fromiter(
                                    (t.cur_chunk for t in threads_b),  # hotlint: ok(alloc)
                                    dtype=np.float64, count=k,
                                )
                                su = np.fromiter(
                                    (t.slice_used for t in threads_b),  # hotlint: ok(alloc)
                                    dtype=np.float64, count=k,
                                )
                                su += cur
                                boundary = su >= ts_edge
                                if boundary.any():
                                    su = np.where(boundary, 0.0, su)
                                    bl = boundary.tolist()
                                else:
                                    bl = None
                                pend = np.fromiter(
                                    (t.pending_busy for t in threads_b),  # hotlint: ok(alloc)
                                    dtype=np.float64, count=k,
                                )
                                chunk = np.minimum(pend, timeslice - su)
                                su_l = su.tolist()
                                chunk_l = chunk.tolist()
                                pend_l = (pend - chunk).tolist()
                                when_l = (now + chunk).tolist()
                                s = eng._seq
                                for i, t in enumerate(threads_b):  # hotlint: ok(alloc)
                                    if ring_busy_period:
                                        # Same interleave as the scalar
                                        # EV_BUSY handler: record, then
                                        # process, per completion.
                                        if ring_busy_period == 1:
                                            ring_add_raw(
                                                TR_BUSY, now, t.tid, t.pu
                                            )
                                        else:
                                            left = ring_cd[TR_BUSY] - 1
                                            if left:
                                                ring_cd[TR_BUSY] = left
                                            else:
                                                ring_cd[TR_BUSY] = (
                                                    ring_busy_period
                                                )
                                                ring_add_raw(
                                                    TR_BUSY, now, t.tid, t.pu
                                                )
                                    t.slice_used = su_l[i]
                                    if bl is not None and bl[i]:
                                        t.slices_run += 1
                                    t.pending_busy = pend_l[i]
                                    c = chunk_l[i]
                                    t.cur_chunk = c
                                    t.counters.busy_cycles += c
                                    obs_pu_busy[t.pu] += c
                                    s += 1
                                    w = when_l[i]
                                    b = buckets_l.get(w)
                                    if b is None:
                                        buckets_l[w] = [s, EV_BUSY, t]
                                        push(wheap_l, w)
                                    else:
                                        b.append(s)
                                        b.append(EV_BUSY)
                                        b.append(t)
                                eng._seq = s
                                bi = 3 * k
                                processed += k
                                obs_kinds[EV_BUSY] += k
                    continue
                if ev_kind == EV_BUSY:
                    # The hottest kind: a busy chunk ended. Either the
                    # quantum continues (fall through to the pump) or the
                    # boundary logic decides preemption/rebalance.
                    thread = payload
                    if ring_busy_period:
                        if ring_busy_period == 1:
                            ring_add_raw(TR_BUSY, now, thread.tid, thread.pu)
                        else:
                            left = ring_cd[TR_BUSY] - 1
                            if left:
                                ring_cd[TR_BUSY] = left
                            else:
                                ring_cd[TR_BUSY] = ring_busy_period
                                ring_add_raw(
                                    TR_BUSY, now, thread.tid, thread.pu
                                )
                    su = thread.slice_used + thread.cur_chunk
                    if su < ts_edge:
                        thread.slice_used = su
                        pb = thread.pending_busy
                        if pb > 0.0:  # inline advance(): pb > 0 known
                            remaining = timeslice - su
                            chunk = pb if pb <= remaining else remaining
                            thread.pending_busy = pb - chunk
                            thread.counters.busy_cycles += chunk
                            obs_pu_busy[thread.pu] += chunk
                            thread.cur_chunk = chunk
                            eng._seq = s2 = eng._seq + 1
                            w2 = now + chunk
                            b2 = buckets_l.get(w2)
                            if b2 is None:
                                buckets_l[w2] = [s2, EV_BUSY, thread]
                                push(wheap_l, w2)
                            else:
                                b2.append(s2)
                                b2.append(EV_BUSY)
                                b2.append(thread)
                            continue
                    else:
                        if not busy_boundary(thread):
                            continue
                elif ev_kind == EV_STEP:
                    thread = payload
                    pb = thread.pending_busy
                    if pb > 0.0:  # inline advance(): pb > 0 known
                        remaining = timeslice - thread.slice_used
                        chunk = pb if pb <= remaining else remaining
                        thread.pending_busy = pb - chunk
                        thread.counters.busy_cycles += chunk
                        obs_pu_busy[thread.pu] += chunk
                        thread.cur_chunk = chunk
                        eng._seq = s2 = eng._seq + 1
                        w2 = now + chunk
                        b2 = buckets_l.get(w2)
                        if b2 is None:
                            buckets_l[w2] = [s2, EV_BUSY, thread]
                            push(wheap_l, w2)
                        else:
                            b2.append(s2)
                            b2.append(EV_BUSY)
                            b2.append(thread)
                        continue
                elif ev_kind == EV_DRAIN:
                    drain(payload)
                    continue
                else:  # EV_CALL
                    eng._events_processed = processed
                    payload()
                    continue

                # ---- op pump: resume the generator and price ops until
                # one costs cycles. This is `_step` inlined into the main
                # loop so the hot path runs on this frame's fast locals
                # with no per-event function call.
                gen = thread.gen
                counters = thread.counters
                is_compute = thread.kind == "compute"
                ops = 0
                resets = 0
                while True:
                    try:
                        sv = thread.send_value
                        if sv is None:
                            op = next(gen)
                        else:
                            thread.send_value = None
                            op = gen.send(sv)
                    except StopIteration:
                        finish(thread)
                        break
                    except Exception:
                        finish(thread, True)
                        raise
                    # Exact-class identity chain first (no ops are subclassed
                    # anywhere in the tree); the dict only catches user
                    # subclasses, cached after one isinstance resolution.
                    cls = op.__class__
                    if cls is cls_touch:
                        code = 0
                    elif cls is cls_compute:
                        code = 1
                    elif cls is cls_wait:
                        code = 2
                    elif cls is cls_spawn:
                        code = 3
                    elif cls is cls_yield:
                        code = 4
                    else:
                        code = op_code.get(cls)
                        if code is None:
                            for base in _OP_BASES:
                                if isinstance(op, base):
                                    code = op_code[base]
                                    op_code[cls] = code
                                    break
                            else:
                                raise SimulationError(
                                    f"{thread.name} yielded unknown op {op!r}"
                                )
                    if code == 0:  # Touch
                        buf = op.buffer
                        nbytes = op.nbytes
                        if nbytes is None:
                            nbytes = buf.size
                        if notify_touch:
                            # Same observation point as _step: the request
                            # size before clamping, priced right after.
                            for fn in notify_touch:
                                fn(thread, buf, nbytes, op.write)
                        pu = thread.pu
                        if nbytes <= 0:
                            if buf.home_numa is None:
                                buf.home_numa = pu_numa[pu]
                            busy = 0.0
                        else:
                            # int nbytes/size promote exactly in float
                            # arithmetic, so no float() conversion: every
                            # derived quantity is bit-identical.
                            nb = nbytes
                            size = buf.size
                            if nb > size:
                                nb = size
                            l3_idx = pu_l3[pu]
                            l3 = l3s[l3_idx]
                            buf_id = buf.buf_id
                            od = l3._resident
                            resident = od.get(buf_id, 0.0)
                            if resident >= size:
                                # Steady-state all-hit touch: the buffer is
                                # entirely resident (== size exactly — the
                                # install clamp is min()), so every miss term
                                # is exactly 0.0 and adding it is the float
                                # identity; install degenerates to the LRU
                                # bump. Only hit pricing, write invalidation
                                # and sibling contention remain.
                                lines_hit = nb / line
                                busy = lines_hit * l3_hit_cy
                                counters.l3_hits += lines_hit
                                counters.memory_cycles += busy
                                counters.bytes_touched += nb
                                cur = od.pop(buf_id)
                                od[buf_id] = cur
                                if op.write and winv:
                                    present = presence.get(buf_id)
                                    if present and (
                                        len(present) > 1 or l3_idx not in present
                                    ):
                                        # sorted() fires only on writes to
                                        # cross-L3-shared buffers and the
                                        # presence sets are a handful of L3
                                        # indices; determinism of the
                                        # invalidation order is worth it.
                                        for idx in sorted(present):  # hotlint: ok(alloc)
                                            if idx != l3_idx:
                                                l3s[idx].invalidate(buf_id)
                                if is_compute and sib_compute[pu]:
                                    busy *= htc
                            else:
                                accessor = pu_numa[pu]
                                home = buf.home_numa
                                if home is None:
                                    home = accessor
                                    buf.home_numa = home
                                # resident < size in this branch, so the
                                # object path's >1 clamp cannot fire.
                                hit_fraction = resident / size
                                hit_bytes = nb * hit_fraction
                                miss_bytes = nb - hit_bytes
                                lines_hit = hit_bytes / line
                                lines_miss = miss_bytes / line
                                hit_cycles = lines_hit * l3_hit_cy
                                miss_cycles = (
                                    lines_miss * miss_cost[accessor][home]
                                )
                                busy = hit_cycles + miss_cycles
                                counters.l3_hits += lines_hit
                                counters.l3_misses += lines_miss
                                counters.stalled_cycles += miss_cycles * stall_f
                                counters.memory_cycles += busy
                                counters.bytes_touched += nb
                                if accessor != home:
                                    counters.remote_bytes += miss_bytes
                                cap = l3.capacity
                                if nb > cap:
                                    l3.invalidate(buf_id)
                                    if op.write and winv:
                                        present = presence.get(buf_id)
                                        if present and (
                                            len(present) > 1
                                            or l3_idx not in present
                                        ):
                                            # Same deterministic-order pump
                                            # as the all-hit branch above.
                                            for idx in sorted(present):  # hotlint: ok(alloc)
                                                if idx != l3_idx:
                                                    l3s[idx].invalidate(buf_id)
                                else:
                                    inst = resident + miss_bytes
                                    if inst > size:
                                        inst = size
                                    # Inline L3State.install (+touch_lru: the
                                    # pop/reinsert below already moves buf_id
                                    # to the LRU tail, so move_to_end is a
                                    # no-op).
                                    if inst > cap:
                                        inst = cap
                                    cur = resident
                                    if cur > 0.0:
                                        del od[buf_id]
                                    used = l3.used - cur
                                    tgt = cur if cur >= inst else inst
                                    if tgt > cap:
                                        tgt = cap
                                    while used + tgt > cap and od:
                                        ev_id = next(iter(od))
                                        ev_bytes = od.pop(ev_id)
                                        used -= ev_bytes
                                        p = presence.get(ev_id)
                                        if p is not None:
                                            p.discard(l3_idx)
                                    if used + tgt > cap:
                                        tgt = cap - used
                                    od[buf_id] = tgt
                                    l3.used = used + tgt
                                    ps = presence.get(buf_id)
                                    if ps is None:
                                        # Fresh singleton: no other L3 can
                                        # hold the buffer, so a write has
                                        # nothing to invalidate. Allocated
                                        # once per (buffer, first install),
                                        # not per event.
                                        presence[buf_id] = {l3_idx}  # hotlint: ok(alloc)
                                    else:
                                        ps.add(l3_idx)
                                        # l3_idx is in ps by construction:
                                        # the original presence test
                                        # reduces to len > 1.
                                        if op.write and winv and len(ps) > 1:
                                            # Same deterministic-order pump
                                            # as the all-hit branch above.
                                            for idx in sorted(ps):  # hotlint: ok(alloc)
                                                if idx != l3_idx:
                                                    l3s[idx].invalidate(
                                                        buf_id
                                                    )
                                if is_compute and sib_compute[pu]:
                                    busy *= htc
                                    extra = htc - 1.0
                                    counters.l3_misses += (
                                        miss_bytes / cache_line * extra
                                    )
                                    counters.stalled_cycles += (
                                        miss_cycles * extra * stall_f
                                    )
                                if miss_bytes > 0:
                                    free_at = node_free_at[home]
                                    start = now if now >= free_at else free_at
                                    end = start + miss_bytes * node_bw
                                    node_free_at[home] = end
                                    queued = end - now - busy
                                    if queued > 0:
                                        busy += queued
                                        counters.stalled_cycles += (
                                            queued * stall_f
                                        )
                                        counters.memory_cycles += queued
                        if busy > 0.0:  # inline advance()
                            remaining = timeslice - thread.slice_used
                            chunk = busy if busy <= remaining else remaining
                            thread.pending_busy = busy - chunk
                            counters.busy_cycles += chunk
                            obs_pu_busy[pu] += chunk
                            thread.cur_chunk = chunk
                            eng._seq = s2 = eng._seq + 1
                            w2 = now + chunk
                            b2 = buckets_l.get(w2)
                            if b2 is None:
                                buckets_l[w2] = [s2, EV_BUSY, thread]
                                push(wheap_l, w2)
                            else:
                                b2.append(s2)
                                b2.append(EV_BUSY)
                                b2.append(thread)
                            break
                        thread.pending_busy = 0.0
                        ops = 0
                        resets += 1
                        if resets > max_ops:
                            raise SimulationError(
                                f"{thread.name} issued {max_ops} zero-cost "
                                "ops — livelock?"
                            )
                        continue
                    elif code == 1:  # Compute
                        flops = op.flops
                        eff = op.efficiency
                        cycles = flops * cpf if eff == 1.0 else flops * cpf / eff
                        if is_compute and sib_compute[thread.pu]:
                            cycles *= htc
                        if thread.cpuset is None and os_jitter > 0:
                            cycles *= 1.0 + rng.uniform(-os_jitter, os_jitter)
                        counters.flops += flops
                        counters.compute_cycles += cycles
                        if cycles > 0.0:  # inline advance()
                            remaining = timeslice - thread.slice_used
                            chunk = cycles if cycles <= remaining else remaining
                            thread.pending_busy = cycles - chunk
                            counters.busy_cycles += chunk
                            obs_pu_busy[thread.pu] += chunk
                            thread.cur_chunk = chunk
                            eng._seq = s2 = eng._seq + 1
                            w2 = now + chunk
                            b2 = buckets_l.get(w2)
                            if b2 is None:
                                buckets_l[w2] = [s2, EV_BUSY, thread]
                                push(wheap_l, w2)
                            else:
                                b2.append(s2)
                                b2.append(EV_BUSY)
                                b2.append(thread)
                            break
                        thread.pending_busy = 0.0
                        ops = 0
                        resets += 1
                        if resets > max_ops:
                            raise SimulationError(
                                f"{thread.name} issued {max_ops} zero-cost "
                                "ops — livelock?"
                            )
                        continue
                    elif code == 2:  # Wait
                        event = op.event
                        if event.count > 0:
                            event.count -= 1
                            ops += 1
                            if ops >= max_ops:
                                raise SimulationError(
                                    f"{thread.name} issued {max_ops} "
                                    "untimed ops — livelock?"
                                )
                            continue
                        thread.state = "blocked"
                        thread.waiting_on = event
                        event.waiters.append(thread)
                        if notify_block:
                            for fn in notify_block:
                                fn(thread, event)
                        if trace_rec is not None:
                            trace_rec(now, thread.tid, "block", event.name)
                        if ring_add is not None:
                            ring_add(TR_BLOCK, now, thread.tid, thread.pu)
                        release_pu(thread)
                        dispatch()
                        break
                    elif code == 3:  # Spawn
                        target = op.thread
                        if target.state in ("new", "unstarted"):
                            make_ready(target)
                        ops += 1
                        if ops >= max_ops:
                            raise SimulationError(
                                f"{thread.name} issued {max_ops} "
                                "untimed ops — livelock?"
                            )
                        continue
                    else:  # YieldCPU
                        # The object path routes this through _requeue, so
                        # it counts and traces as a preemption there too.
                        obs_preempts[0] += 1
                        if trace_rec is not None:
                            trace_rec(now, thread.tid, "preempt", "")
                        if ring_add is not None:
                            ring_add(TR_PREEMPT, now, thread.tid, thread.pu)
                        release_pu(thread)
                        make_ready(thread)
                        dispatch()
                        break
        finally:
            self._fast_signal = None
            eng.now = now
            eng._events_processed = processed
            self.memory.store_free_at(node_free_at)
            if buckets:
                # A max_cycles/budget stop (or an app raise mid-bucket) can
                # leave events in flight: convert them to typed re-entry
                # shims so engine.pending, manual engine.run() and the
                # next run_window() all keep working — the flat cores'
                # merge loops recognize the shims and rebuild their
                # kind-coded triples. The live bucket is still
                # registered; only its undrained tail is in flight.
                for w, b_l in buckets.items():
                    j0 = bi if blive and w == bwhen else 0
                    for j in range(j0, len(b_l), 3):
                        ev_kind = b_l[j + 1]
                        payload = b_l[j + 2]
                        if ev_kind == EV_CALL:
                            fn = payload
                        elif ev_kind == EV_STEP:
                            fn = _ReStep(self, payload)
                        elif ev_kind == EV_BUSY:
                            fn = _ReBusy(self, payload)
                        else:
                            fn = _ReDrain(self, payload)
                        heapq.heappush(eheap, (w, b_l[j], fn))
                buckets.clear()
                del when_heap[:]

    @property
    def elapsed_cycles(self) -> float:
        return self.engine.now

    @property
    def elapsed_seconds(self) -> float:
        return self.engine.now / self.clock_hz

    def total_counters(self) -> Counters:
        """Aggregate of all per-thread counters."""
        total = Counters()
        for t in self.threads:
            total.add(t.counters)
        return total

    def utilization(self) -> float:
        """Fraction of PU-cycles spent busy over the whole run."""
        if self.engine.now <= 0:
            return 0.0
        capacity = self.engine.now * self.topology.n_pus
        return min(1.0, self.total_counters().busy_cycles / capacity)

    def counters_by_kind(self, kind: str) -> Counters:
        total = Counters()
        for t in self.threads:
            if t.kind == kind:
                total.add(t.counters)
        return total

    # -- internals: readiness and dispatch ----------------------------------------

    def _trace(self, tag: str, thread: SimThread | None, detail: str = "") -> None:
        # Every scheduling transition of the object path funnels through
        # here, so this one site feeds both the legacy Trace and the
        # observer's ring (the batched core instruments the same points
        # inline in _run_batched).
        tid = thread.tid if thread is not None else -1
        if self.trace is not None:
            self.trace.record(self.engine.now, tid, tag, detail)
        obs = self.observer
        if obs is not None and obs.ring is not None:
            obs.ring.add(
                KIND_BY_NAME[tag], self.engine.now, tid,
                thread.pu if thread is not None else None,
            )

    def _notify_monitors(self, method: str, *args) -> None:
        for monitor in self.monitors:
            fn = getattr(monitor, method, None)
            if fn is not None:
                fn(*args)

    def _monitor_fns(self, method: str) -> list:
        """Bound listeners for one monitor hook.

        The drain loops capture one list per hook at setup (rebuilt on
        every ``run``/``run_window`` call, so attaching between windows
        works), turning a hook nobody implements into a single falsy
        branch per event instead of a getattr sweep over every monitor
        — that sweep was the bulk of the tapped-run overhead.
        """
        return [fn for m in self.monitors
                if (fn := getattr(m, method, None)) is not None]

    def _on_signal(self, event: SimEvent) -> None:
        # Called synchronously from app code; defer wakeups to the engine
        # so generator execution is never reentrant. While the batched
        # core is draining, route into its queue instead.
        fast = self._fast_signal
        if fast is not None:
            fast(event)
        else:
            self.engine.schedule(0.0, lambda: self._drain_event(event))

    def _drain_event(self, event: SimEvent) -> None:
        woke = False
        while event.count > 0 and event.waiters:
            thread = event.waiters.pop(0)
            event.count -= 1
            thread.waiting_on = None
            self._make_ready(thread)
            woke = True
        if woke:
            self._dispatch()

    def _make_ready(self, thread: SimThread) -> None:
        if thread.state in ("done",):
            raise SimulationError(f"cannot restart finished thread {thread.name}")
        thread.state = "ready"
        self._ready.append(thread)
        self._trace("ready", thread)

    def _dispatch(self) -> None:
        obs = self.observer
        if obs is not None and obs.queue_depths is not None:
            depths = obs.queue_depths
            d = len(self._ready)
            last = len(depths) - 1
            depths[d if d < last else last] += 1
        progressed = True
        while progressed and self._ready:
            progressed = False
            for thread in list(self._ready):
                pu = self.scheduler.place(thread, rebalance=thread.needs_rebalance)
                if pu is None:
                    continue
                self._ready.remove(thread)
                thread.needs_rebalance = False
                self._start_on(thread, pu)
                progressed = True

    def _start_on(self, thread: SimThread, pu: int) -> None:
        overhead = 0.0
        if self._pu_last_tid.get(pu) != thread.tid:
            thread.counters.context_switches += 1
            overhead += self.model.context_switch_cycles
        if thread.last_pu is not None and thread.last_pu != pu:
            thread.counters.cpu_migrations += 1
            overhead += self.model.migration_cycles
        self.scheduler.occupy(pu, thread)
        self._pu_last_tid[pu] = thread.tid
        thread.state = "running"
        thread.pu = pu
        thread.last_pu = pu
        self._trace("run", thread, f"pu={pu}")
        self.engine.schedule(overhead, lambda: self._step(thread))

    def _release_pu(self, thread: SimThread) -> None:
        if thread.pu is None:
            raise SimulationError(f"{thread.name} holds no PU")
        self.scheduler.release(thread.pu)
        thread.pu = None

    # -- internals: generator stepping ----------------------------------------------

    def _step(self, thread: SimThread) -> None:
        """Advance the generator until a timed/blocking op or completion."""
        if thread.pending_busy > 0.0:
            self._run_busy(thread, thread.pending_busy, resumed=True)
            return
        max_ops = self.limits.max_ops_per_step
        for _ in range(max_ops):
            try:
                if thread.send_value is None:
                    # Plain iterators of ops are accepted alongside
                    # generators; next() covers both.
                    op = next(thread.gen)
                else:
                    op = thread.gen.send(thread.send_value)
            except StopIteration:
                self._finish(thread)
                return
            except Exception:
                # Surface app bugs with the thread identity attached.
                self._finish(thread, crashed=True)
                raise
            thread.send_value = None
            if isinstance(op, Compute):
                cycles = self._price_compute(thread, op)
                thread.counters.flops += op.flops
                thread.counters.compute_cycles += cycles
                self._run_busy(thread, cycles)
                return
            if isinstance(op, Touch):
                nbytes = op.nbytes if op.nbytes is not None else op.buffer.size
                if self.monitors:
                    self._notify_monitors(
                        "on_touch", thread, op.buffer, nbytes, op.write
                    )
                priced = self.caches.touch(
                    thread.pu, op.buffer, nbytes, write=op.write,
                    counters=thread.counters,
                )
                busy = priced.cycles
                # Sibling compute threads share the core's L1/L2 and
                # load/store units: interleaved streams defeat line reuse,
                # so the latency portion scales and the extra refetches
                # surface as additional L3 misses (the miss inflation of
                # the native rows in Tables II-IV).
                if thread.kind == "compute" and self._sibling_compute_active(thread):
                    busy *= self.model.ht_contention
                    extra = self.model.ht_contention - 1.0
                    thread.counters.l3_misses += (
                        priced.miss_bytes / self.model.cache_line * extra
                    )
                    thread.counters.stalled_cycles += (
                        priced.miss_cycles * extra * self.model.stall_fraction
                    )
                if priced.miss_bytes > 0:
                    # FIFO service at the home node's memory controller:
                    # the touch cannot complete before the node has
                    # delivered the missed bytes.
                    horizon = self.memory.reserve_bandwidth(
                        priced.home_numa, priced.miss_bytes, self.engine.now
                    )
                    queued = horizon - self.engine.now - busy
                    if queued > 0:
                        busy += queued
                        thread.counters.stalled_cycles += (
                            queued * self.model.stall_fraction
                        )
                        thread.counters.memory_cycles += queued
                self._run_busy(thread, busy)
                return
            if isinstance(op, Wait):
                event = op.event
                if event.try_consume():
                    continue
                thread.state = "blocked"
                thread.waiting_on = event
                event.waiters.append(thread)
                if self.monitors:
                    self._notify_monitors("on_block", thread, event)
                self._trace("block", thread, event.name)
                self._release_pu(thread)
                self._dispatch()
                return
            if isinstance(op, Spawn):
                target = op.thread
                if target.state in ("new", "unstarted"):
                    self._make_ready(target)
                continue
            if isinstance(op, YieldCPU):
                self._requeue(thread)
                return
            raise SimulationError(f"{thread.name} yielded unknown op {op!r}")
        raise SimulationError(
            f"{thread.name} issued {max_ops} untimed ops — livelock?"
        )

    def _price_compute(self, thread: SimThread, op: Compute) -> float:
        cycles = op.flops * self.model.cycles_per_flop / op.efficiency
        # SMT contention bites when two *compute* threads share a core;
        # light control threads neither suffer nor inflict it (the paper's
        # rationale for reserving siblings for control).
        if thread.kind == "compute" and self._sibling_compute_active(thread):
            cycles *= self.model.ht_contention
        if thread.cpuset is None and self.model.os_jitter > 0:
            jitter = self._rng.uniform(-self.model.os_jitter, self.model.os_jitter)
            cycles *= 1.0 + jitter
        return cycles

    def _sibling_compute_active(self, thread: SimThread) -> bool:
        if thread.pu is None:
            return False
        for sib in self._sibling_pus[thread.pu]:
            other = self.scheduler.thread_on(sib)
            if other is not None and other.kind == "compute":
                return True
        return False

    def _run_busy(self, thread: SimThread, cycles: float, *, resumed: bool = False) -> None:
        """Occupy the PU for *cycles*, chopped at the timeslice boundary."""
        if cycles <= 0.0:
            thread.pending_busy = 0.0
            self._step(thread)
            return
        remaining_slice = self.model.timeslice_cycles - thread.slice_used
        chunk = min(cycles, remaining_slice)
        thread.pending_busy = cycles - chunk
        thread.counters.busy_cycles += chunk
        obs = self.observer
        if obs is not None and obs.pu_busy is not None:
            obs.pu_busy[thread.pu] += chunk
        self.engine.schedule(chunk, lambda: self._busy_done(thread, chunk))

    def _busy_done(self, thread: SimThread, chunk: float) -> None:
        obs = self.observer
        if obs is not None and obs.ring is not None:
            obs.ring.add(TR_BUSY, self.engine.now, thread.tid, thread.pu)
        thread.slice_used += chunk
        at_boundary = thread.slice_used >= self.model.timeslice_cycles - 1e-9
        if not at_boundary:
            if thread.pending_busy > 0:
                self._run_busy(thread, thread.pending_busy, resumed=True)
            else:
                self._step(thread)
            return
        # Quantum expired: account a slice and decide preemption/migration.
        thread.slices_run += 1
        thread.slice_used = 0.0
        rebalance_due = (
            thread.cpuset is None
            and thread.slices_run % self.model.rebalance_slices == 0
        )
        contender = self._contender_for(thread.pu)
        if rebalance_due or contender:
            thread.needs_rebalance = rebalance_due
            self._requeue(thread)
            return
        if thread.pending_busy > 0:
            self._run_busy(thread, thread.pending_busy, resumed=True)
        else:
            self._step(thread)

    def _contender_for(self, pu: int | None) -> bool:
        if pu is None:
            return False
        for t in self._ready:
            if t.cpuset is None or pu in t.cpuset:
                return True
        return False

    def _requeue(self, thread: SimThread) -> None:
        obs = self.observer
        if obs is not None and obs.preempts is not None:
            obs.preempts[0] += 1
        self._trace("preempt", thread)
        self._release_pu(thread)
        self._make_ready(thread)
        self._dispatch()

    def _finish(self, thread: SimThread, *, crashed: bool = False) -> None:
        thread.state = "done"
        if self.monitors:
            self._notify_monitors("on_finish", thread)
        self._trace("crash" if crashed else "done", thread)
        if thread.pu is not None:
            self._release_pu(thread)
        self._dispatch()

    # -- convenience --------------------------------------------------------------

    def seconds(self, cycles: float) -> float:
        return cycles / self.clock_hz

    def threads_by_kind(self, kind: str) -> Iterable[SimThread]:
        return (t for t in self.threads if t.kind == kind)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<SimMachine {self.topology.name} t={self.engine.now:.3g}cy "
            f"threads={len(self.threads)}>"
        )
