"""The simulated machine: threads × PUs × caches × OS, under one clock.

:class:`SimMachine` is the façade the runtimes (ORWL, OpenMP-model) build
on. Usage::

    machine = SimMachine(smp12e5())
    buf = machine.allocate(1 << 20, "halo")
    done = machine.event("done")

    def worker():
        yield Compute(1e9)
        yield Touch(buf, write=True)
        done.signal()

    machine.add_thread("w0", worker(), cpuset=Bitmap.single(0))
    machine.run()
    machine.elapsed_seconds  # virtual wall-clock

Execution model: each thread is a generator; CPU-consuming ops (Compute,
Touch) occupy the thread's PU for a priced duration, chopped at the OS
timeslice so preemption, hyperthread contention and rebalancing are
re-evaluated at quantum boundaries. Blocking ops free the PU.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.errors import DeadlockError, SimulationError
from repro.sim.cache import CacheSystem
from repro.sim.counters import Counters
from repro.sim.engine import Engine
from repro.sim.memory import Buffer, MemorySystem
from repro.sim.params import CostModel
from repro.sim.process import (
    Compute,
    SimEvent,
    SimThread,
    Spawn,
    ThreadGen,
    Touch,
    Wait,
    YieldCPU,
)
from repro.sim.scheduler import OSScheduler
from repro.sim.trace import Trace
from repro.topology.binding import validate_cpuset
from repro.topology.tree import Topology
from repro.util.bitmap import Bitmap
from repro.util.rng import make_rng

__all__ = ["SimMachine"]

#: Safety guard: max zero-cost ops a thread may issue without consuming time.
MAX_OPS_PER_STEP = 100_000
#: Default event budget for :meth:`SimMachine.run`.
DEFAULT_MAX_EVENTS = 20_000_000


class SimMachine:
    """A virtual NUMA machine executing simulated threads."""

    def __init__(
        self,
        topology: Topology,
        model: CostModel | None = None,
        *,
        os_policy: str | None = None,
        seed: int = 0,
        trace: bool = False,
    ) -> None:
        self.topology = topology
        self.model = model or CostModel()
        self.engine = Engine()
        self.memory = MemorySystem(topology, self.model)
        self.caches = CacheSystem(topology, self.model, self.memory)
        self._rng = make_rng(seed)
        self.scheduler = OSScheduler(
            topology,
            self.memory,
            policy=os_policy,
            rng=self._rng,
            migrate_prob=self.model.migrate_prob,
            wakeup_migrate_prob=self.model.wakeup_migrate_prob,
        )
        self.threads: list[SimThread] = []
        #: Dynamic-analysis monitors (see repro.analyze.dynamic). Duck
        #: typed: any of ``on_touch(thread, buffer, nbytes, write)``,
        #: ``on_block(thread, event)``, ``on_finish(thread)`` is called
        #: when present. Empty for normal runs — zero overhead.
        self.monitors: list = []
        self.trace: Trace | None = Trace() if trace else None
        self.clock_hz = float(topology.root.attrs.get("clock_hz", 2.6e9))
        self._ready: deque[SimThread] = deque()
        self._pu_last_tid: dict[int, int] = {}
        self._sibling_pus: dict[int, list[int]] = {
            pu.os_index: [s.os_index for s in topology.siblings_of_pu(pu.os_index)]
            for pu in topology.pus
        }
        self._ran = False

    # -- construction API ---------------------------------------------------

    def allocate(
        self,
        size: int,
        label: str = "",
        *,
        home_numa: int | None = None,
        data=None,
    ) -> Buffer:
        """Allocate a simulated buffer (see :class:`MemorySystem`)."""
        return self.memory.allocate(size, label, home_numa=home_numa, data=data)

    def event(self, name: str = "", count: int = 0) -> SimEvent:
        """A counting event wired to this machine's wakeup mechanism."""
        return SimEvent(name, count, notify=self._on_signal)

    def add_thread(
        self,
        name: str,
        gen: ThreadGen,
        *,
        kind: str = "compute",
        cpuset: Bitmap | None = None,
        start: bool = True,
    ) -> SimThread:
        """Register a simulated thread; started at :meth:`run` by default.

        ``cpuset=None`` leaves the thread to the OS scheduler policy;
        a cpuset restricts (binds) it, like ``hwloc_set_cpubind``.
        """
        if kind not in ("compute", "control"):
            raise SimulationError(f"unknown thread kind {kind!r}")
        if cpuset is not None:
            validate_cpuset(self.topology, cpuset)
        thread = SimThread(
            tid=len(self.threads), name=name, gen=gen, kind=kind, cpuset=cpuset
        )
        thread.state = "new" if start else "unstarted"
        self.threads.append(thread)
        return thread

    def bind_thread(self, thread: SimThread, cpuset: Bitmap | None) -> None:
        """Re-bind a registered thread (the affinity_set path)."""
        if cpuset is not None:
            validate_cpuset(self.topology, cpuset)
        thread.cpuset = cpuset

    # -- run loop -------------------------------------------------------------

    def run(
        self,
        *,
        max_cycles: float | None = None,
        max_events: int = DEFAULT_MAX_EVENTS,
        allow_incomplete: bool = False,
    ) -> float:
        """Execute until every thread finishes; returns elapsed seconds.

        Raises :class:`DeadlockError` if threads remain blocked with an
        empty event queue (unless *allow_incomplete*).
        """
        if self._ran:
            raise SimulationError("SimMachine.run may only be called once")
        self._ran = True
        for thread in self.threads:
            if thread.state == "new":
                self._make_ready(thread)
        self._dispatch()
        self.engine.run(max_cycles=max_cycles, max_events=max_events)
        leftover = [t for t in self.threads if t.state not in ("done", "unstarted")]
        if leftover and not allow_incomplete and max_cycles is None:
            blocked = ", ".join(
                f"{t.name}({t.state}"
                + (f" on {t.waiting_on.name!r}" if t.waiting_on else "")
                + ")"
                for t in leftover[:12]
            )
            raise DeadlockError(
                f"{len(leftover)} thread(s) never finished: {blocked}"
            )
        return self.elapsed_seconds

    @property
    def elapsed_cycles(self) -> float:
        return self.engine.now

    @property
    def elapsed_seconds(self) -> float:
        return self.engine.now / self.clock_hz

    def total_counters(self) -> Counters:
        """Aggregate of all per-thread counters."""
        total = Counters()
        for t in self.threads:
            total.add(t.counters)
        return total

    def utilization(self) -> float:
        """Fraction of PU-cycles spent busy over the whole run."""
        if self.engine.now <= 0:
            return 0.0
        capacity = self.engine.now * self.topology.n_pus
        return min(1.0, self.total_counters().busy_cycles / capacity)

    def counters_by_kind(self, kind: str) -> Counters:
        total = Counters()
        for t in self.threads:
            if t.kind == kind:
                total.add(t.counters)
        return total

    # -- internals: readiness and dispatch ----------------------------------------

    def _trace(self, tag: str, thread: SimThread | None, detail: str = "") -> None:
        if self.trace is not None:
            tid = thread.tid if thread is not None else -1
            self.trace.record(self.engine.now, tid, tag, detail)

    def _notify_monitors(self, method: str, *args) -> None:
        for monitor in self.monitors:
            fn = getattr(monitor, method, None)
            if fn is not None:
                fn(*args)

    def _on_signal(self, event: SimEvent) -> None:
        # Called synchronously from app code; defer wakeups to the engine
        # so generator execution is never reentrant.
        self.engine.schedule(0.0, lambda: self._drain_event(event))

    def _drain_event(self, event: SimEvent) -> None:
        woke = False
        while event.count > 0 and event.waiters:
            thread = event.waiters.pop(0)
            event.count -= 1
            thread.waiting_on = None
            self._make_ready(thread)
            woke = True
        if woke:
            self._dispatch()

    def _make_ready(self, thread: SimThread) -> None:
        if thread.state in ("done",):
            raise SimulationError(f"cannot restart finished thread {thread.name}")
        thread.state = "ready"
        self._ready.append(thread)
        self._trace("ready", thread)

    def _dispatch(self) -> None:
        progressed = True
        while progressed and self._ready:
            progressed = False
            for thread in list(self._ready):
                pu = self.scheduler.place(thread, rebalance=thread.needs_rebalance)
                if pu is None:
                    continue
                self._ready.remove(thread)
                thread.needs_rebalance = False
                self._start_on(thread, pu)
                progressed = True

    def _start_on(self, thread: SimThread, pu: int) -> None:
        overhead = 0.0
        if self._pu_last_tid.get(pu) != thread.tid:
            thread.counters.context_switches += 1
            overhead += self.model.context_switch_cycles
        if thread.last_pu is not None and thread.last_pu != pu:
            thread.counters.cpu_migrations += 1
            overhead += self.model.migration_cycles
        self.scheduler.occupy(pu, thread)
        self._pu_last_tid[pu] = thread.tid
        thread.state = "running"
        thread.pu = pu
        thread.last_pu = pu
        self._trace("run", thread, f"pu={pu}")
        self.engine.schedule(overhead, lambda: self._step(thread))

    def _release_pu(self, thread: SimThread) -> None:
        if thread.pu is None:
            raise SimulationError(f"{thread.name} holds no PU")
        self.scheduler.release(thread.pu)
        thread.pu = None

    # -- internals: generator stepping ----------------------------------------------

    def _step(self, thread: SimThread) -> None:
        """Advance the generator until a timed/blocking op or completion."""
        if thread.pending_busy > 0.0:
            self._run_busy(thread, thread.pending_busy, resumed=True)
            return
        for _ in range(MAX_OPS_PER_STEP):
            try:
                if thread.send_value is None:
                    # Plain iterators of ops are accepted alongside
                    # generators; next() covers both.
                    op = next(thread.gen)
                else:
                    op = thread.gen.send(thread.send_value)
            except StopIteration:
                self._finish(thread)
                return
            except Exception:
                # Surface app bugs with the thread identity attached.
                self._finish(thread, crashed=True)
                raise
            thread.send_value = None
            if isinstance(op, Compute):
                cycles = self._price_compute(thread, op)
                thread.counters.flops += op.flops
                thread.counters.compute_cycles += cycles
                self._run_busy(thread, cycles)
                return
            if isinstance(op, Touch):
                nbytes = op.nbytes if op.nbytes is not None else op.buffer.size
                if self.monitors:
                    self._notify_monitors(
                        "on_touch", thread, op.buffer, nbytes, op.write
                    )
                priced = self.caches.touch(
                    thread.pu, op.buffer, nbytes, write=op.write,
                    counters=thread.counters,
                )
                busy = priced.cycles
                # Sibling compute threads share the core's L1/L2 and
                # load/store units: interleaved streams defeat line reuse,
                # so the latency portion scales and the extra refetches
                # surface as additional L3 misses (the miss inflation of
                # the native rows in Tables II-IV).
                if thread.kind == "compute" and self._sibling_compute_active(thread):
                    busy *= self.model.ht_contention
                    extra = self.model.ht_contention - 1.0
                    thread.counters.l3_misses += (
                        priced.miss_bytes / self.model.cache_line * extra
                    )
                    thread.counters.stalled_cycles += (
                        priced.miss_cycles * extra * self.model.stall_fraction
                    )
                if priced.miss_bytes > 0:
                    # FIFO service at the home node's memory controller:
                    # the touch cannot complete before the node has
                    # delivered the missed bytes.
                    horizon = self.memory.reserve_bandwidth(
                        priced.home_numa, priced.miss_bytes, self.engine.now
                    )
                    queued = horizon - self.engine.now - busy
                    if queued > 0:
                        busy += queued
                        thread.counters.stalled_cycles += (
                            queued * self.model.stall_fraction
                        )
                        thread.counters.memory_cycles += queued
                self._run_busy(thread, busy)
                return
            if isinstance(op, Wait):
                event = op.event
                if event.try_consume():
                    continue
                thread.state = "blocked"
                thread.waiting_on = event
                event.waiters.append(thread)
                if self.monitors:
                    self._notify_monitors("on_block", thread, event)
                self._trace("block", thread, event.name)
                self._release_pu(thread)
                self._dispatch()
                return
            if isinstance(op, Spawn):
                target = op.thread
                if target.state in ("new", "unstarted"):
                    self._make_ready(target)
                continue
            if isinstance(op, YieldCPU):
                self._requeue(thread)
                return
            raise SimulationError(f"{thread.name} yielded unknown op {op!r}")
        raise SimulationError(
            f"{thread.name} issued {MAX_OPS_PER_STEP} untimed ops — livelock?"
        )

    def _price_compute(self, thread: SimThread, op: Compute) -> float:
        cycles = op.flops * self.model.cycles_per_flop / op.efficiency
        # SMT contention bites when two *compute* threads share a core;
        # light control threads neither suffer nor inflict it (the paper's
        # rationale for reserving siblings for control).
        if thread.kind == "compute" and self._sibling_compute_active(thread):
            cycles *= self.model.ht_contention
        if thread.cpuset is None and self.model.os_jitter > 0:
            jitter = self._rng.uniform(-self.model.os_jitter, self.model.os_jitter)
            cycles *= 1.0 + jitter
        return cycles

    def _sibling_compute_active(self, thread: SimThread) -> bool:
        if thread.pu is None:
            return False
        for sib in self._sibling_pus[thread.pu]:
            other = self.scheduler.thread_on(sib)
            if other is not None and other.kind == "compute":
                return True
        return False

    def _run_busy(self, thread: SimThread, cycles: float, *, resumed: bool = False) -> None:
        """Occupy the PU for *cycles*, chopped at the timeslice boundary."""
        if cycles <= 0.0:
            thread.pending_busy = 0.0
            self._step(thread)
            return
        remaining_slice = self.model.timeslice_cycles - thread.slice_used
        chunk = min(cycles, remaining_slice)
        thread.pending_busy = cycles - chunk
        thread.counters.busy_cycles += chunk
        self.engine.schedule(chunk, lambda: self._busy_done(thread, chunk))

    def _busy_done(self, thread: SimThread, chunk: float) -> None:
        thread.slice_used += chunk
        at_boundary = thread.slice_used >= self.model.timeslice_cycles - 1e-9
        if not at_boundary:
            if thread.pending_busy > 0:
                self._run_busy(thread, thread.pending_busy, resumed=True)
            else:
                self._step(thread)
            return
        # Quantum expired: account a slice and decide preemption/migration.
        thread.slices_run += 1
        thread.slice_used = 0.0
        rebalance_due = (
            thread.cpuset is None
            and thread.slices_run % self.model.rebalance_slices == 0
        )
        contender = self._contender_for(thread.pu)
        if rebalance_due or contender:
            thread.needs_rebalance = rebalance_due
            self._requeue(thread)
            return
        if thread.pending_busy > 0:
            self._run_busy(thread, thread.pending_busy, resumed=True)
        else:
            self._step(thread)

    def _contender_for(self, pu: int | None) -> bool:
        if pu is None:
            return False
        for t in self._ready:
            if t.cpuset is None or pu in t.cpuset:
                return True
        return False

    def _requeue(self, thread: SimThread) -> None:
        self._trace("preempt", thread)
        self._release_pu(thread)
        self._make_ready(thread)
        self._dispatch()

    def _finish(self, thread: SimThread, *, crashed: bool = False) -> None:
        thread.state = "done"
        if self.monitors:
            self._notify_monitors("on_finish", thread)
        self._trace("crash" if crashed else "done", thread)
        if thread.pu is not None:
            self._release_pu(thread)
        self._dispatch()

    # -- convenience --------------------------------------------------------------

    def seconds(self, cycles: float) -> float:
        return cycles / self.clock_hz

    def threads_by_kind(self, kind: str) -> Iterable[SimThread]:
        return (t for t in self.threads if t.kind == kind)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<SimMachine {self.topology.name} t={self.engine.now:.3g}cy "
            f"threads={len(self.threads)}>"
        )
