"""Sharded multi-machine simulation with conservative time windows.

One :class:`SimMachine` simulates one machine. A :class:`Scenario`
composes several of them — *shards* — connected by latency-labelled
:class:`Channel`\\ s, and :func:`run_sharded` advances all shards in
lockstep epochs so the composed system has one deterministic global
behaviour regardless of how many OS processes execute it.

Protocol (classic conservative / lookahead-bounded synchronization):

* The *window* ``W`` is the minimum channel latency in the scenario.
  Epoch ``k`` drains every shard to the horizon ``T_k = k*W`` via
  :meth:`SimMachine.run_window`.
* A message sent at virtual time ``t`` in epoch ``k`` (so
  ``T_{k-1} < t <= T_k``) over a channel of latency ``L >= W`` is
  delivered at ``t + L > T_k`` — strictly inside a *later* window.
  Exchanging outboxes only at epoch barriers therefore never delivers a
  message into a window that has already run: no shard can observe an
  effect out of order, and no rollback machinery is needed.
* Deliveries are injected into the destination engine *before* its next
  window, sorted by ``(t_deliver, src shard, send order)`` — a total
  order derived purely from simulation content, never from OS scheduling
  — so event seq numbers, and hence the full trace, are identical for
  any worker count.

Parallelism: shard ``i`` is owned by worker ``i % workers``. Workers are
long-lived forked processes holding their shards' machines across epochs
(state never crosses the pipe; only horizon commands, outbox tuples and
delivery tuples do). ``workers=1`` runs every shard inline in the parent
with zero process overhead — the reference execution the parallel runs
must fingerprint-match. ``concurrent.futures`` is deliberately not
reused here: pool tasks must be picklable and stateless per call,
whereas shard workers keep live machines and talk over dedicated pipes;
:func:`repro.parallel.default_jobs` still supplies the worker default so
``REPRO_JOBS`` means the same thing everywhere.

Programs are registered by name (:func:`register_program`) and built per
shard against a :class:`ShardContext`, which wires cross-shard channels
to ordinary :class:`~repro.sim.process.SimEvent` waits — simulated code
never sees the transport.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import DeadlockError, SimulationError
from repro.sim.machine import SimMachine, SimThread
from repro.sim.process import Compute, SimEvent, Touch, Wait
from repro.topology import machine_by_name
from repro.util.bitmap import Bitmap

__all__ = [
    "Channel",
    "ShardSpec",
    "Scenario",
    "ShardRunResult",
    "available_cpus",
    "register_program",
    "run_sharded",
    "halo_ring_scenario",
    "SHARD_PROGRAMS",
]


def available_cpus() -> int:
    """CPUs this process may actually use.

    ``sched_getaffinity`` where available (cgroup/taskset aware — the
    honest number for "can 4 workers really run in parallel here"),
    ``os.cpu_count()`` otherwise. ``run_sharded(workers="auto")`` and
    the ``shard_scaling`` bench gate both consult this, so a 1-CPU CI
    container records *why* it skipped the speedup claim instead of
    silently failing it.
    """
    import os

    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


# -- scenario description ------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Channel:
    """A directed cross-shard link with a fixed delivery latency (cycles).

    The latency is the *lookahead* the conservative protocol exploits:
    the smallest latency in a scenario bounds the window size, so links
    should carry honest transport delays (a cluster interconnect is
    many thousand cycles), not zero.
    """

    src: str
    dst: str
    name: str
    latency: float

    def __post_init__(self) -> None:
        if self.latency <= 0:
            raise SimulationError(
                f"channel {self.src}->{self.dst} {self.name!r}: latency must "
                f"be positive (it is the protocol lookahead), got {self.latency}"
            )
        if self.src == self.dst:
            raise SimulationError(
                f"channel {self.name!r}: src and dst are both {self.src!r}; "
                "intra-shard signalling needs no channel"
            )


@dataclass(frozen=True, slots=True)
class ShardSpec:
    """One machine of the scenario.

    ``topology`` is a preset *name* (see ``repro.topology.list_machines``)
    rather than a tree so specs stay trivially picklable — each worker
    materializes its own tree after fork. ``params`` feeds the program
    builder; entries must be hashable/serializable scalars.
    """

    name: str
    program: str
    topology: str = "smp12e5"
    seed: int = 0
    os_policy: str | None = None
    params: tuple[tuple[str, object], ...] = ()

    @staticmethod
    def make(
        name: str,
        program: str,
        *,
        topology: str = "smp12e5",
        seed: int = 0,
        os_policy: str | None = None,
        **params,
    ) -> "ShardSpec":
        """Keyword-friendly constructor (params dict → sorted tuple)."""
        return ShardSpec(
            name=name,
            program=program,
            topology=topology,
            seed=seed,
            os_policy=os_policy,
            params=tuple(sorted(params.items())),
        )


@dataclass(frozen=True, slots=True)
class Scenario:
    """A multi-machine simulation: shards plus the channels between them."""

    shards: tuple[ShardSpec, ...]
    channels: tuple[Channel, ...] = ()

    def __post_init__(self) -> None:
        if not self.shards:
            raise SimulationError("scenario has no shards")
        names = [s.name for s in self.shards]
        if len(set(names)) != len(names):
            raise SimulationError(f"duplicate shard names in {names}")
        known = set(names)
        for ch in self.channels:
            for end in (ch.src, ch.dst):
                if end not in known:
                    raise SimulationError(
                        f"channel {ch.src}->{ch.dst} {ch.name!r} references "
                        f"unknown shard {end!r}"
                    )

    def shard_index(self, name: str) -> int:
        for i, s in enumerate(self.shards):
            if s.name == name:
                return i
        raise SimulationError(f"unknown shard {name!r}")

    @property
    def window(self) -> float:
        """The conservative lookahead: the minimum channel latency."""
        if not self.channels:
            raise SimulationError(
                "scenario has no channels, so no lookahead bound exists; "
                "pass an explicit window= to run_sharded"
            )
        return min(ch.latency for ch in self.channels)


# -- program registry ----------------------------------------------------------

#: name → builder(ctx). Builders create threads on ``ctx.machine`` and
#: may capture ``ctx`` in generator closures (for send/inbox access).
SHARD_PROGRAMS: dict[str, Callable[["ShardContext"], None]] = {}


def register_program(name: str):
    """Decorator: register a shard program builder under *name*."""

    def deco(fn: Callable[["ShardContext"], None]):
        if name in SHARD_PROGRAMS:
            raise SimulationError(f"shard program {name!r} already registered")
        SHARD_PROGRAMS[name] = fn
        return fn

    return deco


class ShardContext:
    """What a program builder sees: its machine plus the channel wiring.

    Incoming channels appear as counting :class:`SimEvent`\\ s (one
    ``signal`` per delivered message); outgoing messages are emitted
    with :meth:`send`, which stamps the current virtual time and fans
    out over every out-channel bearing that name. The transport —
    epochs, pipes, workers — is invisible to simulated code.
    """

    def __init__(
        self,
        scenario: Scenario,
        shard_idx: int,
        machine: SimMachine,
    ) -> None:
        spec = scenario.shards[shard_idx]
        self.scenario = scenario
        self.shard_idx = shard_idx
        self.name = spec.name
        self.n_shards = len(scenario.shards)
        self.machine = machine
        self.params = dict(spec.params)
        #: (src shard name, channel name) → delivery event.
        self.inbox: dict[tuple[str, str], SimEvent] = {}
        #: out-channel name → list of (channel index, Channel).
        self._out: dict[str, list[tuple[int, Channel]]] = {}
        #: messages produced this epoch: (t_send, channel index).
        self.outbox: list[tuple[float, int]] = []
        for ci, ch in enumerate(scenario.channels):
            if ch.dst == self.name:
                self.inbox[(ch.src, ch.name)] = machine.event(
                    f"{ch.src}->{ch.dst}:{ch.name}"
                )
            if ch.src == self.name:
                self._out.setdefault(ch.name, []).append((ci, ch))

    def inbox_events(self, name: str) -> list[SimEvent]:
        """All in-channel events named *name*, in scenario shard order."""
        order = {s.name: i for i, s in enumerate(self.scenario.shards)}
        found = [
            (order[src], ev)
            for (src, cname), ev in self.inbox.items()
            if cname == name
        ]
        found.sort(key=lambda t: t[0])
        return [ev for _, ev in found]

    def send(self, name: str) -> int:
        """Send one message on every out-channel named *name*.

        Stamped with the engine's current virtual time (both flat cores
        keep ``engine.now`` current per event bucket). Returns the
        number of channels the message fanned out to.
        """
        chans = self._out.get(name)
        if not chans:
            raise SimulationError(
                f"shard {self.name!r} has no outgoing channel named {name!r}"
            )
        now = self.machine.engine.now
        for ci, _ch in chans:
            self.outbox.append((now, ci))
        return len(chans)


# -- built-in programs ---------------------------------------------------------


@register_program("halo_wide")
def _build_halo_wide(ctx: ShardContext) -> None:
    """Wide bulk-synchronous compute with neighbour halo exchange.

    ``width`` bound worker threads (one per PU, wrapping) each run
    ``iters`` rounds of Compute+Touch, then rendezvous with a control
    thread that emits a ``halo`` message and waits for every incoming
    ``halo`` before releasing the next round — a distributed-stencil
    skeleton whose per-epoch work is wide enough to vectorize on the
    SoA core and dwarf the barrier exchange.
    """
    m = ctx.machine
    width = int(ctx.params.get("width", 32))
    iters = int(ctx.params.get("iters", 4))
    flops = float(ctx.params.get("flops", 1e7))
    nbytes = int(ctx.params.get("bytes", 1 << 16))
    pus = [pu.os_index for pu in m.topology.pus]
    done = m.event("round_done")
    go = m.event("round_go")
    halo_in = ctx.inbox_events("halo")

    def worker(buf):
        def gen():
            for _ in range(iters):
                yield Compute(flops)
                yield Touch(buf, nbytes, write=True)
                done.signal()
                yield Wait(go)

        return gen

    for i in range(width):
        buf = m.allocate(nbytes, f"halo_buf{i}")
        cpuset = Bitmap.single(pus[i % len(pus)])
        m.add_thread(f"w{i}", worker(buf)(), cpuset=cpuset)

    def coordinator():
        for _ in range(iters):
            for _ in range(width):
                yield Wait(done)
            ctx.send("halo")
            for ev in halo_in:
                yield Wait(ev)
            go.signal(width)

    m.add_thread("coord", coordinator(), kind="control")


def halo_ring_scenario(
    n_shards: int,
    *,
    topology: str = "smp12e5",
    width: int = 32,
    iters: int = 4,
    flops: float = 1e7,
    nbytes: int = 1 << 16,
    latency: float = 5e7,
    seed: int = 0,
) -> Scenario:
    """A ring of ``halo_wide`` shards exchanging halos with neighbours."""
    if n_shards < 2:
        raise SimulationError("halo ring needs at least 2 shards")
    shards = tuple(
        ShardSpec.make(
            f"m{i}",
            "halo_wide",
            topology=topology,
            seed=seed + i,
            width=width,
            iters=iters,
            flops=flops,
            bytes=nbytes,
        )
        for i in range(n_shards)
    )
    links: list[Channel] = []
    seen: set[tuple[str, str]] = set()
    for i in range(n_shards):
        for j in ((i - 1) % n_shards, (i + 1) % n_shards):
            key = (f"m{i}", f"m{j}")
            if key not in seen:
                seen.add(key)
                links.append(Channel(key[0], key[1], "halo", latency))
    return Scenario(shards, tuple(links))


# -- per-shard runner (lives inside a worker) ----------------------------------


def _thread_done(t: SimThread) -> bool:
    return t.state in ("done", "unstarted")


class _ShardRunner:
    """One shard's machine plus its window/exchange bookkeeping."""

    def __init__(self, scenario: Scenario, shard_idx: int) -> None:
        spec = scenario.shards[shard_idx]
        builder = SHARD_PROGRAMS.get(spec.program)
        if builder is None:
            raise SimulationError(
                f"unknown shard program {spec.program!r}; known: "
                f"{sorted(SHARD_PROGRAMS)}"
            )
        self.machine = SimMachine(
            machine_by_name(spec.topology),
            os_policy=spec.os_policy,
            seed=spec.seed,
        )
        self.ctx = ShardContext(scenario, shard_idx, self.machine)
        builder(self.ctx)

    def window(
        self,
        until: float,
        deliveries: list[tuple[float, str, str]],
        max_events: int | None,
    ) -> tuple[int, list[tuple[float, int]], bool, int]:
        """Inject *deliveries*, drain to *until*; report (Δevents, outbox,
        done, pending)."""
        eng = self.machine.engine
        for t_deliver, src, cname in deliveries:
            ev = self.ctx.inbox.get((src, cname))
            if ev is None:
                raise SimulationError(
                    f"shard {self.ctx.name!r}: delivery on unknown channel "
                    f"({src!r}, {cname!r})"
                )
            if t_deliver <= eng.now:
                raise SimulationError(
                    f"conservative window violated: delivery at {t_deliver} "
                    f"but shard {self.ctx.name!r} already at {eng.now}"
                )
            eng.schedule_at(t_deliver, ev.signal)
        before = eng.events_processed
        self.machine.run_window(until, max_events=max_events)
        out = self.ctx.outbox
        self.ctx.outbox = []
        done = all(_thread_done(t) for t in self.machine.threads) and (
            eng.pending == 0
        )
        return eng.events_processed - before, out, done, eng.pending

    def finish(self) -> dict:
        m = self.machine
        return {
            "elapsed_seconds": m.elapsed_seconds,
            "now_cycles": m.engine.now,
            "events_processed": m.engine.events_processed,
            "threads": [
                {
                    "name": t.name,
                    "state": t.state,
                    "slices_run": t.slices_run,
                    "busy_cycles": t.counters.busy_cycles,
                    "l3_misses": t.counters.l3_misses,
                    "stalled_cycles": t.counters.stalled_cycles,
                    "context_switches": t.counters.context_switches,
                    "cpu_migrations": t.counters.cpu_migrations,
                }
                for t in m.threads
            ],
        }


# -- workers -------------------------------------------------------------------


class _InlineWorker:
    """Runs its shards in the calling process (workers=1 / no fork)."""

    def __init__(self, scenario: Scenario, shard_idxs: list[int]) -> None:
        self.shard_idxs = shard_idxs
        self._runners = {i: _ShardRunner(scenario, i) for i in shard_idxs}
        self._reply: dict | None = None

    def submit_window(self, until, deliveries_by_shard, max_events) -> None:
        self._reply = {
            i: r.window(until, deliveries_by_shard.get(i, []), max_events)
            for i, r in self._runners.items()
        }

    def collect(self) -> dict:
        reply, self._reply = self._reply, None
        return reply

    def finish(self) -> dict:
        return {i: r.finish() for i, r in self._runners.items()}

    def close(self) -> None:
        self._runners.clear()


def _worker_main(conn, scenario: Scenario, shard_idxs: list[int]) -> None:
    """Child process loop: build shards, serve window/finish commands."""
    try:
        runners = {i: _ShardRunner(scenario, i) for i in shard_idxs}
        conn.send(("ready", None))
        while True:
            cmd = conn.recv()
            op = cmd[0]
            if op == "window":
                _, until, deliveries_by_shard, max_events = cmd
                reply = {
                    i: r.window(
                        until, deliveries_by_shard.get(i, []), max_events
                    )
                    for i, r in runners.items()
                }
                conn.send(("ok", reply))
            elif op == "finish":
                conn.send(("ok", {i: r.finish() for i, r in runners.items()}))
            elif op == "stop":
                break
            else:  # pragma: no cover
                conn.send(("error", f"unknown command {op!r}"))
                break
    except BaseException as exc:  # pragma: no cover - transported to parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        conn.close()


class _ProcessWorker:
    """A long-lived forked worker owning a subset of the shards."""

    def __init__(self, scenario: Scenario, shard_idxs: list[int]) -> None:
        import multiprocessing as mp

        ctx = mp.get_context("fork")
        self.shard_idxs = shard_idxs
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(
            target=_worker_main, args=(child, scenario, shard_idxs), daemon=True
        )
        self._proc.start()
        child.close()
        self._expect("ready")

    def _expect(self, want: str):
        status, payload = self._conn.recv()
        if status == "error":
            raise SimulationError(f"shard worker failed: {payload}")
        if status != want:  # pragma: no cover
            raise SimulationError(f"shard worker protocol: {status!r}")
        return payload

    def submit_window(self, until, deliveries_by_shard, max_events) -> None:
        mine = {
            i: deliveries_by_shard.get(i, []) for i in self.shard_idxs
        }
        self._conn.send(("window", until, mine, max_events))

    def collect(self) -> dict:
        return self._expect("ok")

    def finish(self) -> dict:
        self._conn.send(("finish",))
        return self._expect("ok")

    def close(self) -> None:
        try:
            self._conn.send(("stop",))
        except Exception:
            pass
        self._proc.join(timeout=5)
        if self._proc.is_alive():  # pragma: no cover
            self._proc.terminate()
        self._conn.close()


def _fork_available() -> bool:
    import multiprocessing as mp

    return "fork" in mp.get_all_start_methods()


# -- the driver ----------------------------------------------------------------


@dataclass(slots=True, eq=False)
class ShardRunResult:
    """Outcome of a sharded run.

    ``fingerprint`` hashes the complete deterministic content — every
    shard's final thread states and counters, the full message log, and
    the epoch count — and is invariant under ``workers`` by protocol
    construction; the determinism tests assert exactly that.
    """

    fingerprint: str
    epochs: int
    messages: int
    elapsed_seconds: float
    wall_seconds: float
    workers: int
    window: float
    per_shard: dict = field(default_factory=dict)

    @property
    def events_processed(self) -> int:
        return sum(s["events_processed"] for s in self.per_shard.values())


def _route_order(r: tuple) -> tuple:
    """(t_deliver, src shard idx, send seq) — the content-only total
    order on cross-shard messages. Module-level so the epoch loop does
    not rebuild a closure per iteration."""
    return (r[0], r[1], r[2])


def _fingerprint(per_shard: dict, message_log: list, epochs: int) -> str:
    payload = {
        "shards": per_shard,
        "messages": message_log,
        "epochs": epochs,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def run_sharded(
    scenario: Scenario,
    *,
    workers: int | str | None = None,
    window: float | None = None,
    max_epochs: int = 100_000,
    max_events_per_window: int | None = None,
) -> ShardRunResult:
    """Run a multi-machine scenario to completion.

    ``workers=None`` follows :func:`repro.parallel.default_jobs`
    (``REPRO_JOBS``, default 1); ``workers="auto"`` sizes the pool to
    :func:`available_cpus` (capped at the shard count like any explicit
    value). ``window`` overrides the lookahead bound — it must not
    exceed the minimum channel latency or the conservative guarantee
    breaks (enforced). The global trace fingerprint is identical for
    every ``workers`` value.
    """
    if workers is None:
        # Lazy: repro.parallel pulls in repro.experiments (which imports
        # the sim package) — a module-level import here would cycle.
        from repro.parallel.executor import default_jobs

        workers = default_jobs()
    elif workers == "auto":
        workers = available_cpus()
    n_shards = len(scenario.shards)
    workers = max(1, min(int(workers), n_shards))
    W = scenario.window if window is None else float(window)
    if W <= 0:
        raise SimulationError(f"window must be positive, got {W}")
    if scenario.channels and W > scenario.window:
        raise SimulationError(
            f"window {W} exceeds the minimum channel latency "
            f"{scenario.window}; the conservative protocol requires "
            "window <= lookahead"
        )

    # Shard i → worker i % workers (round-robin keeps neighbouring ring
    # shards on different workers, balancing the common topologies).
    assignment: list[list[int]] = [[] for _ in range(workers)]
    for i in range(n_shards):
        assignment[i % workers].append(i)

    use_procs = workers > 1 and _fork_available()
    pool = [
        (_ProcessWorker if use_procs else _InlineWorker)(scenario, idxs)
        for idxs in assignment
        if idxs
    ]
    name_of = [s.name for s in scenario.shards]
    dst_idx = [scenario.shard_index(ch.dst) for ch in scenario.channels]

    t0 = time.perf_counter()
    message_log: list = []
    epochs = 0
    total_messages = 0
    try:
        pending_deliveries: dict[int, list] = {}
        while True:
            if epochs >= max_epochs:
                raise SimulationError(
                    f"sharded run exceeded max_epochs={max_epochs} "
                    f"(window={W}); raise max_epochs or check for livelock"
                )
            epochs += 1
            until = epochs * W
            for w in pool:
                w.submit_window(until, pending_deliveries, max_events_per_window)
            replies: dict[int, tuple] = {}  # hotlint: ok(alloc) — one dict per epoch, not per event
            for w in pool:
                replies.update(w.collect())

            # Merge outboxes into next-epoch deliveries with a total
            # order independent of worker count and pipe arrival order.
            routed: list[tuple[float, int, int, int, str, float]] = []
            for si in range(n_shards):
                _, out, _, _ = replies[si]
                for seq, (t_send, ci) in enumerate(out):  # hotlint: ok(alloc) — seq numbers define the message order
                    ch = scenario.channels[ci]
                    td = t_send + ch.latency
                    if td <= until:
                        raise SimulationError(
                            f"lookahead violated: message on "
                            f"{ch.src}->{ch.dst} {ch.name!r} sent at "
                            f"{t_send} would deliver at {td} <= T_k={until}"
                        )
                    routed.append((td, si, seq, ci, ch.name, t_send))
            routed.sort(key=_route_order)
            pending_deliveries = {}  # hotlint: ok(alloc) — per-epoch routing table
            for td, si, _seq, ci, cname, t_send in routed:
                pending_deliveries.setdefault(dst_idx[ci], []).append(
                    (td, name_of[si], cname)
                )
                message_log.append(
                    [epochs, name_of[si], scenario.channels[ci].dst,
                     cname, t_send, td]
                )
            total_messages += len(routed)

            all_done = all(replies[si][2] for si in range(n_shards))  # hotlint: ok(alloc) — O(shards) per epoch
            if all_done and not routed:
                break
            processed = sum(replies[si][0] for si in range(n_shards))  # hotlint: ok(alloc) — O(shards) per epoch
            any_pending = any(replies[si][3] for si in range(n_shards))  # hotlint: ok(alloc) — O(shards) per epoch
            if processed == 0 and not routed and not any_pending:
                stuck = [  # hotlint: ok(alloc) — deadlock error path, cold
                    name_of[si]
                    for si in range(n_shards)
                    if not replies[si][2]
                ]
                raise DeadlockError(
                    f"sharded deadlock at epoch {epochs}: shards "
                    f"{stuck} are blocked with no events pending and no "
                    "messages in flight"
                )

        per_shard: dict = {}
        for w in pool:
            for si, res in w.finish().items():
                per_shard[name_of[si]] = res
    finally:
        for w in pool:
            w.close()
    wall = time.perf_counter() - t0
    elapsed = max(s["elapsed_seconds"] for s in per_shard.values())
    return ShardRunResult(
        fingerprint=_fingerprint(per_shard, message_log, epochs),
        epochs=epochs,
        messages=total_messages,
        elapsed_seconds=elapsed,
        wall_seconds=wall,
        workers=len(pool),
        window=W,
        per_shard=per_shard,
    )
