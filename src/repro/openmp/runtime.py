"""The fork-join runtime: a persistent team, parallel_for, barriers.

The application is a *master body* — a generator taking the runtime —
that interleaves serial sections (allocations, initialization: all
first-touched on the master's node, the classic OpenMP NUMA trap) with
``yield from omp.parallel_for(n_items, body_fn)`` regions. Workers are
persistent (the usual OpenMP pool); each region statically chunks the
iteration space, the master executes its own share, and an implicit
barrier ends the region.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass

from repro.errors import OpenMPError
from repro.openmp.affinity import omp_binding
from repro.sim.counters import Counters
from repro.sim.machine import SimMachine
from repro.sim.memory import Buffer
from repro.sim.params import CostModel
from repro.sim.process import Wait
from repro.topology.tree import Topology
from repro.util.bitmap import Bitmap

__all__ = ["OpenMPRuntime", "OMPResult"]

ChunkBody = Callable[[int], Iterator]


@dataclass
class OMPResult:
    """Outcome of one OpenMP-model execution."""

    seconds: float
    counters: Counters
    n_threads: int
    binding: str | None
    machine: SimMachine

    @property
    def gflops(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.counters.flops / self.seconds / 1e9


class OpenMPRuntime:
    """A fork-join team of ``n_threads`` simulated threads."""

    def __init__(
        self,
        topology: Topology,
        n_threads: int,
        *,
        binding: str | None = None,
        comm=None,
        model: CostModel | None = None,
        os_policy: str | None = None,
        seed: int = 0,
        trace: bool = False,
        core: str = "auto",
        observer=None,
    ) -> None:
        """*binding* accepts the standard knobs of
        :func:`repro.openmp.affinity.omp_binding` plus ``"treematch"``,
        which runs the paper's Algorithm 1 on a caller-supplied
        :class:`~repro.treematch.commmatrix.CommunicationMatrix` over the
        team threads — the generalization the paper's conclusion claims
        ("can be integrated in other runtime systems as soon as the
        programming model provides the necessary abstraction").
        """
        if n_threads < 1:
            raise OpenMPError(f"n_threads must be >= 1, got {n_threads}")
        self.topology = topology
        self.n_threads = n_threads
        self.binding = binding
        self.machine = SimMachine(
            topology, model, os_policy=os_policy, seed=seed, trace=trace,
            core=core, observer=observer,
        )
        if binding == "treematch":
            if comm is None:
                raise OpenMPError(
                    "binding='treematch' needs a communication matrix "
                    "over the team threads (comm=...)"
                )
            if comm.order != n_threads:
                raise OpenMPError(
                    f"comm matrix order {comm.order} != team size {n_threads}"
                )
            from repro.treematch.mapping import treematch_map

            placement = treematch_map(topology, comm)
            self._binding_map = dict(placement.thread_to_pu)
            self.placement = placement
        else:
            self._binding_map = omp_binding(topology, n_threads, binding)
            self.placement = None
        self._go = [self.machine.event(f"omp:go{i}") for i in range(n_threads)]
        self._done = self.machine.event("omp:done")
        self._work: list[tuple[ChunkBody, range] | None] = [None] * n_threads
        self._shutdown = False
        self._ran = False
        #: Region observers, called in virtual time as
        #: ``cb("fork", region_index, n_items)`` when a ``parallel_for``
        #: deals work to the team and ``cb("join", region_index,
        #: n_items)`` when its implicit barrier completes. Empty by
        #: default — the master body pays nothing unless a cross-check
        #: (see :mod:`repro.analyze.openmp`) registers a callback.
        self.on_region: list[Callable[[str, int, int], None]] = []
        self._region_index = 0

    # -- app-facing API ---------------------------------------------------------

    def allocate(self, size: int, label: str = "", *, data=None) -> Buffer:
        """Allocate a shared buffer (first-touch homing applies)."""
        return self.machine.allocate(size, label, data=data)

    def parallel_for(self, n_items: int, body: ChunkBody, *, schedule: str = "static"):
        """Generator: a ``#pragma omp parallel for`` region.

        *body(item)* is a generator run once per iteration index. Static
        scheduling deals contiguous item ranges to the team; the region
        ends with an implicit barrier. Must be yielded from the master
        body (or a nested generator of it).
        """
        if schedule != "static":
            raise OpenMPError(f"only static scheduling is modeled, got {schedule!r}")
        if n_items < 0:
            raise OpenMPError("n_items must be >= 0")
        region = self._region_index
        self._region_index = region + 1
        for cb in self.on_region:
            cb("fork", region, n_items)
        shares = _static_chunks(n_items, self.n_threads)
        for wid in range(1, self.n_threads):
            self._work[wid] = (body, shares[wid])
            self._go[wid].signal()
        # Master executes its own share inline.
        for item in shares[0]:
            yield from body(item)
        # Implicit barrier: one done per worker.
        for _ in range(1, self.n_threads):
            yield Wait(self._done)
        for cb in self.on_region:
            cb("join", region, n_items)

    # -- execution -----------------------------------------------------------------

    def prepare_run(
        self, master_body: Callable[["OpenMPRuntime"], Iterator]
    ) -> list:
        """Spawn and bind the team without starting the simulator.

        The head half of :meth:`run`, split out so windowed drivers (the
        adaptive controller of :mod:`repro.affinity`) can own the run
        loop and finish via :meth:`_build_result`. Returns the team's
        :class:`SimThread` objects, master first.
        """
        if self._ran:
            raise OpenMPError("run() may only be called once")
        self._ran = True

        def master():
            gen = master_body(self)
            if gen is not None:
                yield from gen
            self._shutdown = True
            for wid in range(1, self.n_threads):
                self._go[wid].signal()

        threads = [self.machine.add_thread("omp:master", master())]
        for wid in range(1, self.n_threads):
            threads.append(
                self.machine.add_thread(f"omp:w{wid}", self._worker(wid))
            )
        if self._binding_map is not None:
            for wid, pu in self._binding_map.items():
                self.machine.bind_thread(threads[wid], Bitmap.single(pu))
        return threads

    def _build_result(self, seconds: float) -> OMPResult:
        """Package the post-run state; the tail half of :meth:`run`."""
        return OMPResult(
            seconds=seconds,
            counters=self.machine.total_counters(),
            n_threads=self.n_threads,
            binding=self.binding,
            machine=self.machine,
        )

    def run(self, master_body: Callable[["OpenMPRuntime"], Iterator]) -> OMPResult:
        """Spawn the team, run *master_body(self)* to completion."""
        self.prepare_run(master_body)
        seconds = self.machine.run()
        return self._build_result(seconds)

    def _worker(self, wid: int):
        while True:
            yield Wait(self._go[wid])
            if self._shutdown:
                return
            work = self._work[wid]
            if work is None:
                raise OpenMPError(f"worker {wid} woken without work")
            body, items = work
            self._work[wid] = None
            for item in items:
                yield from body(item)
            self._done.signal()


def _static_chunks(n_items: int, n_threads: int) -> list[range]:
    """Contiguous near-equal ranges, first threads get the remainder."""
    base, extra = divmod(n_items, n_threads)
    shares: list[range] = []
    start = 0
    for t in range(n_threads):
        size = base + (1 if t < extra else 0)
        shares.append(range(start, start + size))
        start += size
    return shares
