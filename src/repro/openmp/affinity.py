"""OpenMP/KMP binding strategies mapped onto baseline placements.

``omp_binding(topology, n_threads, strategy)`` returns the PU for each
team thread, or ``None`` for the unbound default:

===========  ====================================================
strategy     meaning
===========  ====================================================
``None``     no binding; the OS scheduler decides (native runs)
``close``    OMP_PLACES=cores, OMP_PROC_BIND=close
``spread``   OMP_PLACES=cores, OMP_PROC_BIND=spread
``compact``  KMP_AFFINITY=granularity=core,compact (HT siblings first)
``scatter``  KMP_AFFINITY=granularity=core,scatter
===========  ====================================================
"""

from __future__ import annotations

from repro.errors import OpenMPError
from repro.topology.tree import Topology
from repro.treematch.strategies import (
    compact_placement,
    cores_close_placement,
    cores_spread_placement,
    scatter_placement,
)

__all__ = ["omp_binding", "OMP_STRATEGIES"]

OMP_STRATEGIES = (None, "close", "spread", "compact", "scatter")


def omp_binding(
    topology: Topology, n_threads: int, strategy: str | None
) -> dict[int, int] | None:
    """Thread→PU map for *strategy*, or None for the unbound default."""
    if strategy is None:
        return None
    if strategy == "close":
        placement = cores_close_placement(topology, n_threads)
    elif strategy == "spread":
        placement = cores_spread_placement(topology, n_threads)
    elif strategy == "compact":
        placement = compact_placement(topology, n_threads)
    elif strategy == "scatter":
        placement = scatter_placement(topology, n_threads)
    else:
        raise OpenMPError(
            f"unknown OpenMP binding {strategy!r}; known: {OMP_STRATEGIES}"
        )
    return dict(placement.thread_to_pu)
