"""An MKL-like multithreaded DGEMM on the OpenMP model (Fig. 5 baseline).

Computes ``C = A · B`` (n×n doubles) with the team parallelizing over row
blocks of C. As in the real library usage of the paper, the caller
allocates A, B and C once (master thread ⇒ homed on the master's NUMA
node) and every thread streams the whole of B — which is why the MKL
curves stop scaling past one socket regardless of compact/scatter binding.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import OpenMPError
from repro.openmp.runtime import OMPResult, OpenMPRuntime
from repro.sim.params import CostModel
from repro.sim.process import Compute, Touch
from repro.topology.tree import Topology

__all__ = ["threaded_dgemm", "DGEMM_EFFICIENCY"]

#: Relative efficiency of the DGEMM inner kernel vs the scalar cost model
#: (vectorized FMA kernels retire several flops per cycle).
DGEMM_EFFICIENCY = 2.3

#: Column-panel width (elements) used for the inner blocking.
PANEL = 2048


def threaded_dgemm(
    topology: Topology,
    n: int,
    n_threads: int,
    *,
    binding: str | None = None,
    model: CostModel | None = None,
    seed: int = 0,
    attach: Callable[[OpenMPRuntime], None] | None = None,
) -> OMPResult:
    """Run the modeled MKL DGEMM; returns the team's :class:`OMPResult`."""
    if n <= 0:
        raise OpenMPError(f"matrix order must be positive, got {n}")
    omp = OpenMPRuntime(
        topology, n_threads, binding=binding, model=model, seed=seed
    )
    bytes_total = n * n * 8

    def master(rt: OpenMPRuntime):
        a = rt.allocate(bytes_total, "A")
        b = rt.allocate(bytes_total, "B")
        c = rt.allocate(bytes_total, "C")
        # Library-user initialization: the master touches everything, so
        # all three matrices are homed on its NUMA node.
        yield Touch(a, write=True)
        yield Touch(b, write=True)
        yield Touch(c, write=True)

        rows_per_chunk = max(1, n // (n_threads * 4))
        n_chunks = (n + rows_per_chunk - 1) // rows_per_chunk
        panel_bytes = n * PANEL * 8

        def chunk(idx):
            rows = min(rows_per_chunk, n - idx * rows_per_chunk)
            a_bytes = rows * n * 8
            c_bytes = rows * n * 8
            yield Touch(a, a_bytes)
            # Stream B panel by panel; every thread pulls the whole of B
            # from wherever it is homed.
            done_cols = 0
            while done_cols < n:
                cols = min(PANEL, n - done_cols)
                yield Touch(b, panel_bytes * cols / PANEL)
                yield Compute(2.0 * rows * n * cols, efficiency=DGEMM_EFFICIENCY)
                done_cols += cols
            yield Touch(c, c_bytes, write=True)

        yield from rt.parallel_for(n_chunks, chunk)

    if attach is not None:
        attach(omp)
    return omp.run(master)
