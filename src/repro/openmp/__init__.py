"""OpenMP-like fork-join runtime model (the paper's reference point).

Implements the semantics the paper compares against: a persistent thread
team, ``parallel_for`` with static chunking and an implicit barrier,
master-thread allocation (⇒ first-touch NUMA homing on the master's
node), and the standard affinity knobs — ``OMP_PROC_BIND=close/spread``
over ``OMP_PLACES=cores`` and Intel's ``KMP_AFFINITY=compact/scatter``.

None of these strategies see the application's communication structure;
that blindness is what Sections II and VI of the paper demonstrate.
"""

from repro.openmp.affinity import omp_binding
from repro.openmp.mkl import threaded_dgemm
from repro.openmp.runtime import OMPResult, OpenMPRuntime

__all__ = ["OpenMPRuntime", "OMPResult", "omp_binding", "threaded_dgemm"]
