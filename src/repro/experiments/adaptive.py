"""The adaptive-remapping experiment: phase-shifting ORWL workload.

The static pipeline of the paper computes one placement at
``orwl_schedule()`` time and never revisits it. This experiment builds
the program where that is the wrong call: 32 tasks on SMP20E7 walk
through three communication phases — *stencil* (row rings of a 4x8
task grid), *transpose* (column-pair rings) and *reduce* (diagonal-pair
rings) — whose group partitions are mutually orthogonal: any placement
that co-locates one phase's rings on the 8-core NUMA nodes cuts almost
every edge of the other two. A static placement is therefore fast in
exactly one phase and pays remote-L3 misses in the other two, while
the :class:`~repro.affinity.controller.AdaptiveController` re-derives
the placement at each phase boundary and stays fast everywhere.

Buffers are sized so the resident set of a co-located node (8 x 2 MiB)
fits the 24 MiB L3 while every remote reader both misses (the owner's
per-iteration write invalidates remote copies) and blows the capacity,
which makes each phase strongly placement-sensitive — matched phases
run ~5x faster than mismatched ones.

``run_experiment()`` runs the four static placements (one per declared
phase plus the aggregate matrix) and the adaptive controller on the
same program and reports the paired speedup; ``repro-paper adapt``
renders it. All runs are deterministic: the speedups quoted in
EXPERIMENTS.md are exact simulator cycle counts, not wall-clock noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.affinity import AdaptiveController, ControllerConfig
from repro.errors import AffinityError, ReproError
from repro.orwl.runtime import Runtime
from repro.sim.process import Compute
from repro.topology.machines import smp20e7

__all__ = [
    "PHASES",
    "DECLARED",
    "AdaptSetup",
    "phase_groups",
    "phase_partner",
    "build_runtime",
    "adapt_config",
    "run_static",
    "run_windowed",
    "run_adaptive",
    "run_experiment",
]

#: The three communication phases, in program order.
PHASES = ("stencil", "transpose", "reduce")
#: Static declarations: each phase's matrix plus the all-phase average.
DECLARED = PHASES + ("aggregate",)

_N = 32  # 4x8 task grid; the group math below is specific to it.
_ROWS, _COLS = 4, 8
_NODE = 8  # PUs (= cores) per NUMA node on SMP20E7


def phase_groups(phase: int) -> list[list[int]]:
    """The four 8-task groups of *phase* (0=stencil, 1=transpose, 2=reduce).

    Tasks live on a 4x8 grid, ``i = x * 8 + y``. Phase 0 groups by row,
    phase 1 by column pair (column-major order), phase 2 by diagonal
    pair ``d = (y - x) % 8``. Any two partitions intersect in at most
    four tasks, so no single node assignment serves two phases.
    """
    if phase == 0:
        return [[x * _COLS + y for y in range(_COLS)] for x in range(_ROWS)]
    if phase == 1:
        return [
            [x * _COLS + (2 * c + k) for k in range(2) for x in range(_ROWS)]
            for c in range(_COLS // 2)
        ]
    if phase == 2:
        out = []
        for e in range(_COLS // 2):
            grp = []
            for k in range(2):
                d = 2 * e + k
                grp.extend(x * _COLS + ((x + d) % _COLS) for x in range(_ROWS))
            out.append(grp)
        return out
    raise ReproError(f"phase must be 0, 1 or 2, got {phase}")


_PARTNER: dict = {}
for _p in range(3):
    for _grp in phase_groups(_p):
        for _idx, _i in enumerate(_grp):
            _PARTNER[(_i, _p)] = _grp[(_idx + 1) % len(_grp)]


def phase_partner(i: int, phase: int) -> int:
    """Task *i*'s ring successor within its *phase* group."""
    try:
        return _PARTNER[(i, phase)]
    except KeyError:
        raise ReproError(f"no partner for task {i} phase {phase}") from None


@dataclass(frozen=True)
class AdaptSetup:
    """Workload knobs; the defaults are the published experiment.

    ``shift=False`` gives the phase-stable control program: identical
    structure and declared matrix, but the heavy traffic stays on the
    stencil partners throughout — the controller must do nothing on it
    (the zero-remap differential family and the overhead gate both run
    this variant).
    """

    iters_per_phase: int = 24
    heavy_bytes: int = 1 << 21
    light_bytes: int = 64
    compute_cycles: float = 2e5
    loc_bytes: int = 1 << 21
    seed: int = 1
    shift: bool = True

    def __post_init__(self) -> None:
        if self.iters_per_phase < 1:
            raise ReproError("iters_per_phase must be >= 1")
        if not (0 < self.light_bytes <= self.heavy_bytes <= self.loc_bytes):
            raise ReproError(
                "need 0 < light_bytes <= heavy_bytes <= loc_bytes"
            )


def adapt_config() -> ControllerConfig:
    """The controller tuning the experiment's numbers are quoted at.

    Windows of 2 Mcycles cover roughly one pipelined iteration of all
    32 tasks; two calibration windows absorb startup burstiness; two
    gather windows after a trigger let the estimator fill in the new
    phase's full ring edge set before TreeMatch runs.
    """
    return ControllerConfig(
        window_cycles=2e6, calibrate_windows=2, gather_windows=2
    )


def build_runtime(
    declared: str,
    setup: AdaptSetup | None = None,
    *,
    marks: dict | None = None,
) -> Runtime:
    """Build the phase-shift program with *declared* traffic hints.

    *declared* names the phase whose partners are declared heavy (what
    a programmer profiling only that phase would write down), or
    ``"aggregate"`` for the per-phase average — the best honest static
    declaration. If *marks* is given, the simulated cycle at which each
    phase completes (all tasks past their last iteration of it) is
    recorded under keys 0, 1, 2.
    """
    setup = setup or AdaptSetup()
    if declared not in DECLARED:
        raise ReproError(
            f"unknown declared phase {declared!r}; choose from {DECLARED}"
        )
    heavy, light = setup.heavy_bytes, setup.light_bytes
    rt = Runtime(smp20e7(), affinity=True, seed=setup.seed)
    tasks = [rt.task(f"t{i}") for i in range(_N)]
    locs = [t.location("slot", setup.loc_bytes) for t in tasks]
    handles: dict[int, list] = {}
    for i, t in enumerate(tasks):
        t.write_handle(locs[i], iterative=True)
        handles[i] = [
            t.read_handle(locs[phase_partner(i, p)], iterative=True)
            for p in range(3)
        ]
    declared_idx = dict(zip(PHASES, range(3))).get(declared)
    for i in range(_N):
        for k in range(3):
            if declared_idx is None:  # aggregate
                handles[i][k].traffic = (heavy + 2 * light) / 3.0
            else:
                handles[i][k].traffic = heavy if k == declared_idx else light
    ipp = setup.iters_per_phase
    shift = setup.shift
    remaining = [_N] * 3
    machine = rt.machine

    def make_body(i: int):
        hs = handles[i]

        def body(op):
            hw = op.handles[0]
            for it in range(3 * ipp):
                ph = it // ipp if shift else 0
                yield from hw.acquire()
                yield hw.touch()
                yield Compute(setup.compute_cycles)
                hw.release()
                for k, h in enumerate(hs):
                    yield from h.acquire()
                    yield h.touch(heavy if k == ph else light)
                    h.release()
                if marks is not None and it % ipp == ipp - 1:
                    done = it // ipp
                    remaining[done] -= 1
                    if remaining[done] == 0:
                        marks[done] = machine.engine.now

        return body

    for i, t in enumerate(tasks):
        t.set_body(make_body(i))
    rt.schedule()
    return rt


def run_static(declared: str, setup: AdaptSetup | None = None) -> dict:
    """One static run; returns seconds and per-phase cycle counts."""
    marks: dict = {}
    rt = build_runtime(declared, setup, marks=marks)
    result = rt.run()
    return {
        "declared": declared,
        "seconds": result.seconds,
        "phase_cycles": _phase_cycles(marks),
    }


def run_windowed(declared: str, setup: AdaptSetup | None = None,
                 *, window_cycles: float | None = None) -> dict:
    """One *uncontrolled* windowed run: same epoch substrate as the
    controller (``run_window`` at the same horizon spacing) but no
    telemetry, no drift scoring, no remaps.

    This is the honest baseline for the controller-overhead probe: the
    windowed drain pays a per-epoch teardown/re-entry cost that exists
    with or without a controller on top (the shard driver pays it too),
    so comparing the controlled run against it isolates what the
    *controller* adds. ``docs/ADAPTIVE.md`` reports both components.
    """
    if window_cycles is None:
        window_cycles = adapt_config().window_cycles
    marks: dict = {}
    rt = build_runtime(declared, setup, marks=marks)
    rt.prepare_run()
    machine = rt.machine
    threads = machine.threads
    horizon = machine.engine.now + window_cycles
    windows = 0
    max_windows = ControllerConfig().max_windows
    while not all(t.state in ("done", "unstarted") for t in threads):
        if windows >= max_windows:
            raise AffinityError(
                f"uncontrolled windowed run exceeded {max_windows} windows"
            )
        machine.run_window(horizon)
        horizon += window_cycles
        windows += 1
    result = rt._build_result(machine.window_drained_at / machine.clock_hz)
    return {
        "declared": declared,
        "seconds": result.seconds,
        "phase_cycles": _phase_cycles(marks),
        "windows": windows,
    }


def run_adaptive(
    setup: AdaptSetup | None = None,
    *,
    config: ControllerConfig | None = None,
    registry=None,
) -> dict:
    """One adaptive run (initial declaration: stencil, like a profiler
    that only saw the first phase); returns seconds, per-phase cycles
    and the controller's remap decisions."""
    marks: dict = {}
    rt = build_runtime("stencil", setup, marks=marks)
    controller = AdaptiveController.for_orwl(
        rt, config=config or adapt_config(), registry=registry
    )
    result = controller.run()
    return {
        "seconds": result.seconds,
        "phase_cycles": _phase_cycles(marks),
        "remaps": [d.to_dict() for d in controller.decisions],
        "windows": controller.windows_run,
        "controller": controller,
    }


def _phase_cycles(marks: dict) -> list[float]:
    if sorted(marks) != [0, 1, 2]:
        return []
    return [marks[0], marks[1] - marks[0], marks[2] - marks[1]]


def run_experiment(setup: AdaptSetup | None = None,
                   config: ControllerConfig | None = None) -> dict:
    """Full comparison: every static declaration vs the controller.

    ``speedup`` is best-static seconds over adaptive seconds — the
    number gated (>= 1.1) by ``scripts/bench_repro.py --check``.
    """
    setup = setup or AdaptSetup()
    statics = {d: run_static(d, setup) for d in DECLARED}
    adaptive = run_adaptive(setup, config=config)
    best = min(statics.values(), key=lambda r: r["seconds"])
    return {
        "setup": {
            "iters_per_phase": setup.iters_per_phase,
            "heavy_bytes": setup.heavy_bytes,
            "loc_bytes": setup.loc_bytes,
            "shift": setup.shift,
        },
        "statics": {d: r["seconds"] for d, r in statics.items()},
        "phase_cycles": {d: r["phase_cycles"] for d, r in statics.items()},
        "adaptive_seconds": adaptive["seconds"],
        "adaptive_phase_cycles": adaptive["phase_cycles"],
        "remaps": adaptive["remaps"],
        "windows": adaptive["windows"],
        "best_static": best["declared"],
        "best_static_seconds": best["seconds"],
        "speedup": best["seconds"] / adaptive["seconds"],
    }


@dataclass
class _Row:  # small helper for the CLI rendering
    name: str
    seconds: float
    note: str = ""
    ratio: float = field(default=0.0)


def format_experiment(report: dict) -> str:
    """Plain-text rendering for ``repro-paper adapt``."""
    rows = [
        _Row(d, s, "declared " + d)
        for d, s in sorted(report["statics"].items(), key=lambda kv: kv[1])
    ]
    rows.append(_Row("adaptive", report["adaptive_seconds"],
                     f"{len(report['remaps'])} remap(s)"))
    best = report["best_static_seconds"]
    lines = ["phase-shift experiment (SMP20E7, 32 tasks, 3 phases)", ""]
    for row in rows:
        row.ratio = best / row.seconds
        lines.append(
            f"  {row.name:<12} {row.seconds * 1e3:8.3f} ms   "
            f"x{row.ratio:5.3f}   {row.note}"
        )
    lines.append("")
    for dec in report["remaps"]:
        lines.append(
            f"  remap @ window {dec['window']}: drift={dec['drift']:.3f} "
            f"moved={dec['moved']} "
            f"({'warm-started' if dec['warm'] else 'cold'} TreeMatch)"
        )
    lines.append(
        f"  adaptive speedup over best static ({report['best_static']}): "
        f"x{report['speedup']:.3f}"
    )
    return "\n".join(lines)
