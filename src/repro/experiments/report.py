"""Plain-text rendering of regenerated figures and tables."""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.runner import FigureResult
from repro.experiments.tables import CounterRow

__all__ = ["format_figure", "format_table", "format_counter_rows"]


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.3g}"
        return f"{v:,.2f}"
    return str(v)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], *, title: str = ""
) -> str:
    """Monospace table with right-aligned numeric columns."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    out = []
    if title:
        out.append(title)
    out.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    out.append("  ".join("-" * w for w in widths))
    for row in cells:
        out.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def format_figure(fig: FigureResult) -> str:
    """A figure as a table: one x column plus one column per series."""
    headers = [fig.xlabel] + [s.label for s in fig.series]
    xs = fig.series[0].x if fig.series else []
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [s.y[i] for s in fig.series])
    return format_table(headers, rows, title=f"{fig.fig_id}: {fig.title} [{fig.ylabel}]")


def format_counter_rows(title: str, rows: Sequence[CounterRow]) -> str:
    """Tables II-IV style counter rendering."""
    headers = [
        "Variant",
        "L3 misses",
        "Stalled cycles",
        "Context switches",
        "CPU migrations",
        "Time (s)",
    ]
    body = [
        [
            r.variant,
            r.l3_misses,
            r.stalled_cycles,
            r.context_switches,
            r.cpu_migrations,
            r.seconds,
        ]
        for r in rows
    ]
    return format_table(headers, body, title=title)
