"""Experiment harness: one entry point per table and figure of the paper.

* :mod:`repro.experiments.figures` — Fig. 1 (communication matrix),
  Fig. 2 (task allocation), Fig. 4 (LK23 scaling), Fig. 5 (matmul
  GFLOP/s), Fig. 6 (video FPS);
* :mod:`repro.experiments.tables` — Table I (machines) and the counter
  Tables II–IV;
* :mod:`repro.experiments.runner` — problem-scale selection
  (``REPRO_SCALE=quick|paper``) and shared run plumbing;
* :mod:`repro.experiments.report` — plain-text rendering of results.

* :mod:`repro.experiments.adaptive` — the phase-shift experiment for
  the online adaptive remapping controller (``repro-paper adapt``).

Benchmarks under ``benchmarks/`` call these and assert the paper's
qualitative shapes; EXPERIMENTS.md records paper-vs-measured numbers.
"""

from repro.experiments.adaptive import (
    AdaptSetup,
    adapt_config,
    build_runtime,
    format_experiment,
    run_adaptive,
    run_experiment,
    run_static,
    run_windowed,
)
from repro.experiments.figures import (
    fig1_comm_matrix,
    fig2_allocation,
    fig4_lk23,
    fig5_matmul,
    fig6_video,
)
from repro.experiments.report import format_figure, format_table
from repro.experiments.runner import PAPER, QUICK, TINY, Scale, current_scale
from repro.experiments.tables import (
    table1_machines,
    table2_lk23_counters,
    table3_matmul_counters,
    table4_video_counters,
)

__all__ = [
    "AdaptSetup",
    "adapt_config",
    "build_runtime",
    "format_experiment",
    "run_adaptive",
    "run_experiment",
    "run_static",
    "run_windowed",
    "Scale",
    "TINY",
    "QUICK",
    "PAPER",
    "current_scale",
    "fig1_comm_matrix",
    "fig2_allocation",
    "fig4_lk23",
    "fig5_matmul",
    "fig6_video",
    "table1_machines",
    "table2_lk23_counters",
    "table3_matmul_counters",
    "table4_video_counters",
    "format_figure",
    "format_table",
]
