"""Shared experiment plumbing: problem scales and result containers.

The paper's problem sizes (16384² matrices, 100 iterations) simulate in
minutes; the default ``quick`` scale reproduces every qualitative shape
in seconds. Select with ``REPRO_SCALE=paper`` or by passing a
:class:`Scale` explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = [
    "Scale",
    "TINY",
    "QUICK",
    "PAPER",
    "current_scale",
    "Series",
    "FigureResult",
]


@dataclass(frozen=True)
class Scale:
    """Problem sizes for the three applications."""

    name: str
    lk23_n: int
    lk23_iterations: int
    matmul_n: int
    video_frames: int
    video_frames_4k: int

    def __post_init__(self) -> None:
        if min(
            self.lk23_n,
            self.lk23_iterations,
            self.matmul_n,
            self.video_frames,
            self.video_frames_4k,
        ) < 1:
            raise ReproError("scale parameters must be >= 1")


#: Smoke-test scale (seconds for the whole harness; shapes may be noisy).
TINY = Scale("tiny", lk23_n=512, lk23_iterations=2, matmul_n=1024,
             video_frames=3, video_frames_4k=2)
#: Fast shape-preserving scale (default; CI-friendly).
QUICK = Scale("quick", lk23_n=4096, lk23_iterations=10, matmul_n=4096,
              video_frames=30, video_frames_4k=10)
#: The paper's published problem sizes.
PAPER = Scale("paper", lk23_n=16384, lk23_iterations=100, matmul_n=16384,
              video_frames=100, video_frames_4k=50)

_SCALES = {s.name: s for s in (TINY, QUICK, PAPER)}


def current_scale() -> Scale:
    """The scale selected by ``REPRO_SCALE`` (default: quick)."""
    name = os.environ.get("REPRO_SCALE", "quick")
    try:
        return _SCALES[name]
    except KeyError:
        raise ReproError(
            f"unknown REPRO_SCALE {name!r}; known: {sorted(_SCALES)}"
        ) from None


@dataclass
class Series:
    """One plotted line: label + x/y value lists."""

    label: str
    x: list
    y: list

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ReproError(f"series {self.label!r}: x/y length mismatch")

    def value_at(self, x):
        try:
            return self.y[self.x.index(x)]
        except ValueError:
            raise ReproError(f"series {self.label!r} has no point at {x!r}") from None


@dataclass
class FigureResult:
    """A regenerated figure: series plus identification metadata."""

    fig_id: str
    title: str
    xlabel: str
    ylabel: str
    series: list[Series] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise ReproError(
            f"{self.fig_id}: no series {label!r}; have "
            f"{[s.label for s in self.series]}"
        )
