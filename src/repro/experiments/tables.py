"""Regeneration of Tables I–IV.

Tables II–IV are assembled from the same experiment cells as the
figures (:mod:`repro.parallel.jobs`), so a table row at a configuration
already swept by a figure is served from the shared result cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import Scale, current_scale
from repro.parallel import make_job, run_jobs
from repro.topology import machine_by_name
from repro.topology.objects import ObjType
from repro.util.units import format_size

__all__ = [
    "CounterRow",
    "table1_machines",
    "table2_lk23_counters",
    "table3_matmul_counters",
    "table4_video_counters",
]


@dataclass
class CounterRow:
    """One variant's counters, in the units of Tables II–IV."""

    variant: str
    l3_misses: float
    stalled_cycles: float
    context_switches: int
    cpu_migrations: int
    seconds: float

    @classmethod
    def from_counters(cls, variant, counters, seconds) -> "CounterRow":
        return cls(
            variant=variant,
            l3_misses=counters.l3_misses,
            stalled_cycles=counters.stalled_cycles,
            context_switches=counters.context_switches,
            cpu_migrations=counters.cpu_migrations,
            seconds=seconds,
        )

    @classmethod
    def from_payload(cls, variant, payload) -> "CounterRow":
        """Row from an experiment-cell payload (see ``_counter_payload``)."""
        c = payload["counters"]
        return cls(
            variant=variant,
            l3_misses=c["l3_misses"],
            stalled_cycles=c["stalled_cycles"],
            context_switches=c["context_switches"],
            cpu_migrations=c["cpu_migrations"],
            seconds=payload["seconds"],
        )


# -- Table I ------------------------------------------------------------------------


def table1_machines() -> list[dict]:
    """The two testbed descriptions (Table I), read off the presets."""
    rows = []
    for name in ("SMP12E5", "SMP20E7"):
        topo = machine_by_name(name)
        l1 = topo.objects_by_type(ObjType.L1)[0]
        l2 = topo.objects_by_type(ObjType.L2)[0]
        l3 = topo.objects_by_type(ObjType.L3)[0]
        spec = topo.spec  # type: ignore[attr-defined]
        rows.append(
            {
                "Name": name,
                "OS": topo.root.attrs.get("os", ""),
                "Kernel": topo.root.attrs.get("kernel", ""),
                "Cores per socket": spec.cores_per_socket,
                "NUMA nodes": len(topo.numa_nodes),
                "Socket": topo.root.attrs.get("socket_model", ""),
                "Clock rate": f"{topo.root.attrs['clock_hz'] / 1e6:.0f}MHz",
                "Hyper-Threading": "Yes" if topo.has_hyperthreading else "No",
                "L1 cache": format_size(l1.cache.size),
                "L2 cache": format_size(l2.cache.size),
                "L3 cache": format_size(l3.cache.size),
                "Interconnect": (
                    f"{topo.root.attrs.get('interconnect', '')} "
                    f"({spec.interconnect_gbps}GB/s)"
                ),
            }
        )
    return rows


# -- Table II: LK23 counters on SMP12E5, 64 cores --------------------------------------


TABLE2_VARIANTS = [
    ("ORWL", "orwl"),
    ("ORWL (Affinity)", "orwl-affinity"),
    ("OpenMP", "openmp"),
    ("OpenMP (Affinity)", "openmp-affinity"),
]


def table2_lk23_counters(
    *,
    machine_name: str = "SMP12E5",
    cores: int = 64,
    scale: Scale | None = None,
    seed: int = 1,
    jobs: int | None = None,
    cache=None,
) -> list[CounterRow]:
    scale = scale or current_scale()
    specs = [
        make_job(
            "lk23",
            scale,
            {"machine": machine_name.upper(), "variant": slug, "n_threads": cores},
            seed,
        )
        for _, slug in TABLE2_VARIANTS
    ]
    payloads = run_jobs(specs, n_jobs=jobs, cache=cache)
    return [
        CounterRow.from_payload(label, payload)
        for (label, _), payload in zip(TABLE2_VARIANTS, payloads)
    ]


# -- Table III: matmul counters on SMP12E5, 64 cores --------------------------------------


TABLE3_VARIANTS = [
    ("ORWL", "orwl"),
    ("ORWL (Affinity)", "orwl-affinity"),
    ("MKL", "mkl"),
    ("MKL (Affinity scatter)", "mkl-scatter"),
    ("MKL (Affinity compact)", "mkl-compact"),
]


def table3_matmul_counters(
    *,
    machine_name: str = "SMP12E5",
    cores: int = 64,
    scale: Scale | None = None,
    seed: int = 1,
    jobs: int | None = None,
    cache=None,
) -> list[CounterRow]:
    scale = scale or current_scale()
    specs = [
        make_job(
            "matmul",
            scale,
            {"machine": machine_name.upper(), "variant": slug, "n_tasks": cores},
            seed,
        )
        for _, slug in TABLE3_VARIANTS
    ]
    payloads = run_jobs(specs, n_jobs=jobs, cache=cache)
    return [
        CounterRow.from_payload(label, payload)
        for (label, _), payload in zip(TABLE3_VARIANTS, payloads)
    ]


# -- Table IV: video counters on SMP12E5 (4 sockets), HD --------------------------------------


TABLE4_VARIANTS = [
    ("ORWL", "orwl"),
    ("ORWL (Affinity)", "orwl-affinity"),
    ("OpenMP", "openmp"),
    ("OpenMP (Affinity)", "openmp-affinity"),
]


def table4_video_counters(
    *,
    scale: Scale | None = None,
    seed: int = 1,
    jobs: int | None = None,
    cache=None,
) -> list[CounterRow]:
    scale = scale or current_scale()
    specs = [
        make_job(
            "video",
            scale,
            {"machine": "SMP12E5-4S", "variant": slug, "resolution": "HD"},
            seed,
        )
        for _, slug in TABLE4_VARIANTS
    ]
    payloads = run_jobs(specs, n_jobs=jobs, cache=cache)
    return [
        CounterRow.from_payload(label, payload)
        for (label, _), payload in zip(TABLE4_VARIANTS, payloads)
    ]
