"""Regeneration of Tables I–IV."""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.lk23 import Lk23Config, run_openmp_lk23, run_orwl_lk23
from repro.apps.matmul import MatmulConfig, run_orwl_matmul
from repro.apps.video import VideoConfig, run_openmp_video, run_orwl_video
from repro.experiments.runner import Scale, current_scale
from repro.openmp.mkl import threaded_dgemm
from repro.topology import machine_by_name, smp12e5_4s
from repro.topology.objects import ObjType
from repro.util.units import format_size

__all__ = [
    "CounterRow",
    "table1_machines",
    "table2_lk23_counters",
    "table3_matmul_counters",
    "table4_video_counters",
]


@dataclass
class CounterRow:
    """One variant's counters, in the units of Tables II–IV."""

    variant: str
    l3_misses: float
    stalled_cycles: float
    context_switches: int
    cpu_migrations: int
    seconds: float

    @classmethod
    def from_counters(cls, variant, counters, seconds) -> "CounterRow":
        return cls(
            variant=variant,
            l3_misses=counters.l3_misses,
            stalled_cycles=counters.stalled_cycles,
            context_switches=counters.context_switches,
            cpu_migrations=counters.cpu_migrations,
            seconds=seconds,
        )


# -- Table I ------------------------------------------------------------------------


def table1_machines() -> list[dict]:
    """The two testbed descriptions (Table I), read off the presets."""
    rows = []
    for name in ("SMP12E5", "SMP20E7"):
        topo = machine_by_name(name)
        l1 = topo.objects_by_type(ObjType.L1)[0]
        l2 = topo.objects_by_type(ObjType.L2)[0]
        l3 = topo.objects_by_type(ObjType.L3)[0]
        spec = topo.spec  # type: ignore[attr-defined]
        rows.append(
            {
                "Name": name,
                "OS": topo.root.attrs.get("os", ""),
                "Kernel": topo.root.attrs.get("kernel", ""),
                "Cores per socket": spec.cores_per_socket,
                "NUMA nodes": len(topo.numa_nodes),
                "Socket": topo.root.attrs.get("socket_model", ""),
                "Clock rate": f"{topo.root.attrs['clock_hz'] / 1e6:.0f}MHz",
                "Hyper-Threading": "Yes" if topo.has_hyperthreading else "No",
                "L1 cache": format_size(l1.cache.size),
                "L2 cache": format_size(l2.cache.size),
                "L3 cache": format_size(l3.cache.size),
                "Interconnect": (
                    f"{topo.root.attrs.get('interconnect', '')} "
                    f"({spec.interconnect_gbps}GB/s)"
                ),
            }
        )
    return rows


# -- Table II: LK23 counters on SMP12E5, 64 cores --------------------------------------


def table2_lk23_counters(
    *,
    machine_name: str = "SMP12E5",
    cores: int = 64,
    scale: Scale | None = None,
    seed: int = 1,
) -> list[CounterRow]:
    scale = scale or current_scale()
    cfg = Lk23Config(
        n=scale.lk23_n, iterations=scale.lk23_iterations, n_threads=cores
    )
    rows = []
    r = run_orwl_lk23(machine_by_name(machine_name), cfg, affinity=False, seed=seed)
    rows.append(CounterRow.from_counters("ORWL", r.counters, r.seconds))
    r = run_orwl_lk23(machine_by_name(machine_name), cfg, affinity=True, seed=seed)
    rows.append(CounterRow.from_counters("ORWL (Affinity)", r.counters, r.seconds))
    o = run_openmp_lk23(machine_by_name(machine_name), cfg, binding=None, seed=seed)
    rows.append(CounterRow.from_counters("OpenMP", o.counters, o.seconds))
    o = run_openmp_lk23(machine_by_name(machine_name), cfg, binding="close", seed=seed)
    rows.append(CounterRow.from_counters("OpenMP (Affinity)", o.counters, o.seconds))
    return rows


# -- Table III: matmul counters on SMP12E5, 64 cores --------------------------------------


def table3_matmul_counters(
    *,
    machine_name: str = "SMP12E5",
    cores: int = 64,
    scale: Scale | None = None,
    seed: int = 1,
) -> list[CounterRow]:
    scale = scale or current_scale()
    cfg = MatmulConfig(n=scale.matmul_n, n_tasks=cores)
    rows = []
    r = run_orwl_matmul(machine_by_name(machine_name), cfg, affinity=False, seed=seed)
    rows.append(CounterRow.from_counters("ORWL", r.counters, r.seconds))
    r = run_orwl_matmul(machine_by_name(machine_name), cfg, affinity=True, seed=seed)
    rows.append(CounterRow.from_counters("ORWL (Affinity)", r.counters, r.seconds))
    for label, binding in (
        ("MKL", None),
        ("MKL (Affinity scatter)", "scatter"),
        ("MKL (Affinity compact)", "compact"),
    ):
        o = threaded_dgemm(
            machine_by_name(machine_name), scale.matmul_n, cores,
            binding=binding, seed=seed,
        )
        rows.append(CounterRow.from_counters(label, o.counters, o.seconds))
    return rows


# -- Table IV: video counters on SMP12E5 (4 sockets), HD --------------------------------------


def table4_video_counters(
    *,
    scale: Scale | None = None,
    seed: int = 1,
) -> list[CounterRow]:
    scale = scale or current_scale()
    cfg = VideoConfig(resolution="HD", frames=scale.video_frames)
    rows = []
    r, _ = run_orwl_video(smp12e5_4s(), cfg, affinity=False, seed=seed)
    rows.append(CounterRow.from_counters("ORWL", r.counters, r.seconds))
    r, _ = run_orwl_video(smp12e5_4s(), cfg, affinity=True, seed=seed)
    rows.append(CounterRow.from_counters("ORWL (Affinity)", r.counters, r.seconds))
    o = run_openmp_video(smp12e5_4s(), cfg, 30, binding=None, seed=seed)
    rows.append(CounterRow.from_counters("OpenMP", o.counters, o.seconds))
    o = run_openmp_video(smp12e5_4s(), cfg, 30, binding="close", seed=seed)
    rows.append(CounterRow.from_counters("OpenMP (Affinity)", o.counters, o.seconds))
    return rows
