"""Regeneration of every figure of the paper's evaluation section."""

from __future__ import annotations

import numpy as np

from repro.apps.lk23 import Lk23Config, run_openmp_lk23, run_orwl_lk23
from repro.apps.matmul import MatmulConfig, run_orwl_matmul
from repro.apps.video import (
    VideoConfig,
    run_openmp_video,
    run_orwl_video,
    run_sequential_video,
)
from repro.apps.video.pipeline import build_orwl_video
from repro.errors import ReproError
from repro.experiments.runner import FigureResult, Scale, Series, current_scale
from repro.openmp.mkl import threaded_dgemm
from repro.orwl.runtime import Runtime
from repro.topology import (
    fig2_machine,
    machine_by_name,
    render_mapping,
    smp12e5_4s,
    smp20e7_4s,
)
from repro.treematch import CommunicationMatrix, treematch_map

__all__ = [
    "fig1_comm_matrix",
    "fig2_allocation",
    "fig4_lk23",
    "fig5_matmul",
    "fig6_video",
    "FIG4_CORES",
    "FIG5_CORES",
]

#: x-axes of Figs. 4 and 5 as printed in the paper.
FIG4_CORES = {"SMP12E5": [1, 8, 16, 32, 64, 96], "SMP20E7": [1, 8, 16, 32, 64, 128]}
FIG5_CORES = {
    "SMP12E5": [1, 2, 4, 8, 16, 32, 64, 96],
    "SMP20E7": [1, 2, 4, 8, 16, 32, 64, 96, 160],
}


# -- Fig. 1: communication matrix of the video-tracking application ------------------


def fig1_comm_matrix(cfg: VideoConfig | None = None) -> tuple[CommunicationMatrix, FigureResult]:
    """The 30×30 operation communication matrix (Fig. 1).

    Built purely from the declared task/location graph — no simulation
    runs, exactly as ``orwl_dependency_get`` at schedule time.
    """
    cfg = cfg or VideoConfig(resolution="HD", frames=1)
    runtime = Runtime(smp20e7_4s(), affinity=False)
    build_orwl_video(runtime, cfg)
    runtime.schedule()
    comm = runtime.dependency_get()
    fig = FigureResult(
        fig_id="fig1",
        title="Communication matrix of the video tracking application",
        xlabel="Task ID",
        ylabel="Task ID",
        meta={"order": comm.order, "labels": comm.labels},
    )
    return comm, fig


# -- Fig. 2: task allocation on the 4-socket 32-core machine --------------------------


def fig2_allocation(cfg: VideoConfig | None = None) -> tuple[str, dict]:
    """The Fig. 2 placement: video DFG mapped by Algorithm 1.

    Returns the rendered allocation and the raw placement info (including
    the spare cores reserved for control threads, cf. cores 22–23).
    """
    cfg = cfg or VideoConfig(resolution="HD", frames=1)
    topo = fig2_machine()
    runtime = Runtime(topo, affinity=False)
    build_orwl_video(runtime, cfg)
    runtime.schedule()
    comm = runtime.dependency_get()
    placement = treematch_map(
        topo,
        comm,
        n_control=len(runtime.locations),
        control_owners=[loc.owner.op_id for loc in runtime.locations],
    )
    text = render_mapping(
        topo,
        placement.thread_to_pu,
        {i: lab for i, lab in enumerate(comm.labels)},
        reserved={pu: "control" for pu in placement.reserved_pus},
    )
    return text, {
        "placement": placement,
        "comm": comm,
        "reserved_pus": placement.reserved_pus,
    }


# -- Fig. 4: LK23 processing times --------------------------------------------------------


def fig4_lk23(
    machine_name: str = "SMP12E5",
    *,
    scale: Scale | None = None,
    cores: list[int] | None = None,
    seed: int = 1,
) -> FigureResult:
    """Processing times of Livermore Kernel 23 (Fig. 4a/4b)."""
    scale = scale or current_scale()
    if cores is None:
        try:
            cores = FIG4_CORES[machine_name.upper()]
        except KeyError:
            raise ReproError(f"no Fig. 4 core list for {machine_name!r}") from None
    variants = {
        "ORWL": lambda topo, cfg: run_orwl_lk23(topo, cfg, affinity=False, seed=seed),
        "ORWL (affinity)": lambda topo, cfg: run_orwl_lk23(
            topo, cfg, affinity=True, seed=seed
        ),
        "OpenMP": lambda topo, cfg: run_openmp_lk23(
            topo, cfg, binding=None, seed=seed
        ),
        "OpenMP (affinity)": lambda topo, cfg: run_openmp_lk23(
            topo, cfg, binding="close", seed=seed
        ),
    }
    fig = FigureResult(
        fig_id="fig4",
        title=f"LK23 processing times on {machine_name}",
        xlabel="Nb Cores",
        ylabel="Time (s)",
        meta={"machine": machine_name, "scale": scale.name},
    )
    for label, run in variants.items():
        ys = []
        for nc in cores:
            cfg = Lk23Config(
                n=scale.lk23_n, iterations=scale.lk23_iterations, n_threads=nc
            )
            topo = machine_by_name(machine_name)
            ys.append(run(topo, cfg).seconds)
        fig.series.append(Series(label, list(cores), ys))
    return fig


# -- Fig. 5: matmul GFLOP/s -----------------------------------------------------------------


def fig5_matmul(
    machine_name: str = "SMP12E5",
    *,
    scale: Scale | None = None,
    cores: list[int] | None = None,
    seed: int = 1,
) -> FigureResult:
    """FLOP/s of the matrix-multiplication implementations (Fig. 5)."""
    scale = scale or current_scale()
    if cores is None:
        try:
            cores = FIG5_CORES[machine_name.upper()]
        except KeyError:
            raise ReproError(f"no Fig. 5 core list for {machine_name!r}") from None
    n = scale.matmul_n

    def orwl(affinity):
        def run(nc):
            topo = machine_by_name(machine_name)
            return run_orwl_matmul(
                topo, MatmulConfig(n=n, n_tasks=nc), affinity=affinity, seed=seed
            ).gflops

        return run

    def mkl(binding):
        def run(nc):
            topo = machine_by_name(machine_name)
            return threaded_dgemm(topo, n, nc, binding=binding, seed=seed).gflops

        return run

    variants = {
        "ORWL": orwl(False),
        "ORWL (Affinity)": orwl(True),
        "MKL": mkl(None),
        "MKL (scatter)": mkl("scatter"),
        "MKL (compact)": mkl("compact"),
    }
    fig = FigureResult(
        fig_id="fig5",
        title=f"Matmul GFLOP/s on {machine_name}",
        xlabel="Nb Cores",
        ylabel="GFLOPS",
        meta={"machine": machine_name, "scale": scale.name, "n": n},
    )
    for label, run in variants.items():
        fig.series.append(Series(label, list(cores), [run(nc) for nc in cores]))
    return fig


# -- Fig. 6: video tracking FPS ----------------------------------------------------------------


def fig6_video(
    machine_name: str = "SMP12E5-4S",
    *,
    scale: Scale | None = None,
    resolutions: list[str] | None = None,
    seed: int = 1,
) -> FigureResult:
    """Frames per second of the video-tracking variants (Fig. 6)."""
    scale = scale or current_scale()
    resolutions = resolutions or ["HD", "FullHD", "4K"]
    if machine_name.upper() not in ("SMP12E5-4S", "SMP20E7-4S"):
        raise ReproError(
            "Fig. 6 uses the 4-socket machine slices "
            "(SMP12E5-4S / SMP20E7-4S)"
        )
    topo_fn = smp12e5_4s if "12E5" in machine_name.upper() else smp20e7_4s

    def frames_for(res: str) -> int:
        return scale.video_frames_4k if res == "4K" else scale.video_frames

    def cfg_for(res: str) -> VideoConfig:
        return VideoConfig(resolution=res, frames=frames_for(res))

    def fps(seconds: float, res: str) -> float:
        return frames_for(res) / seconds if seconds > 0 else 0.0

    variants = {
        "Sequential": lambda res: fps(
            run_sequential_video(topo_fn(), cfg_for(res), seed=seed).seconds, res
        ),
        "OpenMP": lambda res: fps(
            run_openmp_video(
                topo_fn(), cfg_for(res), 30, binding=None, seed=seed
            ).seconds,
            res,
        ),
        "OpenMP (Affinity)": lambda res: fps(
            run_openmp_video(
                topo_fn(), cfg_for(res), 30, binding="close", seed=seed
            ).seconds,
            res,
        ),
        "ORWL": lambda res: fps(
            run_orwl_video(topo_fn(), cfg_for(res), affinity=False, seed=seed)[
                0
            ].seconds,
            res,
        ),
        "ORWL (Affinity)": lambda res: fps(
            run_orwl_video(topo_fn(), cfg_for(res), affinity=True, seed=seed)[
                0
            ].seconds,
            res,
        ),
    }
    fig = FigureResult(
        fig_id="fig6",
        title=f"Video tracking FPS on {machine_name}",
        xlabel="Resolution",
        ylabel="Frames per second",
        meta={"machine": machine_name, "scale": scale.name, "n_tasks": 30},
    )
    for label, run in variants.items():
        fig.series.append(
            Series(label, list(resolutions), [run(r) for r in resolutions])
        )
    return fig


def comm_matrix_ascii(comm: CommunicationMatrix, *, width: int = 2) -> str:
    """Log-gray-scale ASCII rendering of a communication matrix (Fig. 1)."""
    aff = comm.affinity()
    chars = " .:-=+*#%@"
    with np.errstate(divide="ignore"):
        logs = np.where(aff > 0, np.log10(aff), -np.inf)
    finite = logs[np.isfinite(logs)]
    lines = []
    if finite.size == 0:
        lo = hi = 0.0
    else:
        lo, hi = float(finite.min()), float(finite.max())
    span = (hi - lo) or 1.0
    for i in range(comm.order):
        row = []
        for j in range(comm.order):
            if not np.isfinite(logs[i, j]):
                row.append(chars[0] * width)
            else:
                level = int((logs[i, j] - lo) / span * (len(chars) - 1))
                row.append(chars[level] * width)
        lines.append("".join(row))
    return "\n".join(lines)
