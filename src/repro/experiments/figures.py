"""Regeneration of every figure of the paper's evaluation section.

The sweep figures (4, 5, 6) decompose into independent experiment-cell
:class:`~repro.parallel.Job` specs and run through
:func:`repro.parallel.run_jobs` — parallel across processes when
``REPRO_JOBS``/``jobs`` says so, served from the content-addressed disk
cache when warm, and reassembled in deterministic order either way.
Figures 1 and 2 are structural (no simulation) and stay inline.
"""

from __future__ import annotations

import numpy as np

from repro.apps.video import VideoConfig
from repro.apps.video.pipeline import build_orwl_video
from repro.errors import ReproError
from repro.experiments.runner import FigureResult, Scale, Series, current_scale
from repro.orwl.runtime import Runtime
from repro.parallel import make_job, run_jobs
from repro.topology import (
    fig2_machine,
    render_mapping,
    smp20e7_4s,
)
from repro.treematch import CommunicationMatrix, treematch_map

__all__ = [
    "fig1_comm_matrix",
    "fig2_allocation",
    "fig4_lk23",
    "fig5_matmul",
    "fig6_video",
    "FIG4_CORES",
    "FIG5_CORES",
]

#: x-axes of Figs. 4 and 5 as printed in the paper.
FIG4_CORES = {"SMP12E5": [1, 8, 16, 32, 64, 96], "SMP20E7": [1, 8, 16, 32, 64, 128]}
FIG5_CORES = {
    "SMP12E5": [1, 2, 4, 8, 16, 32, 64, 96],
    "SMP20E7": [1, 2, 4, 8, 16, 32, 64, 96, 160],
}

#: (display label, canonical variant slug) per figure, in plot order.
FIG4_VARIANTS = [
    ("ORWL", "orwl"),
    ("ORWL (affinity)", "orwl-affinity"),
    ("OpenMP", "openmp"),
    ("OpenMP (affinity)", "openmp-affinity"),
]
FIG5_VARIANTS = [
    ("ORWL", "orwl"),
    ("ORWL (Affinity)", "orwl-affinity"),
    ("MKL", "mkl"),
    ("MKL (scatter)", "mkl-scatter"),
    ("MKL (compact)", "mkl-compact"),
]
FIG6_VARIANTS = [
    ("Sequential", "sequential"),
    ("OpenMP", "openmp"),
    ("OpenMP (Affinity)", "openmp-affinity"),
    ("ORWL", "orwl"),
    ("ORWL (Affinity)", "orwl-affinity"),
]


# -- Fig. 1: communication matrix of the video-tracking application ------------------


def fig1_comm_matrix(cfg: VideoConfig | None = None) -> tuple[CommunicationMatrix, FigureResult]:
    """The 30×30 operation communication matrix (Fig. 1).

    Built purely from the declared task/location graph — no simulation
    runs, exactly as ``orwl_dependency_get`` at schedule time.
    """
    cfg = cfg or VideoConfig(resolution="HD", frames=1)
    runtime = Runtime(smp20e7_4s(), affinity=False)
    build_orwl_video(runtime, cfg)
    runtime.schedule()
    comm = runtime.dependency_get()
    fig = FigureResult(
        fig_id="fig1",
        title="Communication matrix of the video tracking application",
        xlabel="Task ID",
        ylabel="Task ID",
        meta={"order": comm.order, "labels": comm.labels},
    )
    return comm, fig


# -- Fig. 2: task allocation on the 4-socket 32-core machine --------------------------


def fig2_allocation(cfg: VideoConfig | None = None) -> tuple[str, dict]:
    """The Fig. 2 placement: video DFG mapped by Algorithm 1.

    Returns the rendered allocation and the raw placement info (including
    the spare cores reserved for control threads, cf. cores 22–23).
    """
    cfg = cfg or VideoConfig(resolution="HD", frames=1)
    topo = fig2_machine()
    runtime = Runtime(topo, affinity=False)
    build_orwl_video(runtime, cfg)
    runtime.schedule()
    comm = runtime.dependency_get()
    placement = treematch_map(
        topo,
        comm,
        n_control=len(runtime.locations),
        control_owners=[loc.owner.op_id for loc in runtime.locations],
    )
    text = render_mapping(
        topo,
        placement.thread_to_pu,
        {i: lab for i, lab in enumerate(comm.labels)},
        reserved={pu: "control" for pu in placement.reserved_pus},
    )
    return text, {
        "placement": placement,
        "comm": comm,
        "reserved_pus": placement.reserved_pus,
    }


# -- Fig. 4: LK23 processing times --------------------------------------------------------


def fig4_lk23(
    machine_name: str = "SMP12E5",
    *,
    scale: Scale | None = None,
    cores: list[int] | None = None,
    seed: int = 1,
    jobs: int | None = None,
    cache=None,
) -> FigureResult:
    """Processing times of Livermore Kernel 23 (Fig. 4a/4b)."""
    scale = scale or current_scale()
    if cores is None:
        try:
            cores = FIG4_CORES[machine_name.upper()]
        except KeyError:
            raise ReproError(f"no Fig. 4 core list for {machine_name!r}") from None
    specs = [
        make_job(
            "lk23",
            scale,
            {"machine": machine_name.upper(), "variant": slug, "n_threads": nc},
            seed,
        )
        for _, slug in FIG4_VARIANTS
        for nc in cores
    ]
    payloads = run_jobs(specs, n_jobs=jobs, cache=cache)
    fig = FigureResult(
        fig_id="fig4",
        title=f"LK23 processing times on {machine_name}",
        xlabel="Nb Cores",
        ylabel="Time (s)",
        meta={"machine": machine_name, "scale": scale.name},
    )
    it = iter(payloads)
    for label, _ in FIG4_VARIANTS:
        ys = [next(it)["seconds"] for _ in cores]
        fig.series.append(Series(label, list(cores), ys))
    return fig


# -- Fig. 5: matmul GFLOP/s -----------------------------------------------------------------


def fig5_matmul(
    machine_name: str = "SMP12E5",
    *,
    scale: Scale | None = None,
    cores: list[int] | None = None,
    seed: int = 1,
    jobs: int | None = None,
    cache=None,
) -> FigureResult:
    """FLOP/s of the matrix-multiplication implementations (Fig. 5)."""
    scale = scale or current_scale()
    if cores is None:
        try:
            cores = FIG5_CORES[machine_name.upper()]
        except KeyError:
            raise ReproError(f"no Fig. 5 core list for {machine_name!r}") from None
    n = scale.matmul_n
    specs = [
        make_job(
            "matmul",
            scale,
            {"machine": machine_name.upper(), "variant": slug, "n_tasks": nc},
            seed,
        )
        for _, slug in FIG5_VARIANTS
        for nc in cores
    ]
    payloads = run_jobs(specs, n_jobs=jobs, cache=cache)
    fig = FigureResult(
        fig_id="fig5",
        title=f"Matmul GFLOP/s on {machine_name}",
        xlabel="Nb Cores",
        ylabel="GFLOPS",
        meta={"machine": machine_name, "scale": scale.name, "n": n},
    )
    it = iter(payloads)
    for label, _ in FIG5_VARIANTS:
        ys = [next(it)["gflops"] for _ in cores]
        fig.series.append(Series(label, list(cores), ys))
    return fig


# -- Fig. 6: video tracking FPS ----------------------------------------------------------------


def fig6_video(
    machine_name: str = "SMP12E5-4S",
    *,
    scale: Scale | None = None,
    resolutions: list[str] | None = None,
    seed: int = 1,
    jobs: int | None = None,
    cache=None,
) -> FigureResult:
    """Frames per second of the video-tracking variants (Fig. 6)."""
    scale = scale or current_scale()
    resolutions = resolutions or ["HD", "FullHD", "4K"]
    if machine_name.upper() not in ("SMP12E5-4S", "SMP20E7-4S"):
        raise ReproError(
            "Fig. 6 uses the 4-socket machine slices "
            "(SMP12E5-4S / SMP20E7-4S)"
        )
    specs = [
        make_job(
            "video",
            scale,
            {"machine": machine_name.upper(), "variant": slug, "resolution": res},
            seed,
        )
        for _, slug in FIG6_VARIANTS
        for res in resolutions
    ]
    payloads = run_jobs(specs, n_jobs=jobs, cache=cache)
    fig = FigureResult(
        fig_id="fig6",
        title=f"Video tracking FPS on {machine_name}",
        xlabel="Resolution",
        ylabel="Frames per second",
        meta={"machine": machine_name, "scale": scale.name, "n_tasks": 30},
    )
    it = iter(payloads)
    for label, _ in FIG6_VARIANTS:
        ys = []
        for _ in resolutions:
            payload = next(it)
            seconds = payload["seconds"]
            ys.append(payload["frames"] / seconds if seconds > 0 else 0.0)
        fig.series.append(Series(label, list(resolutions), ys))
    return fig


def comm_matrix_ascii(comm: CommunicationMatrix, *, width: int = 2) -> str:
    """Log-gray-scale ASCII rendering of a communication matrix (Fig. 1)."""
    aff = comm.affinity()
    chars = " .:-=+*#%@"
    with np.errstate(divide="ignore"):
        logs = np.where(aff > 0, np.log10(aff), -np.inf)
    finite = logs[np.isfinite(logs)]
    lines = []
    if finite.size == 0:
        lo = hi = 0.0
    else:
        lo, hi = float(finite.min()), float(finite.max())
    span = (hi - lo) or 1.0
    for i in range(comm.order):
        row = []
        for j in range(comm.order):
            if not np.isfinite(logs[i, j]):
                row.append(chars[0] * width)
            else:
                level = int((logs[i, j] - lo) / span * (len(chars) - 1))
                row.append(chars[level] * width)
        lines.append("".join(row))
    return "\n".join(lines)
