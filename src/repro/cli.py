"""Command-line interface: inspect machines, regenerate experiments.

Installed as ``repro-paper`` (see pyproject.toml)::

    repro-paper machines                     # list machine presets
    repro-paper topology SMP12E5             # lstopo-style dump
    repro-paper fig 4 --machine SMP20E7      # regenerate a figure
    repro-paper fig 5 --jobs 4               # fan cells out over 4 processes
    repro-paper table 2 --no-cache           # bypass the on-disk result cache
    repro-paper comm-matrix                  # Fig. 1 ASCII rendering
    repro-paper allocation                   # Fig. 2 placement
    repro-paper map --machine SMP20E7 --threads 4096   # TreeMatch placement
    repro-paper lint lk23 --dynamic          # static + dynamic verifier
    repro-paper lint --all --json            # machine-readable findings
    repro-paper trace lk23 --out trace.json  # Chrome trace_event export

Scale selection follows ``REPRO_SCALE`` (quick | paper); worker count
defaults to ``REPRO_JOBS`` and cache behaviour to ``REPRO_CACHE`` /
``REPRO_CACHE_DIR`` (see docs/API.md).

Exit codes: 0 success, 2 usage/runtime error, 3 when ``lint`` reports
at least one error-level finding.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-paper",
        description=(
            "Reproduction harness for 'Automatic, Abstracted and Portable "
            "Topology-Aware Thread Placement' (IEEE CLUSTER 2017)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_mach = sub.add_parser("machines", help="list machine presets")
    p_mach.add_argument("--json", action="store_true",
                        help="emit machine facts as JSON")

    p_topo = sub.add_parser("topology", help="print a machine's topology tree")
    p_topo.add_argument("machine", help="preset name, e.g. SMP12E5")
    p_topo.add_argument("--depth", type=int, default=None,
                        help="limit the printed depth")

    p_fig = sub.add_parser("fig", help="regenerate a figure (1, 2, 4, 5, 6)")
    p_fig.add_argument("number", type=int, choices=(1, 2, 4, 5, 6))
    p_fig.add_argument("--machine", default=None,
                       help="machine preset (figures 4-6)")
    p_fig.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: REPRO_JOBS or 1; "
                            "0 = one per CPU)")
    p_fig.add_argument("--no-cache", action="store_true",
                       help="bypass the on-disk result cache")

    p_tab = sub.add_parser("table", help="regenerate a table (1, 2, 3, 4)")
    p_tab.add_argument("number", type=int, choices=(1, 2, 3, 4))
    p_tab.add_argument("--json", action="store_true",
                       help="emit table rows as JSON")
    p_tab.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: REPRO_JOBS or 1; "
                            "0 = one per CPU)")
    p_tab.add_argument("--no-cache", action="store_true",
                       help="bypass the on-disk result cache")

    p_map = sub.add_parser(
        "map",
        help="run the TreeMatch placement engine on a synthetic pattern",
    )
    p_map.add_argument("--machine", default="SMP20E7",
                       help="machine preset (default: SMP20E7)")
    p_map.add_argument("--threads", type=int, default=64,
                       help="number of compute threads (default: 64); "
                            "counts beyond the machine's capacity are "
                            "oversubscribed via a virtual tree level")
    p_map.add_argument("--pattern", choices=("stencil", "ring"),
                       default="stencil",
                       help="synthetic communication pattern (default: "
                            "stencil = 2-D 5-point halo exchange)")
    p_map.add_argument("--engine", choices=("optimal", "greedy"), default=None,
                       help="pin the grouping engine (default: size-based)")
    p_map.add_argument("--no-refine", action="store_true",
                       help="skip the swap-refinement pass after grouping")
    p_map.add_argument("--strategy", choices=("auto", "greedy", "multilevel"),
                       default="auto",
                       help="mapping engine: greedy = dense group+refine, "
                            "multilevel = coarsening + recursive bisection "
                            "for very large task counts (default: auto = "
                            "cut over by task count)")
    p_map.add_argument("--jobs", type=int, default=1,
                       help="worker processes for multilevel subtree "
                            "fan-out (default 1 = in-process; 0 = one per "
                            "CPU)")
    p_map.add_argument("--json", action="store_true",
                       help="emit the placement and costs as JSON")

    p_adapt = sub.add_parser(
        "adapt",
        help="adaptive-remapping experiment: phase-shift vs static placements",
    )
    p_adapt.add_argument(
        "app", nargs="?", default="phase-shift",
        choices=("phase-shift", "phase-stable"),
        help="phase-shift = stencil->transpose->reduce workload (default); "
             "phase-stable = control program on which the controller must "
             "stay quiet",
    )
    p_adapt.add_argument("--ipp", type=int, default=None,
                         help="iterations per phase (default 24)")
    p_adapt.add_argument("--json", action="store_true",
                         help="emit the full report as JSON")

    sub.add_parser("comm-matrix", help="Fig. 1 communication matrix (ASCII)")
    sub.add_parser("allocation", help="Fig. 2 task allocation")
    sub.add_parser("dfg", help="Fig. 3 data-flow graph of the video app (DOT)")

    p_lint = sub.add_parser(
        "lint",
        help="static deadlock/race/placement verifier (see docs/ANALYZE.md)",
    )
    p_lint.add_argument("app", nargs="?", default=None,
                        help="application to analyze (lk23, matmul, video)")
    p_lint.add_argument("--all", action="store_true",
                        help="analyze every registered application")
    p_lint.add_argument("--json", action="store_true",
                        help="emit findings as JSON")
    p_lint.add_argument("--dynamic", action="store_true",
                        help="cross-check against a monitored execution")
    p_lint.add_argument("--hb", action="store_true",
                        help="surface happens-before verdicts: ORDERED "
                             "lockset pairs become race-ordered notes and "
                             "the replay summary is printed")
    p_lint.add_argument("--sanitize", action="store_true",
                        help="run the dynamic cross-check under the "
                             "SimSanitizer's checked-mode invariants "
                             "(implies --dynamic)")
    p_lint.add_argument("--hotlint", action="store_true",
                        help="also lint the simulator's hot loops for "
                             "per-event allocations and unguarded taps "
                             "(no app name needed)")
    p_lint.add_argument("--sarif", action="store_true",
                        help="emit findings as a SARIF 2.1 log")

    p_trace = sub.add_parser(
        "trace",
        help="run an app with the ring trace and export Chrome trace_event "
             "JSON (see docs/OBSERVABILITY.md)",
    )
    p_trace.add_argument("app",
                         help="application to trace (lk23, matmul, video)")
    p_trace.add_argument("--out", default=None,
                         help="output file (default: JSON to stdout)")
    p_trace.add_argument("--capacity", type=int, default=65536,
                         help="ring-buffer capacity in records "
                              "(default: 65536)")
    p_trace.add_argument("--sample-busy", type=int, default=16,
                         help="keep 1-in-N busy-completion records "
                              "(0 drops them, 1 keeps all; default: 16)")
    p_trace.add_argument("--core", default="auto",
                         help="simulator core: auto, batched, object")
    return parser


def _cmd_machines(as_json: bool = False) -> str:
    from repro.topology import list_machines, machine_by_name

    if as_json:
        from repro.analyze.report import json_text

        rows = []
        for name in list_machines():
            topo = machine_by_name(name)
            rows.append({
                "name": name,
                "numa_nodes": len(topo.numa_nodes),
                "cores": topo.n_cores,
                "pus": topo.n_pus,
                "hyperthreading": topo.has_hyperthreading,
            })
        return json_text(rows)

    lines = []
    for name in list_machines():
        topo = machine_by_name(name)
        ht = "HT" if topo.has_hyperthreading else "no-HT"
        lines.append(
            f"{name:<12} {len(topo.numa_nodes):>3} NUMA x "
            f"{topo.n_cores // max(1, len(topo.numa_nodes)):>2} cores "
            f"({topo.n_pus} PUs, {ht})"
        )
    return "\n".join(lines)


def _cmd_topology(machine: str, depth: int | None) -> str:
    from repro.topology import machine_by_name, render_ascii

    return render_ascii(machine_by_name(machine), max_depth=depth)


def _cmd_fig(
    number: int,
    machine: str | None,
    jobs: int | None = None,
    no_cache: bool = False,
) -> str:
    from repro.experiments import (
        fig1_comm_matrix,
        fig2_allocation,
        fig4_lk23,
        fig5_matmul,
        fig6_video,
        format_figure,
    )
    from repro.experiments.figures import comm_matrix_ascii

    cache = False if no_cache else None
    if number == 1:
        comm, fig = fig1_comm_matrix()
        return f"{fig.title}\n" + comm_matrix_ascii(comm)
    if number == 2:
        text, info = fig2_allocation()
        return text + f"\nreserved for control: PUs {info['reserved_pus']}"
    if number == 4:
        return format_figure(fig4_lk23(machine or "SMP12E5",
                                       jobs=jobs, cache=cache))
    if number == 5:
        return format_figure(fig5_matmul(machine or "SMP12E5",
                                         jobs=jobs, cache=cache))
    return format_figure(fig6_video(machine or "SMP12E5-4S",
                                    jobs=jobs, cache=cache))


def _cmd_table(
    number: int,
    as_json: bool = False,
    jobs: int | None = None,
    no_cache: bool = False,
) -> str:
    from repro.experiments import (
        format_table,
        table1_machines,
        table2_lk23_counters,
        table3_matmul_counters,
        table4_video_counters,
    )
    from repro.experiments.report import format_counter_rows

    cache = False if no_cache else None
    if as_json:
        import dataclasses

        from repro.analyze.report import json_text

        if number == 1:
            return json_text(table1_machines())
        fn = {2: table2_lk23_counters, 3: table3_matmul_counters,
              4: table4_video_counters}[number]
        return json_text(
            [dataclasses.asdict(r) for r in fn(jobs=jobs, cache=cache)]
        )

    if number == 1:
        rows = table1_machines()
        keys = list(rows[0].keys())
        return format_table(keys, [[r[k] for k in keys] for r in rows],
                            title="Table I")
    if number == 2:
        return format_counter_rows(
            "Table II: LK23 counters (SMP12E5, 64 cores)",
            table2_lk23_counters(jobs=jobs, cache=cache),
        )
    if number == 3:
        return format_counter_rows(
            "Table III: matmul counters (SMP12E5, 64 cores)",
            table3_matmul_counters(jobs=jobs, cache=cache),
        )
    return format_counter_rows(
        "Table IV: video counters (SMP12E5-4S, HD)",
        table4_video_counters(jobs=jobs, cache=cache),
    )


def _cmd_map(
    machine: str,
    threads: int,
    pattern: str,
    engine: str | None,
    refine: bool,
    as_json: bool,
    strategy: str = "auto",
    jobs: int = 1,
) -> str:
    """Run the selected mapping engine on a synthetic pattern."""
    import time

    from repro.topology import machine_by_name
    from repro.treematch.commmatrix import CommunicationMatrix
    from repro.treematch.mapping import multilevel_map, treematch_map
    from repro.treematch.strategies import mapping_strategy

    topo = machine_by_name(machine)
    if pattern == "stencil":
        comm = CommunicationMatrix.stencil2d(threads)
    else:  # ring: each thread talks to its successor (wrap-around)
        comm = CommunicationMatrix.from_edges(
            threads,
            {(i, (i + 1) % threads): 100.0 for i in range(threads)}
            if threads > 1 else {},
        )

    resolved = mapping_strategy(strategy, comm.order)
    t0 = time.perf_counter()
    if resolved == "multilevel":
        placement = multilevel_map(topo, comm, n_jobs=jobs)
    else:
        placement = treematch_map(topo, comm, engine=engine, refine=refine)
    elapsed = time.perf_counter() - t0
    cost = placement.cost(topo, comm)
    slit = placement.slit_cost(topo, comm)

    if as_json:
        from repro.analyze.report import json_text

        return json_text({
            "machine": machine,
            "threads": threads,
            "pattern": pattern,
            "strategy": resolved,
            "engine": engine or "auto",
            "refine": refine,
            "seconds": round(elapsed, 4),
            "cost": cost,
            "slit_cost": slit,
            "placement": placement.to_dict(),
        })

    used = sorted(set(placement.thread_to_pu.values()))
    lines = [
        f"TreeMatch placement: {threads} {pattern} threads on {machine}",
        f"  strategy={resolved} engine={engine or 'auto'} refine={refine} "
        f"granularity={placement.granularity} "
        f"oversubscription={placement.oversub_factor}x",
        f"  solved in {elapsed:.3f} s; tree-distance cost {cost:.0f}, "
        f"SLIT cost {slit:.0f}",
        f"  {len(used)} PUs used: {used[0]}..{used[-1]}",
    ]
    if threads <= 64:
        per_pu: dict[int, list[int]] = {}
        for tid, pu in sorted(placement.thread_to_pu.items()):
            per_pu.setdefault(pu, []).append(tid)
        for pu in used:
            tids = ",".join(str(t) for t in per_pu[pu])
            lines.append(f"  PU {pu:>4}: threads {tids}")
    else:
        lines.append("  (per-PU table suppressed for >64 threads; "
                     "use --json for the full binding)")
    return "\n".join(lines)


def _cmd_dfg() -> str:
    from repro.apps.video import VideoConfig
    from repro.apps.video.pipeline import build_orwl_video
    from repro.orwl import Runtime
    from repro.orwl.graph import to_dot
    from repro.topology import smp20e7_4s

    rt = Runtime(smp20e7_4s(), affinity=False)
    build_orwl_video(rt, VideoConfig(resolution="HD", frames=1))
    return to_dot(rt, name="video-tracking")


def _cmd_lint(
    app: str | None,
    all_apps: bool,
    as_json: bool,
    dynamic: bool,
    hb: bool = False,
    sanitize: bool = False,
    hotlint: bool = False,
    sarif: bool = False,
) -> tuple[str, int]:
    """Run the analyzers; exit code 3 when any error-level finding."""
    from repro.analyze import analyze_app, json_text, sarif_log
    from repro.analyze.apps import app_names
    from repro.analyze.openmp import OMP_APPS, analyze_openmp, omp_app_names

    if all_apps:
        names = app_names()
        if dynamic or sanitize:
            # The fork-join apps only have an execution to check.
            names += omp_app_names()
    elif app is not None:
        names = [app]
    elif hotlint:
        names = []
    else:
        known = ", ".join(app_names() + omp_app_names())
        raise ReproError("lint needs an app name, --all or --hotlint "
                         f"(known: {known})")

    analyses = [
        analyze_openmp(n, sanitize=sanitize) if n in OMP_APPS
        else analyze_app(n, dynamic=dynamic, hb_notes=hb, sanitize=sanitize)
        for n in names
    ]
    reports = [a.report for a in analyses]
    hot_report = None
    if hotlint:
        from repro.analyze.hotlint import run_hotlint

        hot_report = run_hotlint()
        reports.append(hot_report)
    code = max((r.exit_code() for r in reports), default=0)

    if sarif:
        return json_text(sarif_log(reports)), code
    if as_json:
        payload = [a.to_dict() for a in analyses]
        if hot_report is not None:
            payload.append(hot_report.to_dict())
        return json_text(payload[0] if len(payload) == 1 else payload), code
    chunks = []
    for a in analyses:
        text = a.to_text()
        if hb and a.hb is not None:
            s = a.hb.summary()
            text += (
                f"\nhappens-before replay: {s['events_replayed']} event(s) "
                f"over {s['rounds']} round(s), {s['touches_checked']} "
                f"touch(es) checked, {s['delegations']} delegation(s), "
                f"{s['ops_eligible']} op(s) fully ordered, "
                f"{s['ops_stalled']} stalled, {s['hb_races']} HB race(s)"
            )
        chunks.append(text)
    if hot_report is not None:
        chunks.append(hot_report.to_text())
    return "\n\n".join(chunks), code


def _cmd_trace(
    app: str, out: str | None, capacity: int, sample_busy: int, core: str
) -> str:
    """Execute *app* with a ring trace attached, export Chrome JSON."""
    import json

    from repro.analyze.apps import app_builder
    from repro.sim.machine import SimMachine
    from repro.sim.observe import RingTrace, SimObserver

    if core not in SimMachine.CORES:
        raise ReproError(
            f"unknown core {core!r} (choose from {', '.join(SimMachine.CORES)})"
        )
    if capacity < 1:
        raise ReproError(f"--capacity must be >= 1, got {capacity}")
    if sample_busy < 0:
        raise ReproError(f"--sample-busy must be >= 0, got {sample_busy}")

    rt = app_builder(app)()
    rt.machine.core = core
    obs = SimObserver(
        trace=RingTrace(capacity=capacity, sample={"busy": sample_busy})
    )
    rt.machine.attach_observer(obs)
    rt.run()

    payload = json.dumps(obs.chrome_trace(), indent=1)
    if out is None:
        return payload
    with open(out, "w", encoding="utf-8") as fh:
        fh.write(payload + "\n")
    ring = obs.ring
    return (
        f"{app}: {ring.recorded} record(s) kept, {ring.dropped} dropped "
        f"({rt.machine.core_used} core) -> {out}"
    )


def _cmd_adapt(app: str, ipp: int | None, as_json: bool) -> str:
    """Run the adaptive-remapping experiment (docs/ADAPTIVE.md)."""
    import json

    from repro.experiments.adaptive import (
        AdaptSetup,
        build_runtime,
        format_experiment,
        run_adaptive,
        run_experiment,
    )

    setup = AdaptSetup() if ipp is None else AdaptSetup(iters_per_phase=ipp)
    if app == "phase-stable":
        stable = AdaptSetup(iters_per_phase=setup.iters_per_phase, shift=False)
        baseline = build_runtime("stencil", stable).run()
        run = run_adaptive(stable)
        payload = {
            "app": app,
            "uncontrolled_seconds": baseline.seconds,
            "adaptive_seconds": run["seconds"],
            "remaps": run["remaps"],
            "windows": run["windows"],
        }
        if as_json:
            return json.dumps(payload, indent=1)
        return (
            f"phase-stable control ({run['windows']} windows): "
            f"{len(run['remaps'])} remap(s); adaptive "
            f"{run['seconds'] * 1e3:.3f} ms vs uncontrolled "
            f"{baseline.seconds * 1e3:.3f} ms"
        )
    report = run_experiment(setup)
    if as_json:
        report = dict(report)
        return json.dumps(report, indent=1)
    return format_experiment(report)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    code = 0
    try:
        if args.command == "machines":
            out = _cmd_machines(args.json)
        elif args.command == "topology":
            out = _cmd_topology(args.machine, args.depth)
        elif args.command == "fig":
            out = _cmd_fig(args.number, args.machine, args.jobs, args.no_cache)
        elif args.command == "table":
            out = _cmd_table(args.number, args.json, args.jobs, args.no_cache)
        elif args.command == "comm-matrix":
            out = _cmd_fig(1, None)
        elif args.command == "allocation":
            out = _cmd_fig(2, None)
        elif args.command == "map":
            out = _cmd_map(args.machine, args.threads, args.pattern,
                           args.engine, not args.no_refine, args.json,
                           args.strategy, args.jobs)
        elif args.command == "dfg":
            out = _cmd_dfg()
        elif args.command == "adapt":
            out = _cmd_adapt(args.app, args.ipp, args.json)
        elif args.command == "lint":
            out, code = _cmd_lint(args.app, args.all, args.json, args.dynamic,
                                  args.hb, args.sanitize, args.hotlint,
                                  args.sarif)
        elif args.command == "trace":
            out = _cmd_trace(args.app, args.out, args.capacity,
                             args.sample_busy, args.core)
        else:  # pragma: no cover - argparse enforces choices
            raise ReproError(f"unknown command {args.command!r}")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(out)
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
