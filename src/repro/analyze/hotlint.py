"""Hot-loop purity lint: AST checks over the simulator's drain loops.

The batched core's throughput rests on a handful of coding rules that
nothing in Python enforces: the drain loops must not allocate per event,
must not walk ``self`` attributes (everything is bound to frame locals
before the loop), and must not call an observability tap without the
``is not None``/``if monitors`` guard that makes tracing free when off.
Those rules have been broken silently before — a stray f-string or a
``sorted()`` in the pump costs double-digit percent of event throughput
and no test fails. This pass makes the rules mechanical.

Rules (finding codes):

``hot-loop-alloc``
    An allocating construct lexically inside a ``while`` loop of a hot
    function: dict/set displays, comprehensions and generator
    expressions, lambdas and nested ``def``, f-strings, and calls to
    allocating builtins (``list``, ``dict``, ``set``, ``sorted``,
    ``enumerate``, ...). Plain list/tuple displays are allowed — the
    calendar queue's ``[seq, kind, payload]`` triples *are* the data
    format. Anything under a ``raise`` is exempt: error paths are cold
    by definition.

``hot-self-attr``
    A ``self.<attr>`` access inside the drain loop of a function that
    hoists its state to locals (only ``SimMachine._run_batched`` today).
    Attribute walks in the per-event path undo the hoisting.

``hot-tap-unguarded``
    A call to an observability tap (``notify_monitors``, ``trace_rec``,
    ``ring_add``, ``ring_add_raw``) inside a ``while`` loop that is not
    nested under any ``if`` — i.e. it runs unconditionally per event,
    reintroducing tracing overhead for untraced runs.

``hot-missing-slots``
    A per-event-instantiated (or per-event-accessed) class lost its
    ``__slots__`` declaration.

Intentional, amortized violations are suppressed in place with a
trailing ``# hotlint: ok`` (any rule) or ``# hotlint: ok(alloc)``
(specific rules, comma-separated) on any line the flagged node spans —
the suppression is the documentation that the cost was considered.

Entry points: :func:`run_hotlint` lints the configured hot targets of
the installed tree and returns a :class:`~repro.analyze.report.Report`;
:func:`lint_source` lints a source string (tests, tooling).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.analyze.report import Finding, Report

__all__ = [
    "HOT_TARGETS",
    "SLOTS_REQUIRED",
    "lint_source",
    "lint_file",
    "run_hotlint",
]

#: Builtin callables whose invocation allocates (or iterates into) a new
#: container per call. ``range`` is deliberately absent (lazy, tiny) and
#: so are list/tuple *displays* (see module docstring).
_ALLOC_BUILTINS = frozenset({
    "list", "dict", "set", "frozenset", "tuple", "sorted", "str",
    "bytes", "bytearray", "map", "filter", "zip", "enumerate", "reversed",
})

#: Local/attribute names that are observability taps in the hot loops.
#: The per-method monitor lists (notify_touch/...) are what the drain
#: loops capture since the dispatch split; notify_monitors remains for
#: the object core's generic path.
_TAP_NAMES = frozenset({
    "notify_monitors", "notify_touch", "notify_block", "notify_finish",
    "trace_rec", "ring_add", "ring_add_raw",
})

#: Short rule keys (used in specs and suppression comments) -> codes.
_RULE_CODES = {
    "alloc": "hot-loop-alloc",
    "self-attr": "hot-self-attr",
    "tap": "hot-tap-unguarded",
    "slots": "hot-missing-slots",
}

#: Hot functions/classes to lint, as (module-relative path, dotted
#: qualname, rule keys). A class qualname lints every method.
HOT_TARGETS: tuple[tuple[str, str, tuple[str, ...]], ...] = (
    ("repro/sim/machine.py", "SimMachine._run_batched",
     ("alloc", "self-attr", "tap")),
    # The SoA core is one flat function whose drain loop carries the
    # whole throughput target; every rule class applies.
    ("repro/sim/soa.py", "run_soa", ("alloc", "tap")),
    # The sharded sync loop runs once per conservative epoch — far
    # cooler than per-event, but a per-message allocation inside it
    # scales with traffic, so it stays under the alloc rule with
    # amortized costs suppressed in place.
    ("repro/sim/shard.py", "run_sharded", ("alloc",)),
    # The run-ahead kernel body: the exact code numba compiles (or
    # CPython interprets as the fallback twin), so a stray allocation
    # is either a compile error or a per-round cost. The wrapper module
    # is import-time only; only the kernel function is hot.
    ("repro/sim/jit.py", "_chain_runahead", ("alloc", "tap")),
    ("repro/sim/engine.py", "Engine.run", ("alloc", "tap")),
    ("repro/sim/engine.py", "BatchedQueue", ("alloc",)),
    ("repro/sim/cache.py", "L3State.install", ("alloc",)),
    ("repro/sim/cache.py", "CacheSystem.touch", ("alloc", "tap")),
    ("repro/sim/observe.py", "RingTrace._bind_add", ("alloc",)),
    ("repro/sim/observe.py", "SimObserver.fold", ("alloc",)),
    # Mapping-engine hot loops (ISSUE 7): the per-edge matching loop
    # runs O(|E|) times per coarsening level, greedy growing and the
    # grouping grow loop run O(n) selection steps per split.
    ("repro/treematch/coarsen.py", "heavy_edge_matching", ("alloc",)),
    ("repro/treematch/bisect.py", "_grow_side", ("alloc",)),
    ("repro/treematch/bisect.py", "_rebalance_exact", ("alloc",)),
    ("repro/treematch/grouping.py", "group_greedy", ("alloc",)),
    # Adaptive controller (ISSUE 10): the epoch loop runs once per
    # window — cool next to per-event code, but anything allocating in
    # it scales with run length — and the telemetry tap rides the
    # per-event monitor dispatch, so every method stays under the lint.
    ("repro/affinity/controller.py", "AdaptiveController.run", ("alloc",)),
    ("repro/affinity/telemetry.py", "WindowTelemetry", ("alloc", "tap")),
)

#: Classes that must keep ``__slots__`` (path -> class names).
SLOTS_REQUIRED: dict[str, tuple[str, ...]] = {
    "repro/sim/engine.py": ("Engine", "BatchedQueue"),
    "repro/sim/cache.py": ("L3State", "CacheSystem"),
    "repro/sim/observe.py": ("Counter", "Gauge", "Histogram", "RingTrace"),
    "repro/affinity/telemetry.py": ("WindowTelemetry",),
}

_SUPPRESS_RE = re.compile(
    r"#\s*hotlint:\s*ok(?:\(\s*([a-z, -]+?)\s*\))?"
)


def _suppressions(source: str) -> dict[int, frozenset[str] | None]:
    """Line -> suppressed rule keys (None = every rule)."""
    out: dict[int, frozenset[str] | None] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(text)
        if m is None:
            continue
        if m.group(1) is None:
            out[lineno] = None
        else:
            out[lineno] = frozenset(
                part.strip() for part in m.group(1).split(",") if part.strip()
            )
    return out


_ALLOC_DESCRIPTIONS = {
    ast.Dict: "dict display",
    ast.Set: "set display",
    ast.ListComp: "list comprehension",
    ast.SetComp: "set comprehension",
    ast.DictComp: "dict comprehension",
    ast.GeneratorExp: "generator expression",
    ast.JoinedStr: "f-string",
    ast.Lambda: "lambda",
}

_FUNCS = (ast.FunctionDef, ast.AsyncFunctionDef)


class _HotScanner:
    """One lint pass over one hot function (or every method of a class)."""

    def __init__(self, path: str, rules: tuple[str, ...],
                 suppressed: dict[int, frozenset[str] | None],
                 findings: list[Finding]) -> None:
        self.path = path
        self.rules = frozenset(rules)
        self.suppressed = suppressed
        self.findings = findings

    # -- reporting -----------------------------------------------------------

    def _is_suppressed(self, node: ast.AST, rule: str) -> bool:
        end = getattr(node, "end_lineno", None) or node.lineno
        for lineno in range(node.lineno, end + 1):
            if lineno in self.suppressed:
                rules = self.suppressed[lineno]
                if rules is None or rule in rules:
                    return True
        return False

    def _flag(self, node: ast.AST, rule: str, message: str,
              fix_hint: str = "") -> None:
        if rule not in self.rules or self._is_suppressed(node, rule):
            return
        self.findings.append(Finding(
            "error", _RULE_CODES[rule], message,
            fix_hint=fix_hint, file=self.path, line=node.lineno,
        ))

    # -- traversal -----------------------------------------------------------

    def scan(self, fn: ast.AST) -> None:
        if isinstance(fn, ast.ClassDef):
            for child in fn.body:
                if isinstance(child, _FUNCS):
                    self.scan(child)
            return
        for stmt in fn.body:
            self._visit(stmt, in_while=False, guarded=False, cold=False)

    def _visit(self, node: ast.AST, *, in_while: bool, guarded: bool,
               cold: bool) -> None:
        if isinstance(node, ast.While):
            self._visit(node.test, in_while=in_while, guarded=guarded,
                        cold=cold)
            for child in node.body + node.orelse:
                self._visit(child, in_while=True, guarded=False, cold=cold)
            return
        if isinstance(node, ast.If):
            self._visit(node.test, in_while=in_while, guarded=guarded,
                        cold=cold)
            for child in node.body + node.orelse:
                self._visit(child, in_while=in_while,
                            guarded=guarded or in_while, cold=cold)
            return
        if isinstance(node, ast.Raise):
            # Raising is the end of the hot path: everything it builds
            # (messages, exception objects) is cold.
            for child in ast.iter_child_nodes(node):
                self._visit(child, in_while=in_while, guarded=guarded,
                            cold=True)
            return
        if isinstance(node, _FUNCS + (ast.Lambda,)):
            if in_while and not cold:
                kind = ("lambda" if isinstance(node, ast.Lambda)
                        else f"nested function {node.name!r}")
                self._flag(
                    node, "alloc",
                    f"{kind} created inside a hot while loop "
                    "(one closure object per iteration)",
                    fix_hint="define it once before the loop",
                )
            # A nested function's body runs on its own frame; rules
            # restart from its own loops.
            body = node.body if isinstance(node.body, list) else [node.body]
            for child in body:
                self._visit(child, in_while=False, guarded=False, cold=cold)
            return
        if not cold and in_while:
            self._check_hot_expr(node, guarded=guarded)
        for child in ast.iter_child_nodes(node):
            self._visit(child, in_while=in_while, guarded=guarded, cold=cold)

    def _check_hot_expr(self, node: ast.AST, *, guarded: bool) -> None:
        desc = _ALLOC_DESCRIPTIONS.get(type(node))
        if desc is not None and not isinstance(node, ast.Lambda):
            self._flag(
                node, "alloc",
                f"{desc} inside a hot while loop allocates per iteration",
                fix_hint="hoist the allocation out of the drain loop or "
                         "restructure to reuse one object",
            )
            return
        if isinstance(node, ast.Call):
            name = self._call_name(node)
            if name in _ALLOC_BUILTINS:
                self._flag(
                    node, "alloc",
                    f"call to builtin {name}() inside a hot while loop "
                    "allocates per iteration",
                    fix_hint="hoist it, or suppress with a justification "
                             "if the cost is amortized",
                )
            if name in _TAP_NAMES and not guarded:
                self._flag(
                    node, "tap",
                    f"tap call {name}(...) runs unconditionally in a hot "
                    "while loop",
                    fix_hint="guard it (`if monitors:` / "
                             "`if trace_rec is not None:`) so untraced "
                             "runs pay nothing",
                )
            return
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and node.value.id == "self":
            self._flag(
                node, "self-attr",
                f"`self.{node.attr}` accessed inside the drain loop of a "
                "hoisted hot function",
                fix_hint="bind it to a frame local before the loop",
            )

    @staticmethod
    def _call_name(node: ast.Call) -> str | None:
        if isinstance(node.func, ast.Name):
            return node.func.id
        if isinstance(node.func, ast.Attribute):
            # Taps bound as attributes (obs.ring_add) still count.
            return node.func.attr if node.func.attr in _TAP_NAMES else None
        return None


def _resolve_qualname(tree: ast.Module, qualname: str) -> ast.AST | None:
    node: ast.AST = tree
    for part in qualname.split("."):
        body = getattr(node, "body", None)
        if not isinstance(body, list):
            return None
        for child in body:
            if isinstance(child, _FUNCS + (ast.ClassDef,)) and \
                    child.name == part:
                node = child
                break
        else:
            return None
    return node


def _check_slots(tree: ast.Module, path: str, class_names: tuple[str, ...],
                 suppressed: dict, findings: list[Finding]) -> None:
    by_name = {
        n.name: n for n in tree.body if isinstance(n, ast.ClassDef)
    }
    for name in class_names:
        cls = by_name.get(name)
        if cls is None:
            findings.append(Finding(
                "warning", "hot-missing-slots",
                f"hot class {name!r} not found in {path} (lint config "
                "out of date?)",
                file=path, line=1,
            ))
            continue
        has_slots = any(
            isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in stmt.targets
            )
            for stmt in cls.body
        )
        if not has_slots:
            scanner = _HotScanner(path, ("slots",), suppressed, findings)
            scanner._flag(
                cls, "slots",
                f"hot class {name!r} has no __slots__ declaration "
                "(per-instance dict on a per-event object)",
                fix_hint="restore the __slots__ tuple",
            )


def lint_source(
    source: str,
    *,
    path: str = "<memory>",
    qualname: str | None = None,
    rules: tuple[str, ...] = ("alloc", "self-attr", "tap"),
    slots_classes: tuple[str, ...] = (),
) -> list[Finding]:
    """Lint one source string.

    With *qualname* set, only that function/class is scanned; otherwise
    every top-level function and class method is treated as hot (the
    test-facing mode).
    """
    tree = ast.parse(source)
    suppressed = _suppressions(source)
    findings: list[Finding] = []
    scanner = _HotScanner(path, rules, suppressed, findings)
    if qualname is not None:
        node = _resolve_qualname(tree, qualname)
        if node is None:
            findings.append(Finding(
                "warning", "hot-target-missing",
                f"hot target {qualname!r} not found in {path} (lint "
                "config out of date?)",
                file=path, line=1,
            ))
        else:
            scanner.scan(node)
    else:
        for child in tree.body:
            if isinstance(child, _FUNCS + (ast.ClassDef,)):
                scanner.scan(child)
    if slots_classes:
        _check_slots(tree, path, slots_classes, suppressed, findings)
    return findings


def lint_file(
    file_path: Path,
    *,
    display_path: str,
    targets: list[tuple[str, tuple[str, ...]]],
    slots_classes: tuple[str, ...] = (),
) -> list[Finding]:
    """Lint the given *targets* (qualname, rules) of one file."""
    source = file_path.read_text()
    tree = ast.parse(source, filename=str(file_path))
    suppressed = _suppressions(source)
    findings: list[Finding] = []
    for qualname, rules in targets:
        scanner = _HotScanner(display_path, rules, suppressed, findings)
        node = _resolve_qualname(tree, qualname)
        if node is None:
            findings.append(Finding(
                "warning", "hot-target-missing",
                f"hot target {qualname!r} not found in {display_path} "
                "(lint config out of date?)",
                file=display_path, line=1,
            ))
            continue
        scanner.scan(node)
    if slots_classes:
        _check_slots(tree, display_path, slots_classes, suppressed, findings)
    return findings


def run_hotlint(root: Path | str | None = None) -> Report:
    """Lint every configured hot target of the tree rooted at *root*.

    *root* is the directory containing the ``repro`` package; defaults
    to the installed package's parent (i.e. the live tree).
    """
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent.parent
    root = Path(root)
    report = Report(program="hotlint")
    by_file: dict[str, list[tuple[str, tuple[str, ...]]]] = {}
    for rel_path, qualname, rules in HOT_TARGETS:
        by_file.setdefault(rel_path, []).append((qualname, rules))
    paths = sorted(set(by_file) | set(SLOTS_REQUIRED))
    for rel_path in paths:
        file_path = root / rel_path
        if not file_path.exists():
            report.add(
                "warning", "hot-target-missing",
                f"hot file {rel_path} does not exist under {root}",
                file=rel_path, line=1,
            )
            continue
        report.extend(lint_file(
            file_path,
            display_path=rel_path,
            targets=by_file.get(rel_path, []),
            slots_classes=SLOTS_REQUIRED.get(rel_path, ()),
        ))
    return report
