"""Dynamic cross-check: run the program and confirm/refute static findings.

The static analyzers reason about probed patterns; this module executes
the real program on the discrete-event machine with a monitor attached
to two taps the simulator serves on *both* run-loop cores:

* ``SimMachine.monitors`` — every ``Touch`` is observed together with
  the operation's *runtime* lockset (the handles actually held at that
  virtual instant), every block and finish is counted;
* ``OSScheduler.on_place`` — every PU occupation, from which observed
  placements and migrations are derived independently of the counters.

Event/time progress for the run summary is read off the engine after
the run (an ``Engine.watchers`` per-event callback would force the
slow object path); :attr:`DynamicResult.core` records which core
actually executed — normally ``"batched"``.

``cross_check`` then reconciles: a statically predicted deadlock that
manifests as a :class:`DeadlockError` (or a predicted race observed as
an unguarded overlapping access) is *confirmed*; a prediction the small
execution never hits is demoted to a note; a dynamic-only observation
is flagged as a static miss. The migration proof (every thread pinned)
is checked against the run's migration counter, which must read 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.analyze.races import effective_lockset
from repro.analyze.report import Finding, Report
from repro.errors import DeadlockError, InvariantViolation, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.orwl.runtime import Runtime

__all__ = ["DynamicMonitor", "DynamicResult", "run_dynamic", "cross_check"]

#: Default event budget for cross-check executions (small programs).
DEFAULT_MAX_EVENTS = 2_000_000

#: Static codes that predict an execution deadlock.
DEADLOCK_CODES = frozenset(
    {"deadlock-cycle", "stalled-fifo", "unreleased-handle"}
)


class DynamicMonitor:
    """Lockset/placement monitor for one runtime's execution."""

    def __init__(
        self, runtime: "Runtime", aliases: dict[int, set[int]] | None = None
    ) -> None:
        self.runtime = runtime
        self.aliases = aliases or {}
        self._ops = runtime.operations
        self._loc_by_buffer = {}  # filled lazily (buffers exist post-schedule)
        #: (buffer_id) -> list of (op, write, lockset) — first occurrence
        #: per (op, write, lockset) to bound memory on long runs.
        self.accesses: dict[int, list] = {}
        self._seen_access: set = set()
        self.buffer_label: dict[int, str] = {}
        #: tid -> PU occupation history, consecutive duplicates collapsed.
        self.placements: dict[int, list[int]] = {}
        self.blocks = 0
        self.finished = 0
        #: Progress totals, filled from the engine after the run (not a
        #: per-event watcher — that would force the object path).
        self.last_time = 0.0
        self.steps = 0

    # -- SimMachine monitor protocol -----------------------------------------

    def on_touch(self, thread, buffer, nbytes, write) -> None:
        if thread.tid >= len(self._ops):
            return  # control threads touch nothing of interest
        op = self._ops[thread.tid]
        held = tuple(h for h in op.all_handles if h.held)
        lockset = effective_lockset(held, self.aliases)
        bid = id(buffer)
        if bid not in self._loc_by_buffer:
            self._loc_by_buffer[bid] = next(
                (l_ for l_ in self.runtime.locations if l_.buffer is buffer),
                None,
            )
        loc = self._loc_by_buffer[bid]
        self.buffer_label[bid] = (
            loc.name if loc is not None else getattr(buffer, "label", "<buffer>")
        )
        key = (bid, op.op_id, write, lockset)
        if key in self._seen_access:
            return
        self._seen_access.add(key)
        self.accesses.setdefault(bid, []).append((op, write, lockset))

    def on_block(self, thread, event) -> None:
        self.blocks += 1

    def on_finish(self, thread) -> None:
        self.finished += 1

    # -- OSScheduler.on_place hook -------------------------------------------

    def on_place(self, pu: int, thread) -> None:
        hist = self.placements.setdefault(thread.tid, [])
        if not hist or hist[-1] != pu:
            hist.append(pu)

    # -- derived observations ----------------------------------------------------

    def race_pairs(self) -> list[tuple[str, str, str, str]]:
        """Observed unguarded conflicting pairs:
        ``(buffer_label, op_a, op_b, kind)``."""
        out = []
        seen: set = set()
        for bid, entries in self.accesses.items():
            for i, (op_a, w_a, locks_a) in enumerate(entries):
                for op_b, w_b, locks_b in entries[i + 1:]:
                    if op_a is op_b or not (w_a or w_b):
                        continue
                    if locks_a & locks_b:
                        continue
                    key = (bid, frozenset((op_a.op_id, op_b.op_id)))
                    if key in seen:
                        continue
                    seen.add(key)
                    kind = "write/write" if (w_a and w_b) else "read/write"
                    out.append(
                        (self.buffer_label[bid], op_a.name, op_b.name, kind)
                    )
        return out

    def observed_migrations(self) -> int:
        """Placement changes beyond each thread's first occupation."""
        return sum(max(0, len(h) - 1) for h in self.placements.values())


@dataclass
class DynamicResult:
    """Outcome of one monitored execution."""

    completed: bool
    deadlocked: bool
    budget_exhausted: bool = False
    error: str = ""
    blocked: list[str] = field(default_factory=list)
    races: list[tuple[str, str, str, str]] = field(default_factory=list)
    migrations: int = 0
    seconds: float = 0.0
    monitor: DynamicMonitor | None = None
    #: Which simulator core executed the monitored run ("batched" unless
    #: something forced the object path).
    core: str = ""
    #: SimSanitizer coverage of the run: live+post-run invariant checks
    #: performed (0 when the run was not sanitized) and any violations.
    sanitizer_checks: int = 0
    sanitizer_violations: list[str] = field(default_factory=list)


def run_dynamic(
    build: Callable[[], "Runtime"],
    *,
    aliases: dict[int, set[int]] | None = None,
    max_events: int = DEFAULT_MAX_EVENTS,
    sanitize: bool = False,
) -> DynamicResult:
    """Build a fresh runtime, attach the monitor, execute, observe.

    With *sanitize* the execution also runs under the SimSanitizer's
    checked-mode invariants (:mod:`repro.analyze.invariants`).
    """
    rt = build()
    monitor = DynamicMonitor(rt, aliases)
    machine = rt.machine
    if sanitize:
        machine.sanitize = True
    machine.monitors.append(monitor)
    machine.scheduler.on_place.append(monitor.on_place)

    completed = deadlocked = budget_exhausted = False
    error = ""
    sanitizer_violations: list[str] = []
    seconds = 0.0
    try:
        result = rt.run(max_events=max_events)
        seconds = result.seconds
        completed = True
    except DeadlockError as exc:
        deadlocked = True
        error = str(exc)
    except InvariantViolation as exc:
        error = str(exc)
        sanitizer_violations.append(str(exc))
    except SimulationError as exc:
        budget_exhausted = True
        error = str(exc)
    monitor.steps = machine.engine.events_processed
    monitor.last_time = machine.engine.now
    sanitizer_checks = 0
    if machine.sanitizer is not None:
        sanitizer_checks = machine.sanitizer.checks
        for violation in machine.sanitizer.violations:
            if violation not in sanitizer_violations:
                sanitizer_violations.append(violation)

    blocked = [
        t.name
        + (f" on {t.waiting_on.name!r}" if t.waiting_on is not None else "")
        for t in machine.threads
        if t.state == "blocked"
    ]
    migrations = int(machine.total_counters().cpu_migrations)
    return DynamicResult(
        completed=completed,
        deadlocked=deadlocked,
        budget_exhausted=budget_exhausted,
        error=error,
        blocked=blocked,
        races=monitor.race_pairs(),
        migrations=migrations,
        seconds=seconds,
        monitor=monitor,
        core=machine.core_used or "",
        sanitizer_checks=sanitizer_checks,
        sanitizer_violations=sanitizer_violations,
    )


def cross_check(
    static: Report,
    result: DynamicResult,
    *,
    migrations_proved: bool | None = None,
) -> list[Finding]:
    """Reconcile static findings with the observed execution."""
    findings: list[Finding] = []

    def f(severity, code, message, subject=""):
        findings.append(
            Finding(severity, code, message, subject=subject, source="dynamic")
        )

    # -- deadlock -------------------------------------------------------------
    predicted = [x for x in static.findings if x.code in DEADLOCK_CODES]
    if result.deadlocked:
        blocked = ", ".join(result.blocked[:8]) or "<unknown>"
        if predicted:
            f("note", "deadlock-confirmed",
              "execution deadlocked as statically predicted; blocked: "
              f"{blocked}", subject=blocked)
        else:
            f("warning", "deadlock-unpredicted",
              f"execution deadlocked ({blocked}) although static analysis "
              "found no zero-lag cycle", subject=blocked)
    elif predicted:
        severity = "note" if result.budget_exhausted else "warning"
        f(severity, "deadlock-unconfirmed",
          f"{len(predicted)} static deadlock finding(s) were not observed "
          + ("before the event budget ran out"
             if result.budget_exhausted else "on this execution"))

    # -- races ----------------------------------------------------------------
    static_race_subjects = {
        x.subject for x in static.findings if x.code == "data-race"
    }
    observed_subjects = set()
    for label, op_a, op_b, kind in result.races:
        observed_subjects.add(label)
        if label in static_race_subjects:
            f("note", "race-confirmed",
              f"{kind} race on {label!r} between {op_a} and {op_b} observed "
              "at run time with empty common lockset", subject=label)
        else:
            f("warning", "race-unpredicted",
              f"unguarded {kind} overlap on {label!r} between {op_a} and "
              f"{op_b} observed but not statically predicted", subject=label)
    for label in sorted(static_race_subjects - observed_subjects):
        f("note", "race-unconfirmed",
          f"static race on {label!r} was not observed on this execution "
          "(interleaving-dependent)", subject=label)

    # -- sanitizer -------------------------------------------------------------
    for violation in result.sanitizer_violations:
        f("error", "sanitizer-violation", violation)
    if result.sanitizer_checks and not result.sanitizer_violations:
        f("note", "sanitizer-clean",
          f"{result.sanitizer_checks} simulator invariant check(s) held "
          "during the monitored execution")

    # -- migrations ------------------------------------------------------------
    if migrations_proved and result.completed:
        if result.migrations == 0:
            f("note", "migrations-zero-confirmed",
              "all threads pinned; observed CPU migrations = 0 as proved")
        else:
            f("error", "migration-despite-binding",
              f"{result.migrations} CPU migration(s) observed although "
              "every thread is bound to a single PU")
    return findings
