"""Acquisition-pattern extraction: run each body once, force-granting locks.

The deadlock and race analyzers need to know in which *order* an
operation's body acquires, releases and touches its handles — and bodies
are opaque generators, so declaration order is not enough (matmul, for
one, releases its own slot *before* acquiring its predecessor's). The
probe drives each body in isolation after ``schedule()``:

* a yielded ``Wait`` whose event belongs to one of the operation's handle
  requests is *force-granted* — the request is marked active directly in
  the location FIFO, bypassing the grant protocol — and recorded as an
  ``acquire`` event;
* releases are synchronous, so they are detected by diffing the set of
  held handles between yields (simultaneous releases are ordered by
  reverse acquisition order, the nested-unlock convention);
* ``Touch`` yields are recorded together with the handles held at that
  moment (the race analyzer's locksets);
* ``Compute``/``Spawn``/``YieldCPU`` and foreign waits are skipped.

Probing stops at the first *repeat* acquire (the steady-state iteration
boundary), at body completion, or at a step budget. Probing mutates
handle and FIFO state: a probed runtime must not be ``run()`` afterwards
— the analyzers build fresh runtimes per pass for exactly this reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.sim.process import Touch, Wait

if TYPE_CHECKING:  # pragma: no cover
    from repro.orwl.handle import Handle
    from repro.orwl.runtime import Runtime
    from repro.orwl.task import Operation

__all__ = ["PatternEvent", "OpPattern", "probe_operation", "probe_program"]

#: Per-operation budget of generator steps before giving up.
DEFAULT_BUDGET = 20_000

ACQUIRE = "acquire"
RELEASE = "release"
TOUCH = "touch"


@dataclass(frozen=True)
class PatternEvent:
    """One observed step of an operation's steady-state iteration."""

    kind: str  # "acquire" | "release" | "touch"
    handle: "Handle | None" = None  # acquire/release
    buffer: object = None  # touch: the simulated buffer
    write: bool = False  # touch
    held: tuple = ()  # touch: handles held at that moment


@dataclass
class OpPattern:
    """The probed behaviour of one operation."""

    op: "Operation"
    events: list[PatternEvent] = field(default_factory=list)
    #: True when probing stopped at a repeat acquire: the event list is
    #: one full iteration and wraps around (steady-state cycle).
    iterative: bool = False
    #: True when the step budget ran out before a boundary was found.
    truncated: bool = False
    #: Repr of an exception the body raised mid-probe, if any.
    error: str = ""

    @property
    def sync_events(self) -> list[PatternEvent]:
        """Only the acquire/release events (the deadlock-relevant ones)."""
        return [e for e in self.events if e.kind in (ACQUIRE, RELEASE)]

    @property
    def touch_events(self) -> list[PatternEvent]:
        return [e for e in self.events if e.kind == TOUCH]


def _held_handles(op: "Operation") -> list:
    return [h for h in op.all_handles if h.held]


def _handle_waiting_on(op: "Operation", event) -> "Handle | None":
    for h in op.all_handles:
        req = h.current_request
        if req is not None and req.event is event:
            return h
    return None


def _force_grant(handle: "Handle") -> None:
    """Mark the handle's pending request active, bypassing the FIFO.

    ``Handle.release`` then works normally (it requires an active
    request); the FIFO's queue/active lists are kept consistent enough
    for repeated probing of the same location.
    """
    req = handle.current_request
    if req is None or req.active:
        return
    fifo = handle.location.fifo
    try:
        fifo.queue.remove(req)
    except ValueError:
        pass
    req.active = True
    fifo.active.append(req)


def probe_operation(
    runtime: "Runtime", op: "Operation", *, budget: int = DEFAULT_BUDGET
) -> OpPattern:
    """Extract one operation's acquisition pattern (see module docstring)."""
    pattern = OpPattern(op)
    if op.body is None:
        return pattern
    gen = op.body(op)
    if gen is None:
        return pattern

    acquired_ids: set[int] = set()  # handles acquired within the pattern
    acquire_order: dict[int, int] = {}  # id(handle) -> acquisition seq
    held_prev = _held_handles(op)

    def record_releases() -> list:
        nonlocal held_prev
        held_now = _held_handles(op)
        gone = [h for h in held_prev if not h.held]
        # Reverse acquisition order: the nested-unlock convention for
        # releases that happen back-to-back between two yields.
        gone.sort(key=lambda h: -acquire_order.get(id(h), -1))
        for h in gone:
            pattern.events.append(PatternEvent(RELEASE, handle=h))
        held_prev = held_now
        return gone

    for _ in range(budget):
        try:
            item = next(gen)
        except StopIteration:
            record_releases()
            return pattern
        except Exception as exc:  # body bug — surface as a finding
            record_releases()
            pattern.error = f"{type(exc).__name__}: {exc}"
            return pattern
        record_releases()
        if isinstance(item, Wait):
            h = _handle_waiting_on(op, item.event)
            if h is None:
                continue  # foreign event: resume optimistically
            if id(h) in acquired_ids:
                pattern.iterative = True  # steady-state boundary
                return pattern
            _force_grant(h)
            acquired_ids.add(id(h))
            acquire_order[id(h)] = len(acquire_order)
            pattern.events.append(PatternEvent(ACQUIRE, handle=h))
            # The handle becomes held when the generator resumes; count
            # it as held *now* so a release before the next yield (a
            # zero-work body) still shows up in the diff.
            held_prev.append(h)
        elif isinstance(item, Touch):
            pattern.events.append(
                PatternEvent(
                    TOUCH,
                    buffer=item.buffer,
                    write=item.write,
                    held=tuple(_held_handles(op)),
                )
            )
        # Compute / Spawn / YieldCPU: timing-only, skip.
    pattern.truncated = True
    return pattern


def probe_program(
    runtime: "Runtime", *, budget: int = DEFAULT_BUDGET
) -> dict[int, OpPattern]:
    """Probe every operation; returns ``op_id -> OpPattern``.

    The runtime must be scheduled (initial requests in the FIFOs); the
    runtime is consumed by the probe and must not be run afterwards.
    """
    return {
        op.op_id: probe_operation(runtime, op, budget=budget)
        for op in runtime.operations
    }
