"""Static race detection: Eraser-style locksets over probed touches.

Every probed ``Touch`` carries the set of handles held at that moment.
Two operations race on a buffer when both touch it, at least one writes,
and their *effective locksets* — the locations they hold handles on —
share no common guard: nothing orders the two critical sections.

One idiom needs care: **zero-copy split descriptors**. A scatter stage
publishes a small descriptor of its input into a work location (video's
``gmm_work``); split workers then touch the *input's* buffer while
holding only a handle on the work location. That is safe — the work
location's FIFO transitively orders access to the input — so a handle
on the descriptor location counts as a guard on the described location.
The alias is inferred from the publisher's own pattern: an operation
that write-touches location *M* while simultaneously holding a write
handle on *M* and a read handle on *L* establishes ``M ⇒ guards L``.

A second check catches writes bypassing exclusivity: a write touch of a
location's buffer while the operation holds only *read* handles on that
location (``write-under-read-lock``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analyze.probe import OpPattern
from repro.analyze.report import Finding

if TYPE_CHECKING:  # pragma: no cover
    from repro.orwl.runtime import Runtime

__all__ = ["infer_aliases", "effective_lockset", "check_races"]


def infer_aliases(patterns: dict[int, OpPattern]) -> dict[int, set[int]]:
    """Descriptor aliases ``loc_id(M) -> {loc_id(L), ...}`` (see above)."""
    aliases: dict[int, set[int]] = {}
    for pattern in patterns.values():
        for ev in pattern.touch_events:
            if not ev.write:
                continue
            write_locs = [
                h.location for h in ev.held
                if h.mode == "w" and h.location.buffer is ev.buffer
            ]
            read_locs = [h.location for h in ev.held if h.mode == "r"]
            for m in write_locs:
                for l_ in read_locs:
                    if l_.loc_id != m.loc_id:
                        aliases.setdefault(m.loc_id, set()).add(l_.loc_id)
    return aliases


def effective_lockset(held: tuple, aliases: dict[int, set[int]]) -> frozenset[int]:
    """Location ids guarded by the given held handles, aliases applied."""
    locks = {h.location.loc_id for h in held}
    for lid in list(locks):
        locks |= aliases.get(lid, set())
    return frozenset(locks)


def check_races(
    runtime: "Runtime",
    patterns: dict[int, OpPattern],
    *,
    aliases: dict[int, set[int]] | None = None,
) -> list[Finding]:
    """All race findings over the probed touch events."""
    if aliases is None:
        aliases = infer_aliases(patterns)
    loc_by_buffer = {
        id(loc.buffer): loc
        for loc in runtime.locations
        if loc.buffer is not None
    }

    findings: list[Finding] = []
    # accesses[buffer_id] -> list of (op, write, lockset)
    accesses: dict[int, list] = {}
    buffer_label: dict[int, str] = {}
    read_lock_reported: set[tuple[int, int]] = set()

    for pattern in patterns.values():
        for ev in pattern.touch_events:
            lockset = effective_lockset(ev.held, aliases)
            bid = id(ev.buffer)
            loc = loc_by_buffer.get(bid)
            label = loc.name if loc is not None else getattr(
                ev.buffer, "label", "<buffer>"
            )
            buffer_label[bid] = label
            accesses.setdefault(bid, []).append(
                (pattern.op, ev.write, lockset)
            )
            # Write through read-only guards on the touched location.
            if ev.write and loc is not None:
                on_loc = [h for h in ev.held if h.location is loc]
                key = (pattern.op.op_id, loc.loc_id)
                if (
                    on_loc
                    and all(h.mode == "r" for h in on_loc)
                    and key not in read_lock_reported
                ):
                    read_lock_reported.add(key)
                    findings.append(Finding(
                        "error", "write-under-read-lock",
                        f"{pattern.op.name} writes location {loc.name!r} "
                        "while holding only read handles on it — the FIFO "
                        "admits concurrent readers, so the write is "
                        "unordered",
                        subject=loc.name,
                        fix_hint="acquire a write handle for the update",
                    ))

    reported: set[tuple] = set()
    for bid, entries in accesses.items():
        for i, (op_a, w_a, locks_a) in enumerate(entries):
            for op_b, w_b, locks_b in entries[i + 1:]:
                if op_a is op_b or not (w_a or w_b):
                    continue
                if locks_a & locks_b:
                    continue
                key = (bid, frozenset((op_a.op_id, op_b.op_id)))
                if key in reported:
                    continue
                reported.add(key)
                kind = "write/write" if (w_a and w_b) else "read/write"
                findings.append(Finding(
                    "error", "data-race",
                    f"{kind} race on buffer {buffer_label[bid]!r}: "
                    f"{op_a.name} and {op_b.name} touch it with no common "
                    "guarding location (locksets "
                    f"{sorted(locks_a)} vs {sorted(locks_b)})",
                    subject=buffer_label[bid],
                    fix_hint="route both accesses through handles on a "
                             "shared location (or a split descriptor of "
                             "it)",
                ))
    return findings
