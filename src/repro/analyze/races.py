"""Static race detection: Eraser-style locksets over probed touches.

Every probed ``Touch`` carries the set of handles held at that moment.
Two operations race on a buffer when both touch it, at least one writes,
and their *effective locksets* — the locations they hold handles on —
share no common guard: nothing orders the two critical sections.

Locksets are a heuristic. The happens-before replay
(:mod:`repro.analyze.hb`) gives execution-grounded verdicts; this module
feeds it via :func:`collect_race_pairs`, which returns one structured
:class:`RacePair` per candidate (buffer, op-pair) so the pipeline can
attach a ``CONFIRMED``/``ORDERED`` verdict instead of reporting blindly.

One idiom needs care when locksets must stand alone: **zero-copy split
descriptors**. A scatter stage publishes a small descriptor of its input
into a work location (video's ``gmm_work``); split workers then touch
the *input's* buffer while holding only a handle on the work location.
That is safe — the work location's FIFO transitively orders access to
the input — so a handle on the descriptor location counts as a guard on
the described location. The alias is inferred from the publisher's own
pattern: an operation that write-touches location *M* while
simultaneously holding a write handle on *M* and a read handle on *L*
establishes ``M ⇒ guards L``. The HB replay derives the same guarantee
from the protocol itself (the delegation rule), so the alias is only a
fallback for pairs the replay could not cover.

A second check catches writes bypassing exclusivity: a write touch of a
location's buffer while the operation holds only *read* handles on that
location (``write-under-read-lock``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analyze.probe import OpPattern
from repro.analyze.report import Finding

if TYPE_CHECKING:  # pragma: no cover
    from repro.analyze.hb import HBResult
    from repro.orwl.runtime import Runtime

__all__ = [
    "RacePair",
    "infer_aliases",
    "effective_lockset",
    "collect_race_pairs",
    "check_write_under_read_lock",
    "check_races",
    "classify_races",
]


def infer_aliases(patterns: dict[int, OpPattern]) -> dict[int, set[int]]:
    """Descriptor aliases ``loc_id(M) -> {loc_id(L), ...}`` (see above)."""
    aliases: dict[int, set[int]] = {}
    for pattern in patterns.values():
        for ev in pattern.touch_events:
            if not ev.write:
                continue
            write_locs = [
                h.location for h in ev.held
                if h.mode == "w" and h.location.buffer is ev.buffer
            ]
            read_locs = [h.location for h in ev.held if h.mode == "r"]
            for m in write_locs:
                for l_ in read_locs:
                    if l_.loc_id != m.loc_id:
                        aliases.setdefault(m.loc_id, set()).add(l_.loc_id)
    return aliases


def effective_lockset(held: tuple, aliases: dict[int, set[int]]) -> frozenset[int]:
    """Location ids guarded by the given held handles, aliases applied."""
    locks = {h.location.loc_id for h in held}
    for lid in list(locks):
        locks |= aliases.get(lid, set())
    return frozenset(locks)


@dataclass(frozen=True)
class RacePair:
    """One candidate race: a (buffer, unordered op-pair) with evidence."""

    buffer_id: int
    label: str  # location name (or buffer label) for messages
    op_a: object  # Operation
    op_b: object
    write_a: bool
    write_b: bool
    locks_a: frozenset  # effective locksets at the conflicting touches
    locks_b: frozenset

    @property
    def key(self) -> tuple:
        return (self.buffer_id, frozenset((self.op_a.op_id, self.op_b.op_id)))

    @property
    def kind(self) -> str:
        return "write/write" if (self.write_a and self.write_b) else "read/write"

    def finding(self, *, verdict: str = "") -> Finding:
        return Finding(
            "error", "data-race",
            f"{self.kind} race on buffer {self.label!r}: "
            f"{self.op_a.name} and {self.op_b.name} touch it with no common "
            "guarding location (locksets "
            f"{sorted(self.locks_a)} vs {sorted(self.locks_b)})",
            subject=self.label,
            fix_hint="route both accesses through handles on a "
                     "shared location (or a split descriptor of it)",
            verdict=verdict,
        )


def _buffer_accesses(runtime: "Runtime", patterns: dict[int, OpPattern],
                     aliases: dict[int, set[int]]):
    """Group probed touches by buffer: bid -> [(op, write, lockset)]."""
    loc_by_buffer = {
        id(loc.buffer): loc
        for loc in runtime.locations
        if loc.buffer is not None
    }
    accesses: dict[int, list] = {}
    labels: dict[int, str] = {}
    for pattern in patterns.values():
        for ev in pattern.touch_events:
            bid = id(ev.buffer)
            loc = loc_by_buffer.get(bid)
            labels[bid] = loc.name if loc is not None else getattr(
                ev.buffer, "label", "<buffer>"
            )
            accesses.setdefault(bid, []).append(
                (pattern.op, ev.write, effective_lockset(ev.held, aliases))
            )
    return accesses, labels


def collect_race_pairs(
    runtime: "Runtime",
    patterns: dict[int, OpPattern],
    *,
    aliases: dict[int, set[int]] | None = None,
) -> list[RacePair]:
    """All lockset-unguarded (buffer, op-pair) candidates, deduplicated.

    With ``aliases=None`` the split-descriptor rule is inferred and
    applied (the legacy standalone behaviour); pass ``aliases={}`` for
    the raw lockset pairs the HB replay classifies.
    """
    if aliases is None:
        aliases = infer_aliases(patterns)
    accesses, labels = _buffer_accesses(runtime, patterns, aliases)
    pairs: list[RacePair] = []
    seen: set[tuple] = set()
    for bid, entries in accesses.items():
        for i, (op_a, w_a, locks_a) in enumerate(entries):
            for op_b, w_b, locks_b in entries[i + 1:]:
                if op_a is op_b or not (w_a or w_b):
                    continue
                if locks_a & locks_b:
                    continue
                key = (bid, frozenset((op_a.op_id, op_b.op_id)))
                if key in seen:
                    continue
                seen.add(key)
                pairs.append(RacePair(
                    buffer_id=bid, label=labels[bid],
                    op_a=op_a, op_b=op_b, write_a=w_a, write_b=w_b,
                    locks_a=locks_a, locks_b=locks_b,
                ))
    return pairs


def check_write_under_read_lock(
    runtime: "Runtime", patterns: dict[int, OpPattern]
) -> list[Finding]:
    """Writes bypassing exclusivity: write touches under read-only guards."""
    loc_by_buffer = {
        id(loc.buffer): loc
        for loc in runtime.locations
        if loc.buffer is not None
    }
    findings: list[Finding] = []
    reported: set[tuple[int, int]] = set()
    for pattern in patterns.values():
        for ev in pattern.touch_events:
            if not ev.write:
                continue
            loc = loc_by_buffer.get(id(ev.buffer))
            if loc is None:
                continue
            on_loc = [h for h in ev.held if h.location is loc]
            key = (pattern.op.op_id, loc.loc_id)
            if (
                on_loc
                and all(h.mode == "r" for h in on_loc)
                and key not in reported
            ):
                reported.add(key)
                findings.append(Finding(
                    "error", "write-under-read-lock",
                    f"{pattern.op.name} writes location {loc.name!r} "
                    "while holding only read handles on it — the FIFO "
                    "admits concurrent readers, so the write is "
                    "unordered",
                    subject=loc.name,
                    fix_hint="acquire a write handle for the update",
                ))
    return findings


def check_races(
    runtime: "Runtime",
    patterns: dict[int, OpPattern],
    *,
    aliases: dict[int, set[int]] | None = None,
) -> list[Finding]:
    """Standalone lockset findings (no HB verdicts) — legacy entry point."""
    findings = check_write_under_read_lock(runtime, patterns)
    for pair in collect_race_pairs(runtime, patterns, aliases=aliases):
        findings.append(pair.finding())
    return findings


def classify_races(
    runtime: "Runtime",
    patterns: dict[int, OpPattern],
    hb: "HBResult",
    *,
    aliases: dict[int, set[int]] | None = None,
    hb_notes: bool = False,
) -> list[Finding]:
    """Lockset candidates filtered through the happens-before verdicts.

    One finding per (buffer, op-pair):

    * ``CONFIRMED`` — HB-concurrent: reported as a ``data-race`` error
      with the verdict attached;
    * ``ORDERED`` — a lockset false positive: suppressed (emitted as a
      ``race-ordered`` note when *hb_notes* is set, for ``--hb``);
    * unknown — the replay could not cover the pair: fall back to the
      split-descriptor alias rule; still-unguarded pairs are reported
      as lockset-only errors (empty verdict).
    """
    if aliases is None:
        aliases = infer_aliases(patterns)
    findings = check_write_under_read_lock(runtime, patterns)
    raw_pairs = collect_race_pairs(runtime, patterns, aliases={})
    for pair in raw_pairs:
        verdict = hb.verdict(pair.buffer_id,
                             (pair.op_a.op_id, pair.op_b.op_id))
        if verdict == "CONFIRMED":
            findings.append(pair.finding(verdict=verdict))
        elif verdict == "ORDERED":
            if hb_notes:
                findings.append(Finding(
                    "note", "race-ordered",
                    f"lockset pair on buffer {pair.label!r} "
                    f"({pair.op_a.name} vs {pair.op_b.name}, {pair.kind}) "
                    "is FIFO-ordered: the happens-before replay separates "
                    "every conflicting access",
                    subject=pair.label,
                    verdict=verdict,
                ))
        else:
            # Replay had no coverage: the alias-augmented lockset is the
            # best remaining evidence.
            locks_a = _alias_expand(pair.locks_a, aliases)
            locks_b = _alias_expand(pair.locks_b, aliases)
            if not (locks_a & locks_b):
                findings.append(pair.finding())

    # Races only the replay can see: conflicting accesses whose locksets
    # overlap (so the lockset pass stays silent) yet are HB-concurrent —
    # e.g. a write racing reads inside one coalesced reader group.
    lockset_keys = {pair.key for pair in raw_pairs}
    ops_by_id = {op.op_id: op for op in runtime.operations}
    labels = {
        id(loc.buffer): loc.name
        for loc in runtime.locations
        if loc.buffer is not None
    }
    for (bid, op_ids), kind in sorted(
        hb.raced.items(), key=lambda kv: (kv[0][0], sorted(kv[0][1]))
    ):
        if (bid, op_ids) in lockset_keys:
            continue
        names = sorted(
            ops_by_id[o].name for o in op_ids if o in ops_by_id
        )
        label = labels.get(bid, "<buffer>")
        findings.append(Finding(
            "error", "data-race",
            f"{kind} race on buffer {label!r}: "
            f"{' and '.join(names)} are happens-before concurrent even "
            "though their locksets overlap (shared read access does not "
            "order a write)",
            subject=label,
            fix_hint="give the writing operation an exclusive (write) "
                     "handle on the location",
            verdict="CONFIRMED",
        ))
    return findings


def _alias_expand(locks: frozenset, aliases: dict[int, set[int]]) -> frozenset:
    expanded = set(locks)
    for lid in locks:
        expanded |= aliases.get(lid, set())
    return frozenset(expanded)
