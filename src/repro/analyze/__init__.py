"""repro.analyze — static deadlock/race/placement verification for ORWL.

The pipeline (see docs/ANALYZE.md):

1. **lint** — graph wiring checks (:mod:`repro.orwl.lint`);
2. **placement** — Algorithm 1's mapping validated against the topology
   and the oversubscription policy, plus the migrations-are-zero proof
   (:mod:`repro.analyze.placement`);
3. **probe** — each body driven once with force-granted locks to extract
   its acquire/release/touch pattern (:mod:`repro.analyze.probe`);
4. **deadlock** — zero-lag cycles in the lag-weighted wait-for graph
   built from the initial FIFO order (:mod:`repro.analyze.deadlock`);
5. **races** — Eraser-style lockset candidates
   (:mod:`repro.analyze.races`) classified by the vector-clock
   happens-before replay (:mod:`repro.analyze.hb`): each candidate pair
   gets a ``CONFIRMED``/``ORDERED`` verdict, and only confirmed or
   unresolvable pairs are reported;
6. optional **dynamic cross-check** — a monitored execution confirming
   or refuting the static findings (:mod:`repro.analyze.dynamic`).

Because the probe consumes a runtime (it mutates handle and FIFO
state), :func:`analyze` takes a *builder* — a zero-argument callable
returning a fresh runtime — and builds one runtime per pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analyze.deadlock import check_deadlock
from repro.analyze.dynamic import (
    DynamicResult,
    cross_check,
    run_dynamic,
)
from repro.analyze.hb import HBResult, check_hb
from repro.analyze.placement import check_placement, migrations_provably_zero
from repro.analyze.probe import probe_program
from repro.analyze.races import classify_races, infer_aliases
from repro.analyze.report import (
    Finding,
    Report,
    json_text,
    sarif_log,
    sort_findings,
)
from repro.errors import MappingError, ScheduleError

__all__ = [
    "Analysis",
    "analyze",
    "analyze_runtime",
    "analyze_app",
    "Finding",
    "HBResult",
    "Report",
    "json_text",
    "sarif_log",
    "sort_findings",
]


@dataclass
class Analysis:
    """Everything one :func:`analyze` call produced."""

    name: str
    static: Report
    dynamic: Report | None = None
    placement: object = None
    migrations_proved: bool | None = None
    aliases: dict | None = None
    #: Simulator core the dynamic cross-check executed on ("batched" /
    #: "object"); None when no dynamic pass ran.
    dynamic_core: str | None = None
    #: Happens-before replay state (verdicts, coverage); None when the
    #: program never scheduled.
    hb: HBResult | None = None

    @property
    def report(self) -> Report:
        """Static + dynamic findings merged into one report."""
        merged = Report(program=self.name)
        merged.extend(self.static.findings)
        if self.dynamic is not None:
            merged.extend(self.dynamic.findings)
        return merged

    def exit_code(self) -> int:
        return self.report.exit_code()

    def to_dict(self) -> dict:
        d = self.report.to_dict()
        d["migrations_provably_zero"] = self.migrations_proved
        if self.dynamic is not None:
            # Report the core that actually executed instead of implying
            # the object path unconditionally.
            d["dynamic_core"] = self.dynamic_core
        if self.hb is not None:
            d["hb"] = self.hb.summary()
        return d

    def to_text(self) -> str:
        lines = [self.report.to_text()]
        if self.migrations_proved is not None:
            lines.append(
                "migrations provably zero: "
                + ("yes (all threads pinned)" if self.migrations_proved
                   else "no (unbound threads remain)")
            )
        if self.dynamic is not None and self.dynamic_core:
            lines.append(
                f"dynamic cross-check ran on the {self.dynamic_core} core"
            )
        return "\n".join(lines)


def analyze_runtime(
    runtime, *, name: str = "", hb_notes: bool = False
) -> Analysis:
    """All static passes on one runtime (consumed: do not run() after).

    The runtime must be declared but not yet scheduled. With
    *hb_notes* set, lockset pairs the happens-before replay proves
    ORDERED are surfaced as ``race-ordered`` notes instead of being
    silently suppressed (the CLI's ``--hb``).
    """
    report = Report(program=name or "<program>")
    report.extend(runtime.validate())

    placement = None
    migrations_proved = None
    try:
        placement = runtime.affinity_compute()
    except MappingError as exc:
        report.add("warning", "placement-failed",
                   f"affinity_compute failed: {exc}")
    if placement is not None:
        n_threads = len(runtime.operations)
        n_control = len(runtime.locations)
        report.extend(check_placement(
            runtime.topology, placement,
            n_threads=n_threads, n_control=n_control,
        ))
        migrations_proved = migrations_provably_zero(
            placement, n_threads=n_threads, n_control=n_control
        )

    aliases: dict = {}
    hb = None
    try:
        runtime.schedule()
    except ScheduleError as exc:
        report.add("error", "schedule-error", f"schedule() failed: {exc}",
                   fix_hint="give every operation a body and every "
                            "location a size")
    else:
        patterns = probe_program(runtime)
        aliases = infer_aliases(patterns)
        report.extend(check_deadlock(runtime, patterns))
        hb = check_hb(runtime, patterns)
        report.extend(classify_races(
            runtime, patterns, hb, aliases=aliases, hb_notes=hb_notes
        ))

    return Analysis(
        name=report.program,
        static=report,
        placement=placement,
        migrations_proved=migrations_proved,
        aliases=aliases,
        hb=hb,
    )


def analyze(
    build: Callable[[], object],
    *,
    name: str = "",
    dynamic: bool = False,
    max_events: int | None = None,
    hb_notes: bool = False,
    sanitize: bool = False,
) -> Analysis:
    """Static analysis of ``build()``'s program, optionally cross-checked
    against a monitored execution of a second, fresh instance."""
    analysis = analyze_runtime(build(), name=name, hb_notes=hb_notes)
    if dynamic or sanitize:
        kwargs = {} if max_events is None else {"max_events": max_events}
        result: DynamicResult = run_dynamic(
            build, aliases=analysis.aliases, sanitize=sanitize, **kwargs
        )
        dyn = Report(program=analysis.name)
        dyn.extend(cross_check(
            analysis.static, result,
            migrations_proved=analysis.migrations_proved,
        ))
        analysis.dynamic = dyn
        analysis.dynamic_core = result.core
    return analysis


def analyze_app(
    app: str,
    *,
    dynamic: bool = False,
    max_events: int | None = None,
    hb_notes: bool = False,
    sanitize: bool = False,
) -> Analysis:
    """Analyze a registered paper application by name (see
    :mod:`repro.analyze.apps`)."""
    from repro.analyze.apps import app_builder

    build = app_builder(app)
    return analyze(
        build, name=app, dynamic=dynamic, max_events=max_events,
        hb_notes=hb_notes, sanitize=sanitize,
    )
