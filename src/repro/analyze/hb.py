"""Happens-before race verdicts: vector-clock replay of probed patterns.

The lockset pass (:mod:`repro.analyze.races`) is a lock-discipline
heuristic: it over-reports on FIFO-ordered idioms and cannot tell a
benign ordering from a missing one. This module replays the probed
acquisition patterns against an *abstract model* of the ORWL request
FIFOs and derives the happens-before relation with vector clocks, then
classifies every candidate race pair:

``CONFIRMED``
    the two conflicting accesses are HB-concurrent in the replay — a
    real race, no protocol edge orders them;
``ORDERED``
    both operations replayed to completion and every conflicting access
    pair was separated by an HB edge — the lockset report is a false
    positive;
``""`` (unknown)
    the replay could not cover both operations (truncated probe, body
    error, stalled FIFO) — the lockset verdict stands.

Replay model
------------

* Each location gets an abstract FIFO seeded from
  :func:`repro.orwl.runtime.initial_request_order` — the same helper
  ``schedule()`` uses, so grant order matches the runtime by
  construction. Writers are exclusive, adjacent readers coalesce, and
  iterative handles re-insert their next-round slot *before* releasing
  (the ORWL_SECTION2 rule).
* Each operation's script is its probed event list; iterative patterns
  repeat for :data:`ROUNDS` rounds so cross-round edges (producer round
  *k+1* vs consumer round *k*) are exercised.
* Vector clocks are ``op_id -> int`` maps. A grant joins the clock the
  FIFO accumulated from every earlier release on that location (exact
  for a FIFO: group *k* activates only after groups ``0..k-1`` fully
  released); each executed event bumps the op's own component, giving
  every access a unique epoch.
* Per-buffer access state keeps a *last-write epoch* plus read/write
  maps pruned to HB-maximal entries — the FastTrack fast path: in the
  steady state each map holds a single epoch and the race check is one
  comparison.

Split-descriptor delegation
---------------------------

The one idiom that needs modelling beyond the raw protocol is the
zero-copy scatter (video's ``gmm_work``/``ccl_work``): a publisher
write-touches descriptor location *M* while holding ``w(M)`` and
``r(L)``, and split workers then touch *L*'s buffer holding only
``r(M)``. In full ORWL the split sub-sections would hold real read
slots on *L* itself; this repo models them on *M* only. The replay
restores the intended semantics with a **delegation rule**: when the
publisher pattern is observed, the publisher's active ``r(L)`` slot is
not released until *M*'s next reader group (the workers) drains, and
the deferred release clock joins the publisher's and all delegates'
clocks. *L*'s next writer grant therefore happens-after every worker
read — exactly the transitive guarantee the lockset pass approximated
with the hand-coded alias rule, now derived from the protocol itself.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analyze.probe import ACQUIRE, RELEASE, OpPattern

if TYPE_CHECKING:  # pragma: no cover
    from repro.orwl.handle import Handle
    from repro.orwl.runtime import Runtime

__all__ = ["ROUNDS", "CONFIRMED", "ORDERED", "HBResult", "check_hb"]

#: Rounds an iterative pattern is replayed. Three rounds cover every
#: steady-state edge shape: round-0 warmup, a full middle round, and
#: the producer-(k+1)-vs-consumer-(k) overlap in both directions.
ROUNDS = 3

CONFIRMED = "CONFIRMED"
ORDERED = "ORDERED"

_Clock = dict  # op_id -> int


def _join(into: _Clock, other: _Clock) -> None:
    for k, v in other.items():
        if into.get(k, 0) < v:
            into[k] = v


def _covers(clock: _Clock, other: _Clock) -> bool:
    return all(clock.get(k, 0) >= v for k, v in other.items())


class _Slot:
    """One request in an abstract location FIFO (handle × round)."""

    __slots__ = ("handle", "mode", "op_id", "active", "released",
                 "grant_clock", "delegated_to")

    def __init__(self, handle: "Handle") -> None:
        self.handle = handle
        self.mode = handle.mode
        self.op_id = handle.op.op_id
        self.active = False
        self.released = False
        self.grant_clock: _Clock = {}
        #: Descriptor locations this slot's release is delegated to — one
        #: per published descriptor (fan-out publication marks several).
        self.delegated_to: list["_Fifo"] = []


@dataclass
class _Gate:
    """Completion count for a fan-out delegated release: the deferred
    release on L fires once, after the delegations of *every* published
    descriptor location have resolved."""

    remaining: int


@dataclass
class _Delegation:
    """A deferred release: publisher's slot on L waits for M's readers."""

    src: "_Fifo"  # L's fifo — where the deferred release lands
    slot: _Slot  # the publisher's r(L) slot being held open
    clock: _Clock  # publisher clock, joined with delegates as they release
    publisher: int  # op_id — the publisher is never its own delegate
    created_epoch: int  # M's activation epoch at publication time
    gate: _Gate  # shared across one slot's fan-out delegations
    watch: list = field(default_factory=list)  # slots still to drain


class _Fifo:
    """Abstract LocationFIFO: exclusive writers, coalesced readers."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.queue: deque[_Slot] = deque()
        self.active: list[_Slot] = []
        self.clock: _Clock = {}  # join of all release clocks so far
        self.epoch = 0  # activation counter (delegation attach point)
        self.pending: list[_Delegation] = []  # published, not yet attached
        self.watching: list[_Delegation] = []  # attached to a live group

    def insert(self, slot: _Slot) -> None:
        self.queue.append(slot)

    def advance(self, replay: "_Replay") -> None:
        if self.active or not self.queue:
            return
        head = self.queue.popleft()
        head.active = True
        group = [head]
        if head.mode == "r":
            while self.queue and self.queue[0].mode == "r":
                nxt = self.queue.popleft()
                nxt.active = True
                group.append(nxt)
        self.active.extend(group)
        self.epoch += 1
        grant = dict(self.clock)
        for slot in group:
            slot.grant_clock = grant
        # Attach delegations published before this activation to the
        # new group's foreign readers; no delegates means the deferred
        # release resolves with the publisher clock alone.
        if self.pending:
            ready = [d for d in self.pending if d.created_epoch < self.epoch]
            for d in ready:
                self.pending.remove(d)
                d.watch = [s for s in group
                           if s.mode == "r" and s.op_id != d.publisher]
                if d.watch:
                    self.watching.append(d)
                else:
                    replay.resolve(d)

    def release(self, slot: _Slot, clock: _Clock, replay: "_Replay") -> None:
        _join(self.clock, clock)
        slot.active = False
        slot.released = True
        self.active.remove(slot)
        for d in list(self.watching):
            if slot in d.watch:
                d.watch.remove(slot)
                _join(d.clock, clock)
                if not d.watch:
                    self.watching.remove(d)
                    replay.resolve(d)
        self.advance(replay)


class _BufferState:
    """FastTrack-style per-buffer access state.

    ``writes``/``reads`` map op_id to the epoch (own-component value) of
    that op's last HB-maximal access; entries subsumed by a newer access
    are pruned, so each map usually holds one epoch and the common-case
    check is a single comparison.
    """

    __slots__ = ("writes", "reads")

    def __init__(self) -> None:
        self.writes: dict[int, int] = {}
        self.reads: dict[int, int] = {}

    def access(self, op_id: int, clock: _Clock, write: bool):
        """Record one access; returns [(other_op, kind), ...] races."""
        races = []
        for other, epoch in self.writes.items():
            if other != op_id and clock.get(other, 0) < epoch:
                races.append((other, "write/write" if write else "read/write"))
        if write:
            for other, epoch in self.reads.items():
                if other != op_id and clock.get(other, 0) < epoch:
                    races.append((other, "read/write"))
        mine = clock.get(op_id, 0)
        if write:
            self.writes = {o: e for o, e in self.writes.items()
                           if o != op_id and clock.get(o, 0) < e}
            self.reads = {o: e for o, e in self.reads.items()
                          if o != op_id and clock.get(o, 0) < e}
            self.writes[op_id] = mine
        else:
            self.reads = {o: e for o, e in self.reads.items()
                          if o != op_id and clock.get(o, 0) < e}
            self.reads[op_id] = mine
        return races


@dataclass
class _OpState:
    op: object
    pattern: OpPattern
    script: list
    round_len: int
    idx: int = 0
    clock: _Clock = field(default_factory=dict)
    acquires: dict[int, int] = field(default_factory=dict)  # id(h) -> count
    releases: dict[int, int] = field(default_factory=dict)
    slots: dict[tuple[int, int], _Slot] = field(default_factory=dict)
    forgiven: bool = False  # stalled at a wrap-artifact re-acquire

    @property
    def done(self) -> bool:
        return self.forgiven or self.idx >= len(self.script)

    @property
    def eligible(self) -> bool:
        """May this op's pairs be certified ORDERED?"""
        return (self.done and not self.pattern.truncated
                and not self.pattern.error)


@dataclass
class HBResult:
    """Outcome of the happens-before replay."""

    #: (buffer_id, frozenset({op_a, op_b})) -> "write/write"|"read/write"
    raced: dict = field(default_factory=dict)
    #: op_id -> fully replayed with a trustworthy pattern
    eligible: dict = field(default_factory=dict)
    #: op_id -> replay stalled before the script ended
    stalled: set = field(default_factory=set)
    events_replayed: int = 0
    touches_checked: int = 0
    delegations: int = 0
    rounds: int = ROUNDS

    def verdict(self, buffer_id: int, op_ids) -> str:
        """Classify one candidate pair; "" when the replay can't tell."""
        key = (buffer_id, frozenset(op_ids))
        if key in self.raced:
            return CONFIRMED
        if all(self.eligible.get(o, False) for o in op_ids):
            return ORDERED
        return ""

    def summary(self) -> dict:
        return {
            "rounds": self.rounds,
            "events_replayed": self.events_replayed,
            "touches_checked": self.touches_checked,
            "delegations": self.delegations,
            "hb_races": len(self.raced),
            "ops_eligible": sum(1 for v in self.eligible.values() if v),
            "ops_stalled": len(self.stalled),
        }


class _Replay:
    def __init__(self, runtime: "Runtime",
                 patterns: dict[int, OpPattern], rounds: int) -> None:
        from repro.orwl.runtime import initial_request_order

        self.result = HBResult(rounds=rounds)
        self.fifos: dict[int, _Fifo] = {
            loc.loc_id: _Fifo(loc.name) for loc in runtime.locations
        }
        self.buffers: dict[int, _BufferState] = {}

        self.ops: list[_OpState] = []
        for op in runtime.operations:
            pattern = patterns.get(op.op_id)
            if pattern is None:
                continue
            repeat = rounds if pattern.iterative else 1
            self.ops.append(_OpState(
                op=op, pattern=pattern,
                script=list(pattern.events) * repeat,
                round_len=max(len(pattern.events), 1),
            ))
        self.by_op: dict[int, _OpState] = {
            s.op.op_id: s for s in self.ops
        }

        # Seed round-0 slots in the exact schedule() order, then open
        # each FIFO's first group — mirroring Runtime.schedule().
        for lid, handles in initial_request_order(runtime).items():
            fifo = self.fifos[lid]
            for handle in handles:
                state = self.by_op.get(handle.op.op_id)
                slot = _Slot(handle)
                if state is not None:
                    state.slots[(id(handle), 0)] = slot
                fifo.insert(slot)
        for fifo in self.fifos.values():
            fifo.advance(self)

    # -- delegation ----------------------------------------------------------

    def resolve(self, d: _Delegation) -> None:
        """Retire one delegation; the deferred release on the source
        FIFO fires when the last of the slot's fan-out group resolves."""
        d.gate.remaining -= 1
        if d.gate.remaining <= 0:
            d.src.release(d.slot, d.clock, self)

    def _force_resolve(self) -> bool:
        """Quiescence fallback: flush unresolved delegations as-is."""
        progressed = False
        for fifo in self.fifos.values():
            for d in list(fifo.watching) + list(fifo.pending):
                # A cascade from an earlier resolve may have handled d.
                if d in fifo.watching:
                    fifo.watching.remove(d)
                elif d in fifo.pending:
                    fifo.pending.remove(d)
                else:
                    continue
                self.resolve(d)
                progressed = True
        return progressed

    # -- the executor --------------------------------------------------------

    def _enabled(self, state: _OpState, ev) -> bool:
        if ev.kind != ACQUIRE:
            return True
        n = state.acquires.get(id(ev.handle), 0)
        slot = state.slots.get((id(ev.handle), n))
        return slot is not None and slot.active

    def _tick(self, state: _OpState) -> None:
        state.clock[state.op.op_id] = state.clock.get(state.op.op_id, 0) + 1
        self.result.events_replayed += 1

    def _execute(self, state: _OpState, ev) -> None:
        op_id = state.op.op_id
        if ev.kind == ACQUIRE:
            n = state.acquires.get(id(ev.handle), 0)
            state.acquires[id(ev.handle)] = n + 1
            slot = state.slots[(id(ev.handle), n)]
            _join(state.clock, slot.grant_clock)
        elif ev.kind == RELEASE:
            n = state.releases.get(id(ev.handle), 0)
            state.releases[id(ev.handle)] = n + 1
            slot = state.slots.get((id(ev.handle), n))
            if slot is None or not slot.active:
                self._tick(state)
                return  # release of a never-granted slot: wrap artifact
            fifo = self.fifos[ev.handle.location.loc_id]
            if ev.handle.iterative:
                nxt = _Slot(ev.handle)
                state.slots[(id(ev.handle), n + 1)] = nxt
                fifo.insert(nxt)  # ORWL_SECTION2: re-insert, then release
            if slot.delegated_to:
                targets = slot.delegated_to
                slot.delegated_to = []
                # Fan-out publication: one delegation per published
                # descriptor location, all sharing a single clock dict
                # (delegate joins accumulate) and a gate so the deferred
                # release on L fires exactly once, after every target's
                # delegates have drained.
                shared_clock = dict(state.clock)
                gate = _Gate(remaining=len(targets))
                for target in targets:
                    d = _Delegation(
                        src=fifo, slot=slot, clock=shared_clock,
                        publisher=op_id, created_epoch=target.epoch,
                        gate=gate,
                    )
                    self.result.delegations += 1
                    # If the publisher released w(M) before r(L), M's
                    # reader group (the delegates) is already active:
                    # watch those slots directly. Otherwise the
                    # publisher's own w(M) is still active and the
                    # delegates arrive with the next activation — park
                    # the delegation until then.
                    live = [s for s in target.active
                            if s.mode == "r" and s.op_id != op_id]
                    if live:
                        d.watch = live
                        target.watching.append(d)
                    else:
                        target.pending.append(d)
            else:
                fifo.release(slot, state.clock, self)
        else:  # TOUCH
            bid = id(ev.buffer)
            buf = self.buffers.get(bid)
            if buf is None:
                buf = self.buffers[bid] = _BufferState()
            self.result.touches_checked += 1
            for other, kind in buf.access(op_id, state.clock, ev.write):
                self.result.raced.setdefault(
                    (bid, frozenset((op_id, other))), kind
                )
            if ev.write:
                self._mark_publication(state, ev)
        self._tick(state)

    def _mark_publication(self, state: _OpState, ev) -> None:
        """Publisher pattern: write M's buffer under w(M) + r(L)."""
        held = ev.held
        writers = [h for h in held
                   if h.mode == "w" and h.location.buffer is ev.buffer]
        if not writers:
            return
        readers = [h for h in held if h.mode == "r"]
        for hw in writers:
            target = self.fifos[hw.location.loc_id]
            for hr in readers:
                if hr.location is hw.location:
                    continue
                n = state.acquires.get(id(hr), 0)
                slot = state.slots.get((id(hr), n - 1)) if n else None
                if slot is not None and slot.active:
                    if target not in slot.delegated_to:
                        slot.delegated_to.append(target)

    def _forgive_wrap_stalls(self) -> bool:
        """Unstick ops blocked on a wrap artifact of the probe.

        An iterative pattern repeated past round 0 may re-acquire a
        *non-iterative* handle (a prelude acquire the probe folded into
        the loop). No request exists for it; the op has executed every
        real round of that handle, so it is marked done-by-forgiveness
        rather than stalled.
        """
        progressed = False
        for state in self.ops:
            if state.done:
                continue
            ev = state.script[state.idx]
            if (ev.kind == ACQUIRE and not ev.handle.iterative
                    and state.idx >= state.round_len):
                state.forgiven = True
                progressed = True
        return progressed

    def run(self) -> HBResult:
        while True:
            progressed = False
            for state in self.ops:
                while not state.done:
                    ev = state.script[state.idx]
                    if not self._enabled(state, ev):
                        break
                    state.idx += 1
                    self._execute(state, ev)
                    progressed = True
            if progressed:
                continue
            if self._force_resolve():
                continue
            if self._forgive_wrap_stalls():
                continue
            break
        for state in self.ops:
            self.result.eligible[state.op.op_id] = state.eligible
            if not state.done:
                self.result.stalled.add(state.op.op_id)
        return self.result


def check_hb(
    runtime: "Runtime",
    patterns: dict[int, OpPattern],
    *,
    rounds: int = ROUNDS,
) -> HBResult:
    """Replay *patterns* against the abstract FIFOs; return verdict state.

    The runtime must be scheduled (the replay reads the canonical
    initial request order); probing may already have mutated the real
    FIFOs — the replay never touches them.
    """
    return _Replay(runtime, patterns, rounds).run()
