"""The findings model shared by every analyzer (and the ORWL linter).

A :class:`Finding` is one diagnostic: severity (``error`` > ``warning`` >
``note``), a stable machine-readable ``code``, a human message, an
optional ``subject`` (the operation/location/thread span the finding is
about), an optional ``fix_hint``, a ``source`` tag (``static`` or ``dynamic``), an
optional happens-before ``verdict`` (``CONFIRMED``/``ORDERED``), and an
optional source span (``file``/``line``) for findings anchored in code,
as the hot-loop lint's are. :class:`Report` collects findings, keeps
them in a stable canonical order, and renders them as text, the repo's
own JSON document, or a standard SARIF 2.1 log (:meth:`Report.to_sarif`).

This module is deliberately standalone (no imports from ``repro.orwl`` /
``repro.sim``) so the linter and all analyzers can share it without
import cycles.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from dataclasses import dataclass, field

__all__ = [
    "SEVERITIES",
    "Finding",
    "Report",
    "severity_rank",
    "sort_findings",
    "json_text",
    "sarif_log",
]

#: Recognized severities, most severe first.
SEVERITIES = ("error", "warning", "note")


def severity_rank(severity: str) -> int:
    """0 for ``error``, 1 for ``warning``, 2 for ``note`` (unknown last)."""
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        return len(SEVERITIES)


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by an analyzer."""

    severity: str  # "error" | "warning" | "note"
    code: str
    message: str
    subject: str = ""
    fix_hint: str = ""
    source: str = "static"  # "static" | "dynamic"
    #: Happens-before classification for race findings:
    #: "CONFIRMED" (HB-concurrent), "ORDERED" (lockset false positive),
    #: "" (no HB verdict — lockset-only evidence).
    verdict: str = ""
    #: Source span for code-anchored findings (hotlint); empty/0 = none.
    file: str = ""
    line: int = 0

    @property
    def level(self) -> str:
        """Backwards-compatible alias for :attr:`severity` (old ``Issue``)."""
        return self.severity

    def __str__(self) -> str:
        head = f"[{self.severity}] {self.code}"
        if self.file:
            head += f" {self.file}:{self.line}"
        text = f"{head}: {self.message}"
        if self.verdict:
            text += f" (verdict: {self.verdict})"
        return text

    def to_dict(self) -> dict:
        d = {
            "severity": self.severity,
            "code": self.code,
            "message": self.message,
        }
        if self.subject:
            d["subject"] = self.subject
        if self.fix_hint:
            d["fix_hint"] = self.fix_hint
        d["source"] = self.source
        if self.verdict:
            d["verdict"] = self.verdict
        if self.file:
            d["file"] = self.file
            d["line"] = self.line
        return d


def sort_findings(findings: Iterable[Finding]) -> list[Finding]:
    """The canonical stable order: severity, then code, subject, message."""
    return sorted(
        findings,
        key=lambda f: (severity_rank(f.severity), f.code, f.subject, f.message),
    )


@dataclass
class Report:
    """An ordered collection of findings for one analyzed program."""

    program: str = ""
    findings: list[Finding] = field(default_factory=list)

    def add(
        self,
        severity: str,
        code: str,
        message: str,
        *,
        subject: str = "",
        fix_hint: str = "",
        source: str = "static",
        verdict: str = "",
        file: str = "",
        line: int = 0,
    ) -> Finding:
        f = Finding(severity, code, message, subject=subject,
                    fix_hint=fix_hint, source=source, verdict=verdict,
                    file=file, line=line)
        self.findings.append(f)
        return f

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def merge(self, other: "Report") -> None:
        self.findings.extend(other.findings)

    def sorted(self) -> list[Finding]:
        return sort_findings(self.findings)

    def by_code(self, code: str) -> list[Finding]:
        return [f for f in self.findings if f.code == code]

    @property
    def codes(self) -> list[str]:
        """Sorted unique finding codes (handy in tests)."""
        return sorted({f.code for f in self.findings})

    def count(self, severity: str) -> int:
        return sum(1 for f in self.findings if f.severity == severity)

    @property
    def max_severity(self) -> str | None:
        """The most severe level present, or None for a clean report."""
        present = sorted(
            {f.severity for f in self.findings}, key=severity_rank
        )
        return present[0] if present else None

    @property
    def has_errors(self) -> bool:
        return any(f.severity == "error" for f in self.findings)

    def exit_code(self) -> int:
        """CI contract: 3 when any error-level finding is present, else 0."""
        return 3 if self.has_errors else 0

    # -- rendering -----------------------------------------------------------

    def to_text(self) -> str:
        """Human-readable rendering, canonical order, fix hints inline."""
        head = f"analysis of {self.program or '<program>'}"
        if not self.findings:
            return f"{head}: clean (no findings)"
        lines = [
            f"{head}: {len(self.findings)} finding(s) "
            f"({self.count('error')} error, {self.count('warning')} warning, "
            f"{self.count('note')} note)"
        ]
        for f in self.sorted():
            line = str(f)
            if f.subject:
                line += f"  [{f.subject}]"
            lines.append(line)
            if f.fix_hint:
                lines.append(f"    hint: {f.fix_hint}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """SARIF-ish JSON-compatible document."""
        return {
            "version": "repro-analyze/1",
            "program": self.program,
            "summary": {
                "errors": self.count("error"),
                "warnings": self.count("warning"),
                "notes": self.count("note"),
                "clean": not self.findings,
            },
            "findings": [f.to_dict() for f in self.sorted()],
        }

    def to_json(self) -> str:
        return json_text(self.to_dict())

    def to_sarif(self) -> dict:
        """Standard SARIF 2.1.0 log for this report (one run)."""
        return sarif_log([self])


def json_text(obj) -> str:
    """The one JSON serialization used across the CLI (stable keys)."""
    return json.dumps(obj, indent=1, sort_keys=False)


#: Severity mapping into SARIF's result levels.
_SARIF_LEVEL = {"error": "error", "warning": "warning", "note": "note"}


def _sarif_result(report: Report, f: Finding) -> dict:
    result: dict = {
        "ruleId": f.code,
        "level": _SARIF_LEVEL.get(f.severity, "none"),
        "message": {"text": f.message},
    }
    properties: dict = {"source": f.source}
    if report.program:
        properties["program"] = report.program
    if f.subject:
        properties["subject"] = f.subject
    if f.fix_hint:
        properties["fixHint"] = f.fix_hint
    if f.verdict:
        properties["verdict"] = f.verdict
    result["properties"] = properties
    if f.file:
        region = {"startLine": f.line} if f.line else {}
        location = {
            "physicalLocation": {
                "artifactLocation": {"uri": f.file},
                **({"region": region} if region else {}),
            }
        }
        result["locations"] = [location]
    elif f.subject:
        result["locations"] = [
            {"logicalLocations": [{"name": f.subject}]}
        ]
    return result


def sarif_log(reports: Iterable[Report]) -> dict:
    """A SARIF 2.1.0 document covering *reports* as one tool run.

    Rules are synthesized from the finding codes present; results keep
    the repo-specific fields (program, subject, verdict, fix hint) in
    the SARIF ``properties`` bag so nothing is lost relative to
    :meth:`Report.to_dict`.
    """
    reports = list(reports)
    codes: dict[str, str] = {}
    results: list[dict] = []
    for report in reports:
        for f in report.sorted():
            codes.setdefault(f.code, f.message)
            results.append(_sarif_result(report, f))
    rules = [
        {
            "id": code,
            "shortDescription": {"text": message},
        }
        for code, message in sorted(codes.items())
    ]
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "version": "1.0.0",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
