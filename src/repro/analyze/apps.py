"""Analyzer-sized builders for the three paper applications.

Each builder returns a *fresh, unscheduled* runtime declaring the full
task/location graph at a miniature problem size — large enough to
exercise every wiring idiom (wavefront rotation, ring circulation,
split descriptors), small enough that the dynamic cross-check completes
in well under a second. The registry keys are the names accepted by
``repro-paper lint``.
"""

from __future__ import annotations

from typing import Callable

from repro.apps.lk23 import Lk23Config, build_orwl_lk23
from repro.apps.matmul import MatmulConfig, build_orwl_matmul
from repro.apps.video import VideoConfig
from repro.apps.video.pipeline import build_orwl_video
from repro.errors import ReproError
from repro.orwl.runtime import Runtime
from repro.topology import smp12e5, smp12e5_4s

__all__ = ["APP_BUILDERS", "app_builder", "app_names"]


def build_lk23(*, affinity: bool = True) -> Runtime:
    rt = Runtime(smp12e5(), affinity=affinity)
    build_orwl_lk23(rt, Lk23Config(n=64, iterations=2, n_threads=16))
    return rt


def build_matmul(*, affinity: bool = True) -> Runtime:
    rt = Runtime(smp12e5(), affinity=affinity)
    build_orwl_matmul(rt, MatmulConfig(n=64, n_tasks=4))
    return rt


def build_video(*, affinity: bool = True) -> Runtime:
    rt = Runtime(smp12e5_4s(), affinity=affinity)
    build_orwl_video(
        rt,
        VideoConfig(
            resolution="HD", frames=2, gmm_split=4, ccl_split=2, n_dilate=2
        ),
    )
    return rt


APP_BUILDERS: dict[str, Callable[..., Runtime]] = {
    "lk23": build_lk23,
    "matmul": build_matmul,
    "video": build_video,
}


def app_names() -> list[str]:
    return sorted(APP_BUILDERS)


def app_builder(name: str) -> Callable[..., Runtime]:
    try:
        return APP_BUILDERS[name]
    except KeyError:
        raise ReproError(
            f"unknown app {name!r}; known: {', '.join(app_names())}"
        ) from None
