"""SimSanitizer: checked-mode invariants for the simulator itself.

The difftest harness proves the two run-loop cores agree with each
other; the sanitizer proves a run agrees with the *model* — that virtual
time never goes backwards, that the scheduler's occupancy book-keeping
matches what the taps observe, that counters conserve across the
observer fold, that the ring trace respects its bounds. It is the
simulator's own ASan: off by default and strictly free when off (one
``if machine.sanitize`` test per run), enabled per-machine with
``SimMachine(..., sanitize=True)`` or globally with ``REPRO_SANITIZE=1``.

Invariant catalogue (see docs/ANALYZE.md for the full rationale):

live, via the native observe taps (both cores, bucket granularity):
  * ``clock-monotonic`` — ``engine.now`` is nondecreasing across every
    touch/block/finish/place callback;
  * ``occupancy`` — at every ``on_place(pu, thread)`` the scheduler's
    busy map says *thread* occupies *pu*;
  * ``touch-bytes`` — observed touch sizes are nonnegative.

post-run, in ``verify()`` (clean completions only):
  * ``thread-states`` — every thread ended ``done``/``unstarted``;
  * ``counters`` — per-thread counters nonnegative, remote traffic
    bounded by total traffic, and compute+control kind-splits conserve
    against the machine totals;
  * ``scheduler-idle`` — the busy map and per-NUMA load counts drained
    to empty/zero;
  * ``observer-conservation`` — folded per-PU busy cycles equal the
    per-thread busy cycles, and registry totals match engine/ring
    ground truth;
  * ``ring-bounds`` — live records fit the capacity, timestamps are
    nondecreasing, and ``recorded - dropped`` equals the live length.

Cross-core fingerprint agreement (the difftest family under
``REPRO_SANITIZE=1``) uses :func:`fingerprint` as the canonical
comparable summary of a sanitized run.

Any violation raises :class:`repro.errors.InvariantViolation` naming the
invariant; the machine also keeps ``machine.sanitizer.checks`` so tests
can assert the sanitizer actually looked.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.errors import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import SimMachine

__all__ = ["SimSanitizer", "fingerprint"]

#: Counter fields that must never go negative.
_COUNTER_FIELDS = (
    "l3_misses", "l3_hits", "stalled_cycles", "context_switches",
    "cpu_migrations", "busy_cycles", "compute_cycles", "memory_cycles",
    "flops", "bytes_touched", "remote_bytes",
)


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-6)


class SimSanitizer:
    """Checked-mode invariants attached to one :class:`SimMachine` run.

    Instantiated by ``SimMachine.run()`` when sanitizing is on; the
    callbacks ride the same native taps every monitor uses, so both
    cores are covered and clock checks run at the cores' shared bucket
    granularity.
    """

    def __init__(self, machine: "SimMachine") -> None:
        self.machine = machine
        self.checks = 0  # how many live assertions ran (test visibility)
        self.violations: list[str] = []
        self._last_now = float("-inf")

    # -- live taps (monitor protocol + on_place) ----------------------------

    def _fail(self, invariant: str, detail: str) -> None:
        message = f"sanitizer invariant {invariant!r} violated: {detail}"
        self.violations.append(message)
        raise InvariantViolation(message)

    def _check_clock(self) -> None:
        now = self.machine.engine.now
        self.checks += 1
        if now < self._last_now:
            self._fail(
                "clock-monotonic",
                f"engine.now went backwards: {self._last_now} -> {now}",
            )
        self._last_now = now

    def on_touch(self, thread, buffer, nbytes, write) -> None:
        self._check_clock()
        if nbytes is not None and nbytes < 0:
            self._fail(
                "touch-bytes",
                f"thread {thread.name!r} touched {nbytes} bytes of "
                f"{getattr(buffer, 'label', '<buffer>')!r}",
            )

    def on_block(self, thread, event) -> None:
        self._check_clock()

    def on_finish(self, thread) -> None:
        self._check_clock()

    def on_place(self, pu: int, thread) -> None:
        self._check_clock()
        occupant = self.machine.scheduler.thread_on(pu)
        if occupant is not thread:
            self._fail(
                "occupancy",
                f"on_place({pu}, {thread.name!r}) but the scheduler's "
                f"busy map holds "
                f"{occupant.name if occupant is not None else None!r}",
            )

    def attach(self) -> None:
        """Hook the machine's native taps (call before the drain loop)."""
        self.machine.monitors.append(self)
        self.machine.scheduler.on_place.append(self.on_place)

    # -- post-run verification ----------------------------------------------

    def verify(self, machine: "SimMachine") -> None:
        """All end-state invariants; call after a clean completion."""
        self._verify_threads(machine)
        self._verify_counters(machine)
        self._verify_scheduler(machine)
        self._verify_observer(machine)

    def _verify_threads(self, machine) -> None:
        for t in machine.threads:
            self.checks += 1
            if t.state not in ("done", "unstarted"):
                self._fail(
                    "thread-states",
                    f"thread {t.name!r} ended in state {t.state!r}",
                )

    def _verify_counters(self, machine) -> None:
        total = machine.total_counters()
        for t in machine.threads:
            for field_name in _COUNTER_FIELDS:
                self.checks += 1
                value = getattr(t.counters, field_name)
                if value < 0:
                    self._fail(
                        "counters",
                        f"thread {t.name!r} has negative "
                        f"{field_name}={value}",
                    )
            if t.counters.remote_bytes > t.counters.bytes_touched and \
                    not _close(t.counters.remote_bytes,
                               t.counters.bytes_touched):
                self._fail(
                    "counters",
                    f"thread {t.name!r} moved more remote bytes "
                    f"({t.counters.remote_bytes}) than it touched "
                    f"({t.counters.bytes_touched})",
                )
        compute = machine.counters_by_kind("compute")
        control = machine.counters_by_kind("control")
        for field_name in _COUNTER_FIELDS:
            self.checks += 1
            split = (getattr(compute, field_name)
                     + getattr(control, field_name))
            whole = getattr(total, field_name)
            if not _close(split, whole):
                self._fail(
                    "counters",
                    f"kind split of {field_name} does not conserve: "
                    f"compute+control={split} vs total={whole}",
                )

    def _verify_scheduler(self, machine) -> None:
        sched = machine.scheduler
        for pu, occupant in sched._busy.items():
            self.checks += 1
            if occupant is not None:
                self._fail(
                    "scheduler-idle",
                    f"PU {pu} still occupied by {occupant.name!r} after "
                    "the run drained",
                )
        for node, load in sched._node_load.items():
            self.checks += 1
            if load != 0:
                self._fail(
                    "scheduler-idle",
                    f"NUMA node {node} load count ended at {load}, not 0",
                )

    def _verify_observer(self, machine) -> None:
        obs = machine.observer
        if obs is None:
            return
        snapshot = obs.snapshot()
        self.checks += 1
        processed = snapshot.get("sim_events_processed_total")
        if processed is not None and processed != machine.engine.events_processed:
            self._fail(
                "observer-conservation",
                f"registry says {processed} events processed, engine "
                f"says {machine.engine.events_processed}",
            )
        if obs.pu_busy is not None:
            self.checks += 1
            folded = sum(obs.pu_busy)
            threads = sum(t.counters.busy_cycles for t in machine.threads)
            if not _close(folded, threads):
                self._fail(
                    "observer-conservation",
                    f"per-PU busy cycles ({folded}) != per-thread busy "
                    f"cycles ({threads})",
                )
        ring = obs.ring
        if ring is not None:
            records = ring.records()
            self.checks += 1
            if len(records) > ring.capacity:
                self._fail(
                    "ring-bounds",
                    f"{len(records)} live records exceed capacity "
                    f"{ring.capacity}",
                )
            self.checks += 1
            if ring.recorded - ring.dropped != len(records):
                self._fail(
                    "ring-bounds",
                    f"recorded({ring.recorded}) - dropped({ring.dropped}) "
                    f"!= live({len(records)})",
                )
            last_ts = float("-inf")
            for record in records:
                ts = record[1]
                if ts < last_ts:
                    self._fail(
                        "ring-bounds",
                        f"ring timestamps go backwards: {last_ts} -> {ts}",
                    )
                last_ts = ts
            self.checks += 1


def fingerprint(machine: "SimMachine") -> dict:
    """Canonical comparable summary of a completed (sanitized) run.

    The cross-core agreement invariant: running the same program on the
    batched and object cores must yield equal fingerprints. The difftest
    family asserts this under ``REPRO_SANITIZE=1``.
    """
    return {
        "core_used": machine.core_used,
        "counters": machine.total_counters().snapshot(),
        "elapsed_cycles": machine.elapsed_cycles,
        "events_processed": machine.engine.events_processed,
        "thread_states": tuple(t.state for t in machine.threads),
        "sanitizer_checks": (
            machine.sanitizer.checks if machine.sanitizer else 0
        ),
    }
