"""Static deadlock detection on the probed wait-for graph.

ORWL's liveness argument (Clauss & Gustedt) views the program as a
marked graph: every location FIFO is a ring of grant groups (writers
alone, adjacent readers coalesced) and every operation body is a cycle
of acquire/release events. The *initial request order* computed by
``schedule()`` places the tokens. A program can deadlock iff the
dependency graph has a cycle that consumes no token — a **zero-lag
cycle**:

* intra-operation edges: event *i+1* of a body depends on event *i*
  with lag 0; the wrap-around from the last event back to the first
  carries lag 1 (it only happens in the *next* iteration);
* FIFO edges: the grant of a handle in group *g* depends on the release
  of every handle in group *g-1* with lag 0; the wrap from group 0 back
  to the last group carries lag 1 (iterative handles re-insert their
  request behind everyone already queued).

No zero-lag cycle ⇒ from the initial FIFO positions every event can
eventually fire — the *initial-position safety* proof for iterative
programs. A zero-lag cycle is reported with a human-readable witness
path. Two degenerate stalls are flagged separately: a handle that is
enqueued but never acquired, and one that is acquired but never
released, while later groups on the same location are still waiting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analyze.probe import ACQUIRE, OpPattern
from repro.analyze.report import Finding
from repro.orwl.runtime import initial_request_order

if TYPE_CHECKING:  # pragma: no cover
    from repro.orwl.runtime import Runtime

__all__ = ["WaitForGraph", "build_wait_for_graph", "check_deadlock"]

Node = tuple[int, int]  # (op_id, index into the op's sync_events)


class WaitForGraph:
    """Lag-annotated dependency graph over acquire/release events."""

    def __init__(self) -> None:
        self.labels: dict[Node, str] = {}
        #: u -> [(v, lag)]: u cannot happen before v happened lag
        #: iterations earlier.
        self.edges: dict[Node, list[tuple[Node, int]]] = {}

    def add_node(self, node: Node, label: str) -> None:
        self.labels.setdefault(node, label)
        self.edges.setdefault(node, [])

    def add_edge(self, u: Node, v: Node, lag: int) -> None:
        if u in self.edges and v in self.edges:
            self.edges[u].append((v, lag))

    def zero_lag_sccs(self) -> list[list[Node]]:
        """Strongly connected components over the lag-0 edges (iterative
        Tarjan), keeping only real cycles (size > 1 or a self-loop)."""
        adj = {
            u: [v for v, lag in vs if lag == 0] for u, vs in self.edges.items()
        }
        index: dict[Node, int] = {}
        low: dict[Node, int] = {}
        on_stack: set[Node] = set()
        stack: list[Node] = []
        sccs: list[list[Node]] = []
        counter = [0]

        for root in adj:
            if root in index:
                continue
            work: list[tuple[Node, int]] = [(root, 0)]
            while work:
                node, child_i = work[-1]
                if child_i == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                children = adj[node]
                while child_i < len(children):
                    child = children[child_i]
                    child_i += 1
                    if child not in index:
                        work[-1] = (node, child_i)
                        work.append((child, 0))
                        recurse = True
                        break
                    if child in on_stack:
                        low[node] = min(low[node], index[child])
                if recurse:
                    continue
                work.pop()
                if low[node] == index[node]:
                    comp = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.append(w)
                        if w == node:
                            break
                    if len(comp) > 1 or node in adj[node]:
                        sccs.append(comp)
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return sccs

    def witness_cycle(self, scc: list[Node]) -> list[Node]:
        """One concrete zero-lag cycle inside *scc* (DFS walk)."""
        members = set(scc)
        start = scc[0]
        path = [start]
        seen = {start}
        node = start
        while True:
            for v, lag in self.edges[node]:
                if lag == 0 and v in members:
                    if v == start:
                        return path
                    if v not in seen:
                        path.append(v)
                        seen.add(v)
                        node = v
                        break
            else:  # pragma: no cover — SCC guarantees a successor
                return path


def _grant_groups(handles: list) -> list[list]:
    """Coalesce an ordered request list into FIFO grant groups."""
    groups: list[list] = []
    for h in handles:
        if groups and h.mode == "r" and groups[-1][0].mode == "r":
            groups[-1].append(h)
        else:
            groups.append([h])
    return groups


def build_wait_for_graph(
    runtime: "Runtime", patterns: dict[int, OpPattern]
) -> WaitForGraph:
    """Assemble the lag-weighted wait-for graph from the probed patterns."""
    g = WaitForGraph()
    acquire_node: dict[int, Node] = {}  # id(handle) -> node
    release_node: dict[int, Node] = {}

    for op_id, pattern in patterns.items():
        events = pattern.sync_events
        for i, ev in enumerate(events):
            node = (op_id, i)
            verb = "acquires" if ev.kind == ACQUIRE else "releases"
            g.add_node(
                node,
                f"{pattern.op.name} {verb} {ev.handle.location.name!r}",
            )
            table = acquire_node if ev.kind == ACQUIRE else release_node
            table.setdefault(id(ev.handle), node)
        # Intra-operation program order.
        for i in range(1, len(events)):
            g.add_edge((op_id, i), (op_id, i - 1), 0)
        if pattern.iterative and events:
            g.add_edge((op_id, 0), (op_id, len(events) - 1), 1)

    order = initial_request_order(runtime)
    for loc in runtime.locations:
        groups = _grant_groups(order[loc.loc_id])
        m = len(groups)
        for gi, group in enumerate(groups):
            prev = groups[gi - 1]
            for h in group:
                a = acquire_node.get(id(h))
                if a is None:
                    continue
                for h_prev in prev:
                    r = release_node.get(id(h_prev))
                    if r is None:
                        continue
                    if gi > 0:
                        g.add_edge(a, r, 0)
                    elif m >= 1 and h.iterative and h_prev.iterative:
                        g.add_edge(a, r, 1)  # next-iteration wrap
    return g


def _stall_findings(
    runtime: "Runtime", patterns: dict[int, OpPattern]
) -> list[Finding]:
    """Enqueued-but-never-acquired / acquired-but-never-released handles
    that leave later grant groups waiting forever."""
    findings: list[Finding] = []
    acquired: set[int] = set()
    released: set[int] = set()
    complete: set[int] = set()  # op ids with trustworthy patterns
    for op_id, pattern in patterns.items():
        if not pattern.truncated and not pattern.error:
            complete.add(op_id)
        for ev in pattern.sync_events:
            (acquired if ev.kind == ACQUIRE else released).add(id(ev.handle))

    order = initial_request_order(runtime)
    for loc in runtime.locations:
        groups = _grant_groups(order[loc.loc_id])
        for gi, group in enumerate(groups):
            waiters = [
                h
                for later in groups[gi + 1:]
                for h in later
                if id(h) in acquired
            ]
            if not waiters:
                continue
            for h in group:
                if h.op.op_id not in complete:
                    continue
                if id(h) not in acquired:
                    findings.append(Finding(
                        "error", "stalled-fifo",
                        f"{h.op.name} enqueues a {h.mode!r} request on "
                        f"location {loc.name!r} but its body never acquires "
                        f"it; {len(waiters)} request(s) behind it can never "
                        "be granted",
                        subject=loc.name,
                        fix_hint="acquire/release the handle in the body or "
                                 "drop the handle",
                    ))
                elif id(h) not in released:
                    findings.append(Finding(
                        "error", "unreleased-handle",
                        f"{h.op.name} acquires location {loc.name!r} but "
                        f"never releases it; {len(waiters)} request(s) "
                        "behind it can never be granted",
                        subject=loc.name,
                        fix_hint="release the handle before the body ends",
                    ))
    return findings


def check_deadlock(
    runtime: "Runtime", patterns: dict[int, OpPattern]
) -> list[Finding]:
    """All deadlock findings: zero-lag cycles (with witness) + stalls."""
    findings: list[Finding] = []
    for op_id, pattern in patterns.items():
        if pattern.error:
            findings.append(Finding(
                "warning", "probe-error",
                f"body of {pattern.op.name} raised during probing: "
                f"{pattern.error}",
                subject=pattern.op.name,
            ))
        elif pattern.truncated:
            findings.append(Finding(
                "warning", "probe-incomplete",
                f"body of {pattern.op.name} exceeded the probe budget "
                "before reaching an iteration boundary; deadlock analysis "
                "for this operation is incomplete",
                subject=pattern.op.name,
            ))

    g = build_wait_for_graph(runtime, patterns)
    for scc in g.zero_lag_sccs():
        cycle = g.witness_cycle(scc)
        ops = sorted({g.labels[n].split(" ")[0] for n in cycle})
        witness = " <- needs ".join(g.labels[n] for n in cycle)
        findings.append(Finding(
            "error", "deadlock-cycle",
            "zero-lag wait-for cycle from the initial FIFO positions: "
            f"{witness} <- needs (back to start)",
            subject=", ".join(ops),
            fix_hint="reorder the acquisitions or adjust init_rank so the "
                     "initial grant order matches the bodies' acquisition "
                     "order",
        ))
    findings.extend(_stall_findings(runtime, patterns))
    return findings
