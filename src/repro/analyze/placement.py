"""Placement verification: findings over ``Placement.violations``.

Validates a computed (or hand-made) TreeMatch mapping against a
topology and a thread census: bindings in bounds, every thread bound,
per-core load within the oversubscription policy, control threads on
their reserved PUs. Also states the migration proof: when every thread
is pinned to a singleton cpuset, the run's migration counter is
provably 0 (the affinity rows of Tables II-IV).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analyze.report import Finding

if TYPE_CHECKING:  # pragma: no cover
    from repro.topology.tree import Topology
    from repro.treematch.mapping import Placement

__all__ = ["SEVERITY_BY_CODE", "check_placement", "migrations_provably_zero"]

#: How bad each structural violation is.
SEVERITY_BY_CODE = {
    "pu-out-of-range": "error",
    "unbound-thread": "error",
    "unbound-control": "warning",
    "oversubscribed-core": "error",
    "control-on-compute-pu": "warning",
    "control-not-sibling": "warning",
}

_FIX_HINTS = {
    "pu-out-of-range": "bind only PUs present in the topology",
    "unbound-thread": "map every compute thread (rerun affinity_compute "
                      "with the full matrix)",
    "unbound-control": "bind the control thread or use control mode 'os'",
    "oversubscribed-core": "raise the oversubscription factor or spread "
                           "the threads",
    "control-on-compute-pu": "reserve a hyperthread sibling or spare core "
                             "for control threads",
    "control-not-sibling": "place control threads on siblings of their "
                           "owners' cores",
}


def check_placement(
    topology: "Topology",
    placement: "Placement",
    *,
    n_threads: int | None = None,
    n_control: int | None = None,
) -> list[Finding]:
    """Findings for every structural violation of *placement*."""
    return [
        Finding(
            SEVERITY_BY_CODE.get(code, "warning"),
            code,
            message,
            subject=subject,
            fix_hint=_FIX_HINTS.get(code, ""),
        )
        for code, message, subject in placement.violations(
            topology, n_threads=n_threads, n_control=n_control
        )
    ]


def migrations_provably_zero(
    placement: "Placement", *, n_threads: int, n_control: int = 0
) -> bool:
    """Re-export of the proof predicate (see ``Placement``)."""
    return placement.migrations_provably_zero(
        n_threads=n_threads, n_control=n_control
    )
