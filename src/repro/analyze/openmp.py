"""Dynamic cross-check for the fork-join (OpenMP-model) applications.

The static pipeline reasons about ORWL graphs; the OpenMP-model apps
have no location graph to probe, but they run on the very same
simulator, so the *execution-grounded* half of the analyzer applies:
run a miniature configuration with the region hook and (optionally) the
SimSanitizer attached, and check the runtime-level invariants —

* every ``parallel_for`` region that forked also joined (the implicit
  barrier completed, in order);
* with an explicit binding, the run migrated zero threads;
* under ``--sanitize``, every simulator invariant held;

— recording which simulator core actually executed (``dynamic_core``),
exactly like the ORWL dynamic pass does.

The registry keys (``omp-lk23``, ``omp-dgemm``, ``omp-video``) are
accepted by ``repro-paper lint`` next to the ORWL app names; with
``--all --dynamic`` they are appended to the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analyze.report import Finding, Report
from repro.errors import InvariantViolation, ReproError, SimulationError

__all__ = [
    "OMP_APPS",
    "OpenMPDynamicResult",
    "omp_app_names",
    "run_openmp_dynamic",
    "check_openmp",
    "analyze_openmp",
]


def _run_omp_lk23(attach):
    from repro.apps.lk23 import Lk23Config, run_openmp_lk23
    from repro.topology import smp12e5

    return run_openmp_lk23(
        smp12e5(), Lk23Config(n=64, iterations=2, n_threads=8),
        binding="close", attach=attach,
    )


def _run_omp_dgemm(attach):
    from repro.openmp.mkl import threaded_dgemm
    from repro.topology import smp12e5

    return threaded_dgemm(
        smp12e5(), 128, 8, binding="scatter", attach=attach,
    )


def _run_omp_video(attach):
    from repro.apps.video import VideoConfig
    from repro.apps.video.pipeline import run_openmp_video
    from repro.topology import smp12e5_4s

    return run_openmp_video(
        smp12e5_4s(),
        VideoConfig(resolution="HD", frames=2, n_dilate=2),
        8, binding="close", attach=attach,
    )


#: Analyzer-sized fork-join apps: name -> runner(attach) -> OMPResult.
OMP_APPS: dict[str, Callable] = {
    "omp-lk23": _run_omp_lk23,
    "omp-dgemm": _run_omp_dgemm,
    "omp-video": _run_omp_video,
}


def omp_app_names() -> list[str]:
    return sorted(OMP_APPS)


@dataclass
class OpenMPDynamicResult:
    """Observations from one monitored fork-join execution."""

    name: str
    completed: bool = False
    error: str = ""
    core: str = ""
    seconds: float = 0.0
    n_threads: int = 0
    binding: str | None = None
    #: Region indices seen at fork / at join, in virtual-time order.
    forked: list[int] = field(default_factory=list)
    joined: list[int] = field(default_factory=list)
    migrations: int = 0
    sanitizer_checks: int = 0
    sanitizer_violations: list[str] = field(default_factory=list)


def run_openmp_dynamic(
    name: str, *, sanitize: bool = False
) -> OpenMPDynamicResult:
    """Execute one registered fork-join app with the hooks attached."""
    try:
        runner = OMP_APPS[name]
    except KeyError:
        raise ReproError(
            f"unknown OpenMP app {name!r}; known: {', '.join(omp_app_names())}"
        ) from None

    result = OpenMPDynamicResult(name=name)
    runtimes = []

    def attach(omp) -> None:
        runtimes.append(omp)
        if sanitize:
            omp.machine.sanitize = True

        def on_region(kind: str, region: int, n_items: int) -> None:
            (result.forked if kind == "fork" else result.joined).append(region)

        omp.on_region.append(on_region)

    try:
        omp_result = runner(attach)
        result.completed = True
        result.seconds = omp_result.seconds
        result.n_threads = omp_result.n_threads
        result.binding = omp_result.binding
        result.migrations = int(omp_result.counters.cpu_migrations)
    except InvariantViolation as exc:
        result.error = str(exc)
        result.sanitizer_violations.append(str(exc))
    except SimulationError as exc:
        result.error = str(exc)
    if runtimes:
        machine = runtimes[0].machine
        result.core = machine.core_used or ""
        result.n_threads = result.n_threads or runtimes[0].n_threads
        result.binding = result.binding or runtimes[0].binding
        if machine.sanitizer is not None:
            result.sanitizer_checks = machine.sanitizer.checks
            for violation in machine.sanitizer.violations:
                if violation not in result.sanitizer_violations:
                    result.sanitizer_violations.append(violation)
    return result


def check_openmp(result: OpenMPDynamicResult) -> list[Finding]:
    """Reconcile one fork-join execution against the runtime invariants."""
    findings: list[Finding] = []

    def f(severity, code, message, subject=""):
        findings.append(
            Finding(severity, code, message, subject=subject,
                    source="dynamic")
        )

    if not result.completed:
        f("error", "omp-run-failed",
          f"execution of {result.name} failed: {result.error or '<unknown>'}",
          subject=result.name)

    if result.forked != result.joined:
        unjoined = [r for r in result.forked if r not in result.joined]
        f("error", "omp-region-unbalanced",
          f"{len(result.forked)} region(s) forked but "
          f"{len(result.joined)} joined"
          + (f"; regions {unjoined[:8]} never completed their barrier"
             if unjoined else "; join order diverged from fork order"),
          subject=result.name)
    elif result.forked:
        f("note", "omp-regions-balanced",
          f"{len(result.forked)} parallel region(s) forked and joined in "
          f"order on a team of {result.n_threads}",
          subject=result.name)

    if result.binding is not None and result.completed:
        if result.migrations == 0:
            f("note", "migrations-zero-confirmed",
              f"binding {result.binding!r}: observed CPU migrations = 0")
        else:
            f("error", "migration-despite-binding",
              f"{result.migrations} CPU migration(s) observed although the "
              f"team is bound ({result.binding!r})")

    for violation in result.sanitizer_violations:
        f("error", "sanitizer-violation", violation)
    if result.sanitizer_checks and not result.sanitizer_violations:
        f("note", "sanitizer-clean",
          f"{result.sanitizer_checks} simulator invariant check(s) held "
          "during the monitored execution")
    return findings


def analyze_openmp(name: str, *, sanitize: bool = False):
    """Full dynamic pass packaged as an :class:`~repro.analyze.Analysis`
    (empty static report — fork-join apps have no ORWL graph to probe)."""
    from repro.analyze import Analysis

    result = run_openmp_dynamic(name, sanitize=sanitize)
    dyn = Report(program=name)
    dyn.extend(check_openmp(result))
    return Analysis(
        name=name,
        static=Report(program=name),
        dynamic=dyn,
        dynamic_core=result.core,
    )
