"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Sub-hierarchies mirror the major subsystems (topology,
TreeMatch, simulator, ORWL runtime, OpenMP model).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TopologyError(ReproError):
    """Malformed or inconsistent hardware topology description."""


class BindingError(TopologyError):
    """Invalid CPU binding request (empty cpuset, unknown PU, ...)."""


class MappingError(ReproError):
    """TreeMatch failed to produce a placement (bad matrix/tree sizes)."""


class SimulationError(ReproError):
    """Discrete-event engine reached an inconsistent state."""


class DeadlockError(SimulationError):
    """No runnable thread and pending events cannot make progress."""


class InvariantViolation(SimulationError):
    """A checked-mode (REPRO_SANITIZE) simulator invariant failed."""


class ORWLError(ReproError):
    """Misuse of the ORWL programming model."""


class HandleStateError(ORWLError):
    """An ORWL handle was used in a state that does not permit the call."""


class ScheduleError(ORWLError):
    """orwl_schedule()-time validation failed."""


class OpenMPError(ReproError):
    """Misuse of the OpenMP-like fork/join runtime model."""


class AffinityError(ReproError):
    """Misuse or misconfiguration of the adaptive remapping controller."""
