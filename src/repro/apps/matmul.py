"""Block-cyclic matrix multiplication — the compute-bound benchmark (Sec. V-B).

``C = A · B`` with row-aligned matrices. Each ORWL task owns a block of
rows of C (and the matching rows of A) and a *location* holding one
column block of B; the B blocks circulate around the task ring, one hop
per phase, so after ``p`` phases every task has seen all of B:

* phase ``k``: task ``i`` holds column block ``(i - k) mod p`` and runs a
  DGEMM on it (modeled at :data:`~repro.openmp.mkl.DGEMM_EFFICIENCY`);
* between phases the task reads its predecessor's slot into its own —
  the only communication, and exactly what the affinity module sees.

The MKL/OpenMP comparison lives in :func:`repro.openmp.mkl.threaded_dgemm`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.openmp.mkl import DGEMM_EFFICIENCY
from repro.orwl.runtime import Runtime, RunResult
from repro.sim.params import CostModel
from repro.sim.process import Compute, Touch
from repro.topology.tree import Topology

__all__ = [
    "MatmulConfig",
    "build_orwl_matmul",
    "run_orwl_matmul",
    "matmul_flops",
]


@dataclass(frozen=True)
class MatmulConfig:
    """Problem parameters. ``n_tasks`` = ring size = thread count."""

    n: int = 16384
    n_tasks: int = 8
    execute_data: bool = False

    def __post_init__(self) -> None:
        if self.n < 1 or self.n_tasks < 1:
            raise ReproError("n and n_tasks must be >= 1")
        if self.n_tasks > self.n:
            raise ReproError("more tasks than matrix rows")

    def bounds(self) -> list[tuple[int, int]]:
        """Near-equal (start, stop) row/column block boundaries."""
        p = self.n_tasks
        return [
            (t * self.n // p, (t + 1) * self.n // p) for t in range(p)
        ]


def matmul_flops(n: int) -> float:
    """Total flops of an n×n DGEMM."""
    return 2.0 * float(n) ** 3


def build_orwl_matmul(
    runtime: Runtime,
    cfg: MatmulConfig,
    data: dict[str, np.ndarray] | None = None,
) -> None:
    """Declare the ring of matmul tasks on *runtime*.

    With *data* = ``{"A": ..., "B": ..., "C": ...}`` (small sizes), tasks
    perform the real numpy products into ``C``.
    """
    if cfg.execute_data and data is None:
        raise ReproError("execute_data requires data arrays")
    p = cfg.n_tasks
    bounds = cfg.bounds()
    widths = [hi - lo for lo, hi in bounds]
    max_width = max(widths)
    slot_bytes = cfg.n * max_width * 8  # holds any column block of B

    tasks = [runtime.task(f"mm{i}") for i in range(p)]
    slots = [t.location(f"bslot{i}", slot_bytes) for i, t in enumerate(tasks)]
    a_bufs = [
        runtime.machine.allocate(max(1, widths[i] * cfg.n * 8), f"A{i}")
        for i in range(p)
    ]
    c_bufs = [
        runtime.machine.allocate(max(1, widths[i] * cfg.n * 8), f"C{i}")
        for i in range(p)
    ]
    if cfg.execute_data:
        for loc in slots:
            loc.data = {"j": -1, "block": None}

    for i, task in enumerate(tasks):
        own = task.write_handle(slots[i], iterative=True)
        prev = task.read_handle(slots[(i - 1) % p], iterative=True) if p > 1 else None

        def body(op, *, i=i, own=own, prev=prev):
            r_lo, r_hi = bounds[i]
            nb_i = r_hi - r_lo
            a_bytes = nb_i * cfg.n * 8
            carried: dict | None = None
            for k in range(p):
                j = (i - k) % p  # column block currently in the slot
                c_lo, c_hi = bounds[j]
                w_j = c_hi - c_lo
                yield from own.acquire()
                if cfg.execute_data:
                    slot = own.map()
                    if k == 0:
                        slot["j"] = i
                        slot["block"] = data["B"][:, c_lo:c_hi].copy()
                    else:
                        slot.update(carried)
                    assert slot["j"] == j, "ring rotation out of sync"
                yield own.touch(cfg.n * w_j * 8)
                yield Touch(a_bufs[i], a_bytes)
                yield Compute(
                    2.0 * nb_i * cfg.n * w_j, efficiency=DGEMM_EFFICIENCY
                )
                yield Touch(c_bufs[i], nb_i * w_j * 8, write=True)
                if cfg.execute_data:
                    data["C"][r_lo:r_hi, c_lo:c_hi] = (
                        data["A"][r_lo:r_hi, :] @ own.map()["block"]
                    )
                own.release()
                if prev is not None and k < p - 1:
                    yield from prev.acquire()
                    if cfg.execute_data:
                        got = prev.map()
                        carried = {"j": got["j"], "block": got["block"].copy()}
                    yield prev.touch(cfg.n * widths[(i - 1 - k) % p] * 8)
                    prev.release()

        task.set_body(body)


def run_orwl_matmul(
    topology: Topology,
    cfg: MatmulConfig,
    *,
    affinity: bool,
    model: CostModel | None = None,
    seed: int = 0,
    data: dict[str, np.ndarray] | None = None,
    core: str = "auto",
) -> RunResult:
    """Build and execute the block-cyclic matmul; see :class:`RunResult`.

    ``result.gflops`` is the figure-of-merit of Fig. 5.
    """
    runtime = Runtime(topology, affinity=affinity, model=model, seed=seed,
                      core=core)
    build_orwl_matmul(runtime, cfg, data)
    return runtime.run()
